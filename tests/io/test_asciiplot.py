"""Tests for the ASCII figure rendering."""

import numpy as np
import pytest

from repro.io import ascii_heatmap, ascii_histogram, ascii_series


class TestHeatmap:
    def test_dimensions(self, rng):
        text = ascii_heatmap(rng.random((50, 50)), width=40, height=10, title="map")
        lines = text.splitlines()
        assert lines[0] == "map"
        assert len(lines) == 1 + 10 + 1  # title + rows + legend
        assert all(len(line) == 40 for line in lines[1:-1])

    def test_legend_contains_min_max(self):
        matrix = np.asarray([[0.0, 1.0], [2.0, 3.0]])
        text = ascii_heatmap(matrix, unit=" mV")
        assert "min=0" in text
        assert "max=3" in text and "mV" in text

    def test_constant_matrix_renders(self):
        text = ascii_heatmap(np.ones((5, 5)))
        assert text  # no division-by-zero crash

    def test_hot_spot_appears_dark(self):
        matrix = np.zeros((10, 10))
        matrix[0, 0] = 1.0  # bottom-left in plot orientation
        text = ascii_heatmap(matrix, width=10, height=10)
        rows = text.splitlines()
        assert rows[-2][0] == "@"  # last rendered row is matrix row 0

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros((0, 0)))


class TestHistogram:
    def test_bar_lengths_proportional(self):
        counts = np.asarray([1, 10, 5])
        edges = np.asarray([-1.0, 0.0, 1.0, 2.0])
        text = ascii_histogram(counts, edges, width=20)
        lines = text.splitlines()
        assert lines[1].count("#") == 20  # the peak bin
        assert lines[0].count("#") == 2
        assert lines[2].count("#") == 10

    def test_mismatched_edges_rejected(self):
        with pytest.raises(ValueError):
            ascii_histogram(np.asarray([1, 2]), np.asarray([0.0, 1.0]))

    def test_title_included(self):
        text = ascii_histogram(np.asarray([1]), np.asarray([0.0, 1.0]), title="errors")
        assert text.splitlines()[0] == "errors"


class TestSeries:
    def test_canvas_dimensions(self, rng):
        xs = np.linspace(0, 1, 30)
        ys = rng.random(30)
        text = ascii_series(xs, ys, width=30, height=8, title="mse vs gamma")
        lines = text.splitlines()
        assert lines[0] == "mse vs gamma"
        assert len(lines) == 1 + 8 + 1

    def test_contains_points(self):
        text = ascii_series(np.asarray([0.0, 1.0]), np.asarray([0.0, 1.0]), width=10, height=5)
        assert "*" in text

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_series(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_series(np.zeros(0), np.zeros(0))
