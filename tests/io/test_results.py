"""Tests for the CSV/JSON result writers."""

import numpy as np
import pytest

from repro.io import read_csv, read_json, read_matrix, write_csv, write_json, write_matrix


class TestJSON:
    def test_roundtrip_with_numpy_types(self, tmp_path):
        data = {
            "speedup": np.float64(5.87),
            "iterations": np.int64(3),
            "series": np.linspace(0, 1, 5),
            "nested": {"name": "ibmpg2"},
        }
        path = write_json(data, tmp_path / "out" / "result.json")
        recovered = read_json(path)
        assert recovered["speedup"] == pytest.approx(5.87)
        assert recovered["iterations"] == 3
        assert len(recovered["series"]) == 5
        assert recovered["nested"]["name"] == "ibmpg2"


class TestCSV:
    def test_roundtrip(self, tmp_path):
        rows = [
            {"benchmark": "ibmpg1", "speedup": 1.92},
            {"benchmark": "ibmpg2", "speedup": 1.97},
        ]
        path = write_csv(rows, tmp_path / "table.csv")
        recovered = read_csv(path)
        assert recovered[0]["benchmark"] == "ibmpg1"
        assert float(recovered[1]["speedup"]) == pytest.approx(1.97)

    def test_explicit_fieldnames_order(self, tmp_path):
        rows = [{"b": 2, "a": 1}]
        path = write_csv(rows, tmp_path / "t.csv", fieldnames=["a", "b"])
        header = path.read_text().splitlines()[0]
        assert header == "a,b"

    def test_empty_rows_without_fieldnames_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "t.csv")

    def test_numpy_values_converted(self, tmp_path):
        path = write_csv([{"x": np.float64(1.5), "n": np.int64(2)}], tmp_path / "t.csv")
        recovered = read_csv(path)
        assert float(recovered[0]["x"]) == pytest.approx(1.5)


class TestMatrix:
    def test_roundtrip(self, tmp_path, rng):
        matrix = rng.normal(size=(20, 30))
        path = write_matrix(matrix, tmp_path / "map.csv", header="IR drop map (V)")
        recovered = read_matrix(path)
        np.testing.assert_allclose(recovered, matrix, rtol=1e-6)

    def test_header_written_as_comment(self, tmp_path):
        path = write_matrix(np.zeros((2, 2)), tmp_path / "m.csv", header="test header")
        assert path.read_text().startswith("# test header")

    def test_1d_array_promoted(self, tmp_path):
        path = write_matrix(np.asarray([1.0, 2.0, 3.0]), tmp_path / "v.csv")
        assert read_matrix(path).shape == (1, 3)
