"""Tests for the switching-activity (VCD surrogate) format."""

import pytest

from repro.io import (
    ActivityFormatError,
    BlockActivity,
    activities_from_floorplan,
    apply_activities,
    read_activity,
    write_activity,
)


class TestBlockActivity:
    def test_switching_current_formula(self):
        activity = BlockActivity(block="b0", toggle_rate=0.2, capacitance=1e-10, frequency=1e9)
        assert activity.switching_current(1.0) == pytest.approx(0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockActivity(block="b", toggle_rate=1.5, capacitance=1e-10, frequency=1e9)
        with pytest.raises(ValueError):
            BlockActivity(block="b", toggle_rate=0.5, capacitance=-1.0, frequency=1e9)
        with pytest.raises(ValueError):
            BlockActivity(block="b", toggle_rate=0.5, capacitance=1e-10, frequency=-1.0)

    def test_switching_current_rejects_bad_vdd(self):
        activity = BlockActivity(block="b", toggle_rate=0.2, capacitance=1e-10, frequency=1e9)
        with pytest.raises(ValueError):
            activity.switching_current(0.0)


class TestFileRoundTrip:
    def test_write_read_roundtrip(self, tmp_path):
        activities = [
            BlockActivity(block="b0", toggle_rate=0.2, capacitance=1.5e-10, frequency=1e9),
            BlockActivity(block="b1", toggle_rate=0.35, capacitance=2.5e-10, frequency=2e9),
        ]
        path = write_activity(activities, tmp_path / "activity.txt")
        recovered = read_activity(path)
        assert len(recovered) == 2
        assert recovered[0].block == "b0"
        assert recovered[1].toggle_rate == pytest.approx(0.35)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("b0 0.2 1e-10 1e9\n")
        with pytest.raises(ActivityFormatError):
            read_activity(path)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# repro switching activity v1\nb0 0.2 1e-10\n")
        with pytest.raises(ActivityFormatError):
            read_activity(path)

    def test_bad_number_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# repro switching activity v1\nb0 lots 1e-10 1e9\n")
        with pytest.raises(ActivityFormatError):
            read_activity(path)


class TestFloorplanIntegration:
    def test_floorplan_roundtrip_preserves_currents(self, tiny_floorplan, technology, tmp_path):
        activities = activities_from_floorplan(tiny_floorplan, vdd=technology.vdd)
        path = write_activity(activities, tmp_path / "activity.txt")
        recovered = read_activity(path)
        updated = apply_activities(tiny_floorplan, recovered, vdd=technology.vdd)
        for original, new in zip(tiny_floorplan.iter_blocks(), updated.iter_blocks()):
            assert new.switching_current == pytest.approx(original.switching_current, rel=1e-6)

    def test_apply_activities_unknown_block_rejected(self, tiny_floorplan, technology):
        bad = [BlockActivity(block="ghost", toggle_rate=0.2, capacitance=1e-10, frequency=1e9)]
        with pytest.raises(KeyError):
            apply_activities(tiny_floorplan, bad, vdd=technology.vdd)

    def test_activities_from_floorplan_validation(self, tiny_floorplan):
        with pytest.raises(ValueError):
            activities_from_floorplan(tiny_floorplan, vdd=0.0)
        with pytest.raises(ValueError):
            activities_from_floorplan(tiny_floorplan, vdd=1.0, toggle_rate=0.0)
