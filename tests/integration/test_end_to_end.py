"""End-to-end integration tests: the full paper flow on a small benchmark.

These tests exercise the whole pipeline of Fig. 6: golden design via the
conventional planner, feature extraction, model training, width prediction,
Kirchhoff IR-drop prediction and the evaluation metrics — and check that the
qualitative claims of the paper hold on the synthetic benchmark.
"""

import numpy as np

from repro.analysis import EMChecker, IRDropAnalyzer
from repro.core import compare_convergence, compare_worst_ir_drop
from repro.design import DesignRules
from repro.grid import GridBuilder


class TestPaperClaims:
    def test_dl_flow_is_faster_than_conventional_step(self, trained_framework, small_benchmark):
        """Table IV claim: PowerPlanningDL converges faster than the baseline."""
        golden = trained_framework.trained.benchmark_dataset.golden_plan
        predicted = trained_framework.predict_design(
            small_benchmark.floorplan, small_benchmark.topology
        )
        comparison = compare_convergence(golden, predicted)
        assert comparison.speedup > 1.0

    def test_predicted_and_conventional_worst_drop_comparable(
        self, trained_framework, small_benchmark
    ):
        """Table III claim: predicted worst-case IR drop tracks the conventional one."""
        golden = trained_framework.trained.benchmark_dataset.golden_plan
        predicted = trained_framework.predict_design(
            small_benchmark.floorplan, small_benchmark.topology
        )
        comparison = compare_worst_ir_drop(golden, predicted)
        assert comparison.predicted_mv > 0
        assert comparison.relative_error < 1.0  # same order of magnitude

    def test_test_set_accuracy_close_to_training(self, trained_framework, small_benchmark):
        """Section V-B claim: predictions on perturbed specs stay accurate."""
        spec = trained_framework.default_perturbation(gamma=0.10)
        _, test_dataset, _ = trained_framework.predict_for_perturbation(small_benchmark, spec)
        train_metrics = trained_framework.evaluate(
            trained_framework.trained.benchmark_dataset.training
        )
        test_metrics = trained_framework.evaluate(test_dataset)
        assert test_metrics.r2 > 0.5
        assert test_metrics.r2 <= train_metrics.r2 + 0.05

    def test_predicted_design_is_buildable_and_analysable(
        self, trained_framework, small_benchmark
    ):
        """The predicted widths must produce a legal, solvable power grid."""
        predicted = trained_framework.predict_design(
            small_benchmark.floorplan, small_benchmark.topology
        )
        technology = small_benchmark.technology
        rules = DesignRules.from_technology(technology)
        assert np.all(predicted.line_widths >= rules.min_width - 1e-9)
        network = GridBuilder(technology).build(
            small_benchmark.floorplan, small_benchmark.topology, predicted.line_widths
        )
        result = IRDropAnalyzer().analyze(network)
        assert result.worst_ir_drop < technology.vdd
        # The predicted design should be close to meeting the reliability
        # targets the golden design was built for (allow modest overshoot).
        assert result.worst_ir_drop < 2.0 * technology.ir_drop_limit
        em = EMChecker(technology).check(network, result)
        assert em.worst_density < 2.0 * technology.jmax

    def test_incremental_redesign_use_case(self, trained_framework, small_benchmark):
        """The paper recommends the DL flow for small incremental changes:
        a 10 % perturbation should need no retraining to stay accurate."""
        spec = trained_framework.default_perturbation(gamma=0.10)
        predicted, test_dataset, perturbed_plan = trained_framework.predict_for_perturbation(
            small_benchmark, spec
        )
        correlation = np.corrcoef(predicted.line_widths, perturbed_plan.widths)[0, 1]
        assert correlation > 0.7
