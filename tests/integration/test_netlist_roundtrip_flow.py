"""Integration test: SPICE netlist round-trip feeding the analysis engine.

A user of the original IBM benchmarks would read a netlist from disk and run
the conventional analysis on it.  This test writes a generated grid to the
IBM SPICE format, reads it back and checks the analysis gives identical
results, i.e. the file format carries everything the analysis needs.
"""

import pytest

from repro.analysis import IRDropAnalyzer
from repro.grid import read_netlist, write_netlist


class TestNetlistAnalysisRoundTrip:
    def test_analysis_identical_after_roundtrip(self, tiny_grid, tmp_path):
        original_result = IRDropAnalyzer().analyze(tiny_grid)

        path = write_netlist(tiny_grid, tmp_path / "grid.spice")
        recovered = read_netlist(path)
        recovered_result = IRDropAnalyzer().analyze(recovered)

        assert recovered_result.worst_ir_drop == pytest.approx(
            original_result.worst_ir_drop, rel=1e-6
        )
        assert recovered_result.average_ir_drop == pytest.approx(
            original_result.average_ir_drop, rel=1e-6
        )
        assert recovered_result.worst_node == original_result.worst_node

    def test_benchmark_grid_roundtrip(self, small_benchmark, golden_plan, tmp_path):
        network = golden_plan.network
        path = write_netlist(network, tmp_path / "bench.spice")
        recovered = read_netlist(path)
        assert recovered.statistics().as_row() == network.statistics().as_row()
        recovered_result = IRDropAnalyzer().analyze(recovered)
        assert recovered_result.worst_ir_drop == pytest.approx(
            golden_plan.ir_result.worst_ir_drop, rel=1e-6
        )
