"""Tests for the Kirchhoff IR-drop estimator (paper Algorithm 2)."""

import numpy as np
import pytest

from repro.analysis import IRDropAnalyzer
from repro.core import KirchhoffIRDropEstimator, pg_line_count
from repro.grid import GridBuilder


@pytest.fixture(scope="module")
def estimator(technology):
    return KirchhoffIRDropEstimator(technology)


@pytest.fixture(scope="module")
def uniform_widths(tiny_topology):
    return np.full(tiny_topology.num_lines, 5.0)


class TestCurrentAllocation:
    def test_total_current_conserved(self, estimator, tiny_floorplan, tiny_topology):
        currents = estimator.allocate_line_currents(tiny_floorplan, tiny_topology)
        assert currents.sum() == pytest.approx(tiny_floorplan.total_switching_current, rel=1e-9)

    def test_hot_block_lines_get_more_current(self, estimator, tiny_floorplan, tiny_topology):
        currents = estimator.allocate_line_currents(tiny_floorplan, tiny_topology)
        hot = max(tiny_floorplan.iter_blocks(), key=lambda b: b.switching_current)
        positions = np.asarray(tiny_topology.vertical_positions)
        nearest = int(np.argmin(np.abs(positions - hot.center[0])))
        farthest = int(np.argmax(np.abs(positions - hot.center[0])))
        assert currents[nearest] > currents[farthest]


class TestPrediction:
    def test_prediction_structure(self, estimator, tiny_floorplan, tiny_topology, uniform_widths):
        prediction = estimator.predict(tiny_floorplan, tiny_topology, uniform_widths)
        assert prediction.line_ir_drop.shape == (tiny_topology.num_lines,)
        assert len(prediction.segment_ir_drop) == tiny_topology.num_lines
        assert prediction.worst_ir_drop == pytest.approx(prediction.line_ir_drop.max())
        assert 0 <= prediction.worst_line < tiny_topology.num_lines
        assert prediction.prediction_time > 0

    def test_drops_non_negative(self, estimator, tiny_floorplan, tiny_topology, uniform_widths):
        prediction = estimator.predict(tiny_floorplan, tiny_topology, uniform_widths)
        for drops in prediction.segment_ir_drop:
            assert np.all(drops >= -1e-12)

    def test_wider_lines_reduce_predicted_drop(self, estimator, tiny_floorplan, tiny_topology):
        narrow = estimator.predict(
            tiny_floorplan, tiny_topology, np.full(tiny_topology.num_lines, 2.0)
        )
        wide = estimator.predict(
            tiny_floorplan, tiny_topology, np.full(tiny_topology.num_lines, 10.0)
        )
        assert wide.worst_ir_drop < narrow.worst_ir_drop

    def test_more_current_increases_predicted_drop(
        self, estimator, tiny_floorplan, tiny_topology, uniform_widths
    ):
        nominal = estimator.predict(tiny_floorplan, tiny_topology, uniform_widths)
        heavy = estimator.predict(
            tiny_floorplan.with_scaled_currents(2.0), tiny_topology, uniform_widths
        )
        assert heavy.worst_ir_drop > nominal.worst_ir_drop

    def test_prediction_same_order_as_full_analysis(
        self, estimator, technology, tiny_floorplan, tiny_topology, uniform_widths
    ):
        """The Algorithm 2 estimate should land within ~3x of the MNA solve."""
        prediction = estimator.predict(tiny_floorplan, tiny_topology, uniform_widths)
        network = GridBuilder(technology).build(tiny_floorplan, tiny_topology, uniform_widths)
        golden = IRDropAnalyzer().analyze(network)
        ratio = prediction.worst_ir_drop / golden.worst_ir_drop
        assert 1 / 3 <= ratio <= 3.0

    def test_input_validation(self, estimator, tiny_floorplan, tiny_topology):
        with pytest.raises(ValueError):
            estimator.predict(tiny_floorplan, tiny_topology, np.asarray([1.0, 2.0]))
        bad_widths = np.full(tiny_topology.num_lines, 5.0)
        bad_widths[0] = 0.0
        with pytest.raises(ValueError):
            estimator.predict(tiny_floorplan, tiny_topology, bad_widths)

    def test_constructor_validation(self, technology):
        with pytest.raises(ValueError):
            KirchhoffIRDropEstimator(technology, distance_decay=0.0)
        with pytest.raises(ValueError):
            KirchhoffIRDropEstimator(technology, sharing_factor=0.0)
        with pytest.raises(ValueError):
            KirchhoffIRDropEstimator(technology, approach_factor=2.0)


class TestMap:
    def test_map_shape_and_worst_value(
        self, estimator, tiny_floorplan, tiny_topology, uniform_widths
    ):
        prediction = estimator.predict(tiny_floorplan, tiny_topology, uniform_widths)
        ir_map = estimator.ir_drop_map(tiny_floorplan, tiny_topology, prediction, resolution=40)
        assert ir_map.shape == (40, 40)
        assert ir_map.max() == pytest.approx(prediction.worst_ir_drop)
        assert np.all(np.isfinite(ir_map))

    def test_map_resolution_validation(
        self, estimator, tiny_floorplan, tiny_topology, uniform_widths
    ):
        prediction = estimator.predict(tiny_floorplan, tiny_topology, uniform_widths)
        with pytest.raises(ValueError):
            estimator.ir_drop_map(tiny_floorplan, tiny_topology, prediction, resolution=0)


class TestPGLineCount:
    def test_equation_six(self):
        assert pg_line_count(1000.0, 10.0) == 100

    def test_minimum_one_line(self):
        assert pg_line_count(5.0, 10.0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            pg_line_count(0.0, 1.0)
        with pytest.raises(ValueError):
            pg_line_count(10.0, 0.0)
