"""Tests for the end-to-end PowerPlanningDL framework (Fig. 2 / Fig. 6)."""

import numpy as np
import pytest

from repro.core import PowerPlanningDL
from repro.grid import PerturbationKind


class TestTraining:
    def test_training_produces_history_and_dataset(self, trained_framework):
        trained = trained_framework.trained
        assert trained.training_history.epochs_run > 0
        assert trained.training_time > 0
        assert trained.benchmark_dataset.golden_plan.converged
        assert trained_framework.is_trained

    def test_trained_property_before_training_raises(self, small_benchmark, fast_regressor_config):
        framework = PowerPlanningDL(small_benchmark.technology, fast_regressor_config)
        assert not framework.is_trained
        with pytest.raises(RuntimeError):
            _ = framework.trained

    def test_training_accuracy_matches_paper_shape(self, trained_framework):
        """Table V reports r2 > 0.93 on the training benchmarks."""
        metrics = trained_framework.evaluate(
            trained_framework.trained.benchmark_dataset.training
        )
        assert metrics.r2 > 0.85
        assert metrics.correlation > 0.9


class TestPrediction:
    def test_predict_design_structure(self, trained_framework, small_benchmark):
        predicted = trained_framework.predict_design(
            small_benchmark.floorplan, small_benchmark.topology
        )
        assert predicted.line_widths.shape == (small_benchmark.topology.num_lines,)
        assert predicted.convergence_time > 0
        assert predicted.ir_drop.worst_ir_drop > 0
        assert predicted.name == small_benchmark.floorplan.name

    def test_prediction_faster_than_conventional_flow(self, trained_framework, small_benchmark):
        """The DL path must beat the conventional flow (Table IV's claim).

        Compared against the full flow rather than a single analyse step:
        since the planner's rebuild-free compiled loop, one conventional
        step on a toy grid is down to a couple of milliseconds and no
        longer a meaningful bar.
        """
        golden = trained_framework.trained.benchmark_dataset.golden_plan
        predicted = trained_framework.predict_design(
            small_benchmark.floorplan, small_benchmark.topology
        )
        assert predicted.convergence_time < golden.total_time

    def test_predicted_widths_track_golden(self, trained_framework):
        golden_plan = trained_framework.trained.benchmark_dataset.golden_plan
        predicted = trained_framework.predict_design(
            trained_framework.trained.benchmark_dataset.benchmark.floorplan,
            trained_framework.trained.benchmark_dataset.benchmark.topology,
        )
        correlation = np.corrcoef(predicted.line_widths, golden_plan.widths)[0, 1]
        assert correlation > 0.7

    def test_predicted_worst_drop_same_order_as_golden(self, trained_framework):
        golden_plan = trained_framework.trained.benchmark_dataset.golden_plan
        benchmark = trained_framework.trained.benchmark_dataset.benchmark
        predicted = trained_framework.predict_design(benchmark.floorplan, benchmark.topology)
        ratio = predicted.ir_drop.worst_ir_drop / golden_plan.ir_result.worst_ir_drop
        assert 1 / 3 <= ratio <= 3.0


class TestPerturbationFlow:
    def test_predict_for_perturbation(self, trained_framework, small_benchmark):
        spec = trained_framework.default_perturbation(gamma=0.10)
        predicted, test_dataset, perturbed_plan = trained_framework.predict_for_perturbation(
            small_benchmark, spec
        )
        assert test_dataset.num_samples > 0
        assert perturbed_plan.converged
        metrics = trained_framework.evaluate(test_dataset)
        assert metrics.r2 > 0.6
        assert metrics.num_interconnects == test_dataset.num_interconnects

    def test_mse_grows_with_perturbation_size(self, trained_framework, small_benchmark):
        """Fig. 9: prediction MSE increases with gamma."""
        mses = []
        for gamma in (0.10, 0.30):
            spec = trained_framework.default_perturbation(gamma=gamma)
            _, test_dataset, _ = trained_framework.predict_for_perturbation(small_benchmark, spec)
            mses.append(trained_framework.evaluate(test_dataset).mse)
        assert mses[1] > mses[0]

    def test_default_perturbation_spec(self, trained_framework):
        spec = trained_framework.default_perturbation()
        assert spec.gamma == pytest.approx(0.10)
        assert spec.kind is PerturbationKind.BOTH


class TestEvaluation:
    def test_metrics_fields_consistent(self, trained_framework):
        dataset = trained_framework.trained.benchmark_dataset.training
        metrics = trained_framework.evaluate(dataset)
        assert metrics.dataset_name == dataset.name
        assert 0 <= metrics.mse_percent
        assert -1.0 <= metrics.correlation <= 1.0
