"""Tests for per-crossing feature extraction (paper Section IV-B)."""

import numpy as np
import pytest

from repro.core import FEATURE_NAMES, FeatureExtractor, single_feature_columns


@pytest.fixture()
def extractor(tiny_floorplan, tiny_topology):
    return FeatureExtractor(tiny_floorplan, tiny_topology)


class TestFeatureMatrix:
    def test_one_sample_per_crossing(self, extractor, tiny_topology):
        features, targets, line_ids = extractor.feature_matrix()
        expected = tiny_topology.num_vertical * tiny_topology.num_horizontal
        assert features.shape == (expected, 3)
        assert targets.shape == (expected, 2)
        assert line_ids.shape == (expected, 2)

    def test_unlabeled_targets_are_nan(self, extractor):
        _, targets, _ = extractor.feature_matrix()
        assert np.all(np.isnan(targets))

    def test_labeled_targets_match_line_widths(self, extractor, tiny_topology, rng):
        widths = rng.uniform(1.0, 10.0, size=tiny_topology.num_lines)
        features, targets, line_ids = extractor.feature_matrix(widths)
        np.testing.assert_allclose(targets[:, 0], widths[line_ids[:, 0]])
        np.testing.assert_allclose(targets[:, 1], widths[line_ids[:, 1]])

    def test_line_id_ranges(self, extractor, tiny_topology):
        _, _, line_ids = extractor.feature_matrix()
        assert line_ids[:, 0].min() == 0
        assert line_ids[:, 0].max() == tiny_topology.num_vertical - 1
        assert line_ids[:, 1].min() == tiny_topology.num_vertical
        assert line_ids[:, 1].max() == tiny_topology.num_lines - 1

    def test_every_line_appears(self, extractor, tiny_topology):
        _, _, line_ids = extractor.feature_matrix()
        assert set(np.unique(line_ids)) == set(range(tiny_topology.num_lines))

    def test_switching_current_matches_floorplan(self, extractor, tiny_floorplan):
        features, _, _ = extractor.feature_matrix()
        for x, y, current in features[:30]:
            assert current == pytest.approx(tiny_floorplan.switching_current_at(x, y))

    def test_coordinates_match_topology(self, extractor, tiny_topology):
        features, _, _ = extractor.feature_matrix()
        assert set(np.unique(features[:, 0])) == set(tiny_topology.vertical_positions)
        assert set(np.unique(features[:, 1])) == set(tiny_topology.horizontal_positions)

    def test_wrong_width_length_rejected(self, extractor):
        with pytest.raises(ValueError):
            extractor.feature_matrix(np.asarray([1.0, 2.0]))


class TestSamples:
    def test_extract_returns_sample_objects(self, extractor, tiny_topology, rng):
        widths = rng.uniform(1.0, 5.0, size=tiny_topology.num_lines)
        samples = extractor.extract(widths)
        assert len(samples) == tiny_topology.num_vertical * tiny_topology.num_horizontal
        sample = samples[0]
        assert sample.is_labeled
        assert sample.features == (sample.x, sample.y, sample.switching_current)
        assert sample.targets == (sample.vertical_width, sample.horizontal_width)

    def test_unlabeled_samples_flagged(self, extractor):
        assert not extractor.extract()[0].is_labeled


class TestSingleFeatureColumns:
    def test_columns_split(self, extractor):
        features, _, _ = extractor.feature_matrix()
        columns = single_feature_columns(features)
        assert set(columns) == set(FEATURE_NAMES)
        for index, name in enumerate(FEATURE_NAMES):
            np.testing.assert_allclose(columns[name].ravel(), features[:, index])

    def test_wrong_column_count_rejected(self):
        with pytest.raises(ValueError):
            single_feature_columns(np.zeros((5, 2)))
