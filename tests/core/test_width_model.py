"""Tests for the width predictor (paper Algorithm 1)."""

import numpy as np
import pytest

from repro.core import WidthPredictor
from repro.design import DesignRules
from repro.nn import RegressorConfig, TrainingConfig


@pytest.fixture(scope="module")
def fitted_predictor(small_dataset, small_benchmark):
    config = RegressorConfig(
        hidden_layers=3,
        hidden_width=24,
        training=TrainingConfig(epochs=80, batch_size=64, early_stopping_patience=0, seed=0),
        seed=0,
    )
    rules = DesignRules.from_technology(small_benchmark.technology)
    predictor = WidthPredictor(config=config, rules=rules)
    predictor.fit(small_dataset.training)
    return predictor


class TestTraining:
    def test_fit_records_time_and_history(self, fitted_predictor):
        assert fitted_predictor.is_fitted
        assert fitted_predictor.training_time > 0

    def test_training_accuracy_is_high(self, fitted_predictor, small_dataset):
        metrics = fitted_predictor.evaluate(small_dataset.training)
        assert metrics["r2_score"] > 0.8
        assert metrics["mse"] < 5.0

    def test_fit_rejects_unlabeled_dataset(self, small_dataset):
        predictor = WidthPredictor(config=RegressorConfig.fast(epochs=1))
        unlabeled = small_dataset.training
        broken = type(unlabeled)(
            name="broken",
            features=unlabeled.features,
            widths=np.full_like(unlabeled.widths, np.nan),
            line_ids=unlabeled.line_ids,
            num_lines=unlabeled.num_lines,
        )
        with pytest.raises(ValueError):
            predictor.fit(broken)

    def test_invalid_aggregation_rejected(self):
        with pytest.raises(ValueError):
            WidthPredictor(aggregation="geometric")


class TestPrediction:
    def test_sample_predictions_are_positive_and_legal(
        self, fitted_predictor, small_dataset, small_benchmark
    ):
        predictions = fitted_predictor.predict_samples(small_dataset.training.features)
        rules = DesignRules.from_technology(small_benchmark.technology)
        assert predictions.shape == small_dataset.training.widths.shape
        assert np.all(predictions >= rules.min_width - 1e-9)

    def test_predict_dataset_aggregates_per_line(
        self, fitted_predictor, small_dataset, small_benchmark
    ):
        result = fitted_predictor.predict_dataset(small_dataset.training)
        assert result.line_widths.shape == (small_benchmark.topology.num_lines,)
        assert result.prediction_time > 0
        rules = DesignRules.from_technology(small_benchmark.technology)
        assert np.all(result.line_widths >= rules.min_width - 1e-9)
        assert np.all(result.line_widths <= rules.max_width + 1e-9)

    def test_predicted_line_widths_close_to_golden(self, fitted_predictor, small_dataset):
        result = fitted_predictor.predict_dataset(small_dataset.training)
        golden = small_dataset.golden_plan.widths
        correlation = np.corrcoef(result.line_widths, golden)[0, 1]
        assert correlation > 0.7

    def test_predict_design_from_floorplan(self, fitted_predictor, small_benchmark):
        result = fitted_predictor.predict_design(
            small_benchmark.floorplan, small_benchmark.topology
        )
        assert result.line_widths.shape == (small_benchmark.topology.num_lines,)
        assert result.sample_widths.shape[1] == 2

    def test_aggregation_modes(self, small_dataset, small_benchmark):
        config = RegressorConfig.fast(epochs=5)
        results = {}
        for mode in ("median", "mean", "max"):
            predictor = WidthPredictor(config=config, aggregation=mode)
            predictor.fit(small_dataset.training)
            results[mode] = predictor.predict_dataset(small_dataset.training).line_widths
        # max aggregation can never be below the median aggregation
        assert np.all(results["max"] >= results["median"] - 1e-9)
