"""Tests for the tracemalloc-based memory profiler (Table V / Fig. 10)."""

import numpy as np
import pytest

from repro.core import PeakMemoryProfiler, peak_memory_of


def allocate(mib: float):
    """Allocate roughly ``mib`` MiB of float64 and return its sum."""
    array = np.ones(int(mib * 1024 * 1024 / 8))
    return float(array.sum())


class TestProfiler:
    def test_profile_returns_result_and_peak(self):
        profile = PeakMemoryProfiler(sample_interval=0.01).profile(
            lambda: allocate(8.0), label="alloc"
        )
        assert profile.label == "alloc"
        assert profile.result == pytest.approx(8.0 * 1024 * 1024 / 8)
        assert profile.peak_mib >= 7.0
        assert profile.duration > 0

    def test_samples_form_a_time_series(self):
        profile = PeakMemoryProfiler(sample_interval=0.005).profile(lambda: allocate(4.0))
        times, values = profile.series()
        assert len(times) == len(values) >= 1
        assert times == sorted(times)
        assert all(value >= 0 for value in values)

    def test_larger_allocation_larger_peak(self):
        small = PeakMemoryProfiler(sample_interval=0.01).profile(lambda: allocate(2.0))
        large = PeakMemoryProfiler(sample_interval=0.01).profile(lambda: allocate(16.0))
        assert large.peak_mib > small.peak_mib

    def test_exception_still_stops_profiling(self):
        import tracemalloc

        def failing():
            raise RuntimeError("boom")

        profiler = PeakMemoryProfiler(sample_interval=0.01)
        was_tracing = tracemalloc.is_tracing()
        with pytest.raises(RuntimeError):
            profiler.profile(failing)
        # The profiler must restore the tracing state it found.
        assert tracemalloc.is_tracing() == was_tracing

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            PeakMemoryProfiler(sample_interval=0.0)

    def test_peak_memory_of_convenience(self):
        peak, result = peak_memory_of(lambda: allocate(4.0))
        assert peak >= 3.0
        assert result > 0
