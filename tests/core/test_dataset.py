"""Tests for dataset preparation (training + perturbed test sets)."""

import numpy as np
import pytest

from repro.core import DatasetBuilder, RegressionDataset
from repro.design import ConventionalPowerPlanner
from repro.grid import PerturbationKind, PerturbationSpec


class TestRegressionDataset:
    def make(self, samples=20, num_lines=8):
        rng = np.random.default_rng(0)
        return RegressionDataset(
            name="unit",
            features=rng.normal(size=(samples, 3)),
            widths=rng.uniform(1, 5, size=(samples, 2)),
            line_ids=np.column_stack(
                [rng.integers(0, 4, samples), rng.integers(4, num_lines, samples)]
            ),
            num_lines=num_lines,
        )

    def test_counts(self):
        dataset = self.make(samples=20)
        assert dataset.num_samples == 20
        assert dataset.num_interconnects == 40

    def test_split_partitions_samples(self):
        dataset = self.make(samples=50)
        train, test = dataset.split(test_fraction=0.2, seed=1)
        assert train.num_samples + test.num_samples == 50
        assert test.num_samples == 10

    def test_split_invalid_fraction(self):
        dataset = self.make()
        with pytest.raises(ValueError):
            dataset.split(test_fraction=0.0)
        with pytest.raises(ValueError):
            dataset.split(test_fraction=1.0)

    def test_subset_by_vertical_lines(self):
        dataset = self.make(samples=40)
        subset = dataset.subset_by_vertical_lines([0, 1])
        assert set(np.unique(subset.line_ids[:, 0])) <= {0, 1}

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RegressionDataset(
                name="bad",
                features=np.zeros((5, 3)),
                widths=np.zeros((4, 2)),
                line_ids=np.zeros((5, 2), dtype=int),
                num_lines=4,
            )
        with pytest.raises(ValueError):
            RegressionDataset(
                name="bad",
                features=np.zeros((5, 3)),
                widths=np.zeros((5, 3)),
                line_ids=np.zeros((5, 2), dtype=int),
                num_lines=4,
            )


class TestDatasetBuilder:
    def test_training_dataset_matches_benchmark(self, small_dataset, small_benchmark):
        training = small_dataset.training
        crossings = (
            small_benchmark.topology.num_vertical * small_benchmark.topology.num_horizontal
        )
        assert training.num_samples == crossings
        assert training.num_lines == small_benchmark.topology.num_lines
        assert not np.any(np.isnan(training.widths))

    def test_training_widths_come_from_golden_plan(self, small_dataset):
        golden_widths = small_dataset.golden_plan.widths
        training = small_dataset.training
        np.testing.assert_allclose(
            training.widths[:, 0], golden_widths[training.line_ids[:, 0]]
        )
        np.testing.assert_allclose(
            training.widths[:, 1], golden_widths[training.line_ids[:, 1]]
        )

    def test_perturbed_test_current_kind_changes_features(self, small_benchmark):
        builder = DatasetBuilder(ConventionalPowerPlanner(small_benchmark.technology))
        nominal = builder.build_training(small_benchmark).training
        spec = PerturbationSpec(gamma=0.2, kind=PerturbationKind.CURRENT_WORKLOADS, seed=3)
        test, perturbed_floorplan, plan = builder.build_perturbed_test(small_benchmark, spec)
        assert test.num_samples == nominal.num_samples
        # Switching-current features must have changed, coordinates must not.
        assert not np.allclose(test.features[:, 2], nominal.features[:, 2])
        np.testing.assert_allclose(test.features[:, :2], nominal.features[:, :2])
        assert plan.converged

    def test_perturbed_test_voltage_kind_scales_labels(self, small_benchmark):
        builder = DatasetBuilder(ConventionalPowerPlanner(small_benchmark.technology))
        nominal = builder.build_training(small_benchmark).training
        spec = PerturbationSpec(gamma=0.2, kind=PerturbationKind.NODE_VOLTAGES, seed=3)
        test, _, _ = builder.build_perturbed_test(small_benchmark, spec)
        # Features unchanged, labels jittered within the 1/(1 +/- gamma) band.
        np.testing.assert_allclose(test.features, nominal.features)
        ratio = nominal.widths / test.widths
        assert np.all(ratio >= 1.0 - spec.gamma - 1e-9)
        assert np.all(ratio <= 1.0 + spec.gamma + 1e-9)
        assert not np.allclose(test.widths, nominal.widths)

    def test_larger_gamma_moves_labels_further(self, small_benchmark):
        builder = DatasetBuilder(ConventionalPowerPlanner(small_benchmark.technology))
        nominal = builder.build_training(small_benchmark).training
        deviations = []
        for gamma in (0.1, 0.3):
            spec = PerturbationSpec(gamma=gamma, kind=PerturbationKind.BOTH, seed=3)
            test, _, _ = builder.build_perturbed_test(small_benchmark, spec)
            deviations.append(float(np.mean(np.abs(test.widths - nominal.widths))))
        assert deviations[1] > deviations[0]

    def test_default_planner_created_when_omitted(self, small_benchmark):
        builder = DatasetBuilder()
        planner = builder.planner_for(small_benchmark)
        assert planner.technology is small_benchmark.technology


class TestPerturbedSweep:
    """build_perturbed_sweep must reproduce build_perturbed_test with fewer plans."""

    SPECS = [
        PerturbationSpec(gamma=gamma, kind=kind, seed=int(gamma * 1000))
        for gamma in (0.10, 0.20)
        for kind in PerturbationKind
    ]

    def test_sweep_matches_per_spec_path(self, small_benchmark):
        per_spec_builder = DatasetBuilder(ConventionalPowerPlanner(small_benchmark.technology))
        swept_builder = DatasetBuilder(ConventionalPowerPlanner(small_benchmark.technology))
        swept = swept_builder.build_perturbed_sweep(small_benchmark, self.SPECS)
        assert len(swept) == len(self.SPECS)
        for spec, (dataset, floorplan, plan) in zip(self.SPECS, swept):
            reference, ref_floorplan, ref_plan = per_spec_builder.build_perturbed_test(
                small_benchmark, spec
            )
            assert dataset.name == reference.name
            assert floorplan.name == ref_floorplan.name
            assert np.array_equal(dataset.features, reference.features)
            assert np.array_equal(dataset.widths, reference.widths)
            assert np.array_equal(plan.widths, ref_plan.widths)

    def test_sweep_dedupes_golden_plans(self, small_benchmark):
        builder = DatasetBuilder(ConventionalPowerPlanner(small_benchmark.technology))
        swept = builder.build_perturbed_sweep(small_benchmark, self.SPECS)
        plans = [plan for _, _, plan in swept]
        # 6 specs collapse onto 3 golden plans: one nominal (NODE_VOLTAGES)
        # plus one per gamma (shared by CURRENT_WORKLOADS and BOTH).
        assert len({id(plan) for plan in plans}) == 3
