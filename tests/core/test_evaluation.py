"""Tests for the experiment-level evaluation helpers (tables and figures)."""

import pytest

from repro.core import (
    compare_convergence,
    compare_worst_ir_drop,
    feature_r2_study,
    per_interconnect_r2_series,
    width_prediction_study,
)
from repro.nn import RegressorConfig, TrainingConfig


@pytest.fixture(scope="module")
def quick_config():
    return RegressorConfig(
        hidden_layers=2,
        hidden_width=16,
        training=TrainingConfig(epochs=25, batch_size=64, early_stopping_patience=0, seed=0),
        seed=0,
    )


class TestFeatureStudy:
    def test_combined_features_beat_single_features(self, small_dataset, quick_config):
        """Table I: the combined (X, Y, Id) features have the highest r2."""
        study = feature_r2_study(small_dataset.training, config=quick_config, seed=0)
        assert set(study.scores) == {"x", "y", "switching_current", "combined"}
        assert study.best_feature == "combined"
        assert study.scores["combined"] > 0.7

    def test_per_interconnect_series_shape(self, small_dataset, quick_config):
        study = per_interconnect_r2_series(
            small_dataset.training, config=quick_config, num_interconnects=100, window=25
        )
        assert set(study.per_interconnect) == {"x", "y", "switching_current", "combined"}
        for series in study.per_interconnect.values():
            assert series.shape == (100,)


class TestWidthStudy:
    def test_study_fields(self, rng):
        golden = rng.uniform(1, 20, size=500)
        predicted = golden + rng.normal(0, 0.5, size=500)
        study = width_prediction_study(golden, predicted)
        assert study.correlation > 0.95
        assert study.r2 > 0.9
        assert study.histogram.num_samples == 500
        assert abs(study.histogram.peak_bin_center) < 2.0

    def test_perfect_prediction(self, rng):
        golden = rng.uniform(1, 20, size=100)
        study = width_prediction_study(golden, golden)
        assert study.mse == 0.0
        assert study.r2 == pytest.approx(1.0)


class TestComparisons:
    def test_ir_drop_comparison_row(self, golden_plan, trained_framework, small_benchmark):
        predicted = trained_framework.predict_design(
            small_benchmark.floorplan, small_benchmark.topology
        )
        row = compare_worst_ir_drop(golden_plan, predicted)
        assert row.benchmark == golden_plan.benchmark
        assert row.conventional_mv == pytest.approx(golden_plan.ir_result.worst_ir_drop_mv)
        assert row.predicted_mv == pytest.approx(predicted.ir_drop.worst_ir_drop_mv)
        assert row.absolute_error_mv >= 0
        assert row.relative_error >= 0

    def test_convergence_comparison_row(self, golden_plan, trained_framework, small_benchmark):
        predicted = trained_framework.predict_design(
            small_benchmark.floorplan, small_benchmark.topology
        )
        row = compare_convergence(golden_plan, predicted)
        assert row.conventional_seconds == pytest.approx(golden_plan.total_time)
        assert row.powerplanningdl_seconds == pytest.approx(predicted.convergence_time)
        assert row.speedup == pytest.approx(
            row.conventional_seconds / row.powerplanningdl_seconds
        )
