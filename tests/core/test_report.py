"""Tests for the plain-text report formatting."""

import pytest

from repro.core import format_key_values, format_speedup, format_table


class TestFormatTable:
    def test_columns_aligned(self):
        rows = [
            {"benchmark": "ibmpg1", "speedup": 1.92},
            {"benchmark": "ibmpgnew1", "speedup": 4.77},
        ]
        text = format_table(rows, title="Table IV")
        lines = text.splitlines()
        assert lines[0] == "Table IV"
        assert "benchmark" in lines[1] and "speedup" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 2 + 1 + len(rows)
        # all data rows have the same width as the header
        assert all(len(line) <= len(lines[1]) + 2 for line in lines[3:])

    def test_explicit_column_order(self):
        text = format_table([{"b": 1, "a": 2}], columns=["a", "b"])
        header = text.splitlines()[0]
        assert header.index("a") < header.index("b")

    def test_missing_cell_rendered_empty(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert text  # does not raise

    def test_empty_rows_without_columns_rejected(self):
        with pytest.raises(ValueError):
            format_table([])

    def test_float_formatting(self):
        text = format_table([{"x": 0.123456789}], float_format="{:.2f}")
        assert "0.12" in text


class TestOtherFormatters:
    def test_key_values_alignment(self):
        text = format_key_values({"r2 score": 0.933, "mse": 0.0231}, title="Accuracy")
        lines = text.splitlines()
        assert lines[0] == "Accuracy"
        assert all(" : " in line for line in lines[1:])

    def test_key_values_empty(self):
        assert format_key_values({}) == ""

    def test_speedup_format_matches_paper_style(self):
        assert format_speedup(5.8712) == "5.87x"
        assert format_speedup(1.0) == "1.00x"
