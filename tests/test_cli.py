"""Tests for the powerplanningdl command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        subactions = [
            action for action in parser._actions if hasattr(action, "choices") and action.choices
        ]
        commands = set(subactions[0].choices)
        assert commands == {"generate", "analyze", "plan", "train", "predict", "sweep", "lint"}

    def test_unknown_benchmark_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["generate", "not_a_benchmark", "out.spice"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestGenerateAndAnalyze:
    def test_generate_uniform_then_analyze(self, tmp_path, capsys):
        netlist = tmp_path / "ibmpg1.spice"
        assert main(["generate", "ibmpg1", str(netlist), "--width", "6.0"]) == 0
        assert netlist.exists()
        output = capsys.readouterr().out
        assert "generated netlist" in output
        assert "nodes" in output

        assert main(["analyze", str(netlist), "--top", "3"]) == 0
        output = capsys.readouterr().out
        assert "worst-case IR drop (mV)" in output
        assert "3 worst nodes" in output

    def test_analyze_missing_file_errors(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "missing.spice")]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestPlan:
    def test_plan_converges_and_writes_netlist(self, tmp_path, capsys):
        out = tmp_path / "sized.spice"
        assert main(["plan", "ibmpg1", "--netlist-out", str(out)]) == 0
        assert out.exists()
        output = capsys.readouterr().out
        assert "conventional power planning" in output
        assert "converged" in output

    def test_plan_search_reports_counters_and_record(self, tmp_path, capsys):
        record_path = tmp_path / "plan.json"
        assert (
            main(
                [
                    "plan", "ibmpg1",
                    "--search", "--min-width-start",
                    "--json-out", str(record_path),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "batched planner search" in output
        assert "candidates generated" in output
        assert "moves committed" in output
        assert record_path.exists()

        import json

        record = json.loads(record_path.read_text())
        search = record["search"]
        assert search["candidates_generated"] > 0
        assert search["moves_committed"] > 0
        assert search["candidates_generated"] == (
            search["candidates_pruned"] + search["candidates_solved"]
        )
        assert search["candidates_pruned"] == 0  # exact mode
        assert not search["ranker_used"]

    def test_plan_ranker_implies_search(self, tmp_path, capsys):
        record_path = tmp_path / "plan_ranker.json"
        assert (
            main(
                [
                    "plan", "ibmpg1",
                    "--ranker", "--batch-width", "8", "--min-width-start",
                    "--json-out", str(record_path),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "batched planner search" in output

        import json

        record = json.loads(record_path.read_text())
        search = record["search"]
        assert search["ranker_used"]
        assert search["candidates_pruned"] > 0
        assert search["candidates_generated"] == (
            search["candidates_pruned"] + search["candidates_solved"]
        )

    def test_plan_record_without_search_has_no_counters(self, tmp_path):
        record_path = tmp_path / "plain.json"
        assert main(["plan", "ibmpg1", "--json-out", str(record_path)]) == 0

        import json

        record = json.loads(record_path.read_text())
        assert "search" not in record
        assert record["converged"]


class TestTrainPredict:
    def test_train_then_predict_roundtrip(self, tmp_path, capsys):
        model = tmp_path / "model.npz"
        assert (
            main(
                [
                    "train", "ibmpg1", str(model),
                    "--epochs", "20", "--hidden-layers", "2", "--hidden-width", "16",
                ]
            )
            == 0
        )
        assert model.exists()
        output = capsys.readouterr().out
        assert "training r2" in output

        assert main(["predict", "ibmpg1", str(model), "--gamma", "0.1", "--verify"]) == 0
        output = capsys.readouterr().out
        assert "predicted worst IR drop (mV)" in output
        assert "verified worst IR drop (mV)" in output

    def test_predict_missing_model_errors(self, tmp_path, capsys):
        assert main(["predict", "ibmpg1", str(tmp_path / "missing.npz")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_predict_bad_gamma_errors(self, tmp_path):
        model = tmp_path / "model.npz"
        model.write_bytes(b"placeholder")
        assert main(["predict", "ibmpg1", str(model), "--gamma", "0.9"]) == 2


class TestSweep:
    def test_sweep_prints_summary_and_writes_record(self, tmp_path, capsys):
        record_path = tmp_path / "sweep.json"
        assert (
            main(
                [
                    "sweep", "ibmpg1",
                    "--num-loads", "6", "--num-pads", "4",
                    "--chunk-size", "7", "--top-k", "3",
                    "--json-out", str(record_path),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "streamed mega-sweep" in output
        assert "6 x 4 = 24" in output
        assert "P99 worst drop (mV)" in output
        assert "top-3 worst scenarios" in output
        assert record_path.exists()

        import json

        record = json.loads(record_path.read_text())
        assert record["num_scenarios"] == 24
        assert record["chunk_size"] == 7
        assert len(record["top_scenarios"]) == 3

    def test_sweep_bad_arguments_error(self, capsys):
        assert main(["sweep", "ibmpg1", "--gamma", "1.5"]) == 2
        assert "--gamma" in capsys.readouterr().err
        assert main(["sweep", "ibmpg1", "--num-loads", "0"]) == 2
        assert "--num-loads" in capsys.readouterr().err
        assert main(["sweep", "ibmpg1", "--chunk-size", "0"]) == 2
        assert "--chunk-size" in capsys.readouterr().err
        assert main(["sweep", "ibmpg1", "--quantiles", "abc"]) == 2
        assert "--quantiles" in capsys.readouterr().err
        assert main(["sweep", "ibmpg1", "--quantiles", "1.5"]) == 2
        assert "--quantiles" in capsys.readouterr().err
        assert main(["sweep", "ibmpg1", "--quantiles", "0.9,0.5"]) == 2
        assert "--quantiles" in capsys.readouterr().err
        assert main(["sweep", "ibmpg1", "--top-k", "0"]) == 2
        assert "--top-k" in capsys.readouterr().err
        assert main(["sweep", "ibmpg1", "--bins", "0"]) == 2
        assert "--bins" in capsys.readouterr().err
        assert main(["sweep", "ibmpg1", "--threshold-mv", "-5"]) == 2
        assert "--threshold-mv" in capsys.readouterr().err
        assert main(["sweep", "ibmpg1", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err
        assert main(["sweep", "ibmpg1", "--executor", "serial", "--workers", "2"]) == 2
        assert "--executor serial" in capsys.readouterr().err

    def test_sweep_executor_processes(self, tmp_path, capsys):
        """--executor processes shards the sweep and reports exact
        statistics identical to the threaded run (quantiles switch to the
        mergeable reservoir sample and are excluded)."""
        args = [
            "sweep", "ibmpg1",
            "--num-loads", "6", "--num-pads", "4",
            "--chunk-size", "7", "--top-k", "3",
        ]
        threads_path = tmp_path / "threads.json"
        process_path = tmp_path / "processes.json"
        assert main(args + ["--executor", "threads", "--json-out", str(threads_path)]) == 0
        assert (
            main(
                args
                + [
                    "--executor", "processes", "--workers", "2",
                    "--json-out", str(process_path),
                ]
            )
            == 0
        )
        assert "executor" in capsys.readouterr().out

        import json

        threads = json.loads(threads_path.read_text())
        processes = json.loads(process_path.read_text())
        assert threads["executor"] == "threads"
        assert processes["executor"] == "processes"
        assert processes["workers"] == 2
        volatile = (
            "executor", "workers", "analysis_time_seconds", "scenarios_per_second",
            "quantiles",  # P2 (threads) vs mergeable reservoir (processes)
        )
        for record in (threads, processes):
            for key in volatile:
                record.pop(key)
        assert threads == processes

    def test_sweep_with_workers_matches_sequential_record(self, tmp_path, capsys):
        """--workers changes throughput only: the JSON record's statistics
        are identical to the sequential run's."""
        args = [
            "sweep", "ibmpg1",
            "--num-loads", "6", "--num-pads", "4",
            "--chunk-size", "5", "--top-k", "3",
        ]
        sequential_path = tmp_path / "sequential.json"
        parallel_path = tmp_path / "parallel.json"
        assert main(args + ["--workers", "1", "--json-out", str(sequential_path)]) == 0
        assert main(args + ["--workers", "2", "--json-out", str(parallel_path)]) == 0
        assert "solver workers" in capsys.readouterr().out

        import json

        sequential = json.loads(sequential_path.read_text())
        parallel = json.loads(parallel_path.read_text())
        assert sequential["workers"] == 1
        assert parallel["workers"] == 2
        for volatile in ("workers", "analysis_time_seconds", "scenarios_per_second"):
            sequential.pop(volatile)
            parallel.pop(volatile)
        assert sequential == parallel
