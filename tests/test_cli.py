"""Tests for the powerplanningdl command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        subactions = [
            action for action in parser._actions if hasattr(action, "choices") and action.choices
        ]
        commands = set(subactions[0].choices)
        assert commands == {"generate", "analyze", "plan", "train", "predict"}

    def test_unknown_benchmark_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["generate", "not_a_benchmark", "out.spice"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestGenerateAndAnalyze:
    def test_generate_uniform_then_analyze(self, tmp_path, capsys):
        netlist = tmp_path / "ibmpg1.spice"
        assert main(["generate", "ibmpg1", str(netlist), "--width", "6.0"]) == 0
        assert netlist.exists()
        output = capsys.readouterr().out
        assert "generated netlist" in output
        assert "nodes" in output

        assert main(["analyze", str(netlist), "--top", "3"]) == 0
        output = capsys.readouterr().out
        assert "worst-case IR drop (mV)" in output
        assert "3 worst nodes" in output

    def test_analyze_missing_file_errors(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "missing.spice")]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestPlan:
    def test_plan_converges_and_writes_netlist(self, tmp_path, capsys):
        out = tmp_path / "sized.spice"
        assert main(["plan", "ibmpg1", "--netlist-out", str(out)]) == 0
        assert out.exists()
        output = capsys.readouterr().out
        assert "conventional power planning" in output
        assert "converged" in output


class TestTrainPredict:
    def test_train_then_predict_roundtrip(self, tmp_path, capsys):
        model = tmp_path / "model.npz"
        assert (
            main(
                [
                    "train", "ibmpg1", str(model),
                    "--epochs", "20", "--hidden-layers", "2", "--hidden-width", "16",
                ]
            )
            == 0
        )
        assert model.exists()
        output = capsys.readouterr().out
        assert "training r2" in output

        assert main(["predict", "ibmpg1", str(model), "--gamma", "0.1", "--verify"]) == 0
        output = capsys.readouterr().out
        assert "predicted worst IR drop (mV)" in output
        assert "verified worst IR drop (mV)" in output

    def test_predict_missing_model_errors(self, tmp_path, capsys):
        assert main(["predict", "ibmpg1", str(tmp_path / "missing.npz")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_predict_bad_gamma_errors(self, tmp_path):
        model = tmp_path / "model.npz"
        model.write_bytes(b"placeholder")
        assert main(["predict", "ibmpg1", str(model), "--gamma", "0.9"]) == 2
