"""Tests for the sparse linear solvers."""

import numpy as np
import pytest

from repro.analysis import LinearSolverError, PowerGridSolver, SolverMethod, assemble


class TestSolverSelection:
    def test_auto_uses_direct_for_small_systems(self, tiny_grid):
        system = assemble(tiny_grid)
        result = PowerGridSolver(method=SolverMethod.AUTO).solve(system)
        assert result.method is SolverMethod.DIRECT

    def test_auto_switches_to_cg_above_limit(self, tiny_grid):
        system = assemble(tiny_grid)
        solver = PowerGridSolver(method=SolverMethod.AUTO, direct_size_limit=1)
        result = solver.solve(system)
        assert result.method is SolverMethod.CG

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(ValueError):
            PowerGridSolver(tolerance=0.0)

    def test_invalid_max_iterations_rejected(self):
        with pytest.raises(ValueError):
            PowerGridSolver(max_iterations=0)


class TestSolutionQuality:
    def test_direct_and_cg_agree(self, tiny_grid):
        system = assemble(tiny_grid)
        direct = PowerGridSolver(method=SolverMethod.DIRECT).solve(system)
        cg = PowerGridSolver(method=SolverMethod.CG, tolerance=1e-12).solve(system)
        np.testing.assert_allclose(direct.voltages, cg.voltages, rtol=1e-6, atol=1e-9)

    def test_residual_is_small(self, tiny_grid):
        system = assemble(tiny_grid)
        result = PowerGridSolver().solve(system)
        assert result.residual_norm < 1e-8

    def test_voltages_do_not_exceed_vdd(self, tiny_grid):
        """A passive resistive grid with only Vdd sources cannot overshoot Vdd."""
        system = assemble(tiny_grid)
        result = PowerGridSolver().solve(system)
        assert np.all(result.voltages <= tiny_grid.vdd + 1e-9)
        assert np.all(result.voltages > 0.0)

    def test_cg_reports_iterations(self, tiny_grid):
        system = assemble(tiny_grid)
        result = PowerGridSolver(method=SolverMethod.CG).solve(system)
        assert result.iterations > 0

    def test_cg_iteration_cap_raises(self, tiny_grid):
        system = assemble(tiny_grid)
        solver = PowerGridSolver(method=SolverMethod.CG, max_iterations=1, tolerance=1e-15)
        with pytest.raises(LinearSolverError):
            solver.solve(system)

    def test_solve_time_recorded(self, tiny_grid):
        system = assemble(tiny_grid)
        result = PowerGridSolver().solve(system)
        assert result.solve_time >= 0.0


class TestBackendRouting:
    """The legacy direct path routes through the shared solver backends."""

    def test_default_backend_resolved(self):
        from repro.analysis.solvers import resolve_solver_backend

        solver = PowerGridSolver()
        assert type(solver.backend) is type(resolve_solver_backend(None))

    def test_explicit_splu_backend(self, tiny_grid):
        from repro.analysis.solvers import SpluBackend

        solver = PowerGridSolver(method=SolverMethod.DIRECT, solver="splu")
        assert isinstance(solver.backend, SpluBackend)
        result = solver.solve(assemble(tiny_grid))
        assert result.residual_norm < 1e-8

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            PowerGridSolver(solver="not-a-backend")

    def test_error_type_shared_with_solvers_module(self):
        from repro.analysis import solver as legacy
        from repro.analysis import solvers as canonical

        assert legacy.LinearSolverError is canonical.LinearSolverError

    def test_direct_and_engine_backends_agree(self, tiny_grid):
        from repro.analysis import BatchedAnalysisEngine

        system = assemble(tiny_grid)
        direct = PowerGridSolver(method=SolverMethod.DIRECT).solve(system)
        engine_voltages = BatchedAnalysisEngine().solve_voltages(tiny_grid.compile())
        # The two assembly paths reduce the grid differently (node count
        # and ordering), but they solve the same physical design: the
        # worst node voltage must agree.
        np.testing.assert_allclose(
            direct.voltages.min(), engine_voltages.min(), rtol=1e-9
        )
