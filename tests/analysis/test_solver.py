"""Tests for the sparse linear solvers."""

import numpy as np
import pytest

from repro.analysis import LinearSolverError, PowerGridSolver, SolverMethod, assemble


class TestSolverSelection:
    def test_auto_uses_direct_for_small_systems(self, tiny_grid):
        system = assemble(tiny_grid)
        result = PowerGridSolver(method=SolverMethod.AUTO).solve(system)
        assert result.method is SolverMethod.DIRECT

    def test_auto_switches_to_cg_above_limit(self, tiny_grid):
        system = assemble(tiny_grid)
        solver = PowerGridSolver(method=SolverMethod.AUTO, direct_size_limit=1)
        result = solver.solve(system)
        assert result.method is SolverMethod.CG

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(ValueError):
            PowerGridSolver(tolerance=0.0)

    def test_invalid_max_iterations_rejected(self):
        with pytest.raises(ValueError):
            PowerGridSolver(max_iterations=0)


class TestSolutionQuality:
    def test_direct_and_cg_agree(self, tiny_grid):
        system = assemble(tiny_grid)
        direct = PowerGridSolver(method=SolverMethod.DIRECT).solve(system)
        cg = PowerGridSolver(method=SolverMethod.CG, tolerance=1e-12).solve(system)
        np.testing.assert_allclose(direct.voltages, cg.voltages, rtol=1e-6, atol=1e-9)

    def test_residual_is_small(self, tiny_grid):
        system = assemble(tiny_grid)
        result = PowerGridSolver().solve(system)
        assert result.residual_norm < 1e-8

    def test_voltages_do_not_exceed_vdd(self, tiny_grid):
        """A passive resistive grid with only Vdd sources cannot overshoot Vdd."""
        system = assemble(tiny_grid)
        result = PowerGridSolver().solve(system)
        assert np.all(result.voltages <= tiny_grid.vdd + 1e-9)
        assert np.all(result.voltages > 0.0)

    def test_cg_reports_iterations(self, tiny_grid):
        system = assemble(tiny_grid)
        result = PowerGridSolver(method=SolverMethod.CG).solve(system)
        assert result.iterations > 0

    def test_cg_iteration_cap_raises(self, tiny_grid):
        system = assemble(tiny_grid)
        solver = PowerGridSolver(method=SolverMethod.CG, max_iterations=1, tolerance=1e-15)
        with pytest.raises(LinearSolverError):
            solver.solve(system)

    def test_solve_time_recorded(self, tiny_grid):
        system = assemble(tiny_grid)
        result = PowerGridSolver().solve(system)
        assert result.solve_time >= 0.0
