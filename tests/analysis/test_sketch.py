"""Property-style determinism suite for the quantile sketch sink.

The sketch's contract is stronger than the reservoir's: because its state
is a pure integer bucket-counter array, the merged result must be
**identical** — not statistically equivalent — to the sequential sweep
for every shard count (1 / even / 3 / non-divisor), every chunk size
(including 1 and non-divisors) and every association of the merges, and
every reported quantile must sit within the documented relative error of
the dense reference quantile.
"""

import numpy as np
import pytest

from repro.analysis import (
    BatchedAnalysisEngine,
    MergeableSink,
    ProcessShardedExecutor,
    QuantileSketchSink,
)
from repro.grid import (
    PerturbationKind,
    PerturbationSpec,
    SyntheticIBMSuite,
    perturbed_load_matrix,
)

QUANTILES = (0.1, 0.5, 0.9, 0.99)
SHARD_COUNTS = [1, 2, 3, 5]
"""Single shard, even split, and two non-divisors of the 37-scenario sweep."""
CHUNK_SIZES = [1, 7, 37, 100]


class _ScalarGrid:
    """Minimal stand-in for a compiled grid in scalar-level sink tests."""

    vdd = 1.0
    num_nodes = 1


def scalar_stream(n=500, seed=7):
    """A positive scalar stream spanning several orders of magnitude."""
    rng = np.random.default_rng(seed)
    return 10.0 ** rng.uniform(-4, 0, size=n)


def fold_scalars(sink, values, chunk_size):
    sink.bind(_ScalarGrid(), len(values))
    for offset in range(0, len(values), chunk_size):
        chunk = values[offset : offset + chunk_size]
        sink.consume_drop_rows(chunk.reshape(-1, 1), offset)
    return sink


def sharded_sketch(values, bounds, chunk_size=16):
    """Merge per-shard sketches (ascending) into one full-sweep sketch."""
    merged = QuantileSketchSink(QUANTILES)
    merged.bind(_ScalarGrid(), len(values))
    for begin, end in zip(bounds[:-1], bounds[1:]):
        shard = fold_scalars(QuantileSketchSink(QUANTILES), values[begin:end], chunk_size)
        merged.merge(shard.snapshot())
    return merged


class TestSketchDeterminism:
    @pytest.fixture(scope="class")
    def values(self):
        return scalar_stream()

    @pytest.fixture(scope="class")
    def sequential(self, values):
        return fold_scalars(QuantileSketchSink(QUANTILES), values, 64).result()

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_chunking_invariant(self, values, sequential, chunk_size):
        chunked = fold_scalars(QuantileSketchSink(QUANTILES), values, chunk_size).result()
        assert np.array_equal(chunked.values, sequential.values)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_shard_count_invariant(self, values, sequential, shards):
        n = len(values)
        bounds = [n * i // shards for i in range(shards + 1)]
        merged = sharded_sketch(values, bounds).result()
        assert np.array_equal(merged.values, sequential.values)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_shard_chunk_cross_product(self, values, sequential, shards):
        """Shard-internal chunking must not leak into the merged result."""
        n = len(values)
        bounds = [n * i // shards for i in range(shards + 1)]
        for chunk_size in (1, 13):
            merged = sharded_sketch(values, bounds, chunk_size=chunk_size).result()
            assert np.array_equal(merged.values, sequential.values)

    def test_merge_associativity(self, values, sequential):
        """((a+b)+c) and (a+(b+c)) produce the identical sketch."""
        n = len(values)
        thirds = [0, n // 3, 2 * n // 3, n]
        shards = [
            fold_scalars(QuantileSketchSink(QUANTILES), values[b:e], 16)
            for b, e in zip(thirds[:-1], thirds[1:])
        ]
        left = QuantileSketchSink(QUANTILES)
        left.bind(_ScalarGrid(), n)
        for shard in shards:
            left.merge(shard.snapshot())
        # Right association: pre-merge b+c into a fresh sink bound to their
        # combined span, then fold that snapshot after a.
        bc = QuantileSketchSink(QUANTILES)
        bc.bind(_ScalarGrid(), n - thirds[1])
        bc.merge(shards[1].snapshot())
        bc.merge(shards[2].snapshot())
        right = QuantileSketchSink(QUANTILES)
        right.bind(_ScalarGrid(), n)
        right.merge(shards[0].snapshot())
        right.merge(bc.snapshot())
        assert np.array_equal(left.result().values, right.result().values)
        assert np.array_equal(left.result().values, sequential.values)

    def test_error_bound_against_dense_reference(self, values, sequential):
        """Every estimate within relative_error of the dense rank quantile."""
        reference = np.quantile(values, QUANTILES, method="lower")
        relative = np.abs(sequential.values - reference) / reference
        assert (relative <= 0.01).all()

    @pytest.mark.parametrize("alpha", [0.05, 0.01, 0.001])
    def test_error_bound_scales_with_alpha(self, values, alpha):
        sink = fold_scalars(
            QuantileSketchSink(QUANTILES, relative_error=alpha), values, 64
        )
        reference = np.quantile(values, QUANTILES, method="lower")
        relative = np.abs(sink.result().values - reference) / reference
        assert (relative <= alpha).all()

    def test_low_bucket_pools_tiny_values(self):
        values = np.array([1e-12, 0.5, 0.5, 0.5])
        sink = fold_scalars(QuantileSketchSink((0.1, 0.99)), values, 2)
        result = sink.result()
        # rank floor(0.1 * 3) = 0 lands on the pooled sub-min_value value;
        # rank floor(0.99 * 3) = 2 lands on 0.5.
        assert result.value(0.1) == 0.0
        assert abs(result.value(0.99) - 0.5) / 0.5 <= 0.01


class TestSketchValidation:
    def test_is_mergeable(self):
        assert isinstance(QuantileSketchSink([0.5]), MergeableSink)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"relative_error": 0.0},
            {"relative_error": 1.0},
            {"min_value": 0.0},
            {"max_buckets": 0},
        ],
    )
    def test_rejects_bad_configuration(self, kwargs):
        with pytest.raises(ValueError):
            QuantileSketchSink([0.5], **kwargs)

    def test_rejects_non_finite_scalars(self):
        sink = QuantileSketchSink([0.5])
        sink.bind(_ScalarGrid(), 2)
        with pytest.raises(ValueError, match="finite"):
            sink.consume_drop_rows(np.array([[1.0], [np.nan]]), 0)

    def test_rejects_span_overflow(self):
        sink = QuantileSketchSink([0.5], max_buckets=4)
        sink.bind(_ScalarGrid(), 2)
        with pytest.raises(ValueError, match="max_buckets"):
            sink.consume_drop_rows(np.array([[1e-6], [1.0]]), 0)

    def test_rejects_mismatched_merge(self):
        a = QuantileSketchSink([0.5], relative_error=0.01)
        b = QuantileSketchSink([0.5], relative_error=0.02)
        a.bind(_ScalarGrid(), 2)
        b.bind(_ScalarGrid(), 1)
        b.consume_drop_rows(np.array([[0.5]]), 0)
        with pytest.raises(ValueError, match="relative_error"):
            a.merge(b.snapshot())

    def test_empty_sketch_reports_nan(self):
        sink = QuantileSketchSink([0.5])
        sink.bind(_ScalarGrid(), 4)
        assert np.isnan(sink.result().values).all()


class TestSketchOnRealSweeps:
    """The sink riding a real engine sweep, serial vs process-sharded."""

    @pytest.fixture(scope="class")
    def grid(self):
        return SyntheticIBMSuite().load("ibmpg1").build_uniform_grid(5.0)

    @pytest.fixture(scope="class")
    def load_sweep(self, grid):
        spec = PerturbationSpec(gamma=0.25, kind=PerturbationKind.CURRENT_WORKLOADS, seed=5)
        return perturbed_load_matrix(grid, spec, 37)

    @pytest.fixture(scope="class")
    def sequential_values(self, grid, load_sweep):
        sink = QuantileSketchSink(QUANTILES)
        BatchedAnalysisEngine().analyze_batch(
            grid, load_sweep, chunk_size=7, sinks=[sink], executor="serial"
        )
        return sink.result().values

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_engine_chunking_invariant(self, grid, load_sweep, sequential_values, chunk_size):
        sink = QuantileSketchSink(QUANTILES)
        BatchedAnalysisEngine().analyze_batch(
            grid, load_sweep, chunk_size=chunk_size, sinks=[sink], executor="serial"
        )
        assert np.array_equal(sink.result().values, sequential_values)

    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_process_sharded_identical(self, grid, load_sweep, sequential_values, shards):
        sink = QuantileSketchSink(QUANTILES)
        BatchedAnalysisEngine().analyze_batch(
            grid,
            load_sweep,
            chunk_size=7,
            sinks=[sink],
            executor=ProcessShardedExecutor(shards=shards),
        )
        assert np.array_equal(sink.result().values, sequential_values)

    def test_tracks_dense_reference(self, grid, load_sweep, sequential_values):
        dense = BatchedAnalysisEngine().analyze_batch(grid, load_sweep)
        worst = dense.ir_drop.max(axis=0)
        reference = np.quantile(worst, QUANTILES, method="lower")
        relative = np.abs(sequential_values - reference) / reference
        assert (relative <= 0.01).all()
