"""Tests for the cross-host sweep executor and its coordinator.

Three layers: :class:`SweepQueue` unit tests (leasing, expiry-driven work
stealing, retry caps, outcome collection) with an injected clock and no
HTTP; coordinator + in-process worker integration over real HTTP on a
loopback socket (bitwise equivalence against the sequential sweep at
several worker counts, lease-expiry recovery from a worker that leases
and vanishes); and executor resolution (``make_executor("remote")``,
``REPRO_TEST_EXECUTOR=remote``, the lenient-fallback warning naming the
sink and the entry point).
"""

import pickle
import threading

import numpy as np
import pytest

from repro.analysis import (
    BatchedAnalysisEngine,
    ExecutorIncompatibility,
    P2QuantileSink,
    QuantileSketchSink,
    RemoteExecutor,
    SweepQueue,
    TopKScenarioSink,
    make_coordinator,
    make_executor,
    run_worker,
)
from repro.analysis.executors import EXECUTOR_ENV, EXECUTOR_NAMES
from repro.analysis.remote import (
    COORDINATOR_ENV,
    REMOTE_WORKERS_ENV,
    _request,
    shutdown_warm_fleets,
)
from repro.grid import (
    PerturbationKind,
    PerturbationSpec,
    SyntheticIBMSuite,
    perturbed_load_matrix,
)


# ----------------------------------------------------------------------
# SweepQueue unit tests (no HTTP, fake clock)
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def queue(clock):
    return SweepQueue(retention=100.0, clock=clock)


RANGES = [(0, 10), (10, 20), (20, 25)]


class TestSweepQueue:
    def test_leases_shards_in_order_then_idles(self, queue):
        sweep = queue.submit(b"payload", RANGES)
        leased = [queue.lease() for _ in range(3)]
        assert [(t["begin"], t["end"]) for t in leased] == RANGES
        assert all(t["sweep"] == sweep for t in leased)
        assert queue.lease() is None  # everything out on lease

    def test_completion_collects_and_drops_the_sweep(self, queue):
        sweep = queue.submit(b"payload", RANGES)
        for _ in range(3):
            task = queue.lease()
            queue.complete(sweep, task["task"], ("result", task["task"]))
        outcome = queue.outcome(sweep)
        assert outcome["done"] and outcome["error"] is None
        assert set(outcome["results"]) == {0, 1, 2}
        with pytest.raises(KeyError):
            queue.outcome(sweep)  # collected outcomes are dropped

    def test_expired_lease_is_stolen_by_the_next_worker(self, queue, clock):
        sweep = queue.submit(b"payload", [(0, 5)], lease_timeout=10.0)
        first = queue.lease()
        assert queue.lease() is None  # shard is out with the dead worker
        clock.advance(11.0)
        stolen = queue.lease()  # expiry requeues, next poll steals it
        assert stolen is not None and stolen["task"] == first["task"]
        queue.complete(sweep, stolen["task"], ("ok",))
        assert queue.outcome(sweep)["done"]

    def test_attempts_cap_fails_the_sweep_with_the_reason(self, queue, clock):
        sweep = queue.submit(b"payload", [(0, 5)], lease_timeout=1.0, max_attempts=2)
        for _ in range(2):
            assert queue.lease() is not None
            clock.advance(2.0)
        outcome = queue.outcome(sweep)
        assert outcome["done"] and "after 2 attempts" in outcome["error"]

    def test_worker_error_requeues_then_fails(self, queue):
        sweep = queue.submit(b"payload", [(0, 5)], max_attempts=2)
        task = queue.lease()
        queue.fail(sweep, task["task"], "boom")
        retry = queue.lease()  # requeued after the first failure
        assert retry["task"] == task["task"]
        queue.fail(sweep, retry["task"], "boom")
        outcome = queue.outcome(sweep)
        assert outcome["done"] and "boom" in outcome["error"]

    def test_late_duplicate_completion_is_harmless(self, queue, clock):
        sweep = queue.submit(b"payload", [(0, 5)], lease_timeout=1.0)
        task = queue.lease()
        clock.advance(2.0)
        stolen = queue.lease()
        queue.complete(sweep, stolen["task"], ("fresh",))
        queue.complete(sweep, task["task"], ("fresh",))  # presumed-dead worker reports late
        assert queue.outcome(sweep)["results"][0] == ("fresh",)

    def test_uncollected_sweeps_are_dropped_after_retention(self, queue, clock):
        sweep = queue.submit(b"payload", [(0, 5)])
        task = queue.lease()
        queue.complete(sweep, task["task"], ("ok",))
        clock.advance(101.0)
        queue.lease()  # any queue activity runs the expiry scan
        with pytest.raises(KeyError):
            queue.outcome(sweep)

    def test_submit_validation(self, queue):
        with pytest.raises(ValueError):
            queue.submit(b"p", [])
        with pytest.raises(ValueError):
            queue.submit(b"p", RANGES, lease_timeout=0.0)
        with pytest.raises(ValueError):
            queue.submit(b"p", RANGES, max_attempts=0)


# ----------------------------------------------------------------------
# Coordinator + worker integration over loopback HTTP
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def ibmpg1_grid():
    return SyntheticIBMSuite().load("ibmpg1").build_uniform_grid(5.0)


@pytest.fixture(scope="module")
def load_sweep(ibmpg1_grid):
    spec = PerturbationSpec(gamma=0.2, kind=PerturbationKind.CURRENT_WORKLOADS, seed=11)
    return perturbed_load_matrix(ibmpg1_grid, spec, 37)


@pytest.fixture()
def coordinator():
    """A live coordinator on a loopback socket, torn down after the test."""
    server = make_coordinator("127.0.0.1", 0)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.02}, daemon=True
    )
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(timeout=5.0)
        server.server_close()


def start_workers(url, count, poll_interval=0.01):
    """In-process worker threads (same loop the CLI workers run)."""
    stop = threading.Event()
    threads = [
        threading.Thread(
            target=run_worker,
            args=(url,),
            kwargs={"poll_interval": poll_interval, "stop": stop},
            daemon=True,
        )
        for _ in range(count)
    ]
    for thread in threads:
        thread.start()
    return stop, threads


def run_remote_sweep(grid, load_sweep, executor, sinks):
    engine = BatchedAnalysisEngine()
    batch = engine.analyze_batch(grid, load_sweep, chunk_size=7, sinks=sinks, executor=executor)
    return batch, engine


class TestRemoteSweeps:
    @pytest.fixture(scope="class")
    def sequential(self, ibmpg1_grid, load_sweep):
        sinks = (QuantileSketchSink((0.5, 0.9)), TopKScenarioSink(4))
        batch, _ = run_remote_sweep(ibmpg1_grid, load_sweep, "serial", sinks)
        return batch, sinks

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_bitwise_identical_at_every_worker_count(
        self, ibmpg1_grid, load_sweep, coordinator, sequential, workers
    ):
        stop, threads = start_workers(coordinator.url, workers)
        try:
            sinks = (QuantileSketchSink((0.5, 0.9)), TopKScenarioSink(4))
            executor = RemoteExecutor(
                workers=workers, coordinator=coordinator.url, timeout=120.0
            )
            batch, engine = run_remote_sweep(ibmpg1_grid, load_sweep, executor, sinks)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
        seq_batch, seq_sinks = sequential
        assert np.array_equal(
            batch.reductions.worst_ir_drop, seq_batch.reductions.worst_ir_drop
        )
        assert np.array_equal(
            batch.reductions.worst_node_index, seq_batch.reductions.worst_node_index
        )
        assert np.array_equal(sinks[0].result().values, seq_sinks[0].result().values)
        assert np.array_equal(
            sinks[1].result().scenario_index, seq_sinks[1].result().scenario_index
        )
        # The parent warmed its own cache: one factorization, like processes.
        assert engine.cache_info().factorizations == 1

    def test_lease_expiry_recovers_from_a_vanished_worker(
        self, ibmpg1_grid, load_sweep, coordinator, sequential
    ):
        """A worker that leases shards and dies must not hang the sweep."""
        url = coordinator.url
        # The saboteur: concurrently lease two shards and never report
        # back, simulating a worker that died mid-solve.
        stolen = []

        def saboteur():
            import time

            deadline = time.monotonic() + 30.0
            while len(stolen) < 2 and time.monotonic() < deadline:
                status, body = _request(f"{url}/task")
                if status == 200:
                    stolen.append(pickle.loads(body))
                else:
                    time.sleep(0.005)

        saboteur_thread = threading.Thread(target=saboteur, daemon=True)
        saboteur_thread.start()
        stop, threads = start_workers(url, 1)
        try:
            sinks = (QuantileSketchSink((0.5, 0.9)),)
            executor = RemoteExecutor(
                workers=2,
                coordinator=url,
                lease_timeout=0.5,
                timeout=120.0,
            )
            batch, _ = run_remote_sweep(ibmpg1_grid, load_sweep, executor, sinks)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
            saboteur_thread.join(timeout=10.0)
        assert len(stolen) == 2  # the saboteur really held two leases
        seq_batch, seq_sinks = sequential
        assert np.array_equal(
            batch.reductions.worst_ir_drop, seq_batch.reductions.worst_ir_drop
        )
        assert np.array_equal(sinks[0].result().values, seq_sinks[0].result().values)

    def test_poison_payload_fails_the_sweep_instead_of_hanging(self, coordinator):
        stop, threads = start_workers(coordinator.url, 1)
        try:
            body = pickle.dumps(
                {
                    "payload": b"not a pickle",
                    "ranges": [(0, 5)],
                    "lease_timeout": 30.0,
                    "max_attempts": 2,
                }
            )
            status, response = _request(f"{coordinator.url}/sweeps", data=body)
            assert status == 200
            sweep_id = pickle.loads(response)["sweep"]
            deadline = 30.0
            import time

            start = time.monotonic()
            while time.monotonic() - start < deadline:
                status, response = _request(f"{coordinator.url}/outcome/{sweep_id}")
                outcome = pickle.loads(response)
                if outcome["done"]:
                    break
                time.sleep(0.05)
            assert outcome["done"]
            assert "unloadable payload" in outcome["error"]
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)

    def test_unreachable_coordinator_fails_loudly(self, ibmpg1_grid, load_sweep):
        executor = RemoteExecutor(workers=2, coordinator="http://127.0.0.1:9")
        with pytest.raises(RuntimeError, match="cannot reach the remote coordinator"):
            run_remote_sweep(ibmpg1_grid, load_sweep, executor, ())

    def test_p2_rejected_before_anything_runs(self, ibmpg1_grid, load_sweep):
        executor = RemoteExecutor(workers=2, coordinator="http://127.0.0.1:9")
        # Incompatibility precedes any coordinator traffic: the dead URL
        # is never contacted.
        with pytest.raises(ExecutorIncompatibility, match="remote shards"):
            run_remote_sweep(ibmpg1_grid, load_sweep, executor, (P2QuantileSink([0.5]),))

    def test_embedded_mode_needs_no_coordinator(
        self, ibmpg1_grid, load_sweep, sequential, monkeypatch
    ):
        monkeypatch.delenv(COORDINATOR_ENV, raising=False)
        sinks = (QuantileSketchSink((0.5, 0.9)),)
        executor = RemoteExecutor(workers=2, timeout=120.0)
        assert executor.coordinator is None
        batch, _ = run_remote_sweep(ibmpg1_grid, load_sweep, executor, sinks)
        seq_batch, seq_sinks = sequential
        assert np.array_equal(
            batch.reductions.worst_ir_drop, seq_batch.reductions.worst_ir_drop
        )
        assert np.array_equal(sinks[0].result().values, seq_sinks[0].result().values)


# ----------------------------------------------------------------------
# Resolution and configuration
# ----------------------------------------------------------------------
class TestResolution:
    def test_remote_is_a_registered_executor_name(self):
        assert "remote" in EXECUTOR_NAMES
        executor = make_executor("remote", 3)
        assert isinstance(executor, RemoteExecutor)
        assert executor.parallelism == 3

    def test_coordinator_env_is_picked_up(self, monkeypatch):
        monkeypatch.setenv(COORDINATOR_ENV, "http://example.invalid:1234/")
        executor = RemoteExecutor(workers=2)
        assert executor.coordinator == "http://example.invalid:1234"

    def test_workers_env_sizes_the_hint(self, monkeypatch):
        monkeypatch.setenv(REMOTE_WORKERS_ENV, "5")
        assert RemoteExecutor().workers == 5
        monkeypatch.setenv(REMOTE_WORKERS_ENV, "two")
        with pytest.raises(ValueError, match=REMOTE_WORKERS_ENV):
            RemoteExecutor()

    def test_executor_env_selects_remote(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "remote")
        monkeypatch.delenv(COORDINATOR_ENV, raising=False)
        engine = BatchedAnalysisEngine()
        assert isinstance(engine._default_executor, RemoteExecutor)
        assert engine._default_executor_lenient

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"oversubscribe": 0},
            {"lease_timeout": 0.0},
            {"max_attempts": 0},
            {"timeout": 0.0},
            {"start_method": "nonsense"},
        ],
    )
    def test_rejects_bad_configuration(self, kwargs):
        with pytest.raises(ValueError):
            RemoteExecutor(**kwargs)

    def test_lenient_fallback_warns_with_sink_and_entry_point(
        self, ibmpg1_grid, load_sweep, monkeypatch
    ):
        """The env-default downgrade names the offender and the entry point."""
        monkeypatch.setenv(EXECUTOR_ENV, "remote")
        monkeypatch.delenv(COORDINATOR_ENV, raising=False)
        engine = BatchedAnalysisEngine()
        with pytest.warns(RuntimeWarning, match=r"analyze_batch:.*P2QuantileSink"):
            engine.analyze_batch(
                ibmpg1_grid, load_sweep, chunk_size=7, sinks=[P2QuantileSink([0.5])]
            )

    def test_lenient_fallback_warns_for_processes_too(
        self, ibmpg1_grid, load_sweep, monkeypatch
    ):
        monkeypatch.setenv(EXECUTOR_ENV, "processes")
        engine = BatchedAnalysisEngine()
        with pytest.warns(RuntimeWarning, match=r"analyze_batch:.*P2QuantileSink"):
            engine.analyze_batch(
                ibmpg1_grid, load_sweep, chunk_size=7, sinks=[P2QuantileSink([0.5])]
            )

    def test_explicit_executor_still_raises_without_warning(
        self, ibmpg1_grid, load_sweep
    ):
        engine = BatchedAnalysisEngine()
        with pytest.raises(ExecutorIncompatibility):
            engine.analyze_batch(
                ibmpg1_grid,
                load_sweep,
                chunk_size=7,
                sinks=[P2QuantileSink([0.5])],
                executor=RemoteExecutor(workers=2),
            )


# ----------------------------------------------------------------------
# Warm embedded fleet
# ----------------------------------------------------------------------
class TestWarmEmbeddedFleet:
    @pytest.fixture(autouse=True)
    def cold_fleet(self, monkeypatch):
        """Each test starts (and ends) with no warm fleet alive."""
        monkeypatch.delenv(COORDINATOR_ENV, raising=False)
        shutdown_warm_fleets()
        yield
        shutdown_warm_fleets()

    def test_workers_reused_across_sweeps(self, ibmpg1_grid, load_sweep):
        executor = RemoteExecutor(workers=2, oversubscribe=2, timeout=120.0)
        sinks = (QuantileSketchSink((0.5, 0.9)),)
        first, _ = run_remote_sweep(ibmpg1_grid, load_sweep, executor, sinks)
        assert executor.last_stats["workers_reused"] == 0  # cold start
        assert executor.last_stats["payload_bytes_shared"] > 0
        second, _ = run_remote_sweep(
            ibmpg1_grid, load_sweep, executor, (QuantileSketchSink((0.5, 0.9)),)
        )
        assert executor.last_stats["workers_reused"] == 2
        assert np.array_equal(
            first.reductions.worst_ir_drop, second.reductions.worst_ir_drop
        )

    def test_fleet_shared_between_executor_instances(self, ibmpg1_grid, load_sweep):
        sinks = (TopKScenarioSink(4),)
        run_remote_sweep(
            ibmpg1_grid, load_sweep, RemoteExecutor(workers=2, timeout=120.0), sinks
        )
        executor = RemoteExecutor(workers=2, timeout=120.0)
        run_remote_sweep(ibmpg1_grid, load_sweep, executor, (TopKScenarioSink(4),))
        assert executor.last_stats["workers_reused"] == 2

    def test_shutdown_is_idempotent_and_cools_the_fleet(self, ibmpg1_grid, load_sweep):
        executor = RemoteExecutor(workers=2, timeout=120.0)
        run_remote_sweep(ibmpg1_grid, load_sweep, executor, (TopKScenarioSink(4),))
        shutdown_warm_fleets()
        shutdown_warm_fleets()  # second call: nothing left, no error
        run_remote_sweep(ibmpg1_grid, load_sweep, executor, (TopKScenarioSink(4),))
        assert executor.last_stats["workers_reused"] == 0  # cold again

    def test_embedded_matches_serial_with_threads_per_shard(
        self, ibmpg1_grid, load_sweep
    ):
        sinks = (QuantileSketchSink((0.5, 0.9)), TopKScenarioSink(4))
        serial, _ = run_remote_sweep(ibmpg1_grid, load_sweep, "serial", sinks)
        executor = RemoteExecutor(
            workers=2, threads_per_shard=2, oversubscribe=2, timeout=120.0
        )
        hybrid_sinks = (QuantileSketchSink((0.5, 0.9)), TopKScenarioSink(4))
        remote, _ = run_remote_sweep(ibmpg1_grid, load_sweep, executor, hybrid_sinks)
        assert np.array_equal(
            serial.reductions.worst_ir_drop, remote.reductions.worst_ir_drop
        )
        assert np.array_equal(sinks[0].result().values, hybrid_sinks[0].result().values)
        assert np.array_equal(
            sinks[1].result().scenario_index, hybrid_sinks[1].result().scenario_index
        )

    def test_threads_per_shard_config(self):
        assert RemoteExecutor(workers=3, threads_per_shard=2).parallelism == 6
        with pytest.raises(ValueError, match="threads_per_shard"):
            RemoteExecutor(workers=2, threads_per_shard=0)
