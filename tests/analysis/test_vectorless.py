"""Tests for the early vectorless bound analysis."""

import pytest

from repro.analysis import VectorlessAnalyzer, VectorlessBudget, uniform_budget


class TestBudget:
    def test_uniform_budget_scales_loads(self, tiny_grid):
        budget = uniform_budget(tiny_grid, headroom=1.5)
        for load in tiny_grid.iter_loads():
            assert budget.per_load_max[load.name] == pytest.approx(1.5 * load.current)

    def test_uniform_budget_rejects_headroom_below_one(self, tiny_grid):
        with pytest.raises(ValueError):
            uniform_budget(tiny_grid, headroom=0.5)

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            VectorlessBudget(per_load_max={"I1": -1.0})
        with pytest.raises(ValueError):
            VectorlessBudget(per_load_max={}, global_utilisation=0.0)


class TestVectorlessAnalysis:
    def test_bound_dominates_nominal(self, tiny_grid):
        budget = uniform_budget(tiny_grid, headroom=1.5)
        result = VectorlessAnalyzer().analyze(tiny_grid, budget)
        assert result.worst_case_bound >= result.nominal_result.worst_ir_drop
        assert result.pessimism >= 1.0

    def test_unit_headroom_gives_unit_pessimism(self, tiny_grid):
        budget = uniform_budget(tiny_grid, headroom=1.0)
        result = VectorlessAnalyzer().analyze(tiny_grid, budget)
        assert result.pessimism == pytest.approx(1.0, rel=1e-6)

    def test_global_utilisation_caps_the_bound(self, tiny_grid):
        loose = VectorlessAnalyzer().analyze(tiny_grid, uniform_budget(tiny_grid, headroom=2.0))
        capped = VectorlessAnalyzer().analyze(
            tiny_grid, uniform_budget(tiny_grid, headroom=2.0, utilisation=0.5)
        )
        assert capped.worst_case_bound < loose.worst_case_bound

    def test_bound_scales_linearly_with_headroom(self, tiny_grid):
        result = VectorlessAnalyzer().analyze(tiny_grid, uniform_budget(tiny_grid, headroom=2.0))
        assert result.pessimism == pytest.approx(2.0, rel=1e-6)
