"""Tests for MNA assembly on hand-solvable circuits."""

import numpy as np
import pytest

from repro.analysis import PowerGridSolver, assemble
from repro.grid import CurrentSource, GridNode, PowerGridNetwork, Resistor, VoltageSource


def voltage_divider(load_current=0.1, r1=1.0, r2=2.0, vdd=1.0):
    """Pad -- R1 -- middle -- R2 -- sink, load at sink."""
    network = PowerGridNetwork(name="divider", vdd=vdd)
    for name in ("pad", "middle", "sink"):
        network.add_node(GridNode(name=name, x=0.0, y=0.0))
    network.add_resistor(Resistor(name="R1", node_a="pad", node_b="middle", resistance=r1))
    network.add_resistor(Resistor(name="R2", node_a="middle", node_b="sink", resistance=r2))
    network.add_voltage_source(VoltageSource(name="V1", node="pad", voltage=vdd))
    network.add_current_source(CurrentSource(name="I1", node="sink", current=load_current))
    return network


class TestAssembly:
    def test_unknowns_exclude_pad_nodes(self):
        system = assemble(voltage_divider())
        assert set(system.unknown_nodes) == {"middle", "sink"}
        assert system.fixed_voltages == {"pad": 1.0}

    def test_matrix_is_symmetric(self, tiny_grid):
        system = assemble(tiny_grid)
        difference = (system.matrix - system.matrix.T).toarray()
        np.testing.assert_allclose(difference, 0.0, atol=1e-12)

    def test_matrix_diagonal_positive(self, tiny_grid):
        system = assemble(tiny_grid)
        assert np.all(system.matrix.diagonal() > 0)

    def test_rhs_contains_loads_and_pad_contributions(self):
        system = assemble(voltage_divider(load_current=0.1, r1=1.0, vdd=1.0))
        index = {name: i for i, name in enumerate(system.unknown_nodes)}
        # middle node: pad contribution = G1 * vdd = 1.0; sink: -load
        assert system.rhs[index["middle"]] == pytest.approx(1.0)
        assert system.rhs[index["sink"]] == pytest.approx(-0.1)

    def test_network_without_pads_raises(self):
        network = PowerGridNetwork()
        network.add_node(GridNode(name="a", x=0.0, y=0.0))
        with pytest.raises(ValueError):
            assemble(network)

    def test_full_solution_merges_fixed_and_unknown(self):
        system = assemble(voltage_divider())
        solution = system.full_solution(np.asarray([0.9, 0.7]))
        assert solution["pad"] == pytest.approx(1.0)
        assert set(solution) == {"pad", "middle", "sink"}

    def test_full_solution_shape_check(self):
        system = assemble(voltage_divider())
        with pytest.raises(ValueError):
            system.full_solution(np.zeros(5))

    def test_ground_resistor_stamped_on_diagonal(self):
        network = voltage_divider()
        network.add_resistor(Resistor(name="Rg", node_a="sink", node_b="0", resistance=10.0))
        system = assemble(network)
        assert system.ground_connected
        index = {name: i for i, name in enumerate(system.unknown_nodes)}
        sink = index["sink"]
        # diagonal gains 1/10
        plain = assemble(voltage_divider())
        assert system.matrix[sink, sink] == pytest.approx(
            plain.matrix[sink, sink] + 0.1
        )


class TestAnalyticSolutions:
    def test_voltage_divider_solution(self):
        """Series chain: middle = vdd - I*R1, sink = vdd - I*(R1+R2)."""
        network = voltage_divider(load_current=0.1, r1=1.0, r2=2.0, vdd=1.0)
        system = assemble(network)
        result = PowerGridSolver().solve(system)
        solution = system.full_solution(result.voltages)
        assert solution["middle"] == pytest.approx(1.0 - 0.1 * 1.0)
        assert solution["sink"] == pytest.approx(1.0 - 0.1 * 3.0)

    def test_two_pads_share_load_symmetrically(self):
        """A load fed by two equal resistors from two pads sits at vdd - I*R/2."""
        network = PowerGridNetwork(name="two_pads", vdd=1.0)
        for name in ("p1", "p2", "mid"):
            network.add_node(GridNode(name=name, x=0.0, y=0.0))
        network.add_resistor(Resistor(name="R1", node_a="p1", node_b="mid", resistance=2.0))
        network.add_resistor(Resistor(name="R2", node_a="p2", node_b="mid", resistance=2.0))
        network.add_voltage_source(VoltageSource(name="V1", node="p1", voltage=1.0))
        network.add_voltage_source(VoltageSource(name="V2", node="p2", voltage=1.0))
        network.add_current_source(CurrentSource(name="I1", node="mid", current=0.2))
        system = assemble(network)
        result = PowerGridSolver().solve(system)
        solution = system.full_solution(result.voltages)
        assert solution["mid"] == pytest.approx(1.0 - 0.2 * 1.0)

    def test_superposition_of_loads(self):
        """Node voltages are linear in the load currents."""
        base = voltage_divider(load_current=0.05)
        double = voltage_divider(load_current=0.10)
        solver = PowerGridSolver()
        system_base = assemble(base)
        system_double = assemble(double)
        v_base = system_base.full_solution(solver.solve(system_base).voltages)
        v_double = system_double.full_solution(solver.solve(system_double).voltages)
        drop_base = 1.0 - v_base["sink"]
        drop_double = 1.0 - v_double["sink"]
        assert drop_double == pytest.approx(2.0 * drop_base)
