"""Tests for the streamed scenario-sink subsystem and mega-sweeps.

Exact sinks (histogram, exceedance, top-k) must match a dense single-shot
reference **bitwise** for every chunk size — including ``chunk_size=1`` and
chunk sizes larger than the sweep.  Quantile sinks must be exact while the
stream fits (reservoir) or within tolerance (P²).  Mega-sweeps must equal
an explicitly materialised cross product, and the statistical vectorless
sweep must stay below the deterministic worst-case bound.
"""

import numpy as np
import pytest

from repro.analysis import (
    BatchedAnalysisEngine,
    ExceedanceCounts,
    ExceedanceCountSink,
    IRDropAnalyzer,
    JointExceedanceSink,
    NodeHistogramSink,
    P2QuantileSink,
    ReservoirQuantileSink,
    TopKScenarioSink,
    VectorlessAnalyzer,
    uniform_budget,
)
from repro.grid import (
    PerturbationKind,
    PerturbationSpec,
    SyntheticIBMSuite,
    mega_sweep_matrices,
    perturbed_load_matrix,
    perturbed_pad_voltage_matrix,
)

CHUNK_SIZES = [1, 7, 37, 100]
"""Sharding widths exercised everywhere: single-scenario, non-divisor,
exactly the sweep size, and larger than the sweep."""


@pytest.fixture(scope="module")
def ibmpg1_bench():
    return SyntheticIBMSuite().load("ibmpg1")


@pytest.fixture(scope="module")
def ibmpg1_grid(ibmpg1_bench):
    return ibmpg1_bench.build_uniform_grid(5.0)


@pytest.fixture(scope="module")
def load_sweep(ibmpg1_grid):
    spec = PerturbationSpec(gamma=0.25, kind=PerturbationKind.CURRENT_WORKLOADS, seed=5)
    return perturbed_load_matrix(ibmpg1_grid, spec, 37)


@pytest.fixture(scope="module")
def dense_drops(ibmpg1_grid, load_sweep):
    """Dense single-shot ``(num_nodes, k)`` IR-drop reference matrix."""
    batch = BatchedAnalysisEngine().analyze_batch(ibmpg1_grid, load_sweep)
    return batch.ir_drop


@pytest.fixture(scope="module")
def histogram_edges(dense_drops):
    """Edges chosen so the sweep produces under- and overflow counts."""
    lo = dense_drops.min() + 0.2 * np.ptp(dense_drops)
    hi = dense_drops.max() - 0.1 * np.ptp(dense_drops)
    return np.linspace(lo, hi, 14)


def run_sinks(grid, load_sweep, chunk_size, sinks):
    engine = BatchedAnalysisEngine()
    engine.analyze_batch(grid, load_sweep, chunk_size=chunk_size, sinks=sinks)
    return sinks


class TestExactSinksBitwise:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_histogram_matches_dense_reference(
        self, ibmpg1_grid, load_sweep, dense_drops, histogram_edges, chunk_size
    ):
        (sink,) = run_sinks(
            ibmpg1_grid, load_sweep, chunk_size, [NodeHistogramSink(histogram_edges)]
        )
        histogram = sink.result()
        expected = np.empty_like(histogram.counts)
        for node in range(dense_drops.shape[0]):
            expected[node] = np.histogram(dense_drops[node], bins=histogram_edges)[0]
        assert np.array_equal(histogram.counts, expected)
        assert np.array_equal(histogram.underflow, (dense_drops < histogram_edges[0]).sum(axis=1))
        assert np.array_equal(histogram.overflow, (dense_drops > histogram_edges[-1]).sum(axis=1))
        assert histogram.underflow.sum() > 0 and histogram.overflow.sum() > 0
        assert np.array_equal(histogram.total, np.full(dense_drops.shape[0], load_sweep.shape[0]))

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_exceedance_matches_dense_reference(
        self, ibmpg1_grid, load_sweep, dense_drops, chunk_size
    ):
        threshold = float(np.quantile(dense_drops, 0.9))
        (sink,) = run_sinks(ibmpg1_grid, load_sweep, chunk_size, [ExceedanceCountSink(threshold)])
        exceedance = sink.result()
        expected = (dense_drops > threshold).sum(axis=1)
        assert np.array_equal(exceedance.counts, expected)
        assert exceedance.num_scenarios == load_sweep.shape[0]
        assert exceedance.worst_node_index == int(expected.argmax())
        assert np.array_equal(exceedance.rates, expected / load_sweep.shape[0])

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_topk_matches_dense_reference(
        self, ibmpg1_grid, load_sweep, dense_drops, chunk_size
    ):
        rows = np.ascontiguousarray(dense_drops.T)
        worst = rows.max(axis=1)
        order = np.lexsort((np.arange(worst.size), -worst))[:5]
        (sink,) = run_sinks(ibmpg1_grid, load_sweep, chunk_size, [TopKScenarioSink(5)])
        topk = sink.result()
        assert np.array_equal(topk.scenario_index, order)
        assert np.array_equal(topk.worst_ir_drop, worst[order])
        assert np.array_equal(topk.worst_node_index, rows.argmax(axis=1)[order])
        assert topk.k == 5

    def test_topk_larger_than_sweep_keeps_everything(self, ibmpg1_grid, load_sweep, dense_drops):
        k = load_sweep.shape[0]
        (sink,) = run_sinks(ibmpg1_grid, load_sweep, 8, [TopKScenarioSink(k + 50)])
        topk = sink.result()
        assert topk.k == k
        worst = np.ascontiguousarray(dense_drops.T).max(axis=1)
        assert np.array_equal(np.sort(topk.scenario_index), np.arange(k))
        assert topk.worst_ir_drop[0] == worst.max()

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_joint_exceedance_matches_dense_reference(
        self, ibmpg1_grid, load_sweep, dense_drops, chunk_size
    ):
        threshold = float(np.quantile(dense_drops, 0.8))
        (sink,) = run_sinks(ibmpg1_grid, load_sweep, chunk_size, [JointExceedanceSink(threshold)])
        joint = sink.result()
        violating_per_scenario = (dense_drops > threshold).sum(axis=0)
        expected = np.bincount(violating_per_scenario)
        assert np.array_equal(joint.violating_node_counts, expected)
        assert joint.scenarios_with_violation == int((violating_per_scenario > 0).sum())
        assert joint.any_exceedance_rate == joint.scenarios_with_violation / load_sweep.shape[0]
        assert joint.max_violating_nodes == int(violating_per_scenario.max())
        assert joint.num_scenarios == load_sweep.shape[0]

    def test_joint_exceedance_exceeds_per_node_lower_bound(
        self, ibmpg1_grid, load_sweep, dense_drops
    ):
        """The joint count dominates the per-node lower bound it replaces."""
        threshold = float(np.quantile(dense_drops, 0.8))
        per_node = ExceedanceCountSink(threshold)
        joint = JointExceedanceSink(threshold)
        run_sinks(ibmpg1_grid, load_sweep, 8, [per_node, joint])
        assert (
            joint.result().scenarios_with_violation
            >= per_node.result().any_exceedance_scenarios
        )

    def test_unsharded_batch_feeds_sinks_once(self, ibmpg1_grid, load_sweep, dense_drops):
        threshold = float(np.quantile(dense_drops, 0.5))
        sink = ExceedanceCountSink(threshold)
        batch = BatchedAnalysisEngine().analyze_batch(ibmpg1_grid, load_sweep, sinks=[sink])
        assert batch.sinks == (sink,)
        assert sink.num_consumed == load_sweep.shape[0]
        assert np.array_equal(
            batch.sink_results()[0].counts, (dense_drops > threshold).sum(axis=1)
        )


class TestQuantileSinks:
    @pytest.fixture(scope="class")
    def big_sweep(self, ibmpg1_grid):
        spec = PerturbationSpec(gamma=0.25, kind=PerturbationKind.CURRENT_WORKLOADS, seed=13)
        return perturbed_load_matrix(ibmpg1_grid, spec, 400)

    @pytest.fixture(scope="class")
    def worst_distribution(self, ibmpg1_grid, big_sweep):
        batch = BatchedAnalysisEngine().analyze_batch(ibmpg1_grid, big_sweep, chunk_size=64)
        return batch.worst_ir_drop

    def test_reservoir_exact_when_stream_fits(self, ibmpg1_grid, big_sweep, worst_distribution):
        levels = (0.1, 0.5, 0.9, 0.99)
        sink = ReservoirQuantileSink(big_sweep.shape[0], levels)
        run_sinks(ibmpg1_grid, big_sweep, 33, [sink])
        estimate = sink.result()
        assert estimate.exact
        assert np.array_equal(estimate.values, np.quantile(worst_distribution, levels))
        assert estimate.value(0.5) == float(np.quantile(worst_distribution, 0.5))

    def test_reservoir_chunking_invariant(self, ibmpg1_grid, big_sweep):
        """One ordered fold: the sample depends only on seed and order.

        This is a property of the serial / threaded executors (one fold in
        ascending scenario order); the process-sharded executor instead
        *merges* per-shard reservoirs by weighted resampling, so the
        executor is pinned here rather than inherited from
        ``REPRO_TEST_EXECUTOR``.
        """
        results = []
        for chunk_size in (11, 160, None):
            sink = ReservoirQuantileSink(64, (0.5, 0.9), seed=3)
            BatchedAnalysisEngine().analyze_batch(
                ibmpg1_grid, big_sweep, chunk_size=chunk_size, sinks=[sink],
                executor="threads",
            )
            results.append(sink.result().values)
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[0], results[2])

    def test_p2_quantiles_within_tolerance(self, ibmpg1_grid, big_sweep, worst_distribution):
        levels = (0.5, 0.9)
        sink = P2QuantileSink(levels)
        run_sinks(ibmpg1_grid, big_sweep, 50, [sink])
        estimate = sink.result()
        assert not estimate.exact
        spread = worst_distribution.max() - worst_distribution.min()
        for level, value in zip(levels, estimate.values):
            assert abs(value - np.quantile(worst_distribution, level)) <= 0.1 * spread

    def test_p2_chunking_invariant(self, ibmpg1_grid, big_sweep):
        """The vectorised P² buffers to fixed internal blocks, so the
        estimate depends only on the scenario order — not on how the
        engine chunked the sweep."""
        results = []
        for chunk_size in (13, 50, 256, None):
            sink = P2QuantileSink((0.5, 0.9))
            BatchedAnalysisEngine().analyze_batch(
                ibmpg1_grid, big_sweep, chunk_size=chunk_size, sinks=[sink],
                executor="threads",
            )
            results.append(sink.result().values)
        for other in results[1:]:
            assert np.array_equal(results[0], other)

    def test_p2_exact_for_tiny_streams(self, ibmpg1_grid, load_sweep):
        sink = P2QuantileSink([0.5], statistic="mean")
        BatchedAnalysisEngine().analyze_batch(ibmpg1_grid, load_sweep[:4], sinks=[sink])
        estimate = sink.result()
        batch = BatchedAnalysisEngine().analyze_batch(ibmpg1_grid, load_sweep[:4])
        assert estimate.exact
        assert estimate.values[0] == np.quantile(batch.average_ir_drop, 0.5)

    def test_mean_statistic_tracks_average(self, ibmpg1_grid, big_sweep):
        sink = ReservoirQuantileSink(big_sweep.shape[0], (0.5,), statistic="mean")
        batch = BatchedAnalysisEngine().analyze_batch(
            ibmpg1_grid, big_sweep, chunk_size=128, sinks=[sink]
        )
        assert sink.result().values[0] == np.quantile(batch.average_ir_drop, 0.5)

    def test_invalid_quantile_specs_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            P2QuantileSink([])
        with pytest.raises(ValueError, match="ascending"):
            P2QuantileSink([0.9, 0.5])
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            ReservoirQuantileSink(10, [1.5])
        with pytest.raises(ValueError, match="capacity"):
            ReservoirQuantileSink(0, [0.5])
        with pytest.raises(ValueError, match="statistic"):
            P2QuantileSink([0.5], statistic="median")


class TestSinkProtocol:
    def test_sinks_cannot_be_reused_across_sweeps(self, ibmpg1_grid, load_sweep):
        sink = ExceedanceCountSink(0.1)
        engine = BatchedAnalysisEngine()
        engine.analyze_batch(ibmpg1_grid, load_sweep, sinks=[sink])
        with pytest.raises(ValueError, match="fresh sink"):
            engine.analyze_batch(ibmpg1_grid, load_sweep, sinks=[sink])

    def test_out_of_order_chunks_rejected(self, ibmpg1_grid, load_sweep):
        sink = ExceedanceCountSink(0.1)
        sink.bind(ibmpg1_grid.compile(), 10)
        chunk = np.zeros((ibmpg1_grid.compile().num_nodes, 2))
        sink.consume(chunk, 0)
        with pytest.raises(ValueError, match="scenario order"):
            sink.consume(chunk, 5)
        with pytest.raises(ValueError, match="overruns"):
            sink.consume(np.zeros((chunk.shape[0], 100)), 2)

    def test_unbound_and_misshapen_consumption_rejected(self, ibmpg1_grid):
        sink = TopKScenarioSink(3)
        with pytest.raises(ValueError, match="not bound"):
            sink.consume(np.zeros((4, 1)), 0)
        sink.bind(ibmpg1_grid.compile(), 5)
        with pytest.raises(ValueError, match="voltage chunk"):
            sink.consume(np.zeros((3, 2)), 0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="ascending"):
            NodeHistogramSink([0.0, 0.1, 0.1])
        with pytest.raises(ValueError, match="num_bins"):
            NodeHistogramSink.uniform(0.0, 1.0, 0)
        with pytest.raises(ValueError, match="threshold"):
            ExceedanceCountSink(-0.1)
        with pytest.raises(ValueError, match="k must be"):
            TopKScenarioSink(0)

    @pytest.mark.parametrize(
        "sink_factory",
        [
            lambda: NodeHistogramSink([0.0, 1.0]),
            lambda: ExceedanceCountSink(0.1),
            lambda: TopKScenarioSink(3),
            lambda: P2QuantileSink([0.5]),
            lambda: ReservoirQuantileSink(8, [0.5]),
        ],
        ids=["histogram", "exceedance", "topk", "p2", "reservoir"],
    )
    def test_every_sink_rejects_unbound_result(self, sink_factory):
        """A sink never handed to the engine must not fake an empty result."""
        with pytest.raises(ValueError, match="never bound"):
            sink_factory().result()

    def test_zero_scenario_exceedance_rates_are_nan(self):
        """An undefined probability must not read as 'never exceeds'."""
        empty = ExceedanceCounts(threshold=0.1, counts=np.zeros(4, dtype=np.int64), num_scenarios=0)
        assert np.all(np.isnan(empty.rates))
        observed = ExceedanceCounts(
            threshold=0.1, counts=np.array([1, 0], dtype=np.int64), num_scenarios=4
        )
        assert np.array_equal(observed.rates, np.array([0.25, 0.0]))


class TestSnapshotMerge:
    """Direct unit tests of the MergeableSink snapshot/merge protocol."""

    NODES = 6
    SCENARIOS = 90

    @pytest.fixture(scope="class")
    def synthetic(self):
        from types import SimpleNamespace

        rng = np.random.default_rng(7)
        drops = rng.normal(0.05, 0.015, size=(self.SCENARIOS, self.NODES))
        compiled = SimpleNamespace(vdd=1.8, num_nodes=self.NODES)
        return compiled, drops

    def build(self):
        return {
            "histogram": NodeHistogramSink.uniform(0.0, 0.1, 10),
            "exceedance": ExceedanceCountSink(0.06),
            "joint": JointExceedanceSink(0.06),
            "topk": TopKScenarioSink(5),
        }

    @pytest.mark.parametrize("boundaries", [(90,), (45, 45), (30, 37, 23), (1, 88, 1)])
    def test_merged_shards_equal_one_fold(self, synthetic, boundaries):
        compiled, drops = synthetic
        sequential = self.build()
        for sink in sequential.values():
            sink.bind(compiled, self.SCENARIOS)
            sink.consume_drop_rows(drops, 0)
        merged = self.build()
        for sink in merged.values():
            sink.bind(compiled, self.SCENARIOS)
        begin = 0
        for width in boundaries:
            shard = self.build()
            for key, sink in shard.items():
                sink.bind(compiled, width)
                sink.consume_drop_rows(drops[begin : begin + width], 0)
                merged[key].merge(sink.snapshot())
            begin += width
        for key in sequential:
            assert merged[key].num_consumed == self.SCENARIOS
        assert np.array_equal(
            sequential["histogram"].result().counts, merged["histogram"].result().counts
        )
        assert np.array_equal(
            sequential["exceedance"].result().counts, merged["exceedance"].result().counts
        )
        assert np.array_equal(
            sequential["joint"].result().violating_node_counts,
            merged["joint"].result().violating_node_counts,
        )
        seq_topk, merged_topk = sequential["topk"].result(), merged["topk"].result()
        assert np.array_equal(seq_topk.scenario_index, merged_topk.scenario_index)
        assert np.array_equal(seq_topk.worst_ir_drop, merged_topk.worst_ir_drop)
        assert np.array_equal(seq_topk.worst_node_index, merged_topk.worst_node_index)

    def test_mixed_consume_then_merge(self, synthetic):
        """A sink may consume its own chunks and then merge a tail shard."""
        compiled, drops = synthetic
        sink = ExceedanceCountSink(0.06)
        sink.bind(compiled, self.SCENARIOS)
        sink.consume_drop_rows(drops[:40], 0)
        tail = ExceedanceCountSink(0.06)
        tail.bind(compiled, self.SCENARIOS - 40)
        tail.consume_drop_rows(drops[40:], 0)
        sink.merge(tail.snapshot())
        assert np.array_equal(sink.result().counts, (drops > 0.06).sum(axis=0))

    def test_type_mismatch_rejected(self, synthetic):
        compiled, drops = synthetic
        histogram = NodeHistogramSink.uniform(0.0, 0.1, 4)
        histogram.bind(compiled, self.SCENARIOS)
        exceedance = ExceedanceCountSink(0.06)
        exceedance.bind(compiled, self.SCENARIOS)
        exceedance.consume_drop_rows(drops[:10], 0)
        with pytest.raises(ValueError, match="cannot merge a ExceedanceCountSink"):
            histogram.merge(exceedance.snapshot())

    def test_configuration_mismatch_rejected(self, synthetic):
        compiled, drops = synthetic
        coarse = NodeHistogramSink.uniform(0.0, 0.1, 4)
        fine = NodeHistogramSink.uniform(0.0, 0.1, 8)
        for sink in (coarse, fine):
            sink.bind(compiled, self.SCENARIOS)
        fine.consume_drop_rows(drops[:10], 0)
        with pytest.raises(ValueError, match="bin edges"):
            coarse.merge(fine.snapshot())
        small_k = TopKScenarioSink(2)
        large_k = TopKScenarioSink(3)
        for sink in (small_k, large_k):
            sink.bind(compiled, self.SCENARIOS)
        large_k.consume_drop_rows(drops[:10], 0)
        with pytest.raises(ValueError, match="different k"):
            small_k.merge(large_k.snapshot())
        narrow = ReservoirQuantileSink(8, [0.5])
        wide = ReservoirQuantileSink(16, [0.5])
        for sink in (narrow, wide):
            sink.bind(compiled, self.SCENARIOS)
        wide.consume_drop_rows(drops[:10], 0)
        with pytest.raises(ValueError, match="capacity"):
            narrow.merge(wide.snapshot())

    def test_overrun_merge_rejected(self, synthetic):
        compiled, drops = synthetic
        sink = ExceedanceCountSink(0.06)
        sink.bind(compiled, 10)
        shard = ExceedanceCountSink(0.06)
        shard.bind(compiled, self.SCENARIOS)
        shard.consume_drop_rows(drops[:20], 0)
        with pytest.raises(ValueError, match="overruns"):
            sink.merge(shard.snapshot())

    def test_unbound_snapshot_and_merge_rejected(self, synthetic):
        compiled, drops = synthetic
        with pytest.raises(ValueError, match="never bound"):
            ExceedanceCountSink(0.06).snapshot()
        bound = ExceedanceCountSink(0.06)
        bound.bind(compiled, 10)
        bound.consume_drop_rows(drops[:10], 0)
        with pytest.raises(ValueError, match="never bound"):
            ExceedanceCountSink(0.06).merge(bound.snapshot())

    def test_snapshot_is_frozen_copy(self, synthetic):
        """Mutating the source sink after snapshot() must not leak."""
        compiled, drops = synthetic
        sink = ExceedanceCountSink(0.06)
        sink.bind(compiled, self.SCENARIOS)
        sink.consume_drop_rows(drops[:30], 0)
        snapshot = sink.snapshot()
        frozen = snapshot.state["counts"].copy()
        sink.consume_drop_rows(drops[30:60], 30)
        assert np.array_equal(snapshot.state["counts"], frozen)

    def test_reservoir_merge_exact_while_it_fits(self, synthetic):
        compiled, drops = synthetic
        parent = ReservoirQuantileSink(self.SCENARIOS, (0.5,), seed=1)
        parent.bind(compiled, self.SCENARIOS)
        begin = 0
        for width in (30, 30, 30):
            shard = ReservoirQuantileSink(self.SCENARIOS, (0.5,), seed=2)
            shard.bind(compiled, width)
            shard.consume_drop_rows(drops[begin : begin + width], 0)
            parent.merge(shard.snapshot())
            begin += width
        estimate = parent.result()
        assert estimate.exact
        worst = np.ascontiguousarray(drops).max(axis=1)
        assert estimate.values[0] == np.quantile(worst, 0.5)


class TestMegaSweep:
    @pytest.fixture(scope="class")
    def sweep_matrices(self, ibmpg1_grid, ibmpg1_bench):
        return mega_sweep_matrices(ibmpg1_grid, ibmpg1_bench.floorplan, 0.2, 6, 4, seed=3)

    @pytest.fixture(scope="class")
    def dense_cross(self, ibmpg1_grid, sweep_matrices):
        """The cross product materialised explicitly (loads outer)."""
        load_matrix, pad_matrix = sweep_matrices
        return BatchedAnalysisEngine().analyze_pad_batch(
            ibmpg1_grid,
            np.tile(pad_matrix, (load_matrix.shape[0], 1)),
            load_matrix=np.repeat(load_matrix, pad_matrix.shape[0], axis=0),
        )

    @pytest.mark.parametrize("chunk_size", [1, 5, 24, 100])
    def test_mega_sweep_matches_materialised_cross_product(
        self, ibmpg1_grid, sweep_matrices, dense_cross, chunk_size
    ):
        load_matrix, pad_matrix = sweep_matrices
        result = BatchedAnalysisEngine().analyze_mega_sweep(
            ibmpg1_grid, load_matrix, pad_matrix, chunk_size=chunk_size
        )
        assert result.num_scenarios == 24
        assert np.array_equal(result.worst_ir_drop, dense_cross.worst_ir_drop)
        assert np.array_equal(result.average_ir_drop, dense_cross.average_ir_drop)
        assert np.array_equal(result.worst_node_index, dense_cross.worst_node_index)

    def test_mega_sweep_shares_one_factorization(self, ibmpg1_grid, sweep_matrices):
        load_matrix, pad_matrix = sweep_matrices
        engine = BatchedAnalysisEngine()
        result = engine.analyze_mega_sweep(ibmpg1_grid, load_matrix, pad_matrix, chunk_size=5)
        assert engine.cache_info().factorizations == 1
        assert result.scenarios_per_second > 0
        assert result.worst_node(0) in ibmpg1_grid.compile().node_names

    def test_scenario_pair_round_trip(self, ibmpg1_grid, sweep_matrices):
        load_matrix, pad_matrix = sweep_matrices
        result = BatchedAnalysisEngine().analyze_mega_sweep(
            ibmpg1_grid, load_matrix, pad_matrix, chunk_size=10
        )
        pairs = [result.scenario_pair(s) for s in range(result.num_scenarios)]
        assert pairs[0] == (0, 0)
        assert pairs[-1] == (load_matrix.shape[0] - 1, pad_matrix.shape[0] - 1)
        assert len(set(pairs)) == result.num_scenarios
        with pytest.raises(IndexError):
            result.scenario_pair(result.num_scenarios)

    def test_mega_sweep_with_sinks_matches_dense(
        self, ibmpg1_grid, sweep_matrices, dense_cross
    ):
        load_matrix, pad_matrix = sweep_matrices
        drops = dense_cross.ir_drop
        threshold = float(np.quantile(drops, 0.8))
        sink = ExceedanceCountSink(threshold)
        BatchedAnalysisEngine().analyze_mega_sweep(
            ibmpg1_grid, load_matrix, pad_matrix, chunk_size=7, sinks=[sink]
        )
        assert np.array_equal(sink.result().counts, (drops > threshold).sum(axis=1))

    def test_input_validation(self, ibmpg1_grid, sweep_matrices):
        load_matrix, pad_matrix = sweep_matrices
        engine = BatchedAnalysisEngine()
        with pytest.raises(ValueError, match="load_matrix"):
            engine.analyze_mega_sweep(ibmpg1_grid, load_matrix[:, :-1], pad_matrix)
        with pytest.raises(ValueError, match="pad_voltage_matrix"):
            engine.analyze_mega_sweep(ibmpg1_grid, load_matrix, pad_matrix[:, :-1])
        with pytest.raises(ValueError, match="at least one scenario row"):
            engine.analyze_mega_sweep(ibmpg1_grid, load_matrix[:0], pad_matrix)
        with pytest.raises(ValueError, match="chunk_size"):
            engine.analyze_mega_sweep(ibmpg1_grid, load_matrix, pad_matrix, chunk_size=0)


class TestScenarioStream:
    def test_stream_matches_batch(self, ibmpg1_grid, load_sweep):
        engine = BatchedAnalysisEngine()
        reference = engine.analyze_batch(ibmpg1_grid, load_sweep, chunk_size=8)
        stream = engine.analyze_scenario_stream(
            ibmpg1_grid,
            lambda begin, end: (load_sweep[begin:end], None),
            load_sweep.shape[0],
            chunk_size=8,
        )
        assert np.array_equal(stream.worst_ir_drop, reference.worst_ir_drop)
        assert np.array_equal(stream.average_ir_drop, reference.average_ir_drop)
        assert stream.factorization_reused  # second sweep on the same engine

    def test_stream_validates_source(self, ibmpg1_grid):
        engine = BatchedAnalysisEngine()
        with pytest.raises(ValueError, match="neither loads nor pad voltages"):
            engine.analyze_scenario_stream(
                ibmpg1_grid, lambda begin, end: (None, None), 4, chunk_size=2
            )
        compiled = ibmpg1_grid.compile()
        with pytest.raises(ValueError, match="rows for"):
            engine.analyze_scenario_stream(
                ibmpg1_grid,
                lambda begin, end: (np.zeros((1, compiled.num_nodes)), None),
                4,
                chunk_size=2,
            )
        with pytest.raises(ValueError, match="num_scenarios"):
            engine.analyze_scenario_stream(
                ibmpg1_grid, lambda begin, end: (None, None), 0, chunk_size=2
            )


class TestStatisticalVectorless:
    @pytest.fixture(scope="class")
    def budget(self, ibmpg1_grid):
        return uniform_budget(ibmpg1_grid, headroom=1.4, utilisation=0.9)

    def test_observed_below_deterministic_bound(self, ibmpg1_grid, budget):
        analyzer = VectorlessAnalyzer(BatchedAnalysisEngine())
        result = analyzer.analyze_statistical(
            ibmpg1_grid, budget, 60, chunk_size=16, sinks=[P2QuantileSink([0.9])]
        )
        assert result.num_scenarios == 60
        assert result.worst_observed <= result.worst_case_bound + 1e-12
        assert 0 < result.bound_tightness <= 1.0
        assert result.sweep.sinks[0].result().num_scenarios == 60

    def test_sampling_is_chunking_invariant(self, ibmpg1_grid, budget):
        analyzer = VectorlessAnalyzer(BatchedAnalysisEngine())
        small = analyzer.analyze_statistical(ibmpg1_grid, budget, 30, chunk_size=7)
        large = analyzer.analyze_statistical(ibmpg1_grid, budget, 30, chunk_size=1000)
        assert np.array_equal(small.sweep.worst_ir_drop, large.sweep.worst_ir_drop)
        assert np.array_equal(small.sweep.average_ir_drop, large.sweep.average_ir_drop)

    def test_requires_engine_backend(self, ibmpg1_grid, budget):
        analyzer = VectorlessAnalyzer(IRDropAnalyzer())
        with pytest.raises(TypeError, match="BatchedAnalysisEngine"):
            analyzer.analyze_statistical(ibmpg1_grid, budget, 4)

    def test_pad_batch_with_sinks(self, ibmpg1_grid):
        spec = PerturbationSpec(gamma=0.1, kind=PerturbationKind.NODE_VOLTAGES, seed=9)
        pad_matrix = perturbed_pad_voltage_matrix(ibmpg1_grid, spec, 6)
        engine = BatchedAnalysisEngine()
        dense = engine.analyze_pad_batch(ibmpg1_grid, pad_matrix)
        threshold = float(np.quantile(dense.ir_drop, 0.7))
        sink = ExceedanceCountSink(threshold)
        engine.analyze_pad_batch(ibmpg1_grid, pad_matrix, chunk_size=2, sinks=[sink])
        assert np.array_equal(sink.result().counts, (dense.ir_drop > threshold).sum(axis=1))
