"""Tests for RHS sharding and the pad-voltage batch API of the engine.

Sharded sweeps must stream their reductions without ever materialising the
dense ``(num_nodes, k)`` voltage matrix, and the streamed reductions must be
bitwise-identical to the unsharded ones.  Pad-voltage batches must match the
per-scenario ``NetworkPerturbator`` + ``analyze`` path to 1e-9 per node.
"""

import numpy as np
import pytest

from repro.analysis import BatchedAnalysisEngine, ExceedanceCountSink, TopKScenarioSink
from repro.grid import (
    NetworkPerturbator,
    PerturbationKind,
    PerturbationSpec,
    SyntheticIBMSuite,
    mega_sweep_matrices,
    perturbed_load_matrix,
    perturbed_pad_voltage_matrix,
)

VOLTAGE_TOLERANCE = 1e-9


@pytest.fixture(scope="module")
def ibmpg1_bench():
    return SyntheticIBMSuite().load("ibmpg1")


@pytest.fixture(scope="module")
def ibmpg1_grid(ibmpg1_bench):
    return ibmpg1_bench.build_uniform_grid(5.0)


@pytest.fixture(scope="module")
def load_sweep(ibmpg1_grid):
    spec = PerturbationSpec(gamma=0.2, kind=PerturbationKind.CURRENT_WORKLOADS, seed=11)
    return perturbed_load_matrix(ibmpg1_grid, spec, 37)


class TestShardedBatch:
    @pytest.mark.parametrize("chunk_size", [1, 8, 37, 100])
    def test_sharded_reductions_bitwise_match_unsharded(
        self, ibmpg1_grid, load_sweep, chunk_size
    ):
        engine = BatchedAnalysisEngine()
        full = engine.analyze_batch(ibmpg1_grid, load_sweep)
        sharded = engine.analyze_batch(ibmpg1_grid, load_sweep, chunk_size=chunk_size)
        assert np.array_equal(full.worst_ir_drop, sharded.worst_ir_drop)
        assert np.array_equal(full.average_ir_drop, sharded.average_ir_drop)
        assert np.array_equal(full.worst_node_index, sharded.worst_node_index)

    def test_sharded_batch_never_materialises_voltages(self, ibmpg1_grid, load_sweep):
        engine = BatchedAnalysisEngine()
        sharded = engine.analyze_batch(ibmpg1_grid, load_sweep, chunk_size=8)
        assert sharded.voltages is None
        assert sharded.reductions is not None
        assert sharded.num_scenarios == load_sweep.shape[0]
        with pytest.raises(ValueError, match="sharding"):
            sharded.scenario_voltages(0)
        with pytest.raises(ValueError, match="sharding"):
            sharded.result(0)
        with pytest.raises(ValueError, match="sharding"):
            sharded.ir_drop

    def test_sharded_batch_uses_one_factorization(self, ibmpg1_grid, load_sweep):
        engine = BatchedAnalysisEngine()
        engine.analyze_batch(ibmpg1_grid, load_sweep, chunk_size=5)
        assert engine.cache_info().factorizations == 1

    def test_worst_node_names_consistent(self, ibmpg1_grid, load_sweep):
        engine = BatchedAnalysisEngine()
        full = engine.analyze_batch(ibmpg1_grid, load_sweep)
        sharded = engine.analyze_batch(ibmpg1_grid, load_sweep, chunk_size=4)
        for scenario in range(0, load_sweep.shape[0], 9):
            assert sharded.worst_node(scenario) == full.worst_node(scenario)

    def test_invalid_chunk_size_rejected(self, ibmpg1_grid, load_sweep):
        with pytest.raises(ValueError, match="chunk_size"):
            BatchedAnalysisEngine().analyze_batch(ibmpg1_grid, load_sweep, chunk_size=0)

    def test_large_sharded_sweep(self):
        """A ≥1e4-scenario sweep completes with chunk-bounded memory."""
        grid = SyntheticIBMSuite(scale=0.25).load("ibmpg1").build_uniform_grid(5.0)
        compiled = grid.compile()
        num_scenarios = 10_000
        rng = np.random.default_rng(0)
        load_matrix = compiled.base_loads * (
            1.0 + rng.uniform(-0.25, 0.25, size=(num_scenarios, 1))
        )
        engine = BatchedAnalysisEngine()
        batch = engine.analyze_batch(grid, load_matrix, chunk_size=512)
        assert batch.voltages is None
        assert batch.worst_ir_drop.shape == (num_scenarios,)
        assert engine.cache_info().factorizations == 1
        # Spot-check a handful of scenarios against unsharded solves.
        sample = [0, 1234, 9999]
        reference = engine.analyze_batch(grid, load_matrix[sample])
        assert np.array_equal(batch.worst_ir_drop[sample], reference.worst_ir_drop)
        assert np.array_equal(batch.average_ir_drop[sample], reference.average_ir_drop)


class TestPadVoltageBatch:
    @pytest.fixture(scope="class")
    def pad_sweep(self, ibmpg1_grid):
        spec = PerturbationSpec(gamma=0.15, kind=PerturbationKind.NODE_VOLTAGES, seed=17)
        return spec, perturbed_pad_voltage_matrix(ibmpg1_grid, spec, 6)

    def test_batch_matches_per_scenario_analyze(self, ibmpg1_grid, pad_sweep):
        spec, pad_matrix = pad_sweep
        engine = BatchedAnalysisEngine()
        batch = engine.analyze_pad_batch(ibmpg1_grid, pad_matrix)
        compiled = ibmpg1_grid.compile()
        for scenario in range(pad_matrix.shape[0]):
            per_spec = PerturbationSpec(
                gamma=spec.gamma, kind=spec.kind, seed=spec.seed + scenario
            )
            perturbed = NetworkPerturbator(per_spec).perturb(ibmpg1_grid)
            reference = BatchedAnalysisEngine().analyze(perturbed)
            reference_voltages = compiled.voltage_array(reference.node_voltages)
            difference = np.abs(
                reference_voltages - batch.scenario_voltages(scenario)
            ).max()
            assert difference <= VOLTAGE_TOLERANCE

    def test_pad_sweep_shares_one_factorization(self, ibmpg1_grid, pad_sweep):
        _, pad_matrix = pad_sweep
        engine = BatchedAnalysisEngine()
        engine.analyze(ibmpg1_grid)
        batch = engine.analyze_pad_batch(ibmpg1_grid, pad_matrix)
        assert batch.factorization_reused
        assert engine.cache_info().factorizations == 1

    def test_sharded_pad_batch_matches_unsharded(self, ibmpg1_grid, pad_sweep):
        _, pad_matrix = pad_sweep
        engine = BatchedAnalysisEngine()
        full = engine.analyze_pad_batch(ibmpg1_grid, pad_matrix)
        sharded = engine.analyze_pad_batch(ibmpg1_grid, pad_matrix, chunk_size=2)
        assert sharded.voltages is None
        assert np.array_equal(full.worst_ir_drop, sharded.worst_ir_drop)
        assert np.array_equal(full.average_ir_drop, sharded.average_ir_drop)
        assert np.array_equal(full.worst_node_index, sharded.worst_node_index)

    def test_combined_load_and_pad_batch(self, ibmpg1_grid, pad_sweep):
        _, pad_matrix = pad_sweep
        compiled = ibmpg1_grid.compile()
        load_matrix = np.tile(compiled.base_loads, (pad_matrix.shape[0], 1))
        engine = BatchedAnalysisEngine()
        with_loads = engine.analyze_pad_batch(
            ibmpg1_grid, pad_matrix, load_matrix=load_matrix
        )
        without = engine.analyze_pad_batch(ibmpg1_grid, pad_matrix)
        assert np.allclose(
            with_loads.worst_ir_drop, without.worst_ir_drop, atol=VOLTAGE_TOLERANCE
        )

    def test_input_validation(self, ibmpg1_grid, pad_sweep):
        _, pad_matrix = pad_sweep
        engine = BatchedAnalysisEngine()
        with pytest.raises(ValueError):
            engine.analyze_pad_batch(ibmpg1_grid, pad_matrix[:, :-1])
        with pytest.raises(ValueError, match="at least one scenario"):
            engine.analyze_pad_batch(ibmpg1_grid, pad_matrix[:0])
        with pytest.raises(ValueError):
            engine.analyze_pad_batch(
                ibmpg1_grid, pad_matrix, load_matrix=np.zeros((2, 3))
            )

    def test_pad_matrix_generator_validation(self, ibmpg1_grid):
        current_spec = PerturbationSpec(
            gamma=0.1, kind=PerturbationKind.CURRENT_WORKLOADS, seed=1
        )
        with pytest.raises(ValueError):
            perturbed_pad_voltage_matrix(ibmpg1_grid, current_spec, 4)
        voltage_spec = PerturbationSpec(
            gamma=0.1, kind=PerturbationKind.NODE_VOLTAGES, seed=1
        )
        with pytest.raises(ValueError):
            perturbed_pad_voltage_matrix(ibmpg1_grid, voltage_spec, 0)


class TestUpfrontValidation:
    """Bad inputs fail fast with full-matrix shapes, before sinks bind."""

    def test_chunked_batch_names_full_matrix_shape(self, ibmpg1_grid, load_sweep):
        engine = BatchedAnalysisEngine()
        compiled = ibmpg1_grid.compile()
        wrong = load_sweep[:3, :-1]
        sink = TopKScenarioSink(2)
        with pytest.raises(ValueError, match=rf"got shape \(3, {compiled.num_nodes - 1}\)"):
            engine.analyze_batch(ibmpg1_grid, wrong, chunk_size=2, sinks=(sink,))
        # The error fired before the sink was bound or observed anything.
        assert sink.num_consumed == 0
        with pytest.raises(ValueError, match="never bound"):
            sink.result()

    def test_one_dimensional_load_matrix_rejected(self, ibmpg1_grid, load_sweep):
        with pytest.raises(ValueError, match="must be 2-D"):
            BatchedAnalysisEngine().analyze_batch(ibmpg1_grid, load_sweep[0])

    def test_pad_batch_names_full_load_shape(self, ibmpg1_grid):
        spec = PerturbationSpec(gamma=0.1, kind=PerturbationKind.NODE_VOLTAGES, seed=3)
        pad_matrix = perturbed_pad_voltage_matrix(ibmpg1_grid, spec, 4)
        with pytest.raises(ValueError, match=r"got shape \(2, 3\)"):
            BatchedAnalysisEngine().analyze_pad_batch(
                ibmpg1_grid, pad_matrix, load_matrix=np.zeros((2, 3)), chunk_size=2
            )

    def test_stream_source_width_error_names_scenario_range(self, ibmpg1_grid):
        compiled = ibmpg1_grid.compile()
        sink = TopKScenarioSink(2)

        def narrow_source(begin, end):
            return np.zeros((end - begin, compiled.num_nodes - 1)), None

        with pytest.raises(ValueError, match=r"scenarios \[0, 2\)"):
            BatchedAnalysisEngine().analyze_scenario_stream(
                ibmpg1_grid, narrow_source, 6, chunk_size=2, sinks=(sink,)
            )
        # The bad chunk was rejected before the sink observed any scenario.
        assert sink.num_consumed == 0

    def test_stream_source_bad_pad_width_rejected(self, ibmpg1_grid):
        compiled = ibmpg1_grid.compile()
        num_pads = len(compiled.pad_node)

        def bad_pad_source(begin, end):
            if begin == 0:
                return None, np.full((end - begin, num_pads), 1.8)
            return None, np.full((end - begin, num_pads + 1), 1.8)

        sink = TopKScenarioSink(2)
        with pytest.raises(ValueError, match=r"scenarios \[2, 4\)"):
            BatchedAnalysisEngine().analyze_scenario_stream(
                ibmpg1_grid, bad_pad_source, 4, chunk_size=2, sinks=(sink,), workers=1
            )
        # Only the valid first chunk reached the sink.
        assert sink.num_consumed == 2
        # Parallel pipelines may abort before folding earlier chunks, but
        # a sink never observes scenarios from (or past) the bad chunk.
        parallel_sink = TopKScenarioSink(2)
        with pytest.raises(ValueError, match=r"scenarios \[2, 4\)"):
            BatchedAnalysisEngine().analyze_scenario_stream(
                ibmpg1_grid,
                bad_pad_source,
                4,
                chunk_size=2,
                sinks=(parallel_sink,),
                workers=3,
            )
        assert parallel_sink.num_consumed <= 2


class TestCGFallbackBatches:
    """Batch paths on grids exceeding ``direct_size_limit`` (CG fallback).

    Voltages must match the LU path, solver metadata must report ``"cg"``
    with real iteration counts (not the mislabeled ``"cached_lu"`` /
    ``0``), and sinks must accumulate the same statistics either way.
    """

    @pytest.fixture(scope="class")
    def cg_engine(self):
        return BatchedAnalysisEngine(direct_size_limit=1)

    def test_unsharded_batch_metadata_and_voltages(
        self, ibmpg1_grid, load_sweep, cg_engine
    ):
        reference = BatchedAnalysisEngine().analyze_batch(ibmpg1_grid, load_sweep)
        batch = cg_engine.analyze_batch(ibmpg1_grid, load_sweep)
        assert batch.solver_method == "cg"
        assert batch.solver_iterations.shape == (load_sweep.shape[0],)
        assert batch.solver_iterations.min() > 0
        assert cg_engine.cache_info().factorizations == 0
        assert np.allclose(batch.voltages, reference.voltages, atol=1e-7)
        materialised = batch.result(0)
        assert materialised.solver_method == "cg"
        assert materialised.solver_iterations == batch.solver_iterations[0]
        lu_result = reference.result(0)
        assert lu_result.solver_method == "cached_lu"
        assert lu_result.solver_iterations == 0

    @pytest.mark.parametrize("workers", [1, 2])
    def test_sharded_batch_matches_lu_reductions(
        self, ibmpg1_grid, load_sweep, cg_engine, workers
    ):
        reference = BatchedAnalysisEngine().analyze_batch(
            ibmpg1_grid, load_sweep, chunk_size=8
        )
        sharded = cg_engine.analyze_batch(
            ibmpg1_grid, load_sweep, chunk_size=8, workers=workers
        )
        assert sharded.solver_method == "cg"
        assert sharded.solver_iterations.min() > 0
        assert np.allclose(sharded.worst_ir_drop, reference.worst_ir_drop, atol=1e-7)
        assert np.allclose(
            sharded.average_ir_drop, reference.average_ir_drop, atol=1e-7
        )

    def test_parallel_cg_bitwise_matches_sequential_cg(
        self, ibmpg1_grid, load_sweep, cg_engine
    ):
        sequential = cg_engine.analyze_batch(
            ibmpg1_grid, load_sweep, chunk_size=5, workers=1
        )
        parallel = cg_engine.analyze_batch(
            ibmpg1_grid, load_sweep, chunk_size=5, workers=3
        )
        assert np.array_equal(sequential.worst_ir_drop, parallel.worst_ir_drop)
        assert np.array_equal(sequential.average_ir_drop, parallel.average_ir_drop)
        assert np.array_equal(
            sequential.solver_iterations, parallel.solver_iterations
        )

    def test_pad_batch_cg_metadata(self, ibmpg1_grid, cg_engine):
        spec = PerturbationSpec(gamma=0.15, kind=PerturbationKind.NODE_VOLTAGES, seed=17)
        pad_matrix = perturbed_pad_voltage_matrix(ibmpg1_grid, spec, 4)
        reference = BatchedAnalysisEngine().analyze_pad_batch(ibmpg1_grid, pad_matrix)
        batch = cg_engine.analyze_pad_batch(ibmpg1_grid, pad_matrix)
        assert batch.solver_method == "cg"
        assert batch.solver_iterations.min() > 0
        assert np.allclose(batch.voltages, reference.voltages, atol=1e-7)

    def test_mega_sweep_cg_sinks_match_lu(self, ibmpg1_grid, ibmpg1_bench, cg_engine):
        load_matrix, pad_matrix = mega_sweep_matrices(
            ibmpg1_grid, ibmpg1_bench.floorplan, 0.2, 6, 4, seed=9
        )
        nominal_worst = BatchedAnalysisEngine().analyze(ibmpg1_grid).worst_ir_drop
        lu_sinks = (ExceedanceCountSink(nominal_worst), TopKScenarioSink(3))
        lu = BatchedAnalysisEngine().analyze_mega_sweep(
            ibmpg1_grid, load_matrix, pad_matrix, chunk_size=7, sinks=lu_sinks
        )
        cg_sinks = (ExceedanceCountSink(nominal_worst), TopKScenarioSink(3))
        cg = cg_engine.analyze_mega_sweep(
            ibmpg1_grid, load_matrix, pad_matrix, chunk_size=7, sinks=cg_sinks
        )
        assert cg.solver_method == "cg"
        assert cg.solver_iterations.shape == (lu.num_scenarios,)
        assert cg.solver_iterations.min() > 0
        assert np.allclose(cg.worst_ir_drop, lu.worst_ir_drop, atol=1e-7)
        assert np.array_equal(cg_sinks[0].result().counts, lu_sinks[0].result().counts)
        assert np.array_equal(
            cg_sinks[1].result().scenario_index, lu_sinks[1].result().scenario_index
        )
        assert cg_engine.cache_info().factorizations == 0
