"""Tests for RHS sharding and the pad-voltage batch API of the engine.

Sharded sweeps must stream their reductions without ever materialising the
dense ``(num_nodes, k)`` voltage matrix, and the streamed reductions must be
bitwise-identical to the unsharded ones.  Pad-voltage batches must match the
per-scenario ``NetworkPerturbator`` + ``analyze`` path to 1e-9 per node.
"""

import numpy as np
import pytest

from repro.analysis import BatchedAnalysisEngine
from repro.grid import (
    NetworkPerturbator,
    PerturbationKind,
    PerturbationSpec,
    SyntheticIBMSuite,
    perturbed_load_matrix,
    perturbed_pad_voltage_matrix,
)

VOLTAGE_TOLERANCE = 1e-9


@pytest.fixture(scope="module")
def ibmpg1_grid():
    return SyntheticIBMSuite().load("ibmpg1").build_uniform_grid(5.0)


@pytest.fixture(scope="module")
def load_sweep(ibmpg1_grid):
    spec = PerturbationSpec(gamma=0.2, kind=PerturbationKind.CURRENT_WORKLOADS, seed=11)
    return perturbed_load_matrix(ibmpg1_grid, spec, 37)


class TestShardedBatch:
    @pytest.mark.parametrize("chunk_size", [1, 8, 37, 100])
    def test_sharded_reductions_bitwise_match_unsharded(
        self, ibmpg1_grid, load_sweep, chunk_size
    ):
        engine = BatchedAnalysisEngine()
        full = engine.analyze_batch(ibmpg1_grid, load_sweep)
        sharded = engine.analyze_batch(ibmpg1_grid, load_sweep, chunk_size=chunk_size)
        assert np.array_equal(full.worst_ir_drop, sharded.worst_ir_drop)
        assert np.array_equal(full.average_ir_drop, sharded.average_ir_drop)
        assert np.array_equal(full.worst_node_index, sharded.worst_node_index)

    def test_sharded_batch_never_materialises_voltages(self, ibmpg1_grid, load_sweep):
        engine = BatchedAnalysisEngine()
        sharded = engine.analyze_batch(ibmpg1_grid, load_sweep, chunk_size=8)
        assert sharded.voltages is None
        assert sharded.reductions is not None
        assert sharded.num_scenarios == load_sweep.shape[0]
        with pytest.raises(ValueError, match="sharding"):
            sharded.scenario_voltages(0)
        with pytest.raises(ValueError, match="sharding"):
            sharded.result(0)
        with pytest.raises(ValueError, match="sharding"):
            sharded.ir_drop

    def test_sharded_batch_uses_one_factorization(self, ibmpg1_grid, load_sweep):
        engine = BatchedAnalysisEngine()
        engine.analyze_batch(ibmpg1_grid, load_sweep, chunk_size=5)
        assert engine.cache_info().factorizations == 1

    def test_worst_node_names_consistent(self, ibmpg1_grid, load_sweep):
        engine = BatchedAnalysisEngine()
        full = engine.analyze_batch(ibmpg1_grid, load_sweep)
        sharded = engine.analyze_batch(ibmpg1_grid, load_sweep, chunk_size=4)
        for scenario in range(0, load_sweep.shape[0], 9):
            assert sharded.worst_node(scenario) == full.worst_node(scenario)

    def test_invalid_chunk_size_rejected(self, ibmpg1_grid, load_sweep):
        with pytest.raises(ValueError, match="chunk_size"):
            BatchedAnalysisEngine().analyze_batch(ibmpg1_grid, load_sweep, chunk_size=0)

    def test_large_sharded_sweep(self):
        """A ≥1e4-scenario sweep completes with chunk-bounded memory."""
        grid = SyntheticIBMSuite(scale=0.25).load("ibmpg1").build_uniform_grid(5.0)
        compiled = grid.compile()
        num_scenarios = 10_000
        rng = np.random.default_rng(0)
        load_matrix = compiled.base_loads * (
            1.0 + rng.uniform(-0.25, 0.25, size=(num_scenarios, 1))
        )
        engine = BatchedAnalysisEngine()
        batch = engine.analyze_batch(grid, load_matrix, chunk_size=512)
        assert batch.voltages is None
        assert batch.worst_ir_drop.shape == (num_scenarios,)
        assert engine.cache_info().factorizations == 1
        # Spot-check a handful of scenarios against unsharded solves.
        sample = [0, 1234, 9999]
        reference = engine.analyze_batch(grid, load_matrix[sample])
        assert np.array_equal(batch.worst_ir_drop[sample], reference.worst_ir_drop)
        assert np.array_equal(batch.average_ir_drop[sample], reference.average_ir_drop)


class TestPadVoltageBatch:
    @pytest.fixture(scope="class")
    def pad_sweep(self, ibmpg1_grid):
        spec = PerturbationSpec(gamma=0.15, kind=PerturbationKind.NODE_VOLTAGES, seed=17)
        return spec, perturbed_pad_voltage_matrix(ibmpg1_grid, spec, 6)

    def test_batch_matches_per_scenario_analyze(self, ibmpg1_grid, pad_sweep):
        spec, pad_matrix = pad_sweep
        engine = BatchedAnalysisEngine()
        batch = engine.analyze_pad_batch(ibmpg1_grid, pad_matrix)
        compiled = ibmpg1_grid.compile()
        for scenario in range(pad_matrix.shape[0]):
            per_spec = PerturbationSpec(
                gamma=spec.gamma, kind=spec.kind, seed=spec.seed + scenario
            )
            perturbed = NetworkPerturbator(per_spec).perturb(ibmpg1_grid)
            reference = BatchedAnalysisEngine().analyze(perturbed)
            reference_voltages = compiled.voltage_array(reference.node_voltages)
            difference = np.abs(
                reference_voltages - batch.scenario_voltages(scenario)
            ).max()
            assert difference <= VOLTAGE_TOLERANCE

    def test_pad_sweep_shares_one_factorization(self, ibmpg1_grid, pad_sweep):
        _, pad_matrix = pad_sweep
        engine = BatchedAnalysisEngine()
        engine.analyze(ibmpg1_grid)
        batch = engine.analyze_pad_batch(ibmpg1_grid, pad_matrix)
        assert batch.factorization_reused
        assert engine.cache_info().factorizations == 1

    def test_sharded_pad_batch_matches_unsharded(self, ibmpg1_grid, pad_sweep):
        _, pad_matrix = pad_sweep
        engine = BatchedAnalysisEngine()
        full = engine.analyze_pad_batch(ibmpg1_grid, pad_matrix)
        sharded = engine.analyze_pad_batch(ibmpg1_grid, pad_matrix, chunk_size=2)
        assert sharded.voltages is None
        assert np.array_equal(full.worst_ir_drop, sharded.worst_ir_drop)
        assert np.array_equal(full.average_ir_drop, sharded.average_ir_drop)
        assert np.array_equal(full.worst_node_index, sharded.worst_node_index)

    def test_combined_load_and_pad_batch(self, ibmpg1_grid, pad_sweep):
        _, pad_matrix = pad_sweep
        compiled = ibmpg1_grid.compile()
        load_matrix = np.tile(compiled.base_loads, (pad_matrix.shape[0], 1))
        engine = BatchedAnalysisEngine()
        with_loads = engine.analyze_pad_batch(
            ibmpg1_grid, pad_matrix, load_matrix=load_matrix
        )
        without = engine.analyze_pad_batch(ibmpg1_grid, pad_matrix)
        assert np.allclose(
            with_loads.worst_ir_drop, without.worst_ir_drop, atol=VOLTAGE_TOLERANCE
        )

    def test_input_validation(self, ibmpg1_grid, pad_sweep):
        _, pad_matrix = pad_sweep
        engine = BatchedAnalysisEngine()
        with pytest.raises(ValueError):
            engine.analyze_pad_batch(ibmpg1_grid, pad_matrix[:, :-1])
        with pytest.raises(ValueError, match="at least one scenario"):
            engine.analyze_pad_batch(ibmpg1_grid, pad_matrix[:0])
        with pytest.raises(ValueError):
            engine.analyze_pad_batch(
                ibmpg1_grid, pad_matrix, load_matrix=np.zeros((2, 3))
            )

    def test_pad_matrix_generator_validation(self, ibmpg1_grid):
        current_spec = PerturbationSpec(
            gamma=0.1, kind=PerturbationKind.CURRENT_WORKLOADS, seed=1
        )
        with pytest.raises(ValueError):
            perturbed_pad_voltage_matrix(ibmpg1_grid, current_spec, 4)
        voltage_spec = PerturbationSpec(
            gamma=0.1, kind=PerturbationKind.NODE_VOLTAGES, seed=1
        )
        with pytest.raises(ValueError):
            perturbed_pad_voltage_matrix(ibmpg1_grid, voltage_spec, 0)
