"""Tests for electromigration checking (paper eq. 4)."""

import pytest

from repro.analysis import (
    EMChecker,
    IRDropAnalyzer,
    em_lifetime_ratio,
    required_width_for_current,
)
from repro.grid import GridBuilder


class TestEMChecker:
    def test_wide_grid_passes(self, technology, tiny_floorplan, tiny_topology):
        network = GridBuilder(technology).build(tiny_floorplan, tiny_topology, 20.0)
        result = IRDropAnalyzer().analyze(network)
        report = EMChecker(technology).check(network, result)
        assert report.passed
        assert report.checked_segments > 0
        assert report.worst_density <= technology.jmax

    def test_narrow_grid_fails(self, technology, tiny_floorplan, tiny_topology):
        network = GridBuilder(technology).build(tiny_floorplan, tiny_topology, 0.4)
        result = IRDropAnalyzer().analyze(network)
        report = EMChecker(technology).check(network, result)
        assert not report.passed
        assert report.violating_lines
        # Violations are sorted worst-first.
        severities = [violation.severity for violation in report.violations]
        assert severities == sorted(severities, reverse=True)
        assert all(violation.severity > 1.0 for violation in report.violations)

    def test_margin_tightens_the_limit(self, technology):
        loose = EMChecker(technology, margin=0.0)
        tight = EMChecker(technology, margin=0.2)
        assert tight.effective_jmax == pytest.approx(0.8 * loose.effective_jmax)

    def test_invalid_margin_rejected(self, technology):
        with pytest.raises(ValueError):
            EMChecker(technology, margin=1.0)

    def test_vias_are_not_checked(self, technology, tiny_grid):
        result = IRDropAnalyzer().analyze(tiny_grid)
        report = EMChecker(technology).check(tiny_grid, result)
        wire_segments = sum(1 for r in tiny_grid.iter_resistors() if r.width > 0)
        assert report.checked_segments == wire_segments


class TestHelpers:
    def test_required_width_for_current(self):
        assert required_width_for_current(0.02, 0.01) == pytest.approx(2.0)

    def test_required_width_rejects_bad_jmax(self):
        with pytest.raises(ValueError):
            required_width_for_current(0.02, 0.0)

    def test_required_width_rejects_negative_current(self):
        with pytest.raises(ValueError):
            required_width_for_current(-1.0, 0.01)

    def test_lifetime_ratio_above_one_when_below_jmax(self):
        assert em_lifetime_ratio(0.005, 0.01) > 1.0

    def test_lifetime_ratio_below_one_when_violating(self):
        assert em_lifetime_ratio(0.02, 0.01) < 1.0

    def test_lifetime_ratio_infinite_for_idle_wire(self):
        assert em_lifetime_ratio(0.0, 0.01) == float("inf")

    def test_lifetime_ratio_rejects_bad_jmax(self):
        with pytest.raises(ValueError):
            em_lifetime_ratio(0.01, 0.0)
