"""Tests for branch-current extraction."""

import pytest

from repro.analysis import (
    IRDropAnalyzer,
    branch_currents,
    line_currents,
    pad_currents,
    total_dissipated_power,
)


@pytest.fixture(scope="module")
def solved(tiny_grid):
    return tiny_grid, IRDropAnalyzer().analyze(tiny_grid)


class TestBranchCurrents:
    def test_every_resistor_has_a_branch_current(self, solved):
        network, result = solved
        branches = branch_currents(network, result)
        assert len(branches) == len(network.resistors)

    def test_ohms_law_consistency(self, solved):
        network, result = solved
        for branch in branch_currents(network, result)[:50]:
            v_a = result.node_voltages[branch.resistor.node_a]
            v_b = result.node_voltages[branch.resistor.node_b]
            assert branch.current == pytest.approx((v_a - v_b) / branch.resistor.resistance)

    def test_current_density_uses_width(self, solved):
        network, result = solved
        for branch in branch_currents(network, result):
            if branch.resistor.width > 0:
                assert branch.current_density == pytest.approx(
                    branch.magnitude / branch.resistor.width
                )

    def test_zero_width_branch_density(self, solved):
        network, result = solved
        vias = [b for b in branch_currents(network, result) if b.resistor.is_via]
        assert vias, "expected via branches in a mesh grid"
        for branch in vias[:10]:
            if branch.magnitude > 0:
                assert branch.current_density == float("inf")


class TestAggregates:
    def test_pad_currents_sum_to_total_load(self, solved):
        network, result = solved
        total = sum(pad_currents(network, result).values())
        assert total == pytest.approx(network.total_load_current(), rel=1e-6)

    def test_line_currents_cover_all_lines(self, solved, tiny_topology):
        network, result = solved
        per_line = line_currents(network, result)
        assert set(per_line) == set(range(tiny_topology.num_lines))
        assert all(value >= 0 for value in per_line.values())

    def test_dissipated_power_positive_and_sane(self, solved):
        network, result = solved
        power = total_dissipated_power(network, result)
        assert power > 0
        # Dissipated power cannot exceed the power delivered at Vdd.
        assert power < network.vdd * network.total_load_current()
