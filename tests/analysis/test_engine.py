"""Tests for the cached-factorization, multi-RHS analysis engine.

The acceptance bar for the engine is strict numerical equivalence with the
legacy per-solve :class:`IRDropAnalyzer` path (≤ 1e-9 per node voltage) plus
the guarantee that a current-only perturbation sweep is served by exactly
one sparse factorization.
"""

import numpy as np
import pytest

from repro.analysis import (
    BatchedAnalysisEngine,
    IRDropAnalyzer,
    VectorlessAnalyzer,
    uniform_budget,
)
from repro.core import batched_solve_study
from repro.grid import (
    NetworkPerturbator,
    PerturbationKind,
    PerturbationSpec,
    SyntheticIBMSuite,
    perturbed_load_matrix,
)

VOLTAGE_TOLERANCE = 1e-9


def max_voltage_difference(legacy_result, engine_result):
    """Worst per-node voltage difference between two analysis results."""
    assert set(legacy_result.node_voltages) == set(engine_result.node_voltages)
    return max(
        abs(voltage - engine_result.node_voltages[name])
        for name, voltage in legacy_result.node_voltages.items()
    )


@pytest.fixture(scope="module")
def ibmpg1_grid():
    """The smallest suite benchmark, built with uniform 5 um stripes."""
    return SyntheticIBMSuite().load("ibmpg1").build_uniform_grid(5.0)


@pytest.fixture(scope="module")
def ibmpg2_grid():
    """A second, larger benchmark grid (half-scale ibmpg2)."""
    return SyntheticIBMSuite(scale=0.5).load("ibmpg2").build_uniform_grid(5.0)


class TestSingleSolveEquivalence:
    @pytest.mark.parametrize("grid_fixture", ["ibmpg1_grid", "ibmpg2_grid"])
    def test_engine_matches_legacy_analyzer(self, grid_fixture, request):
        grid = request.getfixturevalue(grid_fixture)
        legacy = IRDropAnalyzer().analyze(grid)
        engine = BatchedAnalysisEngine().analyze(grid)
        assert max_voltage_difference(legacy, engine) <= VOLTAGE_TOLERANCE
        assert engine.worst_ir_drop == pytest.approx(legacy.worst_ir_drop, abs=1e-9)
        assert engine.worst_node == legacy.worst_node
        assert engine.average_ir_drop == pytest.approx(legacy.average_ir_drop, abs=1e-9)

    @pytest.mark.parametrize("grid_fixture", ["ibmpg1_grid", "ibmpg2_grid"])
    def test_load_perturbed_equivalence(self, grid_fixture, request):
        grid = request.getfixturevalue(grid_fixture)
        spec = PerturbationSpec(gamma=0.25, kind=PerturbationKind.CURRENT_WORKLOADS, seed=42)
        perturbed = NetworkPerturbator(spec).perturb(grid)
        legacy = IRDropAnalyzer().analyze(perturbed)
        engine = BatchedAnalysisEngine().analyze(perturbed)
        assert max_voltage_difference(legacy, engine) <= VOLTAGE_TOLERANCE

    @pytest.mark.parametrize("grid_fixture", ["ibmpg1_grid", "ibmpg2_grid"])
    def test_pad_perturbed_equivalence(self, grid_fixture, request):
        grid = request.getfixturevalue(grid_fixture)
        spec = PerturbationSpec(gamma=0.15, kind=PerturbationKind.NODE_VOLTAGES, seed=17)
        perturbed = NetworkPerturbator(spec).perturb(grid)
        legacy = IRDropAnalyzer().analyze(perturbed)
        engine = BatchedAnalysisEngine().analyze(perturbed)
        assert max_voltage_difference(legacy, engine) <= VOLTAGE_TOLERANCE

    def test_pad_perturbation_reuses_factorization(self, ibmpg1_grid):
        """Pad voltages only enter the RHS, so the factorization is shared."""
        engine = BatchedAnalysisEngine()
        engine.analyze(ibmpg1_grid)
        spec = PerturbationSpec(gamma=0.15, kind=PerturbationKind.NODE_VOLTAGES, seed=17)
        engine.analyze(NetworkPerturbator(spec).perturb(ibmpg1_grid))
        info = engine.cache_info()
        assert info.factorizations == 1
        assert info.hits == 1


class TestBatchedSolve:
    def test_batch_matches_legacy_per_scenario(self, ibmpg1_grid):
        spec = PerturbationSpec(gamma=0.2, kind=PerturbationKind.CURRENT_WORKLOADS, seed=5)
        num_scenarios = 12
        load_matrix = perturbed_load_matrix(ibmpg1_grid, spec, num_scenarios)
        batch = BatchedAnalysisEngine().analyze_batch(ibmpg1_grid, load_matrix)
        compiled = ibmpg1_grid.compile()
        analyzer = IRDropAnalyzer()
        for scenario in range(num_scenarios):
            per_scenario_spec = PerturbationSpec(
                gamma=spec.gamma, kind=spec.kind, seed=spec.seed + scenario
            )
            perturbed = NetworkPerturbator(per_scenario_spec).perturb(ibmpg1_grid)
            legacy = analyzer.analyze(perturbed)
            legacy_voltages = compiled.voltage_array(legacy.node_voltages)
            difference = np.abs(legacy_voltages - batch.scenario_voltages(scenario)).max()
            assert difference <= VOLTAGE_TOLERANCE

    def test_sweep_of_50_scenarios_uses_one_factorization(self, ibmpg1_grid):
        """Acceptance criterion: ≥50 current-only scenarios, one factorization."""
        spec = PerturbationSpec(gamma=0.3, kind=PerturbationKind.CURRENT_WORKLOADS, seed=9)
        engine = BatchedAnalysisEngine()
        load_matrix = perturbed_load_matrix(ibmpg1_grid, spec, 50)
        batch = engine.analyze_batch(ibmpg1_grid, load_matrix)
        assert batch.num_scenarios == 50
        assert engine.cache_info().factorizations == 1

        # Solving the scenarios one by one against the same engine must not
        # trigger any further factorization either.
        for scenario in range(0, 50, 10):
            engine.analyze(ibmpg1_grid, loads=load_matrix[scenario])
        info = engine.cache_info()
        assert info.factorizations == 1
        assert info.hits >= 5

    def test_batch_results_materialise_consistently(self, ibmpg1_grid):
        spec = PerturbationSpec(gamma=0.1, kind=PerturbationKind.CURRENT_WORKLOADS, seed=3)
        load_matrix = perturbed_load_matrix(ibmpg1_grid, spec, 4)
        batch = BatchedAnalysisEngine().analyze_batch(
            ibmpg1_grid, load_matrix, names=[f"s{i}" for i in range(4)]
        )
        result = batch.result(2)
        assert result.network_name == "s2"
        assert result.worst_ir_drop == pytest.approx(float(batch.worst_ir_drop[2]))
        assert result.node_ir_drop[result.worst_node] == pytest.approx(result.worst_ir_drop)
        assert result.vdd == ibmpg1_grid.vdd
        drops = np.asarray(list(result.node_ir_drop.values()))
        assert result.average_ir_drop == pytest.approx(drops.mean())

    def test_batch_rejects_bad_inputs(self, ibmpg1_grid):
        engine = BatchedAnalysisEngine()
        with pytest.raises(ValueError):
            engine.analyze_batch(ibmpg1_grid, np.zeros(ibmpg1_grid.compile().num_nodes))
        with pytest.raises(ValueError):
            engine.analyze_batch(
                ibmpg1_grid,
                np.zeros((2, ibmpg1_grid.compile().num_nodes)),
                names=["only-one"],
            )
        with pytest.raises(ValueError, match="at least one scenario"):
            engine.analyze_batch(
                ibmpg1_grid, np.zeros((0, ibmpg1_grid.compile().num_nodes))
            )

    def test_factorization_reused_flag(self, ibmpg1_grid):
        engine = BatchedAnalysisEngine()
        loads = np.tile(ibmpg1_grid.compile().base_loads, (2, 1))
        first = engine.analyze_batch(ibmpg1_grid, loads)
        second = engine.analyze_batch(ibmpg1_grid, loads)
        assert not first.factorization_reused
        assert second.factorization_reused


class TestCGFallback:
    """Above direct_size_limit the engine preserves the legacy AUTO policy:
    memory-lean preconditioned CG instead of a cached LU factorization."""

    def test_large_system_falls_back_to_cg(self, ibmpg1_grid):
        engine = BatchedAnalysisEngine(direct_size_limit=10)
        legacy = IRDropAnalyzer().analyze(ibmpg1_grid)
        result = engine.analyze(ibmpg1_grid)
        assert result.solver_method == "cg"
        assert result.solver_iterations > 0
        assert engine.cache_info().factorizations == 0
        assert max_voltage_difference(legacy, result) <= 1e-6

    def test_cg_fallback_batch(self, ibmpg1_grid):
        engine = BatchedAnalysisEngine(direct_size_limit=10)
        loads = np.tile(ibmpg1_grid.compile().base_loads, (3, 1))
        batch = engine.analyze_batch(ibmpg1_grid, loads)
        assert batch.num_scenarios == 3
        assert not batch.factorization_reused
        assert engine.cache_info().factorizations == 0
        reference = IRDropAnalyzer().analyze(ibmpg1_grid)
        compiled = ibmpg1_grid.compile()
        reference_voltages = compiled.voltage_array(reference.node_voltages)
        for scenario in range(3):
            assert np.abs(
                batch.scenario_voltages(scenario) - reference_voltages
            ).max() <= 1e-6

    def test_invalid_direct_size_limit_rejected(self):
        with pytest.raises(ValueError):
            BatchedAnalysisEngine(direct_size_limit=0)


class TestCacheManagement:
    def test_lru_eviction(self, ibmpg1_grid, ibmpg2_grid):
        engine = BatchedAnalysisEngine(cache_size=1)
        engine.analyze(ibmpg1_grid)
        engine.analyze(ibmpg2_grid)
        engine.analyze(ibmpg1_grid)
        info = engine.cache_info()
        assert info.factorizations == 3
        assert info.entries == 1

    def test_clear_cache(self, ibmpg1_grid):
        engine = BatchedAnalysisEngine()
        engine.analyze(ibmpg1_grid)
        engine.clear_cache()
        assert engine.cache_info().entries == 0
        engine.analyze(ibmpg1_grid)
        assert engine.cache_info().factorizations == 2

    def test_invalid_cache_size_rejected(self):
        with pytest.raises(ValueError):
            BatchedAnalysisEngine(cache_size=0)

    def test_network_without_pads_rejected(self):
        from repro.grid import GridNode, PowerGridNetwork

        network = PowerGridNetwork()
        network.add_node(GridNode(name="a", x=0.0, y=0.0))
        with pytest.raises(ValueError):
            BatchedAnalysisEngine().analyze(network)


class TestVectorlessWithEngine:
    def test_batched_vectorless_matches_legacy(self, ibmpg1_grid):
        budget = uniform_budget(ibmpg1_grid, headroom=1.4, utilisation=0.9)
        legacy = VectorlessAnalyzer(IRDropAnalyzer()).analyze(ibmpg1_grid, budget)
        batched = VectorlessAnalyzer(BatchedAnalysisEngine()).analyze(ibmpg1_grid, budget)
        assert max_voltage_difference(
            legacy.nominal_result, batched.nominal_result
        ) <= VOLTAGE_TOLERANCE
        assert max_voltage_difference(
            legacy.bound_result, batched.bound_result
        ) <= VOLTAGE_TOLERANCE
        assert batched.pessimism == pytest.approx(legacy.pessimism, rel=1e-9)
        assert batched.bound_result.network_name == legacy.bound_result.network_name

    def test_default_vectorless_uses_one_factorization(self, ibmpg1_grid):
        engine = BatchedAnalysisEngine()
        VectorlessAnalyzer(engine).analyze(ibmpg1_grid, uniform_budget(ibmpg1_grid))
        assert engine.cache_info().factorizations == 1


class TestBatchedSolveStudy:
    def test_study_reports_equivalence_and_single_factorization(self, ibmpg1_grid):
        spec = PerturbationSpec(gamma=0.2, kind=PerturbationKind.CURRENT_WORKLOADS, seed=1)
        study = batched_solve_study(ibmpg1_grid, spec, num_scenarios=8)
        assert study.num_scenarios == 8
        assert study.batched_factorizations == 1
        assert study.max_voltage_difference <= VOLTAGE_TOLERANCE
        record = study.as_record()
        assert record["benchmark"] == ibmpg1_grid.name
        assert record["speedup"] == pytest.approx(study.speedup)
