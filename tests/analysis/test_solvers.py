"""Tests for the pluggable solver-backend layer and incremental updates.

The acceptance bar: voltages served through a low-rank incremental update
(Woodbury or preconditioned CG) must agree with a fresh factorization to
1e-9 on every resize shape — single line, stripe, full grid (where the
crossover policy must fall back to fresh factors instead) — and the
CHOLMOD backend, where installed, must be solution-equivalent to SuperLU.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis import (
    SOLVER_ENV,
    BatchedAnalysisEngine,
    CholmodBackend,
    PreconditionedUpdateFactorization,
    SpluBackend,
    UpdateDivergenceError,
    UpdatePolicy,
    WoodburyFactorization,
    cholmod_available,
    make_update_factorization,
    resolve_solver_backend,
)
from repro.grid import GridBuilder, SyntheticIBMSuite

VOLTAGE_TOLERANCE = 1e-9


@pytest.fixture(scope="module")
def ibmpg1_bench():
    return SyntheticIBMSuite().load("ibmpg1")


@pytest.fixture(scope="module")
def builder(ibmpg1_bench):
    return GridBuilder(ibmpg1_bench.technology)


@pytest.fixture(scope="module")
def base_compiled(ibmpg1_bench, builder):
    """The ibmpg1 grid at uniform 5 um, compiled once per module."""
    network = builder.build(ibmpg1_bench.floorplan, ibmpg1_bench.topology, 5.0)
    return network.compile()


def resized(builder, bench, base, line_scale):
    """A compiled clone with per-line widths ``5.0 * line_scale``."""
    widths = 5.0 * np.asarray(line_scale, dtype=float)
    return builder.resize_compiled(base, bench.topology, widths)


def single_line_scale(bench):
    scale = np.ones(bench.topology.num_lines)
    scale[0] = 1.4
    return scale


def stripe_scale(bench):
    scale = np.ones(bench.topology.num_lines)
    scale[2:7] = 1.3
    return scale


# ----------------------------------------------------------------------
# Update provenance and incidence extraction on the compiled grid
# ----------------------------------------------------------------------
class TestUpdateColumns:
    def test_base_grid_has_no_update_provenance(self, base_compiled):
        assert base_compiled.update_base_fingerprint is None
        assert base_compiled.update_indices is None

    def test_clone_records_changed_indices(self, ibmpg1_bench, builder, base_compiled):
        clone = resized(builder, ibmpg1_bench, base_compiled, single_line_scale(ibmpg1_bench))
        assert clone.update_base_fingerprint == base_compiled.fingerprint
        changed = clone.update_indices
        assert changed is not None and changed.size > 0
        untouched = np.setdiff1d(np.arange(base_compiled.num_resistors), changed)
        assert np.array_equal(
            clone.conductance[untouched], base_compiled.conductance[untouched]
        )
        assert np.all(clone.conductance[changed] != base_compiled.conductance[changed])

    def test_provenance_is_per_clone_not_inherited(
        self, ibmpg1_bench, builder, base_compiled
    ):
        clone = resized(builder, ibmpg1_bench, base_compiled, single_line_scale(ibmpg1_bench))
        chained = resized(builder, ibmpg1_bench, clone, stripe_scale(ibmpg1_bench))
        assert chained.update_base_fingerprint == clone.fingerprint
        assert chained.update_base_fingerprint != base_compiled.fingerprint

    def test_low_rank_term_reproduces_matrix_difference(
        self, ibmpg1_bench, builder, base_compiled
    ):
        """ΔG = B·diag(Δg)·Bᵀ must equal the reduced-matrix difference."""
        clone = resized(builder, ibmpg1_bench, base_compiled, stripe_scale(ibmpg1_bench))
        incidence, active = clone.update_columns(clone.update_indices)
        assert incidence.shape == (clone.num_unknowns, active.size)
        delta = clone.conductance[active] - base_compiled.conductance[active]
        assert np.all(delta != 0.0)
        low_rank = (incidence @ sp.diags(delta) @ incidence.T).toarray()
        difference = (clone.reduced_matrix - base_compiled.reduced_matrix).toarray()
        np.testing.assert_allclose(low_rank, difference, atol=1e-12)

    def test_branches_without_matrix_effect_are_filtered(self, base_compiled):
        """Pad-pad / ground-side branches contribute nothing to the reduced
        matrix, so feeding *every* branch index must yield a reduced-rank
        column set (never more columns than branches)."""
        all_indices = np.arange(base_compiled.num_resistors)
        incidence, active = base_compiled.update_columns(all_indices)
        assert active.size <= all_indices.size
        assert incidence.shape == (base_compiled.num_unknowns, active.size)


# ----------------------------------------------------------------------
# Incremental solves agree with fresh factorizations
# ----------------------------------------------------------------------
class TestIncrementalAgreement:
    def check_resize(self, bench, builder, base, scale):
        engine = BatchedAnalysisEngine()
        oracle = BatchedAnalysisEngine(incremental_updates=False)
        engine.analyze(base)
        oracle.analyze(base)
        clone = resized(builder, bench, base, scale)
        incremental = engine.solve_voltages(clone)
        fresh = oracle.solve_voltages(clone)
        assert np.max(np.abs(incremental - fresh)) <= VOLTAGE_TOLERANCE
        return engine, oracle

    def test_single_line_resize(self, ibmpg1_bench, builder, base_compiled):
        engine, oracle = self.check_resize(
            ibmpg1_bench, builder, base_compiled, single_line_scale(ibmpg1_bench)
        )
        assert engine.cache_info().updates == 1
        assert engine.cache_info().update_fallbacks == 0
        assert engine.cache_info().factorizations == 1
        assert oracle.cache_info().updates == 0
        assert oracle.cache_info().factorizations == 2

    def test_stripe_resize(self, ibmpg1_bench, builder, base_compiled):
        engine, _ = self.check_resize(
            ibmpg1_bench, builder, base_compiled, stripe_scale(ibmpg1_bench)
        )
        assert engine.cache_info().updates == 1

    def test_downsize_also_served_incrementally(
        self, ibmpg1_bench, builder, base_compiled
    ):
        scale = np.ones(ibmpg1_bench.topology.num_lines)
        scale[1] = 0.6
        engine, _ = self.check_resize(ibmpg1_bench, builder, base_compiled, scale)
        assert engine.cache_info().updates == 1

    def test_chained_resizes_update_the_original_factors(
        self, ibmpg1_bench, builder, base_compiled
    ):
        """Resize-of-a-resize still references the first direct factors;
        updates never stack on updates."""
        engine = BatchedAnalysisEngine()
        oracle = BatchedAnalysisEngine(incremental_updates=False)
        engine.analyze(base_compiled)
        first = resized(builder, ibmpg1_bench, base_compiled, single_line_scale(ibmpg1_bench))
        engine.analyze(first)
        second = resized(builder, ibmpg1_bench, first, stripe_scale(ibmpg1_bench))
        incremental = engine.solve_voltages(second)
        fresh = oracle.solve_voltages(second)
        assert np.max(np.abs(incremental - fresh)) <= VOLTAGE_TOLERANCE
        info = engine.cache_info()
        assert info.updates == 2
        assert info.factorizations == 1
        factor, _ = engine._factor(second)
        assert factor.is_update
        assert factor.direct is engine._factor(base_compiled)[0]

    def test_full_grid_resize_crosses_over_to_fresh_factors(
        self, ibmpg1_bench, builder, base_compiled
    ):
        engine = BatchedAnalysisEngine()
        engine.analyze(base_compiled)
        clone = resized(
            builder,
            ibmpg1_bench,
            base_compiled,
            np.full(ibmpg1_bench.topology.num_lines, 1.6),
        )
        voltages = engine.solve_voltages(clone)
        info = engine.cache_info()
        assert info.update_fallbacks == 1
        assert info.updates == 0
        assert info.factorizations == 2
        fresh = BatchedAnalysisEngine().solve_voltages(clone)
        np.testing.assert_array_equal(voltages, fresh)

    def test_identical_conductances_hit_the_cache(self, base_compiled):
        """A clone whose conductances did not change keeps the fingerprint,
        so it is served as a plain cache hit — no update is even built."""
        clone = base_compiled.with_conductances(base_compiled.conductance.copy())
        assert clone.update_indices.size == 0
        assert clone.fingerprint == base_compiled.fingerprint
        engine = BatchedAnalysisEngine()
        engine.analyze(base_compiled)
        engine.analyze(clone)
        info = engine.cache_info()
        assert info.factorizations == 1
        assert info.hits == 1
        assert info.updates == 0

    def test_rank_zero_update_reuses_direct_factors(self, base_compiled):
        """A delta with no matrix effect (rank 0) serves the clone with the
        base entry's direct factors instead of building anything."""
        engine = BatchedAnalysisEngine()
        engine.analyze(base_compiled)
        entry = engine._cache[engine._cache_key(base_compiled.fingerprint)]
        clone = base_compiled.with_conductances(base_compiled.conductance.copy())
        rank_zero = engine._update_entry(clone, entry)
        assert rank_zero is not None
        assert rank_zero.factor is entry.direct
        assert engine.cache_info().updates == 1
        assert engine.cache_info().factorizations == 1

    def test_update_not_attempted_when_base_evicted(
        self, ibmpg1_bench, builder, base_compiled
    ):
        engine = BatchedAnalysisEngine()
        engine.analyze(base_compiled)
        engine.clear_cache()
        clone = resized(builder, ibmpg1_bench, base_compiled, single_line_scale(ibmpg1_bench))
        engine.analyze(clone)
        info = engine.cache_info()
        assert info.updates == 0
        assert info.factorizations == 2

    def test_incremental_updates_disabled(self, ibmpg1_bench, builder, base_compiled):
        engine = BatchedAnalysisEngine(incremental_updates=False)
        engine.analyze(base_compiled)
        clone = resized(builder, ibmpg1_bench, base_compiled, single_line_scale(ibmpg1_bench))
        engine.analyze(clone)
        assert engine.cache_info().updates == 0
        assert engine.cache_info().factorizations == 2


# ----------------------------------------------------------------------
# The two update implementations and the policy crossover between them
# ----------------------------------------------------------------------
class TestUpdateFactorizations:
    @pytest.fixture(scope="class")
    def update_pieces(self, ibmpg1_bench, builder, base_compiled):
        clone = resized(builder, ibmpg1_bench, base_compiled, stripe_scale(ibmpg1_bench))
        incidence, active = clone.update_columns(clone.update_indices)
        delta = clone.conductance[active] - base_compiled.conductance[active]
        base_factor = SpluBackend().factor(base_compiled.reduced_matrix)
        return clone, base_factor, incidence, delta

    def test_dense_woodbury_matches_direct_solve(self, update_pieces):
        clone, base_factor, incidence, delta = update_pieces
        policy = UpdatePolicy(dense_rank_limit=int(delta.size))
        factor = make_update_factorization(
            clone.reduced_matrix, base_factor, incidence, delta, policy
        )
        assert isinstance(factor, WoodburyFactorization)
        assert factor.is_update and factor.update_rank == delta.size
        assert factor.direct is base_factor
        rhs = clone.rhs()
        direct = SpluBackend().factor(clone.reduced_matrix).solve(rhs)
        assert np.max(np.abs(factor.solve(rhs) - direct)) <= VOLTAGE_TOLERANCE

    def test_preconditioned_cg_matches_direct_solve(self, update_pieces):
        clone, base_factor, incidence, delta = update_pieces
        policy = UpdatePolicy(dense_rank_limit=0)
        factor = make_update_factorization(
            clone.reduced_matrix, base_factor, incidence, delta, policy
        )
        assert isinstance(factor, PreconditionedUpdateFactorization)
        rhs = clone.rhs()
        direct = SpluBackend().factor(clone.reduced_matrix).solve(rhs)
        assert np.max(np.abs(factor.solve(rhs) - direct)) <= VOLTAGE_TOLERANCE
        assert 0 < factor.iterations <= policy.maxiter

    def test_block_rhs_solves_column_wise(self, update_pieces):
        clone, base_factor, incidence, delta = update_pieces
        policy = UpdatePolicy(dense_rank_limit=0)
        factor = make_update_factorization(
            clone.reduced_matrix, base_factor, incidence, delta, policy
        )
        block = np.column_stack([clone.rhs(), 2.0 * clone.rhs()])
        direct = SpluBackend().factor(clone.reduced_matrix).solve(block)
        assert np.max(np.abs(factor.solve(block) - direct)) <= VOLTAGE_TOLERANCE

    def test_iteration_cap_raises_divergence(self, update_pieces):
        clone, base_factor, incidence, delta = update_pieces
        policy = UpdatePolicy(dense_rank_limit=0, rtol=1e-15, maxiter=1)
        factor = make_update_factorization(
            clone.reduced_matrix, base_factor, incidence, delta, policy
        )
        with pytest.raises(UpdateDivergenceError):
            factor.solve(clone.rhs())

    def test_engine_downgrades_on_divergence(
        self, ibmpg1_bench, builder, base_compiled
    ):
        """A diverging update must be replaced by fresh factors mid-solve,
        still returning accurate voltages."""
        engine = BatchedAnalysisEngine(
            update_policy=UpdatePolicy(dense_rank_limit=0, rtol=1e-15, maxiter=1)
        )
        engine.analyze(base_compiled)
        clone = resized(builder, ibmpg1_bench, base_compiled, stripe_scale(ibmpg1_bench))
        voltages = engine.solve_voltages(clone)
        info = engine.cache_info()
        assert info.updates == 1  # the update was built...
        assert info.update_fallbacks == 1  # ...then downgraded at solve time
        assert info.factorizations == 2
        fresh = BatchedAnalysisEngine().solve_voltages(clone)
        assert np.max(np.abs(voltages - fresh)) <= VOLTAGE_TOLERANCE
        assert not engine._factor(clone)[0].is_update

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            UpdatePolicy(dense_rank_limit=-1)
        with pytest.raises(ValueError):
            UpdatePolicy(crossover_fraction=0.0)
        with pytest.raises(ValueError):
            UpdatePolicy(crossover_fraction=1.5)
        with pytest.raises(ValueError):
            UpdatePolicy(rtol=0.0)
        with pytest.raises(ValueError):
            UpdatePolicy(maxiter=0)


# ----------------------------------------------------------------------
# The explicit factor_update API
# ----------------------------------------------------------------------
class TestFactorUpdate:
    def test_explicit_update_and_cache_hit(self, ibmpg1_bench, builder, base_compiled):
        engine = BatchedAnalysisEngine(incremental_updates=False)
        clone = resized(builder, ibmpg1_bench, base_compiled, single_line_scale(ibmpg1_bench))
        factor = engine.factor_update(base_compiled, clone)
        assert factor.is_update and factor.update_rank > 0
        assert engine.cache_info().updates == 1
        again = engine.factor_update(base_compiled, clone)
        assert again is factor
        # The repeat call hits twice: once re-serving the base factors,
        # once finding the update entry under the clone's fingerprint.
        assert engine.cache_info().hits == 2

    def test_topology_mismatch_rejected(self, base_compiled, tiny_grid):
        engine = BatchedAnalysisEngine()
        with pytest.raises(ValueError, match="sharing one topology"):
            engine.factor_update(base_compiled, tiny_grid.compile())

    def test_cg_sized_systems_rejected(self, ibmpg1_bench, builder, base_compiled):
        engine = BatchedAnalysisEngine(direct_size_limit=4)
        clone = resized(builder, ibmpg1_bench, base_compiled, single_line_scale(ibmpg1_bench))
        with pytest.raises(ValueError, match="direct"):
            engine.factor_update(base_compiled, clone)


# ----------------------------------------------------------------------
# Backend policy resolution (names, environment, degrade path)
# ----------------------------------------------------------------------
class TestBackendResolution:
    def test_default_is_splu(self, monkeypatch):
        monkeypatch.delenv(SOLVER_ENV, raising=False)
        assert resolve_solver_backend().name == "splu"
        assert resolve_solver_backend("splu").name == "splu"

    def test_environment_selects_backend(self, monkeypatch):
        monkeypatch.setenv(SOLVER_ENV, "splu")
        assert resolve_solver_backend().name == "splu"

    def test_environment_invalid_name_mentions_variable(self, monkeypatch):
        monkeypatch.setenv(SOLVER_ENV, "pardiso")
        with pytest.raises(ValueError, match=SOLVER_ENV):
            resolve_solver_backend()

    def test_invalid_explicit_name(self):
        with pytest.raises(ValueError, match="pardiso"):
            resolve_solver_backend("pardiso")

    def test_backend_instance_passes_through(self):
        backend = SpluBackend()
        assert resolve_solver_backend(backend) is backend

    def test_non_backend_object_rejected(self):
        with pytest.raises(TypeError):
            resolve_solver_backend(3.14)

    @pytest.mark.skipif(cholmod_available(), reason="scikit-sparse is installed")
    def test_auto_degrades_silently_without_cholmod(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_solver_backend("auto").name == "splu"

    @pytest.mark.skipif(cholmod_available(), reason="scikit-sparse is installed")
    def test_cholmod_request_warns_and_degrades(self):
        with pytest.warns(RuntimeWarning, match="degrading to the 'splu' backend"):
            backend = resolve_solver_backend("cholmod")
        assert backend.name == "splu"

    @pytest.mark.skipif(cholmod_available(), reason="scikit-sparse is installed")
    def test_engine_degrades_to_splu_without_cholmod(self, base_compiled):
        """The whole engine stays usable on a cholmod request: policy
        resolution warns, the splu backend serves every solve."""
        with pytest.warns(RuntimeWarning, match="scikit-sparse"):
            engine = BatchedAnalysisEngine(solver="cholmod")
        assert engine.cache_info().backend == "splu"
        voltages = engine.solve_voltages(base_compiled)
        assert np.all(np.isfinite(voltages))

    @pytest.mark.skipif(cholmod_available(), reason="scikit-sparse is installed")
    def test_cholmod_backend_factor_raises_without_binding(self, base_compiled):
        from repro.analysis import LinearSolverError

        with pytest.raises(LinearSolverError, match="scikit-sparse"):
            CholmodBackend().factor(base_compiled.reduced_matrix)


# ----------------------------------------------------------------------
# CHOLMOD equivalence (runs only where scikit-sparse is installed)
# ----------------------------------------------------------------------
@pytest.mark.skipif(not cholmod_available(), reason="scikit-sparse not installed")
class TestCholmodEquivalence:
    def test_backend_resolves(self):
        assert resolve_solver_backend("cholmod").name == "cholmod"
        assert resolve_solver_backend("auto").name == "cholmod"

    def test_voltages_match_splu(self, base_compiled):
        cholmod = BatchedAnalysisEngine(solver="cholmod")
        splu = BatchedAnalysisEngine(solver="splu")
        diff = cholmod.solve_voltages(base_compiled) - splu.solve_voltages(base_compiled)
        assert np.max(np.abs(diff)) <= VOLTAGE_TOLERANCE
        assert cholmod.cache_info().backend == "cholmod"

    def test_incremental_updates_on_cholmod_base(
        self, ibmpg1_bench, builder, base_compiled
    ):
        engine = BatchedAnalysisEngine(solver="cholmod")
        engine.analyze(base_compiled)
        clone = resized(builder, ibmpg1_bench, base_compiled, stripe_scale(ibmpg1_bench))
        incremental = engine.solve_voltages(clone)
        fresh = BatchedAnalysisEngine(solver="splu").solve_voltages(clone)
        assert np.max(np.abs(incremental - fresh)) <= VOLTAGE_TOLERANCE
        assert engine.cache_info().updates == 1


# ----------------------------------------------------------------------
# Counters and cache-key semantics
# ----------------------------------------------------------------------
class TestCacheSemantics:
    def test_counters_survive_clear_cache(self, ibmpg1_bench, builder, base_compiled):
        engine = BatchedAnalysisEngine()
        engine.analyze(base_compiled)
        clone = resized(builder, ibmpg1_bench, base_compiled, single_line_scale(ibmpg1_bench))
        engine.analyze(clone)
        before = engine.cache_info()
        assert before.updates == 1 and before.entries == 2
        engine.clear_cache()
        after = engine.cache_info()
        assert after.entries == 0
        assert after.factorizations == before.factorizations
        assert after.updates == before.updates
        assert after.update_fallbacks == before.update_fallbacks

    def test_cache_keys_are_backend_qualified(self, base_compiled):
        engine = BatchedAnalysisEngine()
        engine.analyze(base_compiled)
        (key,) = engine._cache.keys()
        assert key == f"splu:{base_compiled.fingerprint}"

    def test_cache_info_reports_backend(self):
        assert BatchedAnalysisEngine().cache_info().backend == "splu"
        assert BatchedAnalysisEngine(solver="auto").cache_info().backend in (
            "splu",
            "cholmod",
        )
