"""Property-based tests of the analysis engine's physical invariants.

These tests generate random small power grids with hypothesis and check the
properties any correct static IR-drop engine must satisfy: linearity in the
loads (superposition), monotonicity in wire width, voltage bounds, and
conservation of current at the pads.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import IRDropAnalyzer, current_conservation_error, pad_currents
from repro.grid import (
    Floorplan,
    FunctionalBlock,
    GridBuilder,
    PowerPad,
    generic_45nm,
    uniform_topology,
)

_TECH = generic_45nm()


def _random_floorplan(data: st.DataObject) -> Floorplan:
    """Draw a small random floorplan with 1-4 blocks and 1-4 pads."""
    core = data.draw(st.floats(min_value=500.0, max_value=2000.0), label="core")
    num_blocks = data.draw(st.integers(min_value=1, max_value=4), label="num_blocks")
    blocks = []
    for index in range(num_blocks):
        width = data.draw(st.floats(min_value=core * 0.1, max_value=core * 0.4), label=f"bw{index}")
        height = data.draw(
            st.floats(min_value=core * 0.1, max_value=core * 0.4), label=f"bh{index}"
        )
        x = data.draw(st.floats(min_value=0.0, max_value=core - width), label=f"bx{index}")
        y = data.draw(st.floats(min_value=0.0, max_value=core - height), label=f"by{index}")
        current = data.draw(st.floats(min_value=0.01, max_value=0.5), label=f"bi{index}")
        blocks.append(FunctionalBlock(f"b{index}", x, y, width, height, current))
    num_pads = data.draw(st.integers(min_value=1, max_value=4), label="num_pads")
    pads = []
    for index in range(num_pads):
        px = data.draw(st.floats(min_value=0.0, max_value=core), label=f"px{index}")
        py = data.draw(st.floats(min_value=0.0, max_value=core), label=f"py{index}")
        pads.append(PowerPad(f"p{index}", px, py, _TECH.vdd))
    return Floorplan("prop", core, core, blocks=blocks, pads=pads)


def _build(floorplan: Floorplan, width: float = 5.0, lines: int = 6):
    topology = uniform_topology(floorplan, lines, lines)
    return GridBuilder(_TECH).build(floorplan, topology, width)


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_voltages_bounded_by_vdd_and_kcl_holds(data):
    """Node voltages never exceed Vdd, never go negative for sane loads, and
    Kirchhoff's current law holds at every non-pad node."""
    floorplan = _random_floorplan(data)
    network = _build(floorplan)
    result = IRDropAnalyzer().analyze(network)
    voltages = np.asarray(list(result.node_voltages.values()))
    assert np.all(voltages <= _TECH.vdd + 1e-9)
    assert result.worst_ir_drop >= -1e-12
    assert current_conservation_error(network, result) < 1e-7


@settings(max_examples=10, deadline=None)
@given(data=st.data(), scale=st.floats(min_value=0.1, max_value=3.0))
def test_superposition_in_load_currents(data, scale):
    """IR drop is linear in the load currents (the grid is a linear circuit)."""
    floorplan = _random_floorplan(data)
    network = _build(floorplan)
    analyzer = IRDropAnalyzer()
    base = analyzer.analyze(network)
    scaled = analyzer.analyze(network.with_scaled_loads(scale))
    assert scaled.worst_ir_drop == pytest.approx(scale * base.worst_ir_drop, rel=1e-6, abs=1e-12)


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_wider_wires_never_increase_worst_drop(data):
    """Uniformly widening every wire can only reduce the worst-case IR drop."""
    floorplan = _random_floorplan(data)
    analyzer = IRDropAnalyzer()
    narrow = analyzer.analyze(_build(floorplan, width=2.0))
    wide = analyzer.analyze(_build(floorplan, width=8.0))
    assert wide.worst_ir_drop <= narrow.worst_ir_drop + 1e-12


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_pad_currents_sum_to_load(data):
    """The pads together deliver exactly the total load current."""
    floorplan = _random_floorplan(data)
    network = _build(floorplan)
    result = IRDropAnalyzer().analyze(network)
    delivered = sum(pad_currents(network, result).values())
    assert delivered == pytest.approx(network.total_load_current(), rel=1e-6)
