"""Tests for the pluggable sweep-execution layer.

The core guarantee: a process-sharded sweep — scenario range split across
worker processes, each with its own factorization and its own fold — is
**bitwise-identical** to the sequential sweep for the streamed reductions
and every exact mergeable sink, at every shard count (1, an even split,
and a non-divisor).  The reservoir sink merges by weighted resampling and
is validated statistically; the order-dependent P² sink is rejected up
front with a pointer to the quantile sketch.  Also covered: executor
resolution
precedence (explicit executor > workers= > environment default), the
lenient fallback of :data:`EXECUTOR_ENV`, the adaptive chunk-width
heuristic, and top-k rematerialisation.
"""

import os
import pickle

import numpy as np
import pytest

from repro.analysis import (
    BatchedAnalysisEngine,
    CrossProductScenarioSource,
    ExceedanceCountSink,
    ExecutorIncompatibility,
    HybridExecutor,
    JointExceedanceSink,
    MatrixScenarioSource,
    MergeableSink,
    NodeHistogramSink,
    P2QuantileSink,
    ProcessShardedExecutor,
    ReservoirQuantileSink,
    SerialExecutor,
    SharedGridPayload,
    SweepPlan,
    ThreadedExecutor,
    TopKScenarioSink,
    VectorlessAnalyzer,
    make_executor,
    resolve_chunk_size,
    uniform_budget,
)
from repro.analysis.engine import (
    CHUNK_MEMORY_BUDGET_BYTES,
    MAX_CHUNK_SIZE,
    MIN_CHUNK_SIZE,
)
from repro.analysis.executors import (
    EXECUTOR_ENV,
    EXECUTOR_NAMES,
    HYBRID_SHARD_WORKERS_ENV,
    HYBRID_THREADS_ENV,
    attach_shard_state,
)
from repro.grid import (
    PerturbationKind,
    PerturbationSpec,
    SyntheticIBMSuite,
    mega_sweep_matrices,
    perturbed_load_matrix,
)

SHARD_COUNTS = [1, 2, 3]
"""Degenerate single shard, even split, and a non-divisor of 37."""


@pytest.fixture(scope="module")
def ibmpg1_bench():
    return SyntheticIBMSuite().load("ibmpg1")


@pytest.fixture(scope="module")
def ibmpg1_grid(ibmpg1_bench):
    return ibmpg1_bench.build_uniform_grid(5.0)


@pytest.fixture(scope="module")
def load_sweep(ibmpg1_grid):
    spec = PerturbationSpec(gamma=0.2, kind=PerturbationKind.CURRENT_WORKLOADS, seed=11)
    return perturbed_load_matrix(ibmpg1_grid, spec, 37)


@pytest.fixture(scope="module")
def nominal_worst(ibmpg1_grid):
    return BatchedAnalysisEngine().analyze(ibmpg1_grid).worst_ir_drop


def mergeable_sinks(threshold: float) -> dict:
    """Fresh instances of every mergeable sink family."""
    return {
        "reservoir": ReservoirQuantileSink(16, (0.5, 0.9), seed=3),
        "histogram": NodeHistogramSink.uniform(0.0, 2.0 * threshold + 1e-6, 8),
        "exceedance": ExceedanceCountSink(threshold),
        "joint": JointExceedanceSink(threshold),
        "topk": TopKScenarioSink(4),
    }


def assert_exact_sinks_identical(sequential: dict, sharded: dict) -> None:
    """Every exact mergeable sink must be bitwise-equal between sweeps."""
    seq_hist, shard_hist = sequential["histogram"].result(), sharded["histogram"].result()
    assert np.array_equal(seq_hist.counts, shard_hist.counts)
    assert np.array_equal(seq_hist.underflow, shard_hist.underflow)
    assert np.array_equal(seq_hist.overflow, shard_hist.overflow)
    assert np.array_equal(
        sequential["exceedance"].result().counts, sharded["exceedance"].result().counts
    )
    seq_joint, shard_joint = sequential["joint"].result(), sharded["joint"].result()
    assert np.array_equal(
        seq_joint.violating_node_counts, shard_joint.violating_node_counts
    )
    assert seq_joint.scenarios_with_violation == shard_joint.scenarios_with_violation
    seq_topk, shard_topk = sequential["topk"].result(), sharded["topk"].result()
    assert np.array_equal(seq_topk.scenario_index, shard_topk.scenario_index)
    assert np.array_equal(seq_topk.worst_ir_drop, shard_topk.worst_ir_drop)
    assert np.array_equal(seq_topk.worst_node_index, shard_topk.worst_node_index)


def assert_reductions_identical(sequential, sharded) -> None:
    assert np.array_equal(sequential.worst_ir_drop, sharded.worst_ir_drop)
    assert np.array_equal(sequential.average_ir_drop, sharded.average_ir_drop)
    assert np.array_equal(sequential.worst_node_index, sharded.worst_node_index)


class TestProcessShardedEquivalence:
    """Merge-equivalence suite: process shards == sequential, bitwise."""

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_batch_bitwise_matches_sequential(
        self, ibmpg1_grid, load_sweep, nominal_worst, shards
    ):
        engine = BatchedAnalysisEngine()
        seq_sinks = mergeable_sinks(nominal_worst)
        sequential = engine.analyze_batch(
            ibmpg1_grid,
            load_sweep,
            chunk_size=7,
            sinks=tuple(seq_sinks.values()),
            workers=1,
        )
        shard_sinks = mergeable_sinks(nominal_worst)
        sharded = engine.analyze_batch(
            ibmpg1_grid,
            load_sweep,
            chunk_size=7,
            sinks=tuple(shard_sinks.values()),
            executor=ProcessShardedExecutor(shards=shards),
        )
        assert_reductions_identical(sequential, sharded)
        assert_exact_sinks_identical(seq_sinks, shard_sinks)
        assert np.array_equal(sequential.solver_iterations, sharded.solver_iterations)
        assert sharded.solver_method == sequential.solver_method
        # Every shard observed the whole of its range exactly once.
        assert shard_sinks["topk"].num_consumed == load_sweep.shape[0]

    @pytest.mark.parametrize("shards", [2, 3])
    def test_mega_sweep_bitwise_matches_sequential(
        self, ibmpg1_grid, ibmpg1_bench, nominal_worst, shards
    ):
        load_matrix, pad_matrix = mega_sweep_matrices(
            ibmpg1_grid, ibmpg1_bench.floorplan, 0.2, 12, 8, seed=7
        )
        engine = BatchedAnalysisEngine()
        seq_sinks = mergeable_sinks(nominal_worst)
        sequential = engine.analyze_mega_sweep(
            ibmpg1_grid,
            load_matrix,
            pad_matrix,
            chunk_size=13,
            sinks=tuple(seq_sinks.values()),
            workers=1,
        )
        shard_sinks = mergeable_sinks(nominal_worst)
        sharded = engine.analyze_mega_sweep(
            ibmpg1_grid,
            load_matrix,
            pad_matrix,
            chunk_size=13,
            sinks=tuple(shard_sinks.values()),
            executor=ProcessShardedExecutor(shards=shards),
        )
        assert_reductions_identical(sequential, sharded)
        assert_exact_sinks_identical(seq_sinks, shard_sinks)
        assert sharded.executor == "processes"
        assert sharded.workers == shards

    def test_pad_batch_bitwise_matches_sequential(self, ibmpg1_grid, ibmpg1_bench):
        from repro.grid import perturbed_pad_voltage_matrix

        spec = PerturbationSpec(gamma=0.15, kind=PerturbationKind.NODE_VOLTAGES, seed=17)
        pad_matrix = perturbed_pad_voltage_matrix(ibmpg1_grid, spec, 9)
        engine = BatchedAnalysisEngine()
        sequential = engine.analyze_pad_batch(ibmpg1_grid, pad_matrix, chunk_size=2, workers=1)
        sharded = engine.analyze_pad_batch(
            ibmpg1_grid, pad_matrix, chunk_size=2, executor="processes"
        )
        assert_reductions_identical(sequential, sharded)

    def test_scenario_stream_with_picklable_source(self, ibmpg1_grid, load_sweep):
        engine = BatchedAnalysisEngine()
        source = MatrixScenarioSource(load_matrix=load_sweep)
        sequential = engine.analyze_scenario_stream(
            ibmpg1_grid, source, load_sweep.shape[0], chunk_size=5, workers=1
        )
        sharded = engine.analyze_scenario_stream(
            ibmpg1_grid,
            source,
            load_sweep.shape[0],
            chunk_size=5,
            executor=ProcessShardedExecutor(shards=3),
        )
        assert_reductions_identical(sequential, sharded)
        assert sharded.executor == "processes"

    def test_statistical_vectorless_bitwise_matches_sequential(self, ibmpg1_grid):
        budget = uniform_budget(ibmpg1_grid, headroom=1.3, utilisation=0.9)
        sequential = VectorlessAnalyzer(BatchedAnalysisEngine()).analyze_statistical(
            ibmpg1_grid, budget, 30, chunk_size=7, seed=5, workers=1
        )
        sharded = VectorlessAnalyzer(BatchedAnalysisEngine()).analyze_statistical(
            ibmpg1_grid,
            budget,
            30,
            chunk_size=7,
            seed=5,
            executor=ProcessShardedExecutor(shards=2),
        )
        assert_reductions_identical(sequential.sweep, sharded.sweep)
        assert sequential.worst_observed == sharded.worst_observed

    def test_parent_cache_warm_after_process_sweep(self, ibmpg1_grid, load_sweep):
        """One factorization lands in the parent for follow-up solves."""
        engine = BatchedAnalysisEngine()
        engine.analyze_batch(
            ibmpg1_grid, load_sweep, chunk_size=7, executor="processes"
        )
        assert engine.cache_info().factorizations == 1
        follow_up = engine.analyze(ibmpg1_grid)
        assert follow_up.worst_ir_drop > 0
        assert engine.cache_info().factorizations == 1  # served from cache

    def test_reservoir_merge_statistically_valid(self, ibmpg1_grid, nominal_worst):
        """Merged reservoirs estimate the true quantiles about as well as
        one sequential reservoir (deterministic seeds — no flakiness)."""
        spec = PerturbationSpec(
            gamma=0.25, kind=PerturbationKind.CURRENT_WORKLOADS, seed=13
        )
        big_sweep = perturbed_load_matrix(ibmpg1_grid, spec, 400)
        engine = BatchedAnalysisEngine()
        reference = engine.analyze_batch(ibmpg1_grid, big_sweep, chunk_size=64)
        worst = reference.worst_ir_drop
        true = np.quantile(worst, (0.5, 0.9))
        spread = worst.max() - worst.min()
        sink = ReservoirQuantileSink(64, (0.5, 0.9), seed=3)
        engine.analyze_batch(
            ibmpg1_grid,
            big_sweep,
            chunk_size=64,
            sinks=[sink],
            executor=ProcessShardedExecutor(shards=4),
        )
        estimate = sink.result()
        assert estimate.num_scenarios == 400
        assert np.all(np.abs(estimate.values - true) <= 0.15 * spread)


class TestProcessShardedRejections:
    def test_p2_rejected_with_pointer_to_sketch(self, ibmpg1_grid, load_sweep):
        engine = BatchedAnalysisEngine()
        with pytest.raises(ExecutorIncompatibility, match="QuantileSketchSink"):
            engine.analyze_batch(
                ibmpg1_grid,
                load_sweep,
                chunk_size=7,
                sinks=[P2QuantileSink([0.5])],
                executor=ProcessShardedExecutor(shards=2),
            )

    def test_p2_not_mergeable_reservoir_is(self):
        assert not isinstance(P2QuantileSink([0.5]), MergeableSink)
        assert isinstance(ReservoirQuantileSink(8, [0.5]), MergeableSink)

    def test_unpicklable_source_rejected(self, ibmpg1_grid, load_sweep):
        engine = BatchedAnalysisEngine()
        with pytest.raises(ExecutorIncompatibility, match="picklable"):
            engine.analyze_scenario_stream(
                ibmpg1_grid,
                # The closure is the point of the test: the runtime rejection
                # this asserts is what the lint rule catches statically.
                lambda begin, end: (load_sweep[begin:end], None),  # reprolint: disable=RPR002
                load_sweep.shape[0],
                chunk_size=5,
                executor="processes",
            )

    def test_incompatibility_raised_before_sinks_bind(self, ibmpg1_grid, load_sweep):
        """Rejection must leave the sinks reusable (nothing observed)."""
        engine = BatchedAnalysisEngine()
        p2 = P2QuantileSink([0.5])
        exceedance = ExceedanceCountSink(0.1)
        with pytest.raises(ExecutorIncompatibility):
            engine.analyze_batch(
                ibmpg1_grid,
                load_sweep,
                chunk_size=7,
                sinks=[exceedance, p2],
                executor="processes",
            )
        # The same sinks still run fine on the threaded path.
        engine.analyze_batch(
            ibmpg1_grid, load_sweep, chunk_size=7, sinks=[exceedance, p2], workers=2
        )
        assert exceedance.num_consumed == load_sweep.shape[0]


class TestExecutorResolution:
    def test_make_executor_names(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert make_executor("threads", 3).parallelism == 3
        assert make_executor("processes", 5).parallelism == 5
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("fibers")
        with pytest.raises(ValueError, match="serial"):
            make_executor("serial", 4)

    def test_executor_and_workers_conflict(self, ibmpg1_grid, load_sweep):
        engine = BatchedAnalysisEngine()
        with pytest.raises(ValueError, match="not both"):
            engine.analyze_batch(
                ibmpg1_grid,
                load_sweep,
                chunk_size=7,
                workers=2,
                executor=SerialExecutor(),
            )
        # A *named* executor combines with workers= as its parallelism.
        result = engine.analyze_batch(
            ibmpg1_grid, load_sweep, chunk_size=7, workers=2, executor="threads"
        )
        assert result.reductions is not None

    def test_serial_executor_matches_threads(self, ibmpg1_grid, load_sweep):
        engine = BatchedAnalysisEngine()
        serial = engine.analyze_batch(
            ibmpg1_grid, load_sweep, chunk_size=7, executor=SerialExecutor()
        )
        threaded = engine.analyze_batch(
            ibmpg1_grid, load_sweep, chunk_size=7, executor=ThreadedExecutor(3)
        )
        assert_reductions_identical(serial, threaded)

    def test_stream_reports_executor_name(self, ibmpg1_grid, load_sweep):
        engine = BatchedAnalysisEngine()
        source = MatrixScenarioSource(load_matrix=load_sweep)
        result = engine.analyze_scenario_stream(
            ibmpg1_grid,
            source,
            load_sweep.shape[0],
            chunk_size=5,
            executor=SerialExecutor(),
        )
        assert result.executor == "serial"
        assert result.workers == 1

    def test_env_default_executor(self, monkeypatch, ibmpg1_grid, load_sweep):
        monkeypatch.setenv(EXECUTOR_ENV, "processes")
        engine = BatchedAnalysisEngine()
        reference = BatchedAnalysisEngine(default_executor="serial").analyze_batch(
            ibmpg1_grid, load_sweep, chunk_size=7
        )
        sharded = engine.analyze_batch(ibmpg1_grid, load_sweep, chunk_size=7)
        assert_reductions_identical(reference, sharded)

    def test_env_default_falls_back_for_incompatible_sweeps(
        self, monkeypatch, ibmpg1_grid, load_sweep
    ):
        monkeypatch.setenv(EXECUTOR_ENV, "processes")
        engine = BatchedAnalysisEngine()
        # P² sink: not mergeable -> threads fallback, sweep still succeeds.
        sink = P2QuantileSink([0.5])
        engine.analyze_batch(ibmpg1_grid, load_sweep, chunk_size=7, sinks=[sink])
        assert sink.result().num_scenarios == load_sweep.shape[0]
        # Closure source: not picklable -> threads fallback.
        stream = engine.analyze_scenario_stream(
            ibmpg1_grid,
            lambda begin, end: (load_sweep[begin:end], None),
            load_sweep.shape[0],
            chunk_size=5,
        )
        assert stream.executor == "threads"

    def test_env_value_validated(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "bogus")
        with pytest.raises(ValueError, match=EXECUTOR_ENV):
            BatchedAnalysisEngine()

    def test_explicit_executor_overrides_env(self, monkeypatch, ibmpg1_grid, load_sweep):
        monkeypatch.setenv(EXECUTOR_ENV, "processes")
        engine = BatchedAnalysisEngine()
        # An explicit executor is strict: P² + processes raises even
        # though the environment default would have fallen back.
        with pytest.raises(ExecutorIncompatibility):
            engine.analyze_batch(
                ibmpg1_grid,
                load_sweep,
                chunk_size=7,
                sinks=[P2QuantileSink([0.5])],
                executor="processes",
            )

    def test_invalid_shards_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            ProcessShardedExecutor(shards=0)
        with pytest.raises(ValueError, match="start_method"):
            ProcessShardedExecutor(start_method="telepathy")


class TestCompiledGridPickling:
    def test_compiled_grid_round_trips_after_fingerprint(self, ibmpg1_grid):
        compiled = ibmpg1_grid.compile()
        compiled.fingerprint  # caches the (unpicklable) partial digest
        compiled.reduced_matrix
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.fingerprint == compiled.fingerprint
        assert clone.num_unknowns == compiled.num_unknowns
        assert (clone.reduced_matrix != compiled.reduced_matrix).nnz == 0


class TestResolveChunkSize:
    def test_bounds_pinned(self):
        assert resolve_chunk_size(10, workers=1) == MAX_CHUNK_SIZE
        assert resolve_chunk_size(50_000_000, workers=1) == MIN_CHUNK_SIZE
        # Exact interior point: 65536 unknowns x 2 workers x 32 B/scenario
        # = 4 MiB per scenario-slot; 256 MiB budget -> 64 scenarios.
        assert resolve_chunk_size(65536, workers=2) == 64

    def test_monotone_in_grid_size_and_workers(self):
        assert resolve_chunk_size(50_000, workers=1) >= resolve_chunk_size(
            200_000, workers=1
        )
        assert resolve_chunk_size(200_000, workers=1) >= resolve_chunk_size(
            200_000, workers=4
        )

    def test_defaults_and_budget(self):
        assert resolve_chunk_size(65536, workers=None) == resolve_chunk_size(
            65536, workers=os.cpu_count() or 1
        )
        assert resolve_chunk_size(
            65536, workers=2, memory_budget_bytes=2 * CHUNK_MEMORY_BUDGET_BYTES
        ) == 128

    def test_validation(self):
        with pytest.raises(ValueError, match="num_unknowns"):
            resolve_chunk_size(-1)
        with pytest.raises(ValueError, match="workers"):
            resolve_chunk_size(100, workers=0)
        with pytest.raises(ValueError, match="memory_budget_bytes"):
            resolve_chunk_size(100, memory_budget_bytes=0)

    def test_streamed_default_is_adaptive(self, ibmpg1_grid, load_sweep):
        engine = BatchedAnalysisEngine()
        source = MatrixScenarioSource(load_matrix=load_sweep)
        result = engine.analyze_scenario_stream(
            ibmpg1_grid, source, load_sweep.shape[0], workers=1
        )
        compiled = ibmpg1_grid.compile()
        assert result.chunk_size == resolve_chunk_size(compiled.num_unknowns, 1)


class TestRematerialize:
    def test_mega_sweep_topk_round_trip(self, ibmpg1_grid, ibmpg1_bench):
        load_matrix, pad_matrix = mega_sweep_matrices(
            ibmpg1_grid, ibmpg1_bench.floorplan, 0.2, 6, 4, seed=3
        )
        engine = BatchedAnalysisEngine()
        topk_sink = TopKScenarioSink(3)
        result = engine.analyze_mega_sweep(
            ibmpg1_grid, load_matrix, pad_matrix, chunk_size=7, sinks=[topk_sink]
        )
        topk = topk_sink.result()
        replayed = topk_sink.rematerialize(
            engine, ibmpg1_grid, CrossProductScenarioSource(load_matrix, pad_matrix)
        )
        assert len(replayed) == 3
        compiled = result.compiled
        for rank, full in enumerate(replayed):
            assert full.worst_ir_drop == float(topk.worst_ir_drop[rank])
            assert full.worst_node == compiled.node_names[int(topk.worst_node_index[rank])]
            assert full.network_name == f"scenario {int(topk.scenario_index[rank])}"
            assert len(full.node_voltages) == compiled.num_nodes

    def test_rematerialize_after_process_sharded_sweep(
        self, ibmpg1_grid, load_sweep, nominal_worst
    ):
        engine = BatchedAnalysisEngine()
        topk_sink = TopKScenarioSink(2)
        engine.analyze_batch(
            ibmpg1_grid,
            load_sweep,
            chunk_size=7,
            sinks=[topk_sink],
            executor=ProcessShardedExecutor(shards=3),
        )
        replayed = topk_sink.rematerialize(
            engine, ibmpg1_grid, MatrixScenarioSource(load_matrix=load_sweep)
        )
        topk = topk_sink.result()
        assert [r.worst_ir_drop for r in replayed] == [float(v) for v in topk.worst_ir_drop]
        # The replay reuses the factorization the process sweep warmed.
        assert engine.cache_info().factorizations == 1

    def test_unbound_sink_rejected(self, ibmpg1_grid, load_sweep):
        engine = BatchedAnalysisEngine()
        with pytest.raises(ValueError, match="never bound"):
            TopKScenarioSink(2).rematerialize(
                engine, ibmpg1_grid, MatrixScenarioSource(load_matrix=load_sweep)
            )


class TestHybridEquivalence:
    """Merge-equivalence matrix: hybrid == sequential, bitwise, for every
    (shards, threads, chunk_size) combination — shards covering the
    degenerate single shard, an even split and a non-divisor of 37, and
    chunk sizes including the pathological width of 1."""

    @pytest.mark.parametrize("chunk_size", [1, 7])
    @pytest.mark.parametrize("threads", [1, 2])
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_batch_bitwise_matches_sequential(
        self, ibmpg1_grid, load_sweep, nominal_worst, shards, threads, chunk_size
    ):
        engine = BatchedAnalysisEngine()
        seq_sinks = mergeable_sinks(nominal_worst)
        sequential = engine.analyze_batch(
            ibmpg1_grid,
            load_sweep,
            chunk_size=chunk_size,
            sinks=tuple(seq_sinks.values()),
            executor=SerialExecutor(),
        )
        hybrid_sinks = mergeable_sinks(nominal_worst)
        executor = HybridExecutor(shard_workers=shards, threads_per_shard=threads)
        hybrid = engine.analyze_batch(
            ibmpg1_grid,
            load_sweep,
            chunk_size=chunk_size,
            sinks=tuple(hybrid_sinks.values()),
            executor=executor,
        )
        assert_reductions_identical(sequential, hybrid)
        assert_exact_sinks_identical(seq_sinks, hybrid_sinks)
        assert np.array_equal(sequential.solver_iterations, hybrid.solver_iterations)
        assert hybrid_sinks["topk"].num_consumed == load_sweep.shape[0]
        stats = executor.last_stats
        assert stats["shards"] == min(shards, load_sweep.shape[0])
        assert stats["threads_per_shard"] == threads
        if stats["shards"] > 1:
            assert stats["payload_bytes_shared"] > 0
            assert stats["tasks"] >= stats["shards"]

    def test_mega_sweep_bitwise_matches_sequential(
        self, ibmpg1_grid, ibmpg1_bench, nominal_worst
    ):
        load_matrix, pad_matrix = mega_sweep_matrices(
            ibmpg1_grid, ibmpg1_bench.floorplan, 0.2, 12, 8, seed=7
        )
        engine = BatchedAnalysisEngine()
        seq_sinks = mergeable_sinks(nominal_worst)
        sequential = engine.analyze_mega_sweep(
            ibmpg1_grid,
            load_matrix,
            pad_matrix,
            chunk_size=13,
            sinks=tuple(seq_sinks.values()),
            workers=1,
        )
        hybrid_sinks = mergeable_sinks(nominal_worst)
        hybrid = engine.analyze_mega_sweep(
            ibmpg1_grid,
            load_matrix,
            pad_matrix,
            chunk_size=13,
            sinks=tuple(hybrid_sinks.values()),
            executor=HybridExecutor(shard_workers=2, threads_per_shard=2),
        )
        assert_reductions_identical(sequential, hybrid)
        assert_exact_sinks_identical(seq_sinks, hybrid_sinks)
        assert hybrid.executor == "hybrid"

    def test_rebalance_off_matches_on(self, ibmpg1_grid, load_sweep, nominal_worst):
        """Balancing redistributes work, never results."""
        engine = BatchedAnalysisEngine()
        results = {}
        for rebalance in (False, True):
            sinks = mergeable_sinks(nominal_worst)
            executor = HybridExecutor(
                shard_workers=3, threads_per_shard=2, rebalance=rebalance
            )
            results[rebalance] = (
                engine.analyze_batch(
                    ibmpg1_grid,
                    load_sweep,
                    chunk_size=5,
                    sinks=tuple(sinks.values()),
                    executor=executor,
                ),
                sinks,
                dict(executor.last_stats),
            )
        assert_reductions_identical(results[False][0], results[True][0])
        assert_exact_sinks_identical(results[False][1], results[True][1])
        assert results[False][2]["rebalances"] == 0
        assert results[False][2]["tasks"] == 3

    def test_p2_rejected_before_sinks_bind(self, ibmpg1_grid, load_sweep):
        engine = BatchedAnalysisEngine()
        p2 = P2QuantileSink([0.5])
        with pytest.raises(ExecutorIncompatibility, match="hybrid"):
            engine.analyze_batch(
                ibmpg1_grid,
                load_sweep,
                chunk_size=7,
                sinks=[p2],
                executor=HybridExecutor(shard_workers=2),
            )
        # The rejection left the sink unbound and reusable.
        engine.analyze_batch(ibmpg1_grid, load_sweep, chunk_size=7, sinks=[p2], workers=1)
        assert p2.result().num_scenarios == load_sweep.shape[0]


class TestHybridResolution:
    def test_registered_and_constructible_by_name(self):
        assert "hybrid" in EXECUTOR_NAMES
        executor = make_executor("hybrid", 3)
        assert isinstance(executor, HybridExecutor)
        assert executor.shard_workers == 3

    def test_parallelism_is_the_product(self):
        assert HybridExecutor(shard_workers=4, threads_per_shard=2).parallelism == 8

    def test_chunk_budget_uses_effective_width(self):
        """The 256 MiB in-flight budget is spent across shards x threads:
        16384 unknowns x 32 B = 512 KiB per scenario slot, so 8 in-flight
        chunks get 64 scenarios each — half the width the same grid gets
        when only the 4 process shards were budgeted."""
        width = HybridExecutor(shard_workers=4, threads_per_shard=2).parallelism
        assert resolve_chunk_size(16384, workers=width) == 64
        assert resolve_chunk_size(16384, workers=4) == 128

    def test_adaptive_chunk_uses_parallelism(self, ibmpg1_grid, load_sweep):
        engine = BatchedAnalysisEngine()
        executor = HybridExecutor(shard_workers=2, threads_per_shard=2)
        source = MatrixScenarioSource(load_matrix=load_sweep)
        result = engine.analyze_scenario_stream(
            ibmpg1_grid, source, load_sweep.shape[0], executor=executor
        )
        compiled = ibmpg1_grid.compile()
        assert result.chunk_size == resolve_chunk_size(compiled.num_unknowns, 4)
        assert result.executor == "hybrid"
        assert result.workers == 4

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv(HYBRID_SHARD_WORKERS_ENV, "3")
        monkeypatch.setenv(HYBRID_THREADS_ENV, "2")
        executor = HybridExecutor()
        assert executor.shard_workers == 3
        assert executor.threads_per_shard == 2
        monkeypatch.setenv(HYBRID_SHARD_WORKERS_ENV, "many")
        with pytest.raises(ValueError, match=HYBRID_SHARD_WORKERS_ENV):
            HybridExecutor()

    def test_validation(self):
        with pytest.raises(ValueError, match="shard_workers"):
            HybridExecutor(shard_workers=0)
        with pytest.raises(ValueError, match="threads_per_shard"):
            HybridExecutor(shard_workers=2, threads_per_shard=0)
        with pytest.raises(ValueError, match="max_oversubscribe"):
            HybridExecutor(shard_workers=2, max_oversubscribe=0)
        with pytest.raises(ValueError, match="start_method"):
            HybridExecutor(shard_workers=2, start_method="telepathy")

    def test_env_default_falls_back_for_incompatible_sweeps(
        self, monkeypatch, ibmpg1_grid, load_sweep
    ):
        monkeypatch.setenv(EXECUTOR_ENV, "hybrid")
        engine = BatchedAnalysisEngine()
        sink = P2QuantileSink([0.5])
        with pytest.warns(RuntimeWarning, match="hybrid"):
            engine.analyze_batch(ibmpg1_grid, load_sweep, chunk_size=7, sinks=[sink])
        assert sink.result().num_scenarios == load_sweep.shape[0]

    def test_env_default_matches_serial(self, monkeypatch, ibmpg1_grid, load_sweep):
        monkeypatch.setenv(EXECUTOR_ENV, "hybrid")
        reference = BatchedAnalysisEngine(default_executor="serial").analyze_batch(
            ibmpg1_grid, load_sweep, chunk_size=7
        )
        hybrid = BatchedAnalysisEngine().analyze_batch(ibmpg1_grid, load_sweep, chunk_size=7)
        assert_reductions_identical(reference, hybrid)


class TestSharedGridPayload:
    """Lifetime contract: parent owns the segment, the with-block unlinks
    on success and on error alike, children only attach, and the pickle
    fallback is a warned no-op."""

    @staticmethod
    def _plan(grid, load_sweep) -> SweepPlan:
        return SweepPlan(
            engine=BatchedAnalysisEngine(),
            compiled=grid.compile(),
            scenario_source=MatrixScenarioSource(load_matrix=load_sweep),
            num_scenarios=load_sweep.shape[0],
            chunk_size=7,
            sinks=(),
        )

    @staticmethod
    def _segment_gone(name: str) -> bool:
        from multiprocessing import shared_memory

        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return True
        segment.close()
        return False

    def test_attach_rebuilds_identical_state(self, ibmpg1_grid, load_sweep):
        plan = self._plan(ibmpg1_grid, load_sweep)
        with SharedGridPayload.create(plan, "test", threads=2) as shared:
            kind, name, _, spans = shared.descriptor
            assert kind == "shm"
            assert shared.nbytes == sum(length for _, length in spans) > 0
            state = attach_shard_state(shared.descriptor)
            assert state["threads"] == 2
            assert state["chunk_size"] == plan.chunk_size
            assert state["compiled"].fingerprint == plan.compiled.fingerprint
            clone_csr = state["compiled"].reduced_matrix
            assert (clone_csr != plan.compiled.reduced_matrix).nnz == 0
            # Release the attached views, then the child-side mapping,
            # before the parent unlinks (the order workers observe).
            segment = state.pop("segment")
            del state, clone_csr
            segment.close()

    def test_unlinked_on_success(self, ibmpg1_grid, load_sweep):
        plan = self._plan(ibmpg1_grid, load_sweep)
        with SharedGridPayload.create(plan, "test") as shared:
            name = shared.descriptor[1]
            assert not self._segment_gone(name)
        assert self._segment_gone(name)
        shared.close()  # idempotent

    def test_unlinked_on_error(self, ibmpg1_grid, load_sweep):
        plan = self._plan(ibmpg1_grid, load_sweep)
        with pytest.raises(RuntimeError, match="mid-sweep"):
            with SharedGridPayload.create(plan, "test") as shared:
                name = shared.descriptor[1]
                raise RuntimeError("mid-sweep failure")
        assert self._segment_gone(name)

    def test_pickle_fallback_warns_and_matches(
        self, monkeypatch, ibmpg1_grid, load_sweep, nominal_worst
    ):
        from multiprocessing import shared_memory

        def refuse(*args, **kwargs):
            raise OSError("no shared memory in this sandbox")

        monkeypatch.setattr(shared_memory, "SharedMemory", refuse)
        plan = self._plan(ibmpg1_grid, load_sweep)
        with pytest.warns(RuntimeWarning, match="test executor cannot allocate"):
            shared = SharedGridPayload.create(plan, "test")
        assert shared.descriptor[0] == "pickle"
        assert shared.nbytes == 0
        shared.close()  # no segment: a no-op
        # The whole hybrid sweep still runs — and stays bitwise-identical —
        # on the in-band payload path.
        engine = BatchedAnalysisEngine()
        seq_sinks = mergeable_sinks(nominal_worst)
        sequential = engine.analyze_batch(
            ibmpg1_grid,
            load_sweep,
            chunk_size=7,
            sinks=tuple(seq_sinks.values()),
            executor=SerialExecutor(),
        )
        hybrid_sinks = mergeable_sinks(nominal_worst)
        executor = HybridExecutor(shard_workers=2, threads_per_shard=2)
        with pytest.warns(RuntimeWarning, match="hybrid executor cannot allocate"):
            hybrid = engine.analyze_batch(
                ibmpg1_grid,
                load_sweep,
                chunk_size=7,
                sinks=tuple(hybrid_sinks.values()),
                executor=executor,
            )
        assert_reductions_identical(sequential, hybrid)
        assert_exact_sinks_identical(seq_sinks, hybrid_sinks)
        assert executor.last_stats["payload_bytes_shared"] == 0

    def test_unpicklable_plan_rejected(self, ibmpg1_grid, load_sweep):
        plan = SweepPlan(
            engine=BatchedAnalysisEngine(),
            compiled=ibmpg1_grid.compile(),
            # The closure is the point: unpicklable sources must raise the
            # same incompatibility the pickle payload raises, before any
            # segment is allocated.
            scenario_source=lambda begin, end: (load_sweep[begin:end], None),  # reprolint: disable=RPR002
            num_scenarios=load_sweep.shape[0],
            chunk_size=7,
            sinks=(),
        )
        with pytest.raises(ExecutorIncompatibility, match="picklable"):
            SharedGridPayload.create(plan, "test")

    def test_process_sharded_uses_shared_payload(
        self, ibmpg1_grid, load_sweep, nominal_worst
    ):
        """The PR-8 executor gets the zero-copy startup win for free."""
        engine = BatchedAnalysisEngine()
        seq_sinks = mergeable_sinks(nominal_worst)
        sequential = engine.analyze_batch(
            ibmpg1_grid,
            load_sweep,
            chunk_size=7,
            sinks=tuple(seq_sinks.values()),
            workers=1,
        )
        shard_sinks = mergeable_sinks(nominal_worst)
        executor = ProcessShardedExecutor(shards=2)
        sharded = engine.analyze_batch(
            ibmpg1_grid,
            load_sweep,
            chunk_size=7,
            sinks=tuple(shard_sinks.values()),
            executor=executor,
        )
        assert_reductions_identical(sequential, sharded)
        assert_exact_sinks_identical(seq_sinks, shard_sinks)
        assert executor.last_stats["payload_bytes_shared"] > 0
