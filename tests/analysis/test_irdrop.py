"""Tests for static IR-drop analysis and map rasterisation."""

import numpy as np
import pytest

from repro.analysis import IRDropAnalyzer, current_conservation_error, ir_drop_map
from repro.grid import CurrentSource, GridNode, PowerGridNetwork, Resistor, VoltageSource


@pytest.fixture(scope="module")
def tiny_result(tiny_grid):
    return IRDropAnalyzer().analyze(tiny_grid)


class TestIRDropAnalysis:
    def test_worst_drop_is_maximum_over_nodes(self, tiny_grid, tiny_result):
        values = np.asarray(list(tiny_result.node_ir_drop.values()))
        assert tiny_result.worst_ir_drop == pytest.approx(values.max())
        assert tiny_result.node_ir_drop[tiny_result.worst_node] == pytest.approx(
            tiny_result.worst_ir_drop
        )

    def test_ir_drop_non_negative_and_below_vdd(self, tiny_grid, tiny_result):
        drops = np.asarray(list(tiny_result.node_ir_drop.values()))
        assert np.all(drops >= -1e-9)
        assert np.all(drops <= tiny_grid.vdd)

    def test_pad_nodes_have_zero_drop(self, tiny_grid, tiny_result):
        for pad in tiny_grid.iter_pads():
            assert tiny_result.node_ir_drop[pad.node] == pytest.approx(
                tiny_grid.vdd - pad.voltage, abs=1e-12
            )

    def test_average_below_worst(self, tiny_result):
        assert tiny_result.average_ir_drop <= tiny_result.worst_ir_drop

    def test_worst_drop_mv_conversion(self, tiny_result):
        assert tiny_result.worst_ir_drop_mv == pytest.approx(tiny_result.worst_ir_drop * 1000.0)

    def test_kirchhoff_current_law_satisfied(self, tiny_grid, tiny_result):
        assert current_conservation_error(tiny_grid, tiny_result) < 1e-8

    def test_more_current_more_drop(self, tiny_grid):
        analyzer = IRDropAnalyzer()
        nominal = analyzer.analyze(tiny_grid)
        heavy = analyzer.analyze(tiny_grid.with_scaled_loads(2.0))
        assert heavy.worst_ir_drop == pytest.approx(2.0 * nominal.worst_ir_drop, rel=1e-6)

    def test_single_resistor_analytic_case(self):
        network = PowerGridNetwork(name="single", vdd=1.0)
        network.add_node(GridNode(name="pad", x=0.0, y=0.0))
        network.add_node(GridNode(name="load", x=10.0, y=0.0))
        network.add_resistor(Resistor(name="R1", node_a="pad", node_b="load", resistance=5.0))
        network.add_voltage_source(VoltageSource(name="V1", node="pad", voltage=1.0))
        network.add_current_source(CurrentSource(name="I1", node="load", current=0.01))
        result = IRDropAnalyzer().analyze(network)
        assert result.worst_ir_drop == pytest.approx(0.05)
        assert result.worst_node == "load"

    def test_analysis_time_positive(self, tiny_result):
        assert tiny_result.analysis_time > 0.0


class TestIRDropMap:
    def test_map_shape_and_range(self, tiny_grid, tiny_result):
        grid_map = ir_drop_map(tiny_grid, tiny_result, resolution=50)
        assert grid_map.shape == (50, 50)
        assert grid_map.max() == pytest.approx(tiny_result.worst_ir_drop)
        assert grid_map.min() >= 0.0

    def test_map_has_no_nans(self, tiny_grid, tiny_result):
        grid_map = ir_drop_map(tiny_grid, tiny_result, resolution=25)
        assert np.all(np.isfinite(grid_map))

    def test_map_rejects_bad_resolution(self, tiny_grid, tiny_result):
        with pytest.raises(ValueError):
            ir_drop_map(tiny_grid, tiny_result, resolution=0)

    def test_hot_region_follows_heaviest_block(self, tiny_grid, tiny_result, tiny_floorplan):
        """The worst IR drop should occur near the block drawing the most current."""
        grid_map = ir_drop_map(tiny_grid, tiny_result, resolution=20)
        hot_y, hot_x = np.unravel_index(np.argmax(grid_map), grid_map.shape)
        heaviest = max(tiny_floorplan.iter_blocks(), key=lambda b: b.switching_current)
        cx, cy = heaviest.center
        assert abs(hot_x / 20.0 - cx / tiny_floorplan.core_width) < 0.5
        assert abs(hot_y / 20.0 - cy / tiny_floorplan.core_height) < 0.5
