"""Equivalence and metadata tests for the parallel chunk pipeline.

``workers >= 2`` solves RHS chunks on a thread pool but the consumer folds
finished chunks into the reductions and sinks strictly in ascending
scenario order — so every reduction, every exact sink, every approximate
sink state and all solver metadata must be **bitwise-identical** to the
sequential path, for every combination of ``workers`` and ``chunk_size``.
"""

import numpy as np
import pytest

from repro.analysis import (
    BatchedAnalysisEngine,
    ExceedanceCountSink,
    NodeHistogramSink,
    P2QuantileSink,
    ReservoirQuantileSink,
    TopKScenarioSink,
    VectorlessAnalyzer,
    uniform_budget,
)
from repro.analysis.engine import WORKERS_ENV
from repro.grid import (
    PerturbationKind,
    PerturbationSpec,
    SyntheticIBMSuite,
    mega_sweep_matrices,
    perturbed_load_matrix,
    perturbed_pad_voltage_matrix,
)

WORKER_COUNTS = [2, 3]
CHUNK_SIZES = [1, 7, 37, 100]
"""Single-scenario, non-divisor, exactly the sweep size, larger than it."""


@pytest.fixture(scope="module")
def ibmpg1_bench():
    return SyntheticIBMSuite().load("ibmpg1")


@pytest.fixture(scope="module")
def ibmpg1_grid(ibmpg1_bench):
    return ibmpg1_bench.build_uniform_grid(5.0)


@pytest.fixture(scope="module")
def load_sweep(ibmpg1_grid):
    spec = PerturbationSpec(gamma=0.2, kind=PerturbationKind.CURRENT_WORKLOADS, seed=11)
    return perturbed_load_matrix(ibmpg1_grid, spec, 37)


@pytest.fixture(scope="module")
def nominal_worst(ibmpg1_grid):
    return BatchedAnalysisEngine().analyze(ibmpg1_grid).worst_ir_drop


def build_sinks(threshold: float) -> dict:
    """Fresh instances of every sink family, exact and approximate."""
    return {
        "p2": P2QuantileSink((0.5, 0.9)),
        "reservoir": ReservoirQuantileSink(16, (0.5, 0.9), seed=3),
        "histogram": NodeHistogramSink.uniform(0.0, 2.0 * threshold + 1e-6, 8),
        "exceedance": ExceedanceCountSink(threshold),
        "topk": TopKScenarioSink(4),
    }


def assert_sinks_identical(sequential: dict, parallel: dict) -> None:
    """Every sink result must be bitwise-equal between the two sweeps."""
    assert np.array_equal(
        sequential["p2"].result().values, parallel["p2"].result().values
    )
    assert np.array_equal(
        sequential["reservoir"].result().values, parallel["reservoir"].result().values
    )
    seq_hist, par_hist = sequential["histogram"].result(), parallel["histogram"].result()
    assert np.array_equal(seq_hist.counts, par_hist.counts)
    assert np.array_equal(seq_hist.underflow, par_hist.underflow)
    assert np.array_equal(seq_hist.overflow, par_hist.overflow)
    assert np.array_equal(
        sequential["exceedance"].result().counts, parallel["exceedance"].result().counts
    )
    seq_topk, par_topk = sequential["topk"].result(), parallel["topk"].result()
    assert np.array_equal(seq_topk.scenario_index, par_topk.scenario_index)
    assert np.array_equal(seq_topk.worst_ir_drop, par_topk.worst_ir_drop)
    assert np.array_equal(seq_topk.worst_node_index, par_topk.worst_node_index)


def assert_reductions_identical(sequential, parallel) -> None:
    assert np.array_equal(sequential.worst_ir_drop, parallel.worst_ir_drop)
    assert np.array_equal(sequential.average_ir_drop, parallel.average_ir_drop)
    assert np.array_equal(sequential.worst_node_index, parallel.worst_node_index)


class TestParallelEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_batch_bitwise_matches_sequential(
        self, ibmpg1_grid, load_sweep, nominal_worst, workers, chunk_size
    ):
        engine = BatchedAnalysisEngine()
        seq_sinks = build_sinks(nominal_worst)
        sequential = engine.analyze_batch(
            ibmpg1_grid,
            load_sweep,
            chunk_size=chunk_size,
            sinks=tuple(seq_sinks.values()),
            workers=1,
        )
        par_sinks = build_sinks(nominal_worst)
        parallel = engine.analyze_batch(
            ibmpg1_grid,
            load_sweep,
            chunk_size=chunk_size,
            sinks=tuple(par_sinks.values()),
            workers=workers,
        )
        assert_reductions_identical(sequential, parallel)
        assert_sinks_identical(seq_sinks, par_sinks)
        assert parallel.solver_method == sequential.solver_method
        assert np.array_equal(parallel.solver_iterations, sequential.solver_iterations)
        assert engine.cache_info().factorizations == 1

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("chunk_size", [1, 13, 96])
    def test_mega_sweep_bitwise_matches_sequential(
        self, ibmpg1_grid, ibmpg1_bench, nominal_worst, workers, chunk_size
    ):
        load_matrix, pad_matrix = mega_sweep_matrices(
            ibmpg1_grid, ibmpg1_bench.floorplan, 0.2, 12, 8, seed=7
        )
        engine = BatchedAnalysisEngine()
        seq_sinks = build_sinks(nominal_worst)
        sequential = engine.analyze_mega_sweep(
            ibmpg1_grid,
            load_matrix,
            pad_matrix,
            chunk_size=chunk_size,
            sinks=tuple(seq_sinks.values()),
            workers=1,
        )
        par_sinks = build_sinks(nominal_worst)
        parallel = engine.analyze_mega_sweep(
            ibmpg1_grid,
            load_matrix,
            pad_matrix,
            chunk_size=chunk_size,
            sinks=tuple(par_sinks.values()),
            workers=workers,
        )
        assert_reductions_identical(sequential, parallel)
        assert_sinks_identical(seq_sinks, par_sinks)
        assert parallel.workers == workers
        assert engine.cache_info().factorizations == 1

    def test_pad_batch_bitwise_matches_sequential(self, ibmpg1_grid, nominal_worst):
        spec = PerturbationSpec(gamma=0.15, kind=PerturbationKind.NODE_VOLTAGES, seed=17)
        pad_matrix = perturbed_pad_voltage_matrix(ibmpg1_grid, spec, 9)
        engine = BatchedAnalysisEngine()
        sequential = engine.analyze_pad_batch(
            ibmpg1_grid, pad_matrix, chunk_size=2, workers=1
        )
        parallel = engine.analyze_pad_batch(
            ibmpg1_grid, pad_matrix, chunk_size=2, workers=3
        )
        assert_reductions_identical(sequential, parallel)

    def test_scenario_stream_bitwise_matches_sequential(self, ibmpg1_grid, load_sweep):
        engine = BatchedAnalysisEngine()
        source = lambda begin, end: (load_sweep[begin:end], None)  # noqa: E731
        sequential = engine.analyze_scenario_stream(
            ibmpg1_grid, source, load_sweep.shape[0], chunk_size=5, workers=1
        )
        parallel = engine.analyze_scenario_stream(
            ibmpg1_grid, source, load_sweep.shape[0], chunk_size=5, workers=4
        )
        assert_reductions_identical(sequential, parallel)
        assert parallel.workers == 4

    def test_statistical_vectorless_bitwise_matches_sequential(self, ibmpg1_grid):
        budget = uniform_budget(ibmpg1_grid, headroom=1.3, utilisation=0.9)
        sequential = VectorlessAnalyzer(BatchedAnalysisEngine()).analyze_statistical(
            ibmpg1_grid, budget, 30, chunk_size=7, seed=5, workers=1
        )
        parallel = VectorlessAnalyzer(BatchedAnalysisEngine()).analyze_statistical(
            ibmpg1_grid, budget, 30, chunk_size=7, seed=5, workers=2
        )
        assert_reductions_identical(sequential.sweep, parallel.sweep)
        assert sequential.worst_observed == parallel.worst_observed

    def test_more_workers_than_chunks(self, ibmpg1_grid, load_sweep):
        engine = BatchedAnalysisEngine()
        sequential = engine.analyze_batch(ibmpg1_grid, load_sweep, chunk_size=100)
        parallel = engine.analyze_batch(
            ibmpg1_grid, load_sweep, chunk_size=100, workers=8
        )
        assert_reductions_identical(sequential, parallel)


class TestWorkerConfiguration:
    def test_default_is_sequential(self, ibmpg1_grid, load_sweep):
        engine = BatchedAnalysisEngine()
        assert engine.default_workers >= 1
        result = engine.analyze_batch(ibmpg1_grid, load_sweep, chunk_size=8)
        assert result.reductions is not None

    def test_invalid_workers_rejected(self, ibmpg1_grid, load_sweep):
        engine = BatchedAnalysisEngine()
        with pytest.raises(ValueError, match="workers"):
            engine.analyze_batch(ibmpg1_grid, load_sweep, chunk_size=8, workers=0)
        with pytest.raises(ValueError, match="workers"):
            engine.analyze_mega_sweep(
                ibmpg1_grid, load_sweep, np.zeros((1, 0)), workers=-1
            )

    def test_constructor_validates_default_workers(self):
        with pytest.raises(ValueError, match="default_workers"):
            BatchedAnalysisEngine(default_workers=0)
        assert BatchedAnalysisEngine(default_workers=3).default_workers == 3

    def test_env_variable_sets_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert BatchedAnalysisEngine().default_workers == 3
        monkeypatch.setenv(WORKERS_ENV, "")
        assert BatchedAnalysisEngine().default_workers == 1
        monkeypatch.delenv(WORKERS_ENV)
        assert BatchedAnalysisEngine().default_workers == 1

    def test_env_variable_validated(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "zero")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            BatchedAnalysisEngine()
        monkeypatch.setenv(WORKERS_ENV, "0")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            BatchedAnalysisEngine()

    def test_explicit_workers_override_env_default(
        self, monkeypatch, ibmpg1_grid, load_sweep
    ):
        monkeypatch.setenv(WORKERS_ENV, "2")
        engine = BatchedAnalysisEngine()
        sequential = engine.analyze_batch(
            ibmpg1_grid, load_sweep, chunk_size=8, workers=1
        )
        env_default = engine.analyze_batch(ibmpg1_grid, load_sweep, chunk_size=8)
        assert_reductions_identical(sequential, env_default)
