"""Tests for the mini-batch trainer."""

import numpy as np
import pytest

from repro.nn import (
    NetworkArchitecture,
    NeuralNetwork,
    Trainer,
    TrainingConfig,
)


def make_regression_data(rng, samples=300):
    features = rng.uniform(-1, 1, size=(samples, 3))
    targets = (
        2.0 * features[:, [0]]
        - 1.0 * features[:, [1]]
        + 0.5 * features[:, [2]] ** 2
    )
    return features, targets


@pytest.fixture()
def network():
    return NeuralNetwork(
        NetworkArchitecture(input_size=3, hidden_sizes=(16, 16), output_size=1), seed=0
    )


class TestTraining:
    def test_loss_decreases(self, network, rng):
        features, targets = make_regression_data(rng)
        config = TrainingConfig(epochs=40, batch_size=32, validation_split=0.0, seed=0)
        history = Trainer(network, config).fit(features, targets)
        assert history.epochs_run == 40
        assert history.train_losses[-1] < 0.3 * history.train_losses[0]

    def test_validation_losses_tracked(self, network, rng):
        features, targets = make_regression_data(rng)
        config = TrainingConfig(epochs=10, validation_split=0.2, early_stopping_patience=0, seed=0)
        history = Trainer(network, config).fit(features, targets)
        assert len(history.validation_losses) == history.epochs_run
        assert history.best_validation_loss <= history.validation_losses[0]

    def test_early_stopping_triggers(self, network, rng):
        features, targets = make_regression_data(rng, samples=100)
        config = TrainingConfig(
            epochs=500, batch_size=32, validation_split=0.3, early_stopping_patience=3, seed=0
        )
        history = Trainer(network, config).fit(features, targets)
        assert history.epochs_run < 500
        assert history.stopped_early

    def test_1d_targets_accepted(self, network, rng):
        features, targets = make_regression_data(rng, samples=50)
        history = Trainer(network, TrainingConfig(epochs=2)).fit(features, targets.ravel())
        assert history.epochs_run == 2

    def test_mismatched_samples_rejected(self, network):
        with pytest.raises(ValueError):
            Trainer(network, TrainingConfig(epochs=1)).fit(np.zeros((5, 3)), np.zeros((4, 1)))

    def test_empty_data_rejected(self, network):
        with pytest.raises(ValueError):
            Trainer(network, TrainingConfig(epochs=1)).fit(np.zeros((0, 3)), np.zeros((0, 1)))

    def test_training_time_recorded(self, network, rng):
        features, targets = make_regression_data(rng, samples=50)
        history = Trainer(network, TrainingConfig(epochs=2)).fit(features, targets)
        assert history.training_time > 0

    def test_deterministic_given_seed(self, rng):
        features, targets = make_regression_data(rng, samples=80)
        losses = []
        for _ in range(2):
            network = NeuralNetwork(
                NetworkArchitecture(input_size=3, hidden_sizes=(8,), output_size=1), seed=3
            )
            history = Trainer(network, TrainingConfig(epochs=5, seed=3)).fit(features, targets)
            losses.append(history.train_losses)
        np.testing.assert_allclose(losses[0], losses[1])

    def test_best_weights_restored(self, network, rng):
        """After fit() the network should carry the best-epoch weights."""
        features, targets = make_regression_data(rng, samples=120)
        config = TrainingConfig(epochs=30, validation_split=0.3, early_stopping_patience=5, seed=0)
        trainer = Trainer(network, config)
        history = trainer.fit(features, targets)
        # The restored weights' validation loss must equal the recorded best.
        rng_split = np.random.default_rng(config.seed)
        assert history.best_validation_loss <= min(history.validation_losses) + 1e-12


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epochs": 0},
            {"batch_size": 0},
            {"learning_rate": 0.0},
            {"validation_split": 1.0},
            {"early_stopping_patience": -1},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            TrainingConfig(**kwargs)
