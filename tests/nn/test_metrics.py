"""Tests for regression metrics (MSE, r2, correlation, error histograms)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    error_histogram,
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_squared_error,
    pearson_correlation,
    r2_score,
    relative_mse_percent,
    root_mean_squared_error,
)


class TestBasicMetrics:
    def test_mse_known_value(self):
        assert mean_squared_error([1.0, 2.0], [0.0, 0.0]) == pytest.approx(2.5)

    def test_rmse_is_sqrt_of_mse(self, rng):
        y_true = rng.normal(size=50)
        y_pred = rng.normal(size=50)
        assert root_mean_squared_error(y_true, y_pred) == pytest.approx(
            np.sqrt(mean_squared_error(y_true, y_pred))
        )

    def test_mae_known_value(self):
        assert mean_absolute_error([1.0, -3.0], [0.0, 0.0]) == pytest.approx(2.0)

    def test_mape_skips_zero_targets(self):
        assert mean_absolute_percentage_error([0.0, 2.0], [1.0, 1.0]) == pytest.approx(50.0)

    def test_mape_all_zero_raises(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([0.0, 0.0], [1.0, 1.0])

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            mean_squared_error([], [])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mean_squared_error([1.0], [1.0, 2.0])

    def test_multi_output_arrays_are_flattened(self, rng):
        y = rng.normal(size=(10, 2))
        assert mean_squared_error(y, y) == 0.0


class TestR2:
    def test_perfect_prediction(self, rng):
        y = rng.normal(size=100)
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_mean_prediction_gives_zero(self, rng):
        y = rng.normal(size=100)
        assert r2_score(y, np.full_like(y, y.mean())) == pytest.approx(0.0, abs=1e-12)

    def test_worse_than_mean_is_negative(self, rng):
        y = rng.normal(size=100)
        assert r2_score(y, -5.0 * y) < 0.0

    def test_constant_target_exact(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [3.0, 3.0]) == 0.0


class TestCorrelation:
    def test_perfect_linear_relation(self, rng):
        y = rng.normal(size=100)
        assert pearson_correlation(y, 3.0 * y + 1.0) == pytest.approx(1.0)

    def test_anticorrelation(self, rng):
        y = rng.normal(size=100)
        assert pearson_correlation(y, -y) == pytest.approx(-1.0)

    def test_constant_input_gives_zero(self):
        assert pearson_correlation([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0


class TestErrorHistogram:
    def test_counts_sum_to_samples(self, rng):
        y_true = rng.normal(size=500)
        y_pred = y_true + rng.normal(0, 0.1, size=500)
        histogram = error_histogram(y_true, y_pred, num_bins=21)
        assert histogram.num_samples == 500
        assert histogram.counts.shape == (21,)
        assert histogram.bin_edges.shape == (22,)

    def test_over_under_prediction_counts(self):
        y_true = np.asarray([1.0, 1.0, 1.0, 1.0])
        y_pred = np.asarray([2.0, 2.0, 0.5, 1.0])  # two over, one under, one exact
        histogram = error_histogram(y_true, y_pred)
        assert histogram.overpredicted == 2
        assert histogram.underpredicted == 1

    def test_peak_near_zero_for_good_predictions(self, rng):
        y_true = rng.normal(size=2000)
        y_pred = y_true + rng.normal(0, 0.05, size=2000)
        histogram = error_histogram(y_true, y_pred, num_bins=41, limit=1.0)
        assert abs(histogram.peak_bin_center) < 0.1

    def test_explicit_limit_respected(self, rng):
        y_true = rng.normal(size=100)
        histogram = error_histogram(y_true, y_true + 10.0, num_bins=11, limit=1.0)
        assert histogram.bin_edges[0] == pytest.approx(-1.0)
        assert histogram.bin_edges[-1] == pytest.approx(1.0)


class TestRelativeMSE:
    def test_zero_for_perfect_prediction(self, rng):
        y = rng.normal(size=50)
        assert relative_mse_percent(y, y) == 0.0

    def test_hundred_percent_for_mean_prediction(self, rng):
        y = rng.normal(size=500)
        assert relative_mse_percent(y, np.full_like(y, y.mean())) == pytest.approx(100.0)


@settings(max_examples=30, deadline=None)
@given(
    noise_scale=st.floats(min_value=0.0, max_value=0.5),
)
def test_r2_decreases_with_noise(noise_scale):
    """Property: adding more noise to predictions can only reduce r2 (statistically)."""
    rng = np.random.default_rng(0)
    y = rng.normal(size=400)
    clean_r2 = r2_score(y, y)
    noisy_r2 = r2_score(y, y + rng.normal(0, noise_scale, size=400))
    assert clean_r2 >= noisy_r2 - 1e-9
