"""Tests for activation functions and their derivatives."""

import numpy as np
import pytest

from repro.nn import available_activations, get_activation
from repro.nn.activations import LeakyReLU, Linear, ReLU, Sigmoid, Softplus, Tanh


def numerical_derivative(activation, z, epsilon=1e-6):
    return (activation.forward(z + epsilon) - activation.forward(z - epsilon)) / (2 * epsilon)


@pytest.mark.parametrize("name", available_activations())
def test_derivative_matches_finite_difference(name, rng):
    activation = get_activation(name)
    z = rng.normal(0.0, 2.0, size=200)
    z = z[np.abs(z) > 1e-3]  # avoid the ReLU kink
    analytic = activation.derivative(z)
    numeric = numerical_derivative(activation, z)
    np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)


@pytest.mark.parametrize("name", available_activations())
def test_backward_chains_upstream_gradient(name, rng):
    activation = get_activation(name)
    z = rng.normal(size=50)
    upstream = rng.normal(size=50)
    np.testing.assert_allclose(
        activation.backward(z, upstream), upstream * activation.derivative(z)
    )


class TestSpecificActivations:
    def test_relu_clips_negatives(self):
        z = np.asarray([-2.0, 0.0, 3.0])
        np.testing.assert_allclose(ReLU().forward(z), [0.0, 0.0, 3.0])

    def test_leaky_relu_slope(self):
        z = np.asarray([-2.0, 2.0])
        np.testing.assert_allclose(LeakyReLU(alpha=0.1).forward(z), [-0.2, 2.0])

    def test_leaky_relu_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            LeakyReLU(alpha=-0.1)

    def test_linear_is_identity(self, rng):
        z = rng.normal(size=10)
        np.testing.assert_allclose(Linear().forward(z), z)

    def test_sigmoid_range_and_stability(self):
        z = np.asarray([-1000.0, -10.0, 0.0, 10.0, 1000.0])
        out = Sigmoid().forward(z)
        assert np.all((out >= 0.0) & (out <= 1.0))
        assert np.all(np.isfinite(out))
        assert out[2] == pytest.approx(0.5)

    def test_tanh_bounds(self, rng):
        out = Tanh().forward(rng.normal(0, 5, size=100))
        assert np.all(np.abs(out) <= 1.0)

    def test_softplus_positive(self, rng):
        out = Softplus().forward(rng.normal(0, 5, size=100))
        assert np.all(out > 0.0)

    def test_unknown_activation_raises(self):
        with pytest.raises(KeyError):
            get_activation("swishish")

    def test_instance_passthrough(self):
        relu = ReLU()
        assert get_activation(relu) is relu
