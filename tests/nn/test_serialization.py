"""Tests for model persistence (save/load of trained regressors)."""

import numpy as np
import pytest

from repro.nn import (
    ModelFormatError,
    MultiTargetRegressor,
    NotFittedError,
    RegressorConfig,
    TrainingConfig,
    load_regressor,
    save_regressor,
)


@pytest.fixture(scope="module")
def trained_model():
    rng = np.random.default_rng(0)
    features = rng.uniform(-1, 1, size=(200, 3))
    targets = np.column_stack([features[:, 0] * 2.0, features[:, 1] - features[:, 2]])
    config = RegressorConfig(
        hidden_layers=2,
        hidden_width=12,
        training=TrainingConfig(epochs=20, batch_size=32, early_stopping_patience=0, seed=0),
        seed=0,
    )
    model = MultiTargetRegressor(config)
    model.fit(features, targets)
    return model, features


class TestRoundTrip:
    def test_predictions_identical_after_reload(self, trained_model, tmp_path):
        model, features = trained_model
        path = save_regressor(model, tmp_path / "model.npz")
        restored = load_regressor(path)
        np.testing.assert_allclose(restored.predict(features), model.predict(features))

    def test_config_preserved(self, trained_model, tmp_path):
        model, _ = trained_model
        restored = load_regressor(save_regressor(model, tmp_path / "model.npz"))
        assert restored.config.hidden_layers == model.config.hidden_layers
        assert restored.config.hidden_width == model.config.hidden_width
        assert restored.config.training.optimizer == model.config.training.optimizer

    def test_restored_model_is_fitted(self, trained_model, tmp_path):
        model, _ = trained_model
        restored = load_regressor(save_regressor(model, tmp_path / "m.npz"))
        assert restored.is_fitted
        assert restored.num_parameters == model.num_parameters

    def test_parent_directories_created(self, trained_model, tmp_path):
        model, _ = trained_model
        path = save_regressor(model, tmp_path / "nested" / "dir" / "model.npz")
        assert path.exists()


class TestErrors:
    def test_unfitted_model_cannot_be_saved(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_regressor(MultiTargetRegressor(), tmp_path / "m.npz")

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(ModelFormatError):
            load_regressor(path)

    def test_unscaled_model_roundtrip(self, tmp_path):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(50, 3))
        config = RegressorConfig(
            hidden_layers=1,
            hidden_width=8,
            scale_features=False,
            scale_targets=False,
            training=TrainingConfig(epochs=3, seed=0),
            seed=0,
        )
        model = MultiTargetRegressor(config)
        model.fit(features, features[:, :1])
        restored = load_regressor(save_regressor(model, tmp_path / "m.npz"))
        np.testing.assert_allclose(restored.predict(features), model.predict(features))
