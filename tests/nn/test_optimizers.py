"""Tests for SGD, momentum and Adam optimizers."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, DenseLayer, MomentumSGD, get_optimizer


class _QuadraticProblem:
    """Minimise ||W||^2 via a fake layer-like object."""

    def __init__(self, rng):
        self.parameters = {"weights": rng.normal(size=(4, 4))}
        self.gradients = {"weights": np.zeros((4, 4))}

    def compute_gradients(self):
        self.gradients["weights"] = 2.0 * self.parameters["weights"]

    @property
    def norm(self):
        return float(np.linalg.norm(self.parameters["weights"]))


@pytest.mark.parametrize("optimizer_name", ["sgd", "momentum", "adam"])
def test_optimizers_descend_quadratic(optimizer_name, rng):
    problem = _QuadraticProblem(rng)
    optimizer = get_optimizer(optimizer_name, learning_rate=0.05)
    initial = problem.norm
    for _ in range(200):
        problem.compute_gradients()
        optimizer.step([problem])
    assert problem.norm < 0.05 * initial


def test_sgd_step_is_plain_gradient_descent(rng):
    layer = DenseLayer(2, 2, rng=rng)
    before = layer.parameters["weights"].copy()
    layer.gradients["weights"] = np.ones_like(before)
    layer.gradients["bias"] = np.zeros_like(layer.parameters["bias"])
    SGD(learning_rate=0.1).step([layer])
    np.testing.assert_allclose(layer.parameters["weights"], before - 0.1)


def test_momentum_accumulates_velocity(rng):
    problem = _QuadraticProblem(rng)
    problem.parameters["weights"] = np.ones((4, 4))
    optimizer = MomentumSGD(learning_rate=0.01, momentum=0.9)
    problem.compute_gradients()
    optimizer.step([problem])
    first_step = 1.0 - problem.parameters["weights"][0, 0]
    problem.compute_gradients()
    optimizer.step([problem])
    second_step = (1.0 - first_step) - problem.parameters["weights"][0, 0]
    assert second_step > first_step  # velocity builds up


def test_adam_bias_correction_first_step(rng):
    """On the first step Adam moves by ~learning_rate regardless of gradient scale."""
    problem = _QuadraticProblem(rng)
    problem.parameters["weights"] = np.full((4, 4), 100.0)
    optimizer = Adam(learning_rate=0.01)
    problem.compute_gradients()
    before = problem.parameters["weights"].copy()
    optimizer.step([problem])
    step = np.abs(before - problem.parameters["weights"])
    np.testing.assert_allclose(step, 0.01, rtol=1e-3)


def test_adam_reset_clears_state(rng):
    problem = _QuadraticProblem(rng)
    optimizer = Adam(learning_rate=0.01)
    problem.compute_gradients()
    optimizer.step([problem])
    assert optimizer._steps
    optimizer.reset()
    assert not optimizer._steps


def test_faster_convergence_with_adam_than_sgd_on_badly_scaled_problem(rng):
    """Adam's per-parameter scaling helps on ill-conditioned quadratics."""

    class Scaled(_QuadraticProblem):
        def compute_gradients(self):
            scales = np.logspace(-3, 0, 16).reshape(4, 4)
            self.gradients["weights"] = 2.0 * scales * self.parameters["weights"]

    sgd_problem, adam_problem = Scaled(rng), Scaled(rng)
    adam_problem.parameters["weights"] = sgd_problem.parameters["weights"].copy()
    sgd, adam = SGD(learning_rate=0.05), Adam(learning_rate=0.05)
    for _ in range(300):
        sgd_problem.compute_gradients()
        sgd.step([sgd_problem])
        adam_problem.compute_gradients()
        adam.step([adam_problem])
    assert adam_problem.norm < sgd_problem.norm


class TestValidation:
    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            MomentumSGD(momentum=1.0)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(beta2=-0.1)
        with pytest.raises(ValueError):
            Adam(epsilon=0.0)

    def test_unknown_optimizer(self):
        with pytest.raises(KeyError):
            get_optimizer("adamw2")

    def test_instance_passthrough(self):
        adam = Adam()
        assert get_optimizer(adam) is adam
