"""Tests for the dense layer, including a numerical gradient check."""

import numpy as np
import pytest

from repro.nn import DenseLayer, MeanSquaredError


class TestForward:
    def test_output_shape(self, rng):
        layer = DenseLayer(4, 3, rng=rng)
        out = layer.forward(rng.normal(size=(10, 4)))
        assert out.shape == (10, 3)

    def test_single_sample_promoted_to_batch(self, rng):
        layer = DenseLayer(4, 3, rng=rng)
        assert layer.forward(np.zeros(4)).shape == (1, 3)

    def test_wrong_feature_count_raises(self, rng):
        layer = DenseLayer(4, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((5, 7)))

    def test_linear_layer_matches_matmul(self, rng):
        layer = DenseLayer(4, 2, activation="linear", rng=rng)
        inputs = rng.normal(size=(6, 4))
        expected = inputs @ layer.parameters["weights"] + layer.parameters["bias"]
        np.testing.assert_allclose(layer.forward(inputs), expected)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            DenseLayer(0, 3)


class TestBackward:
    def test_backward_requires_training_forward(self, rng):
        layer = DenseLayer(4, 3, rng=rng)
        layer.forward(np.zeros((2, 4)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((2, 3)))

    def test_backward_returns_input_gradient_shape(self, rng):
        layer = DenseLayer(4, 3, rng=rng)
        layer.forward(rng.normal(size=(5, 4)), training=True)
        grad = layer.backward(rng.normal(size=(5, 3)))
        assert grad.shape == (5, 4)

    @pytest.mark.parametrize("activation", ["linear", "tanh", "sigmoid"])
    def test_weight_gradient_matches_finite_difference(self, activation, rng):
        """Numerical gradient check of d(MSE)/d(weights) for smooth activations."""
        layer = DenseLayer(3, 2, activation=activation, rng=rng)
        loss = MeanSquaredError()
        inputs = rng.normal(size=(8, 3))
        targets = rng.normal(size=(8, 2))

        predictions = layer.forward(inputs, training=True)
        layer.backward(loss.backward(predictions, targets))
        analytic = layer.gradients["weights"].copy()

        epsilon = 1e-6
        numeric = np.zeros_like(analytic)
        weights = layer.parameters["weights"]
        for i in range(weights.shape[0]):
            for j in range(weights.shape[1]):
                original = weights[i, j]
                weights[i, j] = original + epsilon
                loss_plus = loss.forward(layer.forward(inputs), targets)
                weights[i, j] = original - epsilon
                loss_minus = loss.forward(layer.forward(inputs), targets)
                weights[i, j] = original
                numeric[i, j] = (loss_plus - loss_minus) / (2 * epsilon)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_bias_gradient_matches_finite_difference(self, rng):
        layer = DenseLayer(3, 2, activation="tanh", rng=rng)
        loss = MeanSquaredError()
        inputs = rng.normal(size=(8, 3))
        targets = rng.normal(size=(8, 2))
        predictions = layer.forward(inputs, training=True)
        layer.backward(loss.backward(predictions, targets))
        analytic = layer.gradients["bias"].copy()

        epsilon = 1e-6
        numeric = np.zeros_like(analytic)
        bias = layer.parameters["bias"]
        for j in range(bias.shape[0]):
            original = bias[j]
            bias[j] = original + epsilon
            loss_plus = loss.forward(layer.forward(inputs), targets)
            bias[j] = original - epsilon
            loss_minus = loss.forward(layer.forward(inputs), targets)
            bias[j] = original
            numeric[j] = (loss_plus - loss_minus) / (2 * epsilon)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)


class TestWeights:
    def test_get_set_roundtrip(self, rng):
        layer = DenseLayer(4, 3, rng=rng)
        weights, bias = layer.get_weights()
        other = DenseLayer(4, 3, rng=np.random.default_rng(99))
        other.set_weights(weights, bias)
        inputs = rng.normal(size=(5, 4))
        np.testing.assert_allclose(layer.forward(inputs), other.forward(inputs))

    def test_set_weights_shape_check(self, rng):
        layer = DenseLayer(4, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.set_weights(np.zeros((3, 4)), np.zeros(3))
        with pytest.raises(ValueError):
            layer.set_weights(np.zeros((4, 3)), np.zeros(4))

    def test_num_parameters(self):
        layer = DenseLayer(4, 3)
        assert layer.num_parameters == 4 * 3 + 3
