"""Tests for the multilayer perceptron."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    MeanSquaredError,
    NetworkArchitecture,
    NeuralNetwork,
    get_loss,
)


@pytest.fixture()
def small_architecture():
    return NetworkArchitecture(input_size=3, hidden_sizes=(8, 8), output_size=2)


class TestArchitecture:
    def test_paper_default_has_ten_hidden_layers(self):
        arch = NetworkArchitecture.paper_default()
        assert arch.num_hidden_layers == 10
        assert arch.input_size == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkArchitecture(input_size=0, hidden_sizes=(4,), output_size=1)
        with pytest.raises(ValueError):
            NetworkArchitecture(input_size=3, hidden_sizes=(), output_size=1)
        with pytest.raises(ValueError):
            NetworkArchitecture(input_size=3, hidden_sizes=(0,), output_size=1)


class TestForward:
    def test_output_shape(self, small_architecture, rng):
        network = NeuralNetwork(small_architecture)
        out = network.predict(rng.normal(size=(12, 3)))
        assert out.shape == (12, 2)

    def test_layer_count(self, small_architecture):
        network = NeuralNetwork(small_architecture)
        assert len(network.layers) == 3  # two hidden + output

    def test_deterministic_given_seed(self, small_architecture, rng):
        inputs = rng.normal(size=(5, 3))
        first = NeuralNetwork(small_architecture, seed=7).predict(inputs)
        second = NeuralNetwork(small_architecture, seed=7).predict(inputs)
        np.testing.assert_allclose(first, second)

    def test_num_parameters(self, small_architecture):
        network = NeuralNetwork(small_architecture)
        expected = (3 * 8 + 8) + (8 * 8 + 8) + (8 * 2 + 2)
        assert network.num_parameters == expected


class TestTrainingStep:
    def test_train_batch_reduces_loss_with_adam(self, small_architecture, rng):
        network = NeuralNetwork(small_architecture, seed=0)
        optimizer = Adam(learning_rate=5e-3)
        inputs = rng.normal(size=(64, 3))
        targets = np.column_stack([inputs.sum(axis=1), inputs[:, 0] - inputs[:, 1]])
        losses = []
        for _ in range(150):
            losses.append(network.train_batch("mse", inputs, targets))
            optimizer.step(network.layers)
        assert losses[-1] < 0.1 * losses[0]

    def test_backward_returns_loss_value(self, small_architecture, rng):
        network = NeuralNetwork(small_architecture)
        loss = get_loss("mse")
        inputs = rng.normal(size=(4, 3))
        targets = rng.normal(size=(4, 2))
        predictions = network.forward(inputs, training=True)
        value = network.backward(loss, predictions, targets)
        assert value == pytest.approx(MeanSquaredError().forward(predictions, targets))


class TestPersistence:
    def test_get_set_parameters_roundtrip(self, small_architecture, rng):
        source = NeuralNetwork(small_architecture, seed=1)
        target = NeuralNetwork(small_architecture, seed=2)
        target.set_parameters(source.get_parameters())
        inputs = rng.normal(size=(6, 3))
        np.testing.assert_allclose(source.predict(inputs), target.predict(inputs))

    def test_set_parameters_length_check(self, small_architecture):
        network = NeuralNetwork(small_architecture)
        with pytest.raises(ValueError):
            network.set_parameters(network.get_parameters()[:-1])

    def test_copy_is_independent(self, small_architecture, rng):
        network = NeuralNetwork(small_architecture, seed=1)
        clone = network.copy()
        inputs = rng.normal(size=(4, 3))
        np.testing.assert_allclose(network.predict(inputs), clone.predict(inputs))
        clone.layers[0].parameters["weights"] += 1.0
        assert not np.allclose(network.predict(inputs), clone.predict(inputs))
