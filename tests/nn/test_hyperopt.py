"""Tests for the hyper-parameter search."""

import numpy as np
import pytest

from repro.nn import (
    HyperparameterSearch,
    RegressorConfig,
    SearchSpace,
    TrainingConfig,
)


@pytest.fixture()
def small_data(rng):
    features = rng.uniform(-1, 1, size=(150, 3))
    targets = features[:, [0]] * 2.0 - features[:, [1]]
    return features, targets


@pytest.fixture()
def quick_base_config():
    return RegressorConfig(
        hidden_layers=1,
        hidden_width=8,
        training=TrainingConfig(epochs=8, batch_size=32, early_stopping_patience=0, seed=0),
        seed=0,
    )


class TestSearchSpace:
    def test_grid_enumerates_all_combinations(self):
        space = SearchSpace(
            hidden_layers=(1, 2), hidden_width=(8, 16), learning_rate=(1e-3,), batch_size=(32,)
        )
        assert len(space.grid()) == 4

    def test_sample_draws_from_space(self, rng):
        space = SearchSpace(
            hidden_layers=(1, 2), hidden_width=(8,), learning_rate=(1e-3,), batch_size=(32,)
        )
        sample = space.sample(rng)
        assert sample["hidden_layers"] in (1, 2)
        assert sample["hidden_width"] == 8

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(hidden_layers=())


class TestSearch:
    def test_grid_search_returns_best_trial(self, small_data, quick_base_config):
        features, targets = small_data
        space = SearchSpace(
            hidden_layers=(1, 2), hidden_width=(8,), learning_rate=(1e-3,), batch_size=(32,)
        )
        search = HyperparameterSearch(quick_base_config, space, seed=0)
        result = search.grid_search(features, targets)
        assert len(result.trials) == 2
        assert result.best.validation_mse == min(t.validation_mse for t in result.trials)
        assert result.best_config.hidden_layers == result.best.parameters["hidden_layers"]

    def test_random_search_respects_trial_count(self, small_data, quick_base_config):
        features, targets = small_data
        space = SearchSpace(
            hidden_layers=(1, 2, 3), hidden_width=(8, 16), learning_rate=(1e-3,), batch_size=(32,)
        )
        search = HyperparameterSearch(quick_base_config, space, seed=1)
        result = search.random_search(features, targets, num_trials=3)
        assert 1 <= len(result.trials) <= 3
        # no duplicate parameter combinations
        keys = [tuple(sorted(t.parameters.items())) for t in result.trials]
        assert len(keys) == len(set(keys))

    def test_invalid_trial_count_rejected(self, small_data, quick_base_config):
        features, targets = small_data
        with pytest.raises(ValueError):
            HyperparameterSearch(quick_base_config).random_search(features, targets, num_trials=0)

    def test_invalid_validation_fraction_rejected(self):
        with pytest.raises(ValueError):
            HyperparameterSearch(validation_fraction=0.0)

    def test_trials_record_timing_and_scores(self, small_data, quick_base_config):
        features, targets = small_data
        space = SearchSpace(
            hidden_layers=(1,), hidden_width=(8,), learning_rate=(1e-3,), batch_size=(32,)
        )
        result = HyperparameterSearch(quick_base_config, space).grid_search(features, targets)
        trial = result.trials[0]
        assert trial.train_time > 0
        assert np.isfinite(trial.validation_mse)
        assert trial.validation_r2 <= 1.0
