"""Tests for weight initializers."""

import numpy as np
import pytest

from repro.nn import available_initializers, get_initializer


@pytest.mark.parametrize("name", available_initializers())
def test_shapes_and_finiteness(name, rng):
    init = get_initializer(name)
    weights = init(rng, 64, 32)
    assert weights.shape == (64, 32)
    assert np.all(np.isfinite(weights))


@pytest.mark.parametrize("name", ["xavier_uniform", "xavier_normal", "he_uniform", "he_normal"])
def test_scale_shrinks_with_fan_in(name, rng):
    init = get_initializer(name)
    small_fan = init(rng, 4, 4).std()
    large_fan = init(rng, 1024, 4).std()
    assert large_fan < small_fan


def test_xavier_uniform_bounds(rng):
    init = get_initializer("xavier_uniform")
    weights = init(rng, 100, 100)
    limit = np.sqrt(6.0 / 200)
    assert np.all(np.abs(weights) <= limit + 1e-12)


def test_zero_mean(rng):
    for name in available_initializers():
        weights = get_initializer(name)(rng, 2000, 10)
        assert abs(weights.mean()) < 0.01


def test_unknown_initializer_raises():
    with pytest.raises(KeyError):
        get_initializer("magic")


def test_callable_passthrough():
    def custom(rng, fan_in, fan_out):
        return np.zeros((fan_in, fan_out))

    assert get_initializer(custom) is custom
