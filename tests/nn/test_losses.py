"""Tests for loss functions."""

import numpy as np
import pytest

from repro.nn import (
    ConstraintPenalizedLoss,
    HuberLoss,
    MeanAbsoluteError,
    MeanSquaredError,
    get_loss,
)


def finite_difference(loss, predictions, targets, epsilon=1e-6):
    gradient = np.zeros_like(predictions)
    flat = predictions.ravel()
    grad_flat = gradient.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = loss.forward(predictions, targets)
        flat[index] = original - epsilon
        minus = loss.forward(predictions, targets)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * epsilon)
    return gradient


class TestMSE:
    def test_perfect_prediction_gives_zero(self, rng):
        y = rng.normal(size=(10, 2))
        assert MeanSquaredError().forward(y, y) == 0.0

    def test_known_value(self):
        loss = MeanSquaredError()
        assert loss.forward(
            np.asarray([[1.0], [3.0]]), np.asarray([[0.0], [0.0]])
        ) == pytest.approx(5.0)

    def test_gradient_matches_finite_difference(self, rng):
        loss = MeanSquaredError()
        predictions = rng.normal(size=(6, 3))
        targets = rng.normal(size=(6, 3))
        np.testing.assert_allclose(
            loss.backward(predictions, targets),
            finite_difference(loss, predictions, targets),
            rtol=1e-5,
            atol=1e-8,
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            MeanSquaredError().forward(np.zeros((2, 2)), np.zeros((3, 2)))


class TestMAEAndHuber:
    def test_mae_known_value(self):
        assert MeanAbsoluteError().forward(
            np.asarray([[1.0], [-3.0]]), np.asarray([[0.0], [0.0]])
        ) == pytest.approx(2.0)

    def test_huber_quadratic_inside_delta(self):
        huber = HuberLoss(delta=1.0)
        mse = MeanSquaredError()
        small = np.asarray([[0.1]])
        zero = np.asarray([[0.0]])
        assert huber.forward(small, zero) == pytest.approx(0.5 * mse.forward(small, zero))

    def test_huber_linear_outside_delta(self):
        huber = HuberLoss(delta=1.0)
        assert huber.forward(np.asarray([[10.0]]), np.asarray([[0.0]])) == pytest.approx(
            0.5 + 1.0 * 9.0
        )

    def test_huber_gradient_matches_finite_difference(self, rng):
        loss = HuberLoss(delta=0.5)
        predictions = rng.normal(size=(5, 2))
        targets = rng.normal(size=(5, 2))
        np.testing.assert_allclose(
            loss.backward(predictions, targets),
            finite_difference(loss, predictions, targets),
            rtol=1e-4,
            atol=1e-7,
        )

    def test_huber_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            HuberLoss(delta=0.0)


class TestConstraintPenalizedLoss:
    def test_penalty_added_to_base(self, rng):
        base = MeanSquaredError()
        minimum_width = 2.0
        # Hinge penalty for predicting below the minimum legal width.
        penalty = lambda predictions: np.maximum(minimum_width - predictions, 0.0)
        loss = ConstraintPenalizedLoss(base, penalty, lam=1.0)
        predictions = np.asarray([[1.0], [3.0]])
        targets = np.asarray([[1.0], [3.0]])
        assert base.forward(predictions, targets) == 0.0
        assert loss.forward(predictions, targets) == pytest.approx(0.5)  # mean hinge = 1.0/2

    def test_zero_lambda_equals_base(self, rng):
        base = MeanSquaredError()
        loss = ConstraintPenalizedLoss(base, lambda p: np.abs(p), lam=0.0)
        predictions = rng.normal(size=(4, 2))
        targets = rng.normal(size=(4, 2))
        assert loss.forward(predictions, targets) == pytest.approx(
            base.forward(predictions, targets)
        )

    def test_gradient_matches_finite_difference(self, rng):
        penalty = lambda predictions: np.maximum(1.0 - predictions, 0.0) ** 2
        loss = ConstraintPenalizedLoss(MeanSquaredError(), penalty, lam=0.5)
        predictions = rng.normal(size=(4, 2)) + 1.5
        targets = rng.normal(size=(4, 2))
        np.testing.assert_allclose(
            loss.backward(predictions, targets),
            finite_difference(loss, predictions, targets),
            rtol=1e-3,
            atol=1e-6,
        )

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            ConstraintPenalizedLoss(MeanSquaredError(), lambda p: p, lam=-1.0)


def test_get_loss_by_name():
    assert isinstance(get_loss("mse"), MeanSquaredError)
    assert isinstance(get_loss("mae"), MeanAbsoluteError)
    assert isinstance(get_loss("huber"), HuberLoss)
    with pytest.raises(KeyError):
        get_loss("nope")
