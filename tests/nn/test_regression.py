"""Tests for the high-level multi-target regressor."""

import pickle

import numpy as np
import pytest

from repro.nn import MultiTargetRegressor, NotFittedError, RegressorConfig, TrainingConfig


def make_multitarget_data(rng, samples=400):
    features = rng.uniform(-2, 2, size=(samples, 3))
    targets = np.column_stack(
        [
            1.5 * features[:, 0] + 0.2 * features[:, 2],
            -0.8 * features[:, 1] + 0.1 * features[:, 0] ** 2,
        ]
    )
    return features, targets


@pytest.fixture()
def fitted(rng):
    config = RegressorConfig(
        hidden_layers=2,
        hidden_width=24,
        training=TrainingConfig(epochs=60, batch_size=32, seed=0, early_stopping_patience=0),
        seed=0,
    )
    model = MultiTargetRegressor(config)
    features, targets = make_multitarget_data(rng)
    model.fit(features, targets)
    return model, features, targets


class TestFitPredict:
    def test_learns_linearish_multitarget_map(self, fitted):
        model, features, targets = fitted
        assert model.score(features, targets) > 0.9

    def test_prediction_shape(self, fitted, rng):
        model, _, _ = fitted
        assert model.predict(rng.normal(size=(7, 3))).shape == (7, 2)

    def test_single_target_returns_2d(self, rng):
        model = MultiTargetRegressor(RegressorConfig.fast(epochs=5))
        features = rng.normal(size=(50, 3))
        model.fit(features, features[:, 0])
        assert model.predict(features).shape == (50, 1)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            MultiTargetRegressor().predict(np.zeros((2, 3)))

    def test_num_parameters_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            _ = MultiTargetRegressor().num_parameters

    def test_mse_matches_manual_computation(self, fitted):
        model, features, targets = fitted
        predictions = model.predict(features)
        manual = float(np.mean((predictions - targets) ** 2))
        assert model.mse(features, targets) == pytest.approx(manual)

    def test_mismatched_sample_counts_rejected(self, rng):
        model = MultiTargetRegressor(RegressorConfig.fast(epochs=1))
        with pytest.raises(ValueError):
            model.fit(rng.normal(size=(10, 3)), rng.normal(size=(9, 1)))

    def test_is_fitted_flag(self, rng):
        model = MultiTargetRegressor(RegressorConfig.fast(epochs=1))
        assert not model.is_fitted
        model.fit(rng.normal(size=(20, 3)), rng.normal(size=(20, 1)))
        assert model.is_fitted

    def test_single_sample_1d_promoted_to_row(self, fitted):
        model, features, _ = fitted
        single = model.predict(features[0])
        assert single.shape == (1, 2)
        np.testing.assert_allclose(single, model.predict(features[:1]))

    def test_feature_count_mismatch_rejected(self, fitted, rng):
        model, _, _ = fitted
        with pytest.raises(ValueError, match="features per sample"):
            model.predict(rng.normal(size=(4, 5)))
        with pytest.raises(ValueError, match="features per sample"):
            model.predict(np.zeros(2))

    def test_fitted_model_pickles_with_identical_predictions(self, fitted):
        model, features, _ = fitted
        clone = pickle.loads(pickle.dumps(model))
        assert clone.is_fitted
        np.testing.assert_array_equal(clone.predict(features), model.predict(features))


class TestConfig:
    def test_paper_default_matches_paper(self):
        config = RegressorConfig.paper_default()
        assert config.hidden_layers == 10
        assert config.training.optimizer == "adam"
        assert config.training.loss == "mse"

    def test_invalid_layers_rejected(self):
        with pytest.raises(ValueError):
            RegressorConfig(hidden_layers=0)
        with pytest.raises(ValueError):
            RegressorConfig(hidden_width=0)

    def test_scaling_can_be_disabled(self, rng):
        config = RegressorConfig(
            hidden_layers=1,
            hidden_width=8,
            scale_features=False,
            scale_targets=False,
            training=TrainingConfig(epochs=3, seed=0),
        )
        model = MultiTargetRegressor(config)
        features = rng.normal(size=(30, 3))
        model.fit(features, features[:, :1])
        assert model.predict(features).shape == (30, 1)
