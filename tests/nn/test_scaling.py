"""Tests for feature/target scalers, including property-based inverses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import IdentityScaler, MinMaxScaler, StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        data = rng.normal(5.0, 3.0, size=(500, 4))
        scaled = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_inverse_transform_roundtrip(self, rng):
        data = rng.normal(size=(100, 3)) * [1.0, 100.0, 1e-4]
        scaler = StandardScaler().fit(data)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(data)), data, rtol=1e-9
        )

    def test_constant_column_passthrough(self):
        data = np.column_stack([np.ones(10), np.arange(10.0)])
        scaled = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(scaled[:, 0], 0.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))
        with pytest.raises(RuntimeError):
            StandardScaler().inverse_transform(np.zeros((2, 2)))

    def test_is_fitted_flag(self):
        scaler = StandardScaler()
        assert not scaler.is_fitted
        scaler.fit(np.zeros((3, 2)))
        assert scaler.is_fitted


class TestMinMaxScaler:
    def test_range_mapping(self, rng):
        data = rng.uniform(-50, 50, size=(200, 3))
        scaled = MinMaxScaler().fit_transform(data)
        np.testing.assert_allclose(scaled.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(scaled.max(axis=0), 1.0, atol=1e-12)

    def test_custom_range(self, rng):
        data = rng.uniform(size=(50, 2))
        scaled = MinMaxScaler(feature_range=(-1.0, 1.0)).fit_transform(data)
        assert scaled.min() >= -1.0 - 1e-12
        assert scaled.max() <= 1.0 + 1e-12

    def test_inverse_roundtrip(self, rng):
        data = rng.uniform(-5, 5, size=(60, 4))
        scaler = MinMaxScaler().fit(data)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(data)), data, rtol=1e-9, atol=1e-12
        )

    def test_constant_column_maps_to_midpoint(self):
        data = np.full((5, 1), 7.0)
        scaled = MinMaxScaler().fit_transform(data)
        np.testing.assert_allclose(scaled, 0.5)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1.0, 1.0))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros((2, 2)))


class TestIdentityScaler:
    def test_passthrough(self, rng):
        data = rng.normal(size=(10, 2))
        scaler = IdentityScaler()
        np.testing.assert_allclose(scaler.fit_transform(data), data)
        np.testing.assert_allclose(scaler.inverse_transform(data), data)
        assert scaler.is_fitted


@settings(max_examples=30, deadline=None)
@given(
    data=arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(2, 30), st.integers(1, 5)),
        elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    )
)
def test_standard_scaler_inverse_is_exact(data):
    """Property: inverse_transform(transform(x)) == x for any finite data."""
    scaler = StandardScaler().fit(data)
    recovered = scaler.inverse_transform(scaler.transform(data))
    np.testing.assert_allclose(recovered, data, rtol=1e-7, atol=1e-6)
