"""Tests for the synthetic IBM-style benchmark suite."""

import numpy as np
import pytest

from repro.grid import (
    SUITE_NAMES,
    SyntheticIBMSuite,
    benchmark_config,
    generate_floorplan,
    generate_topology,
    load_benchmark,
)


class TestConfigs:
    def test_suite_has_eight_benchmarks_in_paper_order(self):
        assert SUITE_NAMES == (
            "ibmpg1",
            "ibmpg2",
            "ibmpg3",
            "ibmpg4",
            "ibmpg5",
            "ibmpg6",
            "ibmpgnew1",
            "ibmpgnew2",
        )

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            benchmark_config("ibmpg99")

    def test_size_ordering_follows_table2(self):
        """ibmpg1 is the smallest grid; ibmpg6/ibmpgnew1 are the largest."""
        nodes = {name: benchmark_config(name).approx_nodes for name in SUITE_NAMES}
        assert nodes["ibmpg1"] == min(nodes.values())
        assert max(nodes, key=nodes.get) in ("ibmpg6", "ibmpgnew1")
        assert nodes["ibmpg1"] < nodes["ibmpg2"] < nodes["ibmpg3"]


class TestGeneration:
    def test_floorplan_is_deterministic(self):
        config = benchmark_config("ibmpg1")
        first = generate_floorplan(config)
        second = generate_floorplan(config)
        assert [b.switching_current for b in first.iter_blocks()] == [
            b.switching_current for b in second.iter_blocks()
        ]
        assert [(p.x, p.y) for p in first.iter_pads()] == [
            (p.x, p.y) for p in second.iter_pads()
        ]

    def test_blocks_do_not_overlap(self):
        floorplan = generate_floorplan(benchmark_config("ibmpg2"))
        blocks = list(floorplan.iter_blocks())
        for i, a in enumerate(blocks):
            for b in blocks[i + 1 :]:
                overlap_x = min(a.x + a.width, b.x + b.width) - max(a.x, b.x)
                overlap_y = min(a.y + a.height, b.y + b.height) - max(a.y, b.y)
                assert overlap_x <= 1e-9 or overlap_y <= 1e-9

    def test_total_current_matches_config(self):
        config = benchmark_config("ibmpg1")
        floorplan = generate_floorplan(config)
        assert floorplan.total_switching_current == pytest.approx(config.total_current)

    def test_block_count_matches_config(self):
        config = benchmark_config("ibmpg3")
        floorplan = generate_floorplan(config)
        assert len(floorplan.blocks) == config.num_blocks

    def test_topology_matches_config(self):
        config = benchmark_config("ibmpg1")
        topology = generate_topology(config)
        assert topology.num_vertical == config.num_vertical
        assert topology.num_horizontal == config.num_horizontal


class TestSuite:
    def test_scale_reduces_grid(self):
        full = SyntheticIBMSuite().config("ibmpg1")
        half = SyntheticIBMSuite(scale=0.5).config("ibmpg1")
        assert half.num_vertical < full.num_vertical
        assert half.num_vertical >= 4

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            SyntheticIBMSuite(scale=0.0)

    def test_load_benchmark_builds_grid(self, small_benchmark):
        grid = small_benchmark.build_uniform_grid(5.0)
        stats = grid.statistics()
        assert (
            stats.num_nodes
            == 2 * small_benchmark.config.num_vertical * small_benchmark.config.num_horizontal
        )
        assert grid.is_connected_to_pads()

    def test_build_grid_with_per_line_widths(self, small_benchmark):
        widths = np.full(small_benchmark.topology.num_lines, 3.0)
        grid = small_benchmark.build_grid(widths)
        assert grid.statistics().num_nodes > 0

    def test_load_benchmark_convenience(self):
        bench = load_benchmark("ibmpg1", scale=0.25)
        assert bench.name == "ibmpg1"
        assert bench.floorplan.total_switching_current > 0

    def test_names_listing(self):
        assert SyntheticIBMSuite().names() == SUITE_NAMES
