"""Tests for power-grid circuit elements."""

import pytest

from repro.grid import CurrentSource, GridNode, Resistor, VoltageSource


class TestGridNode:
    def test_position_property(self):
        node = GridNode(name="n1_10_20", x=10.0, y=20.0, layer="M5")
        assert node.position == (10.0, 20.0)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            GridNode(name="", x=0.0, y=0.0)

    def test_rejects_ground_name(self):
        with pytest.raises(ValueError):
            GridNode(name="0", x=0.0, y=0.0)


class TestResistor:
    def test_other_terminal(self):
        resistor = Resistor(name="R1", node_a="a", node_b="b", resistance=1.0)
        assert resistor.other("a") == "b"
        assert resistor.other("b") == "a"

    def test_other_terminal_unknown_node(self):
        resistor = Resistor(name="R1", node_a="a", node_b="b", resistance=1.0)
        with pytest.raises(ValueError):
            resistor.other("c")

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(ValueError):
            Resistor(name="R1", node_a="a", node_b="b", resistance=0.0)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Resistor(name="R1", node_a="a", node_b="a", resistance=1.0)

    def test_is_via_flag(self):
        via = Resistor(name="R1", node_a="a", node_b="b", resistance=0.5, layer="VIA")
        wire = Resistor(name="R2", node_a="a", node_b="b", resistance=0.5, layer="M6")
        assert via.is_via
        assert not wire.is_via


class TestCurrentSource:
    def test_scaled_returns_new_source(self):
        source = CurrentSource(name="I1", node="a", current=0.01, block="b0")
        doubled = source.scaled(2.0)
        assert doubled.current == pytest.approx(0.02)
        assert doubled.block == "b0"
        assert source.current == pytest.approx(0.01)

    def test_scaled_rejects_negative_factor(self):
        source = CurrentSource(name="I1", node="a", current=0.01)
        with pytest.raises(ValueError):
            source.scaled(-1.0)

    def test_rejects_negative_current(self):
        with pytest.raises(ValueError):
            CurrentSource(name="I1", node="a", current=-0.01)

    def test_zero_current_allowed(self):
        assert CurrentSource(name="I1", node="a", current=0.0).current == 0.0


class TestVoltageSource:
    def test_rejects_negative_voltage(self):
        with pytest.raises(ValueError):
            VoltageSource(name="V1", node="a", voltage=-1.0)

    def test_holds_voltage(self):
        assert VoltageSource(name="V1", node="a", voltage=1.1).voltage == pytest.approx(1.1)
