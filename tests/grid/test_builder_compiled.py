"""Tests for direct-to-compiled grid construction and conductance updates.

The acceptance bar for ``GridBuilder.build_compiled`` is equivalence with
the reference ``build()`` + ``compile()`` path — same ordering, same arrays,
same fingerprint, voltages within 1e-9 — on at least two benchmark grids.
``resize_compiled`` / ``with_conductances`` must reproduce a full rebuild
with the new widths bit-for-bit while sharing the frozen topology.
"""

import numpy as np
import pytest

from repro.analysis import BatchedAnalysisEngine
from repro.grid import GridBuilder, SyntheticIBMSuite

VOLTAGE_TOLERANCE = 1e-9

ARRAY_ATTRIBUTES = (
    "res_a",
    "res_b",
    "conductance",
    "res_width",
    "res_length",
    "res_line_id",
    "is_pad",
    "pad_voltage",
    "pad_node",
    "pad_voltage_values",
    "load_node",
    "load_current",
    "base_loads",
    "node_x",
    "node_y",
    "unknown_sel",
)


@pytest.fixture(scope="module", params=["ibmpg1", "ibmpg2"])
def benchmark_pair(request):
    """(benchmark, reference compiled, direct compiled) for two suite grids."""
    scale = 1.0 if request.param == "ibmpg1" else 0.5
    bench = SyntheticIBMSuite(scale=scale).load(request.param)
    builder = GridBuilder(bench.technology)
    network = builder.build(bench.floorplan, bench.topology, 5.0, name=bench.name)
    direct = builder.build_compiled(bench.floorplan, bench.topology, 5.0, name=bench.name)
    return bench, network.compile(), direct


class TestBuildCompiledEquivalence:
    def test_arrays_match_reference_path(self, benchmark_pair):
        _, reference, direct = benchmark_pair
        assert direct.num_nodes == reference.num_nodes
        assert direct.num_resistors == reference.num_resistors
        assert direct.num_unknowns == reference.num_unknowns
        for attribute in ARRAY_ATTRIBUTES:
            assert np.array_equal(
                getattr(direct, attribute), getattr(reference, attribute)
            ), attribute

    def test_lazy_names_match_reference_path(self, benchmark_pair):
        _, reference, direct = benchmark_pair
        assert direct.node_names == reference.node_names
        assert direct.unknown_nodes == reference.unknown_nodes
        assert direct.res_names == reference.res_names
        assert direct.res_layers == reference.res_layers
        assert direct.pad_names == reference.pad_names
        assert direct.load_names == reference.load_names
        assert direct.load_block == reference.load_block

    def test_fingerprints_match(self, benchmark_pair):
        """Identical digests: both construction paths share factorizations."""
        _, reference, direct = benchmark_pair
        assert direct.fingerprint == reference.fingerprint

    def test_voltages_match_reference_path(self, benchmark_pair):
        _, reference, direct = benchmark_pair
        engine = BatchedAnalysisEngine()
        reference_voltages = engine.solve_voltages(reference)
        direct_voltages = engine.solve_voltages(direct)
        assert np.abs(reference_voltages - direct_voltages).max() <= VOLTAGE_TOLERANCE

    def test_materialised_resistors_match(self, benchmark_pair):
        _, reference, direct = benchmark_pair
        sample = slice(0, 25)
        for ref, made in zip(reference.resistors[sample], direct.resistors[sample]):
            assert made.name == ref.name
            assert made.node_a == ref.node_a
            assert made.node_b == ref.node_b
            assert made.layer == ref.layer
            assert made.line_id == ref.line_id
            assert made.resistance == pytest.approx(ref.resistance, rel=1e-12)

    def test_width_validation(self, benchmark_pair):
        bench, _, _ = benchmark_pair
        builder = GridBuilder(bench.technology)
        with pytest.raises(ValueError):
            builder.build_compiled(bench.floorplan, bench.topology, [1.0, 2.0])
        with pytest.raises(ValueError):
            builder.build_compiled(bench.floorplan, bench.topology, -1.0)


class TestResizeCompiled:
    @pytest.fixture(scope="class")
    def setup(self):
        bench = SyntheticIBMSuite().load("ibmpg1")
        builder = GridBuilder(bench.technology)
        base = builder.build_compiled(bench.floorplan, bench.topology, 5.0)
        base.reduced_matrix  # populate the shared sparsity pattern
        rng = np.random.default_rng(7)
        new_widths = 5.0 * rng.uniform(1.0, 2.0, size=bench.topology.num_lines)
        return bench, builder, base, new_widths

    def test_resize_matches_fresh_build(self, setup):
        bench, builder, base, new_widths = setup
        resized = builder.resize_compiled(base, bench.topology, new_widths)
        rebuilt = builder.build_compiled(bench.floorplan, bench.topology, new_widths)
        assert np.array_equal(resized.conductance, rebuilt.conductance)
        assert np.array_equal(resized.res_width, rebuilt.res_width)
        assert resized.fingerprint == rebuilt.fingerprint
        a, b = resized.reduced_matrix, rebuilt.reduced_matrix
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.data, b.data)

    def test_resize_shares_frozen_topology(self, setup):
        bench, builder, base, new_widths = setup
        resized = builder.resize_compiled(base, bench.topology, new_widths)
        assert resized.res_a is base.res_a
        assert resized.unknown_sel is base.unknown_sel
        assert resized._pattern_box is base._pattern_box
        assert resized.base_loads is base.base_loads
        # Value-dependent state must not be shared.
        assert resized.conductance is not base.conductance
        assert resized.fingerprint != base.fingerprint

    def test_resize_leaves_vias_untouched(self, setup):
        bench, builder, base, new_widths = setup
        resized = builder.resize_compiled(base, bench.topology, new_widths)
        vias = base.res_line_id < 0
        assert np.array_equal(resized.conductance[vias], base.conductance[vias])
        assert np.array_equal(resized.res_width[vias], base.res_width[vias])

    def test_with_conductances_validation(self, setup):
        _, _, base, _ = setup
        with pytest.raises(ValueError):
            base.with_conductances(np.ones(3))
        bad = base.conductance.copy()
        bad[0] = 0.0
        with pytest.raises(ValueError):
            base.with_conductances(bad)
        with pytest.raises(ValueError):
            base.with_conductances(base.conductance, res_width=np.ones(3))

    def test_with_conductances_on_network_built_grid(self, tiny_grid):
        """The update path also works for grids compiled from a network."""
        compiled = tiny_grid.compile()
        compiled.reduced_matrix
        doubled = compiled.with_conductances(compiled.conductance * 2.0)
        assert doubled.fingerprint != compiled.fingerprint
        dense = doubled.reduced_matrix.toarray()
        np.testing.assert_allclose(dense, 2.0 * compiled.reduced_matrix.toarray(), rtol=1e-12)
        # Lazy views survive the clone (names are value-independent).
        assert doubled.res_names == compiled.res_names
        assert doubled.resistors[0].resistance == pytest.approx(
            compiled.resistors[0].resistance / 2.0
        )
