"""Tests for the IBM-style SPICE netlist reader/writer."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import (
    NetlistFormatError,
    NetlistReader,
    NetlistWriter,
    node_name,
    parse_node_name,
    parse_spice_value,
    read_netlist,
    write_netlist,
)


class TestSpiceValues:
    @pytest.mark.parametrize(
        "token, expected",
        [
            ("0.85", 0.85),
            ("1k", 1000.0),
            ("4.7m", 4.7e-3),
            ("100u", 1e-4),
            ("3meg", 3e6),
            ("2n", 2e-9),
            ("1e-3", 1e-3),
            ("-5", -5.0),
        ],
    )
    def test_parse_spice_value(self, token, expected):
        assert parse_spice_value(token) == pytest.approx(expected)

    def test_parse_rejects_garbage(self):
        with pytest.raises(NetlistFormatError):
            parse_spice_value("abc")

    def test_parse_rejects_empty(self):
        with pytest.raises(NetlistFormatError):
            parse_spice_value("  ")

    def test_parse_rejects_unknown_suffix(self):
        with pytest.raises(NetlistFormatError):
            parse_spice_value("5q")


class TestNodeNames:
    def test_node_name_roundtrip(self):
        name = node_name(1, 120.0, 340.0)
        assert name == "n1_120_340"
        assert parse_node_name(name) == (1, 120.0, 340.0)

    def test_node_name_fractional(self):
        assert parse_node_name(node_name(2, 10.5, 2.25)) == (2, 10.5, 2.25)

    def test_parse_node_name_freeform_returns_none(self):
        assert parse_node_name("vdd_pin") is None


class TestRoundTrip:
    def test_write_read_roundtrip(self, tiny_grid, tmp_path):
        path = write_netlist(tiny_grid, tmp_path / "tiny.spice")
        recovered = read_netlist(path)
        original = tiny_grid.statistics()
        assert recovered.statistics().as_row() == original.as_row()
        assert recovered.vdd == pytest.approx(tiny_grid.vdd)

    def test_roundtrip_preserves_resistances(self, tiny_grid, tmp_path):
        path = write_netlist(tiny_grid, tmp_path / "tiny.spice")
        recovered = read_netlist(path)
        for name, resistor in tiny_grid.resistors.items():
            assert recovered.resistors[name].resistance == pytest.approx(resistor.resistance)

    def test_roundtrip_preserves_load_currents(self, tiny_grid, tmp_path):
        path = write_netlist(tiny_grid, tmp_path / "tiny.spice")
        recovered = read_netlist(path)
        assert recovered.total_load_current() == pytest.approx(tiny_grid.total_load_current())

    def test_roundtrip_preserves_coordinates(self, tiny_grid, tmp_path):
        path = write_netlist(tiny_grid, tmp_path / "tiny.spice")
        recovered = read_netlist(path)
        for name, node in tiny_grid.nodes.items():
            assert recovered.nodes[name].x == pytest.approx(node.x)
            assert recovered.nodes[name].y == pytest.approx(node.y)


class TestReader:
    def test_reads_minimal_deck(self):
        deck = """* test deck
R1 n1_0_0 n1_0_100 0.5
V1 n1_0_0 0 1.0
I1 n1_0_100 0 0.004
.op
.end
"""
        network = NetlistReader().read(io.StringIO(deck), name="mini")
        assert network.statistics().as_row() == (2, 1, 1, 1)
        assert network.vdd == pytest.approx(1.0)

    def test_vdd_from_comment_overrides_sources(self):
        deck = "* vdd = 1.2\nR1 a b 1.0\nV1 a 0 1.0\n.end\n"
        network = NetlistReader().read(io.StringIO(deck))
        assert network.vdd == pytest.approx(1.2)

    def test_negative_load_current_becomes_magnitude(self):
        deck = "R1 a b 1.0\nV1 a 0 1.0\nI1 b 0 -0.02\n.end\n"
        network = NetlistReader().read(io.StringIO(deck))
        assert network.total_load_current() == pytest.approx(0.02)

    def test_rejects_short_line(self):
        with pytest.raises(NetlistFormatError):
            NetlistReader().read(io.StringIO("R1 a b\n"))

    def test_rejects_unknown_element(self):
        with pytest.raises(NetlistFormatError):
            NetlistReader().read(io.StringIO("C1 a b 1.0\n"))

    def test_freeform_node_names_accepted(self):
        deck = "R1 vdd_pin sink 2.0\nVsrc vdd_pin 0 1.0\nIload sink 0 0.001\n.end\n"
        network = NetlistReader().read(io.StringIO(deck))
        assert "vdd_pin" in network
        assert "sink" in network


class TestWriter:
    def test_written_deck_has_op_and_end(self, tiny_grid):
        buffer = io.StringIO()
        NetlistWriter().write(tiny_grid, buffer)
        text = buffer.getvalue()
        assert text.strip().endswith(".end")
        assert ".op" in text

    def test_written_deck_line_count(self, tiny_grid):
        buffer = io.StringIO()
        NetlistWriter().write(tiny_grid, buffer)
        stats = tiny_grid.statistics()
        element_lines = [
            line
            for line in buffer.getvalue().splitlines()
            if line and not line.startswith(("*", "."))
        ]
        assert len(element_lines) == stats.num_resistors + stats.num_sources + stats.num_loads


@settings(max_examples=30, deadline=None)
@given(
    value=st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False)
)
def test_spice_value_format_parse_roundtrip(value):
    """Formatting then parsing a SPICE number recovers it to high precision."""
    from repro.grid.netlist import format_spice_value

    assert parse_spice_value(format_spice_value(value)) == pytest.approx(value, rel=1e-6)
