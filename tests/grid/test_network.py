"""Tests for the PowerGridNetwork container."""

import pytest

from repro.grid import CurrentSource, GridNode, PowerGridNetwork, Resistor, VoltageSource


def make_chain(num_nodes: int = 4, vdd: float = 1.0) -> PowerGridNetwork:
    """A simple resistor chain with a pad on the first node and a load on the last."""
    network = PowerGridNetwork(name="chain", vdd=vdd)
    for index in range(num_nodes):
        network.add_node(GridNode(name=f"n{index}", x=float(index), y=0.0))
    for index in range(num_nodes - 1):
        network.add_resistor(
            Resistor(name=f"R{index}", node_a=f"n{index}", node_b=f"n{index + 1}", resistance=1.0)
        )
    network.add_voltage_source(VoltageSource(name="V1", node="n0", voltage=vdd))
    network.add_current_source(CurrentSource(name="I1", node=f"n{num_nodes - 1}", current=0.01))
    return network


class TestConstruction:
    def test_statistics_match_element_counts(self):
        network = make_chain(5)
        stats = network.statistics()
        assert stats.as_row() == (5, 4, 1, 1)

    def test_adding_same_node_twice_is_idempotent(self):
        network = PowerGridNetwork()
        node = GridNode(name="a", x=0.0, y=0.0)
        network.add_node(node)
        network.add_node(node)
        assert len(network) == 1

    def test_adding_conflicting_node_raises(self):
        network = PowerGridNetwork()
        network.add_node(GridNode(name="a", x=0.0, y=0.0))
        with pytest.raises(ValueError):
            network.add_node(GridNode(name="a", x=1.0, y=0.0))

    def test_resistor_requires_existing_nodes(self):
        network = PowerGridNetwork()
        network.add_node(GridNode(name="a", x=0.0, y=0.0))
        with pytest.raises(ValueError):
            network.add_resistor(Resistor(name="R1", node_a="a", node_b="missing", resistance=1.0))

    def test_resistor_to_ground_is_allowed(self):
        network = PowerGridNetwork()
        network.add_node(GridNode(name="a", x=0.0, y=0.0))
        network.add_resistor(Resistor(name="R1", node_a="a", node_b="0", resistance=1.0))
        assert len(network.resistors) == 1

    def test_duplicate_element_names_raise(self):
        network = make_chain(3)
        with pytest.raises(ValueError):
            network.add_resistor(Resistor(name="R0", node_a="n0", node_b="n2", resistance=1.0))
        with pytest.raises(ValueError):
            network.add_voltage_source(VoltageSource(name="V1", node="n1", voltage=1.0))
        with pytest.raises(ValueError):
            network.add_current_source(CurrentSource(name="I1", node="n1", current=0.1))

    def test_rejects_nonpositive_vdd(self):
        with pytest.raises(ValueError):
            PowerGridNetwork(vdd=0.0)


class TestDerivedQuantities:
    def test_total_load_current(self):
        network = make_chain(3)
        network.add_current_source(CurrentSource(name="I2", node="n1", current=0.02))
        assert network.total_load_current() == pytest.approx(0.03)

    def test_load_by_node_aggregates(self):
        network = make_chain(3)
        network.add_current_source(CurrentSource(name="I2", node="n2", current=0.02))
        assert network.load_by_node()["n2"] == pytest.approx(0.03)

    def test_pad_nodes(self):
        network = make_chain(3)
        assert network.pad_nodes() == {"n0"}

    def test_node_index_is_stable_and_dense(self):
        network = make_chain(4)
        index = network.node_index()
        assert sorted(index.values()) == list(range(4))
        assert network.node_index() is index  # cached

    def test_node_index_invalidated_by_new_node(self):
        network = make_chain(3)
        first = network.node_index()
        network.add_node(GridNode(name="extra", x=9.0, y=9.0))
        assert len(network.node_index()) == len(first) + 1

    def test_lines_groups_by_line_id(self):
        network = PowerGridNetwork()
        for name in ("a", "b", "c"):
            network.add_node(GridNode(name=name, x=0.0, y=0.0))
        network.add_resistor(Resistor(name="R1", node_a="a", node_b="b", resistance=1.0, line_id=0))
        network.add_resistor(Resistor(name="R2", node_a="b", node_b="c", resistance=1.0, line_id=0))
        network.add_resistor(
            Resistor(name="R3", node_a="a", node_b="c", resistance=1.0, line_id=-1)
        )
        lines = network.lines()
        assert set(lines) == {0}
        assert len(lines[0]) == 2

    def test_to_graph_preserves_connectivity(self):
        network = make_chain(4)
        graph = network.to_graph()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 3

    def test_is_connected_to_pads_true_for_chain(self):
        assert make_chain(4).is_connected_to_pads()

    def test_is_connected_to_pads_false_for_island(self):
        network = make_chain(3)
        network.add_node(GridNode(name="island", x=99.0, y=99.0))
        assert not network.is_connected_to_pads()

    def test_is_connected_to_pads_false_without_pads(self):
        network = PowerGridNetwork()
        network.add_node(GridNode(name="a", x=0.0, y=0.0))
        assert not network.is_connected_to_pads()


class TestCopyAndModification:
    def test_copy_is_independent(self):
        network = make_chain(3)
        clone = network.copy()
        clone.add_node(GridNode(name="new", x=5.0, y=5.0))
        assert "new" not in network

    def test_with_scaled_loads(self):
        network = make_chain(3)
        scaled = network.with_scaled_loads(2.0)
        assert scaled.total_load_current() == pytest.approx(2.0 * network.total_load_current())
        assert network.total_load_current() == pytest.approx(0.01)

    def test_replace_loads(self):
        network = make_chain(3)
        replaced = network.replace_loads(
            [CurrentSource(name="J1", node="n1", current=0.5)]
        )
        assert replaced.total_load_current() == pytest.approx(0.5)
        assert set(replaced.current_sources) == {"J1"}
        assert set(network.current_sources) == {"I1"}
