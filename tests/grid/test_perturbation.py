"""Tests for the gamma-perturbation engine (paper Section IV-D)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import (
    FloorplanPerturbator,
    NetworkPerturbator,
    PerturbationKind,
    PerturbationSpec,
    perturbation_sweep,
)


class TestSpec:
    def test_rejects_gamma_out_of_range(self):
        with pytest.raises(ValueError):
            PerturbationSpec(gamma=1.5)
        with pytest.raises(ValueError):
            PerturbationSpec(gamma=-0.1)

    def test_kind_flags(self):
        both = PerturbationSpec(gamma=0.1, kind=PerturbationKind.BOTH)
        currents = PerturbationSpec(gamma=0.1, kind=PerturbationKind.CURRENT_WORKLOADS)
        voltages = PerturbationSpec(gamma=0.1, kind=PerturbationKind.NODE_VOLTAGES)
        assert both.perturbs_currents and both.perturbs_voltages
        assert currents.perturbs_currents and not currents.perturbs_voltages
        assert voltages.perturbs_voltages and not voltages.perturbs_currents

    def test_sweep_covers_all_kinds_and_gammas(self):
        specs = perturbation_sweep()
        gammas = sorted({spec.gamma for spec in specs})
        kinds = {spec.kind for spec in specs}
        assert gammas == [0.10, 0.15, 0.20, 0.25, 0.30]
        assert kinds == set(PerturbationKind)
        assert len(specs) == len(gammas) * len(kinds)


class TestFloorplanPerturbator:
    def test_current_perturbation_bounded_by_gamma(self, tiny_floorplan):
        spec = PerturbationSpec(gamma=0.2, kind=PerturbationKind.CURRENT_WORKLOADS, seed=3)
        perturbed = FloorplanPerturbator(spec).perturb(tiny_floorplan)
        for original, modified in zip(tiny_floorplan.iter_blocks(), perturbed.iter_blocks()):
            ratio = modified.switching_current / original.switching_current
            assert 0.8 - 1e-9 <= ratio <= 1.2 + 1e-9

    def test_voltage_kind_does_not_touch_currents(self, tiny_floorplan):
        spec = PerturbationSpec(gamma=0.3, kind=PerturbationKind.NODE_VOLTAGES, seed=3)
        perturbed = FloorplanPerturbator(spec).perturb(tiny_floorplan)
        for original, modified in zip(tiny_floorplan.iter_blocks(), perturbed.iter_blocks()):
            assert modified.switching_current == pytest.approx(original.switching_current)

    def test_voltage_perturbation_changes_pads(self, tiny_floorplan):
        spec = PerturbationSpec(gamma=0.2, kind=PerturbationKind.NODE_VOLTAGES, seed=3)
        perturbed = FloorplanPerturbator(spec).perturb(tiny_floorplan)
        originals = [p.voltage for p in tiny_floorplan.iter_pads()]
        modified = [p.voltage for p in perturbed.iter_pads()]
        assert originals != modified

    def test_zero_gamma_is_identity(self, tiny_floorplan):
        spec = PerturbationSpec(gamma=0.0, kind=PerturbationKind.BOTH, seed=3)
        perturbed = FloorplanPerturbator(spec).perturb(tiny_floorplan)
        for original, modified in zip(tiny_floorplan.iter_blocks(), perturbed.iter_blocks()):
            assert modified.switching_current == pytest.approx(original.switching_current)

    def test_deterministic_given_seed(self, tiny_floorplan):
        spec = PerturbationSpec(gamma=0.1, seed=7)
        first = FloorplanPerturbator(spec).perturb(tiny_floorplan)
        second = FloorplanPerturbator(spec).perturb(tiny_floorplan)
        assert [b.switching_current for b in first.iter_blocks()] == [
            b.switching_current for b in second.iter_blocks()
        ]

    def test_perturbed_name_suffix(self, tiny_floorplan):
        spec = PerturbationSpec(gamma=0.1, seed=7)
        assert FloorplanPerturbator(spec).perturb(tiny_floorplan).name.endswith("_perturbed")


class TestNetworkPerturbator:
    def test_load_currents_bounded_by_gamma(self, tiny_grid):
        spec = PerturbationSpec(gamma=0.15, kind=PerturbationKind.CURRENT_WORKLOADS, seed=2)
        perturbed = NetworkPerturbator(spec).perturb(tiny_grid)
        for name, load in tiny_grid.current_sources.items():
            ratio = perturbed.current_sources[name].current / load.current
            assert 0.85 - 1e-9 <= ratio <= 1.15 + 1e-9

    def test_pad_voltages_perturbed_only_for_voltage_kinds(self, tiny_grid):
        current_only = NetworkPerturbator(
            PerturbationSpec(gamma=0.2, kind=PerturbationKind.CURRENT_WORKLOADS, seed=2)
        ).perturb(tiny_grid)
        for name, pad in tiny_grid.voltage_sources.items():
            assert current_only.voltage_sources[name].voltage == pytest.approx(pad.voltage)

        both = NetworkPerturbator(
            PerturbationSpec(gamma=0.2, kind=PerturbationKind.BOTH, seed=2)
        ).perturb(tiny_grid)
        changed = [
            both.voltage_sources[name].voltage != pytest.approx(pad.voltage)
            for name, pad in tiny_grid.voltage_sources.items()
        ]
        assert any(changed)

    def test_topology_untouched(self, tiny_grid):
        spec = PerturbationSpec(gamma=0.3, kind=PerturbationKind.BOTH, seed=2)
        perturbed = NetworkPerturbator(spec).perturb(tiny_grid)
        assert perturbed.statistics().as_row() == tiny_grid.statistics().as_row()
        for name, resistor in tiny_grid.resistors.items():
            assert perturbed.resistors[name].resistance == pytest.approx(resistor.resistance)


@settings(max_examples=20, deadline=None)
@given(gamma=st.floats(min_value=0.01, max_value=0.5))
def test_perturbation_total_current_within_gamma_bound(gamma):
    """The perturbed total current stays within gamma of the original total."""
    from repro.grid import Floorplan, FunctionalBlock, PowerPad

    floorplan = Floorplan(
        "prop",
        1000.0,
        1000.0,
        blocks=[
            FunctionalBlock("b0", 0.0, 0.0, 400.0, 400.0, 0.1),
            FunctionalBlock("b1", 500.0, 500.0, 400.0, 400.0, 0.2),
        ],
        pads=[PowerPad("p0", 500.0, 500.0, 1.0)],
    )
    spec = PerturbationSpec(gamma=gamma, kind=PerturbationKind.CURRENT_WORKLOADS, seed=0)
    perturbed = FloorplanPerturbator(spec).perturb(floorplan)
    original = floorplan.total_switching_current
    assert abs(perturbed.total_switching_current - original) <= gamma * original + 1e-12
