"""Tests for the floorplan model."""

import numpy as np
import pytest

from repro.grid import Floorplan, FunctionalBlock, PowerPad


def block(name="b0", x=0.0, y=0.0, width=100.0, height=100.0, current=0.1):
    return FunctionalBlock(
        name=name, x=x, y=y, width=width, height=height, switching_current=current
    )


class TestFunctionalBlock:
    def test_center_and_area(self):
        b = block(x=10.0, y=20.0, width=100.0, height=50.0)
        assert b.center == (60.0, 45.0)
        assert b.area == pytest.approx(5000.0)

    def test_contains(self):
        b = block(width=100.0, height=100.0)
        assert b.contains(50.0, 50.0)
        assert b.contains(0.0, 0.0)
        assert not b.contains(150.0, 50.0)

    def test_current_density(self):
        b = block(width=100.0, height=100.0, current=0.1)
        assert b.current_density == pytest.approx(1e-5)

    def test_with_current(self):
        b = block(current=0.1)
        assert b.with_current(0.3).switching_current == pytest.approx(0.3)
        assert b.switching_current == pytest.approx(0.1)

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            block(width=0.0)

    def test_rejects_negative_current(self):
        with pytest.raises(ValueError):
            block(current=-0.1)


class TestPowerPad:
    def test_rejects_nonpositive_voltage(self):
        with pytest.raises(ValueError):
            PowerPad(name="p", x=0.0, y=0.0, voltage=0.0)


class TestFloorplan:
    def test_block_outside_core_rejected(self):
        with pytest.raises(ValueError):
            Floorplan("f", 100.0, 100.0, blocks=[block(x=50.0, width=100.0)])

    def test_pad_outside_core_rejected(self):
        with pytest.raises(ValueError):
            Floorplan("f", 100.0, 100.0, pads=[PowerPad(name="p", x=200.0, y=0.0, voltage=1.0)])

    def test_duplicate_block_name_rejected(self):
        plan = Floorplan("f", 1000.0, 1000.0, blocks=[block()])
        with pytest.raises(ValueError):
            plan.add_block(block())

    def test_total_switching_current(self, tiny_floorplan):
        expected = sum(b.switching_current for b in tiny_floorplan.iter_blocks())
        assert tiny_floorplan.total_switching_current == pytest.approx(expected)

    def test_block_at_finds_covering_block(self, tiny_floorplan):
        found = tiny_floorplan.block_at(100.0, 100.0)
        assert found is not None and found.name == "b0"
        assert tiny_floorplan.block_at(500.0, 500.0) is None

    def test_switching_current_at_block_and_gap(self, tiny_floorplan):
        assert tiny_floorplan.switching_current_at(100.0, 100.0) == pytest.approx(0.08)
        assert tiny_floorplan.switching_current_at(475.0, 475.0) == 0.0

    def test_vectorised_query_matches_scalar(self, tiny_floorplan, rng):
        xs = rng.uniform(0.0, tiny_floorplan.core_width, size=200)
        ys = rng.uniform(0.0, tiny_floorplan.core_height, size=200)
        vectorised = tiny_floorplan.switching_currents_at(xs, ys)
        scalar = np.asarray(
            [tiny_floorplan.switching_current_at(x, y) for x, y in zip(xs, ys)]
        )
        np.testing.assert_allclose(vectorised, scalar)

    def test_vectorised_query_shape_mismatch(self, tiny_floorplan):
        with pytest.raises(ValueError):
            tiny_floorplan.switching_currents_at(np.zeros(3), np.zeros(4))

    def test_current_density_map_conserves_hot_region(self, tiny_floorplan):
        density = tiny_floorplan.current_density_map(resolution=32)
        assert density.shape == (32, 32)
        # The hottest block (b1, lower-right quadrant) should dominate.
        hot_quadrant = density[:16, 16:]
        assert hot_quadrant.max() == pytest.approx(density.max())

    def test_with_scaled_currents(self, tiny_floorplan):
        scaled = tiny_floorplan.with_scaled_currents(2.0)
        assert scaled.total_switching_current == pytest.approx(
            2.0 * tiny_floorplan.total_switching_current
        )

    def test_with_block_currents_unknown_block(self, tiny_floorplan):
        with pytest.raises(KeyError):
            tiny_floorplan.with_block_currents({"nope": 1.0})

    def test_with_block_currents_selected_update(self, tiny_floorplan):
        updated = tiny_floorplan.with_block_currents({"b0": 0.5})
        assert updated.blocks["b0"].switching_current == pytest.approx(0.5)
        assert updated.blocks["b1"].switching_current == pytest.approx(
            tiny_floorplan.blocks["b1"].switching_current
        )

    def test_rejects_nonpositive_core(self):
        with pytest.raises(ValueError):
            Floorplan("f", 0.0, 100.0)
