"""Tests for the array-backed CompiledGrid layer."""

import numpy as np
import pytest

from repro.analysis import assemble
from repro.grid import (
    GROUND_NODE,
    CompiledGrid,
    CurrentSource,
    GridNode,
    NetworkPerturbator,
    PerturbationKind,
    PerturbationSpec,
    PowerGridNetwork,
    Resistor,
    VoltageSource,
    compile_grid,
)


def reference_assemble(network):
    """Straightforward dict-based re-implementation of the legacy stamping.

    Kept as an independent oracle for the vectorised COO assembly: it
    mirrors, element by element, the per-resistor Python loop the assembler
    used before the CompiledGrid refactor.
    """
    fixed = {}
    for source in network.iter_pads():
        fixed[source.node] = source.voltage
    unknown = [name for name in network.nodes if name not in fixed]
    index = {name: i for i, name in enumerate(unknown)}
    n = len(unknown)
    matrix = np.zeros((n, n))
    rhs = np.zeros(n)
    for resistor in network.iter_resistors():
        g = 1.0 / resistor.resistance
        a, b = resistor.node_a, resistor.node_b
        if a == GROUND_NODE and b == GROUND_NODE:
            continue
        if a == GROUND_NODE or b == GROUND_NODE:
            node = b if a == GROUND_NODE else a
            if node in index:
                matrix[index[node], index[node]] += g
            continue
        a_fixed, b_fixed = a in fixed, b in fixed
        if a_fixed and b_fixed:
            continue
        if a_fixed or b_fixed:
            fixed_node, free = (a, b) if a_fixed else (b, a)
            matrix[index[free], index[free]] += g
            rhs[index[free]] += g * fixed[fixed_node]
            continue
        i, j = index[a], index[b]
        matrix[i, i] += g
        matrix[j, j] += g
        matrix[i, j] -= g
        matrix[j, i] -= g
    for load in network.iter_loads():
        if load.node in index:
            rhs[index[load.node]] -= load.current
    return matrix, rhs, unknown


def awkward_network():
    """A small grid exercising every stamping corner case at once."""
    network = PowerGridNetwork(name="awkward", vdd=1.2)
    for name in ("p1", "p2", "a", "b", "c"):
        network.add_node(GridNode(name=name, x=0.0, y=0.0))
    network.add_voltage_source(VoltageSource(name="V1", node="p1", voltage=1.2))
    network.add_voltage_source(VoltageSource(name="V2", node="p2", voltage=1.1))
    network.add_resistor(Resistor(name="Rpp", node_a="p1", node_b="p2", resistance=1.0))
    network.add_resistor(Resistor(name="Rpa", node_a="p1", node_b="a", resistance=2.0))
    network.add_resistor(Resistor(name="Rab", node_a="a", node_b="b", resistance=3.0))
    network.add_resistor(Resistor(name="Rbc", node_a="b", node_b="c", resistance=4.0))
    network.add_resistor(Resistor(name="Rcp", node_a="c", node_b="p2", resistance=5.0))
    network.add_resistor(Resistor(name="Rg", node_a="b", node_b=GROUND_NODE, resistance=50.0))
    network.add_resistor(Resistor(name="Rgp", node_a="p1", node_b=GROUND_NODE, resistance=60.0))
    network.add_current_source(CurrentSource(name="I1", node="c", current=0.02))
    network.add_current_source(CurrentSource(name="I2", node="c", current=0.01))
    network.add_current_source(CurrentSource(name="Ipad", node="p1", current=0.5))
    return network


class TestCompilation:
    def test_sizes_match_network(self, tiny_grid):
        compiled = compile_grid(tiny_grid)
        stats = tiny_grid.statistics()
        assert compiled.num_nodes == stats.num_nodes
        assert compiled.num_resistors == stats.num_resistors
        assert len(compiled.load_names) == stats.num_loads
        assert compiled.num_unknowns == stats.num_nodes - len(tiny_grid.pad_nodes())

    def test_matrix_matches_reference_assembler(self, tiny_grid):
        compiled = compile_grid(tiny_grid)
        matrix, rhs, unknown = reference_assemble(tiny_grid)
        assert list(compiled.unknown_nodes) == unknown
        np.testing.assert_allclose(compiled.reduced_matrix.toarray(), matrix, atol=1e-15)
        np.testing.assert_allclose(compiled.rhs(), rhs, atol=1e-15)

    def test_corner_cases_match_reference_assembler(self):
        network = awkward_network()
        compiled = compile_grid(network)
        matrix, rhs, unknown = reference_assemble(network)
        assert list(compiled.unknown_nodes) == unknown
        assert compiled.ground_connected
        np.testing.assert_allclose(compiled.reduced_matrix.toarray(), matrix, atol=1e-15)
        np.testing.assert_allclose(compiled.rhs(), rhs, atol=1e-15)

    def test_assemble_wrapper_uses_compiled_grid(self, tiny_grid):
        system = assemble(tiny_grid)
        compiled = tiny_grid.compile()
        assert system.unknown_nodes == list(compiled.unknown_nodes)
        np.testing.assert_allclose(
            system.matrix.toarray(), compiled.reduced_matrix.toarray(), atol=1e-15
        )

    def test_assembled_matrix_is_independently_mutable(self, tiny_grid):
        """Mutating one assembled system must not poison the compiled cache."""
        system = assemble(tiny_grid)
        original_diagonal = system.matrix.diagonal().copy()
        system.matrix.setdiag(system.matrix.diagonal() + 1e3)
        fresh = assemble(tiny_grid)
        np.testing.assert_allclose(fresh.matrix.diagonal(), original_diagonal)

    def test_base_loads_aggregate_per_node(self):
        network = awkward_network()
        compiled = compile_grid(network)
        c = compiled.node_index["c"]
        assert compiled.base_loads[c] == pytest.approx(0.03)
        assert compiled.base_loads[compiled.node_index["p1"]] == pytest.approx(0.5)


class TestCompileCache:
    def test_compile_is_cached(self, tiny_grid):
        assert tiny_grid.compile() is tiny_grid.compile()

    def test_cache_invalidated_by_mutation(self):
        network = awkward_network()
        first = network.compile()
        network.add_node(GridNode(name="extra", x=1.0, y=1.0))
        network.add_resistor(Resistor(name="Rx", node_a="a", node_b="extra", resistance=1.0))
        second = network.compile()
        assert first is not second
        assert second.num_nodes == first.num_nodes + 1

    def test_copy_does_not_share_compiled_form(self):
        network = awkward_network()
        compiled = network.compile()
        clone = network.with_scaled_loads(2.0)
        assert clone.compile() is not compiled
        np.testing.assert_allclose(clone.compile().base_loads, 2.0 * compiled.base_loads)


class TestFingerprint:
    def test_load_change_keeps_fingerprint(self):
        network = awkward_network()
        scaled = network.with_scaled_loads(3.0)
        assert network.compile().fingerprint == scaled.compile().fingerprint

    def test_pad_voltage_change_keeps_fingerprint(self):
        network = awkward_network()
        spec = PerturbationSpec(gamma=0.2, kind=PerturbationKind.NODE_VOLTAGES, seed=7)
        perturbed = NetworkPerturbator(spec).perturb(network)
        assert network.compile().fingerprint == perturbed.compile().fingerprint

    def test_resistance_change_changes_fingerprint(self):
        network = awkward_network()
        other = awkward_network()
        other._resistors = dict(other._resistors)
        other._resistors["Rab"] = Resistor(name="Rab", node_a="a", node_b="b", resistance=3.5)
        other._compiled = None
        assert network.compile().fingerprint != other.compile().fingerprint

    def test_pad_set_change_changes_fingerprint(self):
        network = awkward_network()
        other = awkward_network()
        other.add_voltage_source(VoltageSource(name="V3", node="a", voltage=1.2))
        assert network.compile().fingerprint != other.compile().fingerprint


class TestSolutionHelpers:
    def test_full_voltages_scatters_pads_and_unknowns(self):
        compiled = compile_grid(awkward_network())
        unknown = np.linspace(0.5, 0.7, compiled.num_unknowns)
        full = compiled.full_voltages(unknown)
        assert full.shape == (compiled.num_nodes,)
        assert full[compiled.node_index["p1"]] == pytest.approx(1.2)
        assert full[compiled.node_index["p2"]] == pytest.approx(1.1)
        np.testing.assert_allclose(full[compiled.unknown_sel], unknown)

    def test_full_voltages_batched(self):
        compiled = compile_grid(awkward_network())
        unknown = np.random.default_rng(0).random((compiled.num_unknowns, 4))
        full = compiled.full_voltages(unknown)
        assert full.shape == (compiled.num_nodes, 4)
        for k in range(4):
            np.testing.assert_allclose(full[:, k], compiled.full_voltages(unknown[:, k]))

    def test_rhs_matrix_matches_single_rhs(self):
        compiled = compile_grid(awkward_network())
        rng = np.random.default_rng(3)
        loads = rng.random((5, compiled.num_nodes))
        stacked = compiled.rhs_matrix(loads)
        for k in range(5):
            np.testing.assert_allclose(stacked[:, k], compiled.rhs(loads[k]))

    def test_branch_current_array_obeys_ohms_law(self, tiny_grid):
        compiled = tiny_grid.compile()
        rng = np.random.default_rng(5)
        voltages = rng.random(compiled.num_nodes)
        currents = compiled.branch_current_array(voltages)
        lookup = dict(zip(compiled.node_names, voltages))
        for resistor, current in zip(compiled.resistors, currents):
            va = lookup.get(resistor.node_a, 0.0)
            vb = lookup.get(resistor.node_b, 0.0)
            assert current == pytest.approx((va - vb) / resistor.resistance)

    def test_rhs_rejects_bad_shapes(self):
        compiled = compile_grid(awkward_network())
        with pytest.raises(ValueError):
            compiled.rhs(np.zeros(compiled.num_nodes + 1))
        with pytest.raises(ValueError):
            compiled.rhs_matrix(np.zeros((2, compiled.num_nodes + 1)))

    def test_isinstance_of_compiled_grid(self, tiny_grid):
        assert isinstance(tiny_grid.compile(), CompiledGrid)
