"""Tests for technology parameters and metal-layer specifications."""

import pytest

from repro.grid import MetalLayerSpec, Technology, generic_45nm, generic_65nm


def make_layer(**overrides):
    defaults = dict(
        name="M6",
        sheet_resistance=0.04,
        min_width=0.8,
        max_width=30.0,
        min_spacing=0.8,
        direction="horizontal",
    )
    defaults.update(overrides)
    return MetalLayerSpec(**defaults)


class TestMetalLayerSpec:
    def test_wire_resistance_formula(self):
        layer = make_layer(sheet_resistance=0.05)
        # R = rho * l / w
        assert layer.wire_resistance(length=100.0, width=5.0) == pytest.approx(1.0)

    def test_wire_resistance_scales_inversely_with_width(self):
        layer = make_layer()
        narrow = layer.wire_resistance(100.0, 1.0)
        wide = layer.wire_resistance(100.0, 4.0)
        assert narrow == pytest.approx(4.0 * wide)

    def test_wire_resistance_zero_length(self):
        assert make_layer().wire_resistance(0.0, 2.0) == 0.0

    def test_wire_resistance_rejects_bad_width(self):
        with pytest.raises(ValueError):
            make_layer().wire_resistance(10.0, 0.0)

    def test_wire_resistance_rejects_negative_length(self):
        with pytest.raises(ValueError):
            make_layer().wire_resistance(-1.0, 2.0)

    def test_rejects_invalid_direction(self):
        with pytest.raises(ValueError):
            make_layer(direction="diagonal")

    def test_rejects_max_below_min_width(self):
        with pytest.raises(ValueError):
            make_layer(min_width=2.0, max_width=1.0)

    def test_rejects_nonpositive_sheet_resistance(self):
        with pytest.raises(ValueError):
            make_layer(sheet_resistance=0.0)


class TestTechnology:
    def test_ir_drop_limit_is_fraction_of_vdd(self):
        tech = generic_45nm()
        assert tech.ir_drop_limit == pytest.approx(tech.vdd * tech.ir_drop_limit_fraction)

    def test_layer_lookup_by_name(self):
        tech = generic_45nm()
        assert tech.layer("M6").name == "M6"

    def test_layer_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            generic_45nm().layer("M99")

    def test_directional_layer_accessors(self):
        tech = generic_45nm()
        assert tech.horizontal_layer.direction == "horizontal"
        assert tech.vertical_layer.direction == "vertical"

    def test_with_vdd_returns_modified_copy(self):
        tech = generic_45nm()
        scaled = tech.with_vdd(0.9)
        assert scaled.vdd == pytest.approx(0.9)
        assert tech.vdd == pytest.approx(1.0)
        assert scaled.layers == tech.layers

    def test_requires_at_least_one_layer(self):
        with pytest.raises(ValueError):
            Technology(
                name="bad", vdd=1.0, jmax=1e-2, ir_drop_limit_fraction=0.1, layers=()
            )

    def test_rejects_out_of_range_ir_fraction(self):
        with pytest.raises(ValueError):
            Technology(
                name="bad",
                vdd=1.0,
                jmax=1e-2,
                ir_drop_limit_fraction=1.5,
                layers=(make_layer(),),
            )

    def test_generic_65nm_is_more_resistive(self):
        assert (
            generic_65nm().layer("M6").sheet_resistance
            > generic_45nm().layer("M6").sheet_resistance
        )

    def test_missing_direction_raises(self):
        tech = Technology(
            name="only-horizontal",
            vdd=1.0,
            jmax=1e-2,
            ir_drop_limit_fraction=0.1,
            layers=(make_layer(),),
        )
        with pytest.raises(ValueError):
            _ = tech.vertical_layer
