"""Tests for mesh power-grid construction."""

import numpy as np
import pytest

from repro.grid import GridBuilder, GridTopology, uniform_topology


class TestTopology:
    def test_uniform_topology_counts(self, tiny_floorplan):
        topology = uniform_topology(tiny_floorplan, 6, 4)
        assert topology.num_vertical == 6
        assert topology.num_horizontal == 4
        assert topology.num_lines == 10

    def test_uniform_topology_positions_inside_core(self, tiny_floorplan):
        topology = uniform_topology(tiny_floorplan, 6, 4)
        assert all(0 < x < tiny_floorplan.core_width for x in topology.vertical_positions)
        assert all(0 < y < tiny_floorplan.core_height for y in topology.horizontal_positions)

    def test_line_position_and_direction(self, tiny_topology):
        assert tiny_topology.is_vertical(0)
        assert not tiny_topology.is_vertical(tiny_topology.num_vertical)
        assert tiny_topology.line_position(0) == tiny_topology.vertical_positions[0]
        assert (
            tiny_topology.line_position(tiny_topology.num_vertical)
            == tiny_topology.horizontal_positions[0]
        )

    def test_line_position_out_of_range(self, tiny_topology):
        with pytest.raises(IndexError):
            tiny_topology.line_position(tiny_topology.num_lines)
        with pytest.raises(IndexError):
            tiny_topology.is_vertical(-1)

    def test_rejects_too_few_lines(self, tiny_floorplan):
        with pytest.raises(ValueError):
            uniform_topology(tiny_floorplan, 1, 4)

    def test_topology_validation(self):
        with pytest.raises(ValueError):
            GridTopology(
                num_vertical=2,
                num_horizontal=2,
                vertical_positions=(1.0,),
                horizontal_positions=(1.0, 2.0),
            )


class TestGridBuilder:
    def test_node_and_resistor_counts(self, technology, tiny_floorplan, tiny_topology):
        network = GridBuilder(technology).build(tiny_floorplan, tiny_topology, 5.0)
        nv, nh = tiny_topology.num_vertical, tiny_topology.num_horizontal
        stats = network.statistics()
        assert stats.num_nodes == 2 * nv * nh
        expected_resistors = nv * (nh - 1) + nh * (nv - 1) + nv * nh  # wires + vias
        assert stats.num_resistors == expected_resistors
        assert stats.num_sources == len(tiny_floorplan.pads)
        assert stats.num_loads > 0

    def test_total_load_current_preserved(self, technology, tiny_floorplan, tiny_topology):
        network = GridBuilder(technology).build(tiny_floorplan, tiny_topology, 5.0)
        assert network.total_load_current() == pytest.approx(
            tiny_floorplan.total_switching_current, rel=1e-9
        )

    def test_grid_is_connected_to_pads(self, tiny_grid):
        assert tiny_grid.is_connected_to_pads()

    def test_per_line_widths_set_segment_resistance(
        self, technology, tiny_floorplan, tiny_topology
    ):
        widths = np.linspace(2.0, 10.0, tiny_topology.num_lines)
        network = GridBuilder(technology).build(tiny_floorplan, tiny_topology, widths)
        for resistor in network.iter_resistors():
            if resistor.is_via:
                continue
            layer = technology.layer(resistor.layer)
            expected = layer.wire_resistance(resistor.length, widths[resistor.line_id])
            assert resistor.resistance == pytest.approx(expected)

    def test_wider_lines_have_lower_resistance(self, technology, tiny_floorplan, tiny_topology):
        narrow = GridBuilder(technology).build(tiny_floorplan, tiny_topology, 2.0)
        wide = GridBuilder(technology).build(tiny_floorplan, tiny_topology, 8.0)
        narrow_total = sum(r.resistance for r in narrow.iter_resistors() if not r.is_via)
        wide_total = sum(r.resistance for r in wide.iter_resistors() if not r.is_via)
        assert wide_total < narrow_total

    def test_wrong_width_vector_length_raises(self, technology, tiny_floorplan, tiny_topology):
        with pytest.raises(ValueError):
            GridBuilder(technology).build(tiny_floorplan, tiny_topology, [5.0, 5.0])

    def test_nonpositive_width_raises(self, technology, tiny_floorplan, tiny_topology):
        widths = np.full(tiny_topology.num_lines, 5.0)
        widths[0] = 0.0
        with pytest.raises(ValueError):
            GridBuilder(technology).build(tiny_floorplan, tiny_topology, widths)

    def test_floorplan_without_pads_raises(self, technology, tiny_floorplan, tiny_topology):
        from repro.grid import Floorplan

        bare = Floorplan(
            name="no_pads",
            core_width=tiny_floorplan.core_width,
            core_height=tiny_floorplan.core_height,
            blocks=list(tiny_floorplan.iter_blocks()),
        )
        with pytest.raises(ValueError):
            GridBuilder(technology).build(bare, tiny_topology, 5.0)

    def test_line_ids_cover_all_lines(self, tiny_grid, tiny_topology):
        seen = {r.line_id for r in tiny_grid.iter_resistors() if r.line_id >= 0}
        assert seen == set(range(tiny_topology.num_lines))

    def test_loads_attach_to_lower_layer(self, tiny_grid, technology):
        lower = technology.vertical_layer.name
        for load in tiny_grid.iter_loads():
            assert tiny_grid.node(load.node).layer == lower

    def test_pads_attach_to_upper_layer(self, tiny_grid, technology):
        upper = technology.horizontal_layer.name
        for pad in tiny_grid.iter_pads():
            assert tiny_grid.node(pad.node).layer == upper
