"""Tests for the analytical eq. (1) wire sizing."""

import numpy as np
import pytest

from repro.design import (
    AnalyticalSizer,
    DesignRules,
    SizingParameters,
    estimate_line_currents,
    width_from_ir_budget,
)


class TestEquationOne:
    def test_width_formula(self):
        # w = rho * l * I / V_IR
        assert width_from_ir_budget(0.08, 100.0, 0.05, 0.05) == pytest.approx(8.0)

    def test_zero_current_gives_zero_width(self):
        assert width_from_ir_budget(0.08, 100.0, 0.0, 0.05) == 0.0

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            width_from_ir_budget(0.08, 100.0, 0.05, 0.0)

    def test_width_grows_with_current_and_length(self):
        base = width_from_ir_budget(0.08, 100.0, 0.05, 0.05)
        assert width_from_ir_budget(0.08, 200.0, 0.05, 0.05) == pytest.approx(2 * base)
        assert width_from_ir_budget(0.08, 100.0, 0.10, 0.05) == pytest.approx(2 * base)


class TestLineCurrentEstimation:
    def test_total_current_conserved_per_direction(self, tiny_floorplan, tiny_topology):
        currents = estimate_line_currents(tiny_floorplan, tiny_topology)
        total = tiny_floorplan.total_switching_current
        vertical = currents[: tiny_topology.num_vertical].sum()
        horizontal = currents[tiny_topology.num_vertical :].sum()
        assert vertical == pytest.approx(total, rel=1e-9)
        assert horizontal == pytest.approx(total, rel=1e-9)

    def test_lines_near_hot_block_get_more_current(self, tiny_floorplan, tiny_topology):
        currents = estimate_line_currents(tiny_floorplan, tiny_topology)
        hot_block = max(tiny_floorplan.iter_blocks(), key=lambda b: b.switching_current)
        positions = np.asarray(tiny_topology.vertical_positions)
        nearest = int(np.argmin(np.abs(positions - hot_block.center[0])))
        farthest = int(np.argmax(np.abs(positions - hot_block.center[0])))
        assert currents[nearest] > currents[farthest]

    def test_rejects_bad_decay(self, tiny_floorplan, tiny_topology):
        with pytest.raises(ValueError):
            estimate_line_currents(tiny_floorplan, tiny_topology, decay_fraction=0.0)


class TestAnalyticalSizer:
    def test_widths_are_legal(self, technology, tiny_floorplan, tiny_topology):
        sizer = AnalyticalSizer(technology)
        widths = sizer.size(tiny_floorplan, tiny_topology)
        rules = DesignRules.from_technology(technology)
        assert widths.shape == (tiny_topology.num_lines,)
        assert np.all(widths >= rules.min_width - 1e-9)
        assert np.all(widths <= rules.max_width + 1e-9)

    def test_more_current_gives_wider_lines(self, technology, tiny_floorplan, tiny_topology):
        sizer = AnalyticalSizer(technology)
        nominal = sizer.size(tiny_floorplan, tiny_topology)
        heavy = sizer.size(tiny_floorplan.with_scaled_currents(3.0), tiny_topology)
        assert heavy.sum() > nominal.sum()

    def test_em_safety_factor_never_shrinks_widths(self, technology, tiny_floorplan, tiny_topology):
        loose = AnalyticalSizer(technology, parameters=SizingParameters(em_safety_factor=1.0))
        tight = AnalyticalSizer(technology, parameters=SizingParameters(em_safety_factor=2.0))
        assert tight.size(tiny_floorplan, tiny_topology).sum() >= loose.size(
            tiny_floorplan, tiny_topology
        ).sum() - 1e-9

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SizingParameters(ir_budget_fraction=0.0)
        with pytest.raises(ValueError):
            SizingParameters(em_safety_factor=0.5)
        with pytest.raises(ValueError):
            SizingParameters(distance_decay=0.0)
