"""Tests for the reliability constraints (IR drop, EM, core budget)."""

import numpy as np
import pytest

from repro.analysis import EMChecker, IRDropAnalyzer
from repro.design import DesignRules, ReliabilityConstraints
from repro.grid import GridBuilder, generic_45nm


@pytest.fixture(scope="module")
def constraints(tiny_floorplan):
    technology = generic_45nm()
    return ReliabilityConstraints.from_technology(
        technology, tiny_floorplan.core_width, tiny_floorplan.core_height
    )


@pytest.fixture(scope="module")
def rules():
    return DesignRules.from_technology(generic_45nm())


class TestConstruction:
    def test_from_technology(self, constraints, technology):
        assert constraints.ir_drop_limit == pytest.approx(technology.ir_drop_limit)
        assert constraints.jmax == pytest.approx(technology.jmax)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReliabilityConstraints(
                ir_drop_limit=0.0, jmax=0.01, core_width=100.0, core_height=100.0
            )
        with pytest.raises(ValueError):
            ReliabilityConstraints(ir_drop_limit=0.1, jmax=0.0, core_width=100.0, core_height=100.0)
        with pytest.raises(ValueError):
            ReliabilityConstraints(ir_drop_limit=0.1, jmax=0.01, core_width=0.0, core_height=100.0)


class TestChecks:
    def test_ir_drop_check(self, constraints, tiny_grid):
        result = IRDropAnalyzer().analyze(tiny_grid)
        assert constraints.ir_drop_satisfied(result) == (
            result.worst_ir_drop <= constraints.ir_drop_limit
        )

    def test_core_budget_check(self, constraints, rules):
        few_thin = np.full(4, 1.0)
        many_wide = np.full(40, 30.0)
        assert constraints.core_budget_satisfied(few_thin, rules)
        assert not constraints.core_budget_satisfied(many_wide, rules)

    def test_evaluate_all_satisfied(
        self, constraints, rules, technology, tiny_floorplan, tiny_topology
    ):
        network = GridBuilder(technology).build(tiny_floorplan, tiny_topology, 10.0)
        ir = IRDropAnalyzer().analyze(network)
        em = EMChecker(technology).check(network, ir)
        widths = np.full(tiny_topology.num_lines, 10.0)
        evaluation = constraints.evaluate(
            ir,
            em,
            widths[: tiny_topology.num_vertical],
            widths[tiny_topology.num_vertical :],
            rules,
        )
        assert evaluation.all_satisfied
        assert evaluation.ir_drop_slack > 0
        assert evaluation.em_slack > 0

    def test_evaluate_detects_violations(
        self, constraints, rules, technology, tiny_floorplan, tiny_topology
    ):
        network = GridBuilder(technology).build(tiny_floorplan, tiny_topology, 0.8)
        ir = IRDropAnalyzer().analyze(network)
        em = EMChecker(technology).check(network, ir)
        widths = np.full(tiny_topology.num_lines, 0.8)
        evaluation = constraints.evaluate(
            ir,
            em,
            widths[: tiny_topology.num_vertical],
            widths[tiny_topology.num_vertical :],
            rules,
        )
        assert not evaluation.em_ok or not evaluation.ir_drop_ok
        assert not evaluation.all_satisfied
