"""Tests for the batched, model-guided planner candidate search."""

import pickle

import numpy as np
import pytest

from repro.analysis import BatchedAnalysisEngine
from repro.design import (
    CandidateRanker,
    ConventionalPowerPlanner,
    DesignRules,
    SearchConfig,
)
from repro.design.search import (
    FEATURE_NAMES,
    SearchStats,
    decap_load_scale,
    generate_candidates,
)
from repro.grid import GridBuilder
from repro.nn import NotFittedError

BUDGET = 6


@pytest.fixture(scope="module")
def tiny_start(small_benchmark):
    """Every stripe at the legal minimum — forces a resize trajectory."""
    rules = DesignRules.from_technology(small_benchmark.technology)
    return np.full(small_benchmark.topology.num_lines, rules.min_width)


@pytest.fixture(scope="module")
def exact_search_plan(small_benchmark, tiny_start):
    planner = ConventionalPowerPlanner(
        small_benchmark.technology, max_iterations=BUDGET, search=True
    )
    plan = planner.plan(
        small_benchmark.floorplan,
        small_benchmark.topology,
        initial_widths=tiny_start.copy(),
    )
    return planner, plan


@pytest.fixture(scope="module")
def baseline_plan(small_benchmark, tiny_start):
    planner = ConventionalPowerPlanner(
        small_benchmark.technology, max_iterations=BUDGET, incremental_updates=False
    )
    return planner.plan(
        small_benchmark.floorplan,
        small_benchmark.topology,
        initial_widths=tiny_start.copy(),
    )


class TestExactSearch:
    def test_counters_balance(self, exact_search_plan):
        _, plan = exact_search_plan
        stats = plan.search
        assert stats is not None
        assert stats.candidates_generated > 0
        assert stats.candidates_generated == (
            stats.candidates_pruned + stats.candidates_solved
        )
        assert stats.candidates_pruned == 0  # exact mode solves everything
        assert stats.moves_committed == len(stats.committed)
        assert not stats.ranker_used

    def test_not_worse_than_one_move_baseline(self, exact_search_plan, baseline_plan):
        _, plan = exact_search_plan
        assert plan.ir_result.worst_ir_drop <= (
            baseline_plan.ir_result.worst_ir_drop + 1e-12
        )

    def test_single_factorization_for_whole_search(self, exact_search_plan):
        planner, plan = exact_search_plan
        cache = planner.analyzer.cache_info()
        assert plan.search.moves_committed >= 1
        # The whole search — every candidate of every batch — is served
        # by incremental updates of one cached base factorization.
        assert cache.factorizations == 1
        assert cache.updates >= plan.search.candidates_solved - 1

    def test_committed_moves_match_fresh_oracle(self, exact_search_plan, small_benchmark):
        _, plan = exact_search_plan
        builder = GridBuilder(small_benchmark.technology)
        oracle = BatchedAnalysisEngine(incremental_updates=False)
        for move in plan.search.committed:
            fresh = builder.build_compiled(
                small_benchmark.floorplan, small_benchmark.topology, move.widths
            )
            voltages = oracle.solve_voltages(fresh, move.loads)
            assert float(np.max(np.abs(voltages - move.voltages))) <= 1e-9

    def test_training_data_rows_match_solved(self, exact_search_plan):
        _, plan = exact_search_plan
        features, improvements = plan.search.training_data()
        assert features.shape == (plan.search.candidates_solved, len(FEATURE_NAMES))
        assert improvements.shape == (plan.search.candidates_solved,)

    def test_record_contract(self, exact_search_plan):
        _, plan = exact_search_plan
        record = plan.search.as_record()
        for key in (
            "candidates_generated",
            "candidates_pruned",
            "candidates_solved",
            "moves_committed",
            "ranker_used",
            "committed_kinds",
        ):
            assert key in record
        assert len(record["committed_kinds"]) == plan.search.moves_committed

    def test_non_search_plan_has_no_stats(self, golden_plan):
        assert golden_plan.search is None

    def test_search_requires_engine_analyzer(self, small_benchmark):
        planner = ConventionalPowerPlanner(
            small_benchmark.technology, search=True, use_compiled_loop=False
        )
        with pytest.raises(ValueError, match="compiled loop"):
            planner.plan(small_benchmark.floorplan, small_benchmark.topology)


class TestRankerSearch:
    @pytest.fixture(scope="class")
    def ranker_plan(self, exact_search_plan, small_benchmark, tiny_start):
        _, exact = exact_search_plan
        features, improvements = exact.search.training_data()
        ranker = CandidateRanker()
        ranker.fit(features, improvements)
        planner = ConventionalPowerPlanner(
            small_benchmark.technology,
            max_iterations=BUDGET,
            search=SearchConfig(ranker=ranker),
        )
        return planner.plan(
            small_benchmark.floorplan,
            small_benchmark.topology,
            initial_widths=tiny_start.copy(),
        )

    def test_ranker_prunes_before_solving(self, ranker_plan):
        stats = ranker_plan.search
        assert stats.ranker_used
        assert stats.candidates_pruned > 0
        assert stats.candidates_generated == (
            stats.candidates_pruned + stats.candidates_solved
        )

    def test_pruned_search_still_improves_the_grid(self, ranker_plan, tiny_start):
        assert ranker_plan.search.moves_committed >= 1
        assert np.any(ranker_plan.widths > tiny_start)

    def test_unfitted_ranker_raises(self):
        ranker = CandidateRanker()
        assert not ranker.is_fitted
        with pytest.raises(NotFittedError):
            ranker.predict_improvement(np.zeros((2, len(FEATURE_NAMES))))

    def test_wrong_feature_count_rejected(self, rng):
        ranker = CandidateRanker()
        with pytest.raises(ValueError, match="features per candidate"):
            ranker.fit(rng.normal(size=(10, 3)), rng.normal(size=10))

    def test_fitted_ranker_pickles(self, rng):
        ranker = CandidateRanker()
        features = rng.normal(size=(64, len(FEATURE_NAMES)))
        ranker.fit(features, features[:, 0])
        clone = pickle.loads(pickle.dumps(ranker))
        np.testing.assert_array_equal(
            clone.predict_improvement(features), ranker.predict_improvement(features)
        )

    def test_select_always_keeps_protected(self, rng, small_benchmark, tiny_start):
        candidates, features = _tiny_batch(small_benchmark, tiny_start)
        ranker = CandidateRanker()
        train = rng.normal(size=(64, len(FEATURE_NAMES)))
        ranker.fit(train, train[:, 0])
        kept = ranker.select(candidates, features, keep=2)
        assert len(kept) == 2
        protected = [i for i, cand in enumerate(candidates) if cand.protected]
        assert set(protected) <= set(kept)


def _tiny_batch(small_benchmark, tiny_start):
    """One candidate batch generated from the undersized small benchmark."""
    technology = small_benchmark.technology
    rules = DesignRules.from_technology(technology)
    builder = GridBuilder(technology)
    compiled = builder.build_compiled(
        small_benchmark.floorplan, small_benchmark.topology, tiny_start
    )
    engine = BatchedAnalysisEngine()
    voltages = engine.solve_voltages(compiled)
    drops = compiled.vdd - voltages
    worst = int(np.argmax(drops))
    baseline = rules.legalize_widths(tiny_start * 1.5)
    config = SearchConfig()
    candidates = generate_candidates(
        widths=tiny_start,
        baseline_widths=baseline,
        topology=small_benchmark.topology,
        compiled=compiled,
        drops=drops,
        rules=rules,
        upsize_factor=1.25,
        config=config,
    )
    from repro.design.search import candidate_features

    features = candidate_features(
        candidates,
        widths=tiny_start,
        topology=small_benchmark.topology,
        compiled=compiled,
        worst_x=float(compiled.node_x[worst]),
        worst_y=float(compiled.node_y[worst]),
        worst_ir_drop=float(drops[worst]),
        loads=compiled.base_loads,
    )
    return candidates, features


class TestCandidateGeneration:
    def test_batch_shape_and_kinds(self, small_benchmark, tiny_start):
        candidates, features = _tiny_batch(small_benchmark, tiny_start)
        config = SearchConfig()
        assert 1 <= len(candidates) <= config.batch_width
        kinds = {cand.kind for cand in candidates}
        assert {"heuristic", "upsize", "pitch"} <= kinds
        assert features.shape == (len(candidates), len(FEATURE_NAMES))

    def test_baseline_first_and_protected(self, small_benchmark, tiny_start):
        candidates, _ = _tiny_batch(small_benchmark, tiny_start)
        assert candidates[0].kind == "heuristic"
        assert candidates[0].protected
        assert sum(1 for cand in candidates if cand.protected) == 1

    def test_every_candidate_dominates_the_baseline_move(
        self, small_benchmark, tiny_start
    ):
        """Each candidate is a superset of the baseline move, so whichever
        wins, the committed step is at least as strong as the one-move
        step from the same state."""
        candidates, _ = _tiny_batch(small_benchmark, tiny_start)
        baseline = candidates[0].widths
        for cand in candidates[1:]:
            assert np.all(cand.widths >= baseline - 1e-12)

    def test_candidates_deduplicated(self, small_benchmark, tiny_start):
        candidates, _ = _tiny_batch(small_benchmark, tiny_start)
        keys = {
            cand.widths.tobytes() + (b"decap" if cand.load_scale is not None else b"")
            for cand in candidates
        }
        assert len(keys) == len(candidates)


class TestDecapRelief:
    def test_load_scale_bounded(self, small_benchmark, tiny_start):
        technology = small_benchmark.technology
        compiled = GridBuilder(technology).build_compiled(
            small_benchmark.floorplan, small_benchmark.topology, tiny_start
        )
        relief = decap_load_scale(small_benchmark.floorplan, technology, compiled)
        if relief is None:
            pytest.skip("no decap relief achievable on this benchmark")
        scale, plan = relief
        assert scale.shape == (compiled.num_nodes,)
        assert np.all(scale <= 1.0 + 1e-12)
        assert np.all(scale > 0.0)
        assert np.any(scale < 1.0)
        assert plan.placements


class TestSearchConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SearchConfig(batch_width=0)
        with pytest.raises(ValueError):
            SearchConfig(prune_to=0)
        with pytest.raises(ValueError):
            SearchConfig(pitch_stride=0)
        with pytest.raises(ValueError):
            SearchConfig(hotspots=0)

    def test_resolved_prune_to_default(self):
        assert SearchConfig(batch_width=12).resolved_prune_to == 8
        assert SearchConfig(batch_width=3).resolved_prune_to == 4
        assert SearchConfig(prune_to=5).resolved_prune_to == 5

    def test_empty_stats_training_data(self):
        features, improvements = SearchStats().training_data()
        assert features.shape == (0, len(FEATURE_NAMES))
        assert improvements.shape == (0,)
