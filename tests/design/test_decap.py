"""Tests for the decap planner (the paper's future-work extension)."""

import numpy as np
import pytest

from repro.design import DecapPlanner, DecapTechnology
from repro.grid import Floorplan, PowerPad


@pytest.fixture()
def planner(technology):
    return DecapPlanner(technology)


class TestDecapTechnology:
    def test_required_capacitance_formula(self):
        decap = DecapTechnology(response_time=2e-9, transient_voltage_budget=0.05)
        # C = I * t / dV
        assert decap.required_capacitance(0.5) == pytest.approx(0.5 * 2e-9 / 0.05)

    def test_area_for_capacitance(self):
        decap = DecapTechnology(capacitance_density=1e-15)
        assert decap.area_for_capacitance(1e-12) == pytest.approx(1000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DecapTechnology(capacitance_density=0.0)
        with pytest.raises(ValueError):
            DecapTechnology(response_time=0.0)
        with pytest.raises(ValueError):
            DecapTechnology(max_area_fraction=0.0)
        with pytest.raises(ValueError):
            DecapTechnology().required_capacitance(-1.0)
        with pytest.raises(ValueError):
            DecapTechnology().area_for_capacitance(-1.0)


class TestDecapPlanner:
    def test_plan_places_one_decap_per_block(self, planner, tiny_floorplan):
        plan = planner.plan(tiny_floorplan)
        assert len(plan.placements) == len(tiny_floorplan.blocks)
        assert plan.total_capacitance > 0
        assert plan.total_area > 0
        assert 0 < plan.demand_coverage <= 1.0

    def test_highest_current_block_has_priority(self, planner, tiny_floorplan):
        plan = planner.plan(tiny_floorplan)
        hottest = max(tiny_floorplan.iter_blocks(), key=lambda b: b.switching_current)
        assert plan.placements[0].target_block == hottest.name

    def test_ir_drop_map_reorders_priority(self, planner, tiny_floorplan):
        """A huge IR drop over a cool block should promote it up the ranking."""
        ir_map = np.zeros((10, 10))
        cool_block = min(tiny_floorplan.iter_blocks(), key=lambda b: b.switching_current)
        cx, cy = cool_block.center
        col = int(cx / tiny_floorplan.core_width * 10)
        row = int(cy / tiny_floorplan.core_height * 10)
        ir_map[row, col] = 10.0  # absurdly large exposure
        plan = planner.plan(tiny_floorplan, ir_drop_map=ir_map)
        assert plan.placements[0].target_block == cool_block.name

    def test_area_budget_limits_placement(self, technology, tiny_floorplan):
        tight = DecapPlanner(
            technology,
            DecapTechnology(
                capacitance_density=1e-18,  # decaps need enormous area
                max_area_fraction=0.01,
            ),
        )
        plan = tight.plan(tiny_floorplan)
        assert plan.demand_coverage < 1.0

    def test_empty_floorplan(self, planner, technology):
        empty = Floorplan(
            "empty", 100.0, 100.0, pads=[PowerPad("p", 50.0, 50.0, technology.vdd)]
        )
        plan = planner.plan(empty)
        assert plan.placements == []
        assert plan.demand_coverage == 1.0

    def test_decaps_placed_inside_core(self, planner, tiny_floorplan):
        plan = planner.plan(tiny_floorplan)
        for placement in plan.placements:
            assert 0 <= placement.x <= tiny_floorplan.core_width
            assert 0 <= placement.y <= tiny_floorplan.core_height

    def test_works_with_predicted_ir_map(self, planner, trained_framework, small_benchmark):
        """Composes with the PowerPlanningDL prediction, the paper's future-work idea."""
        predicted = trained_framework.predict_design(
            small_benchmark.floorplan, small_benchmark.topology
        )
        ir_map = trained_framework.ir_estimator.ir_drop_map(
            small_benchmark.floorplan, small_benchmark.topology, predicted.ir_drop, resolution=50
        )
        plan = DecapPlanner(small_benchmark.technology).plan(
            small_benchmark.floorplan, ir_drop_map=ir_map
        )
        assert plan.total_capacitance > 0
