"""Tests for the conventional iterative power planner (paper Fig. 1)."""

import numpy as np
import pytest

from repro.design import ConventionalPowerPlanner, DesignRules, ReliabilityConstraints


class TestPlanning:
    def test_plan_converges_on_small_benchmark(self, golden_plan):
        assert golden_plan.converged
        assert golden_plan.evaluation.all_satisfied
        assert golden_plan.num_iterations >= 1

    def test_final_design_meets_ir_margin(self, golden_plan, small_benchmark):
        limit = small_benchmark.technology.ir_drop_limit
        assert golden_plan.ir_result.worst_ir_drop <= limit

    def test_final_design_meets_em(self, golden_plan):
        assert golden_plan.em_report.passed

    def test_widths_are_legal(self, golden_plan, small_benchmark):
        rules = DesignRules.from_technology(small_benchmark.technology)
        assert np.all(golden_plan.widths >= rules.min_width - 1e-9)
        assert np.all(golden_plan.widths <= rules.max_width + 1e-9)
        assert golden_plan.widths.shape == (small_benchmark.topology.num_lines,)

    def test_iteration_history_recorded(self, golden_plan):
        assert len(golden_plan.iterations) == golden_plan.num_iterations
        first = golden_plan.iterations[0]
        assert first.analysis_time > 0
        assert first.build_time > 0
        assert first.step_time == pytest.approx(first.analysis_time + first.build_time)

    def test_times_recorded(self, golden_plan):
        assert golden_plan.total_time > 0
        assert golden_plan.analysis_time > 0
        assert golden_plan.analysis_time <= golden_plan.total_time


class TestResizing:
    def test_undersized_start_triggers_resizing(self, small_benchmark):
        planner = ConventionalPowerPlanner(small_benchmark.technology, max_iterations=6)
        rules = DesignRules.from_technology(small_benchmark.technology)
        tiny_widths = np.full(small_benchmark.topology.num_lines, rules.min_width)
        plan = planner.plan(
            small_benchmark.floorplan, small_benchmark.topology, initial_widths=tiny_widths
        )
        assert plan.num_iterations > 1
        assert np.any(plan.widths > rules.min_width)
        resized_total = sum(iteration.lines_resized for iteration in plan.iterations)
        assert resized_total > 0

    def test_initial_widths_wrong_length_rejected(self, small_benchmark):
        planner = ConventionalPowerPlanner(small_benchmark.technology)
        with pytest.raises(ValueError):
            planner.plan(
                small_benchmark.floorplan,
                small_benchmark.topology,
                initial_widths=np.asarray([1.0, 2.0]),
            )

    def test_relaxed_constraints_converge_immediately(self, small_benchmark):
        planner = ConventionalPowerPlanner(small_benchmark.technology)
        relaxed = ReliabilityConstraints(
            ir_drop_limit=small_benchmark.technology.vdd,
            jmax=1e3,
            core_width=small_benchmark.floorplan.core_width,
            core_height=small_benchmark.floorplan.core_height,
        )
        plan = planner.plan(small_benchmark.floorplan, small_benchmark.topology, constraints=relaxed)
        assert plan.converged
        assert plan.num_iterations == 1


class TestParameters:
    def test_invalid_parameters_rejected(self, small_benchmark):
        with pytest.raises(ValueError):
            ConventionalPowerPlanner(small_benchmark.technology, max_iterations=0)
        with pytest.raises(ValueError):
            ConventionalPowerPlanner(small_benchmark.technology, upsize_factor=1.0)
