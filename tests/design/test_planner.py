"""Tests for the conventional iterative power planner (paper Fig. 1)."""

import numpy as np
import pytest

from repro.analysis import IRDropAnalyzer
from repro.design import ConventionalPowerPlanner, DesignRules, ReliabilityConstraints


class TestPlanning:
    def test_plan_converges_on_small_benchmark(self, golden_plan):
        assert golden_plan.converged
        assert golden_plan.evaluation.all_satisfied
        assert golden_plan.num_iterations >= 1

    def test_final_design_meets_ir_margin(self, golden_plan, small_benchmark):
        limit = small_benchmark.technology.ir_drop_limit
        assert golden_plan.ir_result.worst_ir_drop <= limit

    def test_final_design_meets_em(self, golden_plan):
        assert golden_plan.em_report.passed

    def test_widths_are_legal(self, golden_plan, small_benchmark):
        rules = DesignRules.from_technology(small_benchmark.technology)
        assert np.all(golden_plan.widths >= rules.min_width - 1e-9)
        assert np.all(golden_plan.widths <= rules.max_width + 1e-9)
        assert golden_plan.widths.shape == (small_benchmark.topology.num_lines,)

    def test_iteration_history_recorded(self, golden_plan):
        assert len(golden_plan.iterations) == golden_plan.num_iterations
        first = golden_plan.iterations[0]
        assert first.analysis_time > 0
        assert first.build_time > 0
        assert first.step_time == pytest.approx(first.analysis_time + first.build_time)

    def test_times_recorded(self, golden_plan):
        assert golden_plan.total_time > 0
        assert golden_plan.analysis_time > 0
        assert golden_plan.analysis_time <= golden_plan.total_time


class TestResizing:
    def test_undersized_start_triggers_resizing(self, small_benchmark):
        planner = ConventionalPowerPlanner(small_benchmark.technology, max_iterations=6)
        rules = DesignRules.from_technology(small_benchmark.technology)
        tiny_widths = np.full(small_benchmark.topology.num_lines, rules.min_width)
        plan = planner.plan(
            small_benchmark.floorplan, small_benchmark.topology, initial_widths=tiny_widths
        )
        assert plan.num_iterations > 1
        assert np.any(plan.widths > rules.min_width)
        resized_total = sum(iteration.lines_resized for iteration in plan.iterations)
        assert resized_total > 0

    def test_initial_widths_wrong_length_rejected(self, small_benchmark):
        planner = ConventionalPowerPlanner(small_benchmark.technology)
        with pytest.raises(ValueError):
            planner.plan(
                small_benchmark.floorplan,
                small_benchmark.topology,
                initial_widths=np.asarray([1.0, 2.0]),
            )

    def test_relaxed_constraints_converge_immediately(self, small_benchmark):
        planner = ConventionalPowerPlanner(small_benchmark.technology)
        relaxed = ReliabilityConstraints(
            ir_drop_limit=small_benchmark.technology.vdd,
            jmax=1e3,
            core_width=small_benchmark.floorplan.core_width,
            core_height=small_benchmark.floorplan.core_height,
        )
        plan = planner.plan(
            small_benchmark.floorplan, small_benchmark.topology, constraints=relaxed
        )
        assert plan.converged
        assert plan.num_iterations == 1


class TestCompiledLoopEquivalence:
    """The rebuild-free compiled loop must reproduce the legacy loop exactly."""

    @pytest.fixture(scope="class")
    def plan_pair(self, small_benchmark):
        """Legacy and compiled plans from an undersized start (forces resizes)."""
        rules = DesignRules.from_technology(small_benchmark.technology)
        tiny_widths = np.full(small_benchmark.topology.num_lines, rules.min_width)
        legacy = ConventionalPowerPlanner(
            small_benchmark.technology, max_iterations=6, use_compiled_loop=False
        ).plan(small_benchmark.floorplan, small_benchmark.topology, initial_widths=tiny_widths)
        compiled = ConventionalPowerPlanner(
            small_benchmark.technology, max_iterations=6, use_compiled_loop=True
        ).plan(small_benchmark.floorplan, small_benchmark.topology, initial_widths=tiny_widths)
        return legacy, compiled

    def test_identical_convergence_history(self, plan_pair):
        legacy, compiled = plan_pair
        assert compiled.num_iterations == legacy.num_iterations
        assert compiled.converged == legacy.converged
        assert compiled.num_iterations > 1  # the undersized start forced resizes
        for legacy_it, compiled_it in zip(legacy.iterations, compiled.iterations):
            assert compiled_it.index == legacy_it.index
            assert compiled_it.lines_resized == legacy_it.lines_resized
            assert compiled_it.em_violations == legacy_it.em_violations
            assert compiled_it.worst_ir_drop == pytest.approx(
                legacy_it.worst_ir_drop, abs=1e-9
            )

    def test_identical_final_widths(self, plan_pair):
        legacy, compiled = plan_pair
        assert np.array_equal(compiled.widths, legacy.widths)

    def test_identical_final_analysis(self, plan_pair):
        legacy, compiled = plan_pair
        assert compiled.ir_result.worst_ir_drop == pytest.approx(
            legacy.ir_result.worst_ir_drop, abs=1e-9
        )
        assert compiled.ir_result.worst_node == legacy.ir_result.worst_node
        assert compiled.em_report.passed == legacy.em_report.passed
        assert compiled.network.statistics() == legacy.network.statistics()

    def test_compiled_loop_records_times(self, plan_pair):
        _, compiled = plan_pair
        assert compiled.total_time > 0
        assert compiled.analysis_time > 0
        for iteration in compiled.iterations:
            assert iteration.analysis_time > 0
            assert iteration.build_time > 0

    def test_legacy_analyzer_falls_back_to_rebuild_loop(self, small_benchmark):
        """A non-engine analyzer cannot drive the compiled loop."""
        planner = ConventionalPowerPlanner(
            small_benchmark.technology,
            analyzer=IRDropAnalyzer(),
            use_compiled_loop=True,
        )
        plan = planner.plan(small_benchmark.floorplan, small_benchmark.topology)
        assert plan.converged
        assert plan.ir_result.solver_method not in ("",)


class TestParameters:
    def test_invalid_parameters_rejected(self, small_benchmark):
        with pytest.raises(ValueError):
            ConventionalPowerPlanner(small_benchmark.technology, max_iterations=0)
        with pytest.raises(ValueError):
            ConventionalPowerPlanner(small_benchmark.technology, upsize_factor=1.0)


class TestIncrementalSolverParity:
    """The incremental-update planner loop against the fresh-factorization
    oracle: identical convergence trajectory, voltages within 1e-9."""

    @pytest.fixture(scope="class")
    def parity_plans(self, small_benchmark):
        rules = DesignRules.from_technology(small_benchmark.technology)
        tiny_widths = np.full(small_benchmark.topology.num_lines, rules.min_width)
        incremental = ConventionalPowerPlanner(small_benchmark.technology, max_iterations=8)
        oracle = ConventionalPowerPlanner(
            small_benchmark.technology, max_iterations=8, incremental_updates=False
        )
        plan_inc = incremental.plan(
            small_benchmark.floorplan, small_benchmark.topology, initial_widths=tiny_widths
        )
        plan_ora = oracle.plan(
            small_benchmark.floorplan, small_benchmark.topology, initial_widths=tiny_widths
        )
        return incremental, plan_inc, oracle, plan_ora

    def test_updates_actually_served_the_loop(self, parity_plans):
        incremental, plan_inc, oracle, _ = parity_plans
        assert plan_inc.num_iterations > 1  # the undersized start forces resizes
        info = incremental.analyzer.cache_info()
        assert info.updates >= plan_inc.num_iterations - 1
        assert oracle.analyzer.cache_info().updates == 0
        assert oracle.analyzer.cache_info().factorizations >= plan_inc.num_iterations

    def test_same_convergence_trajectory(self, parity_plans):
        _, plan_inc, _, plan_ora = parity_plans
        assert plan_inc.converged == plan_ora.converged
        assert plan_inc.num_iterations == plan_ora.num_iterations
        for step_inc, step_ora in zip(plan_inc.iterations, plan_ora.iterations):
            assert step_inc.lines_resized == step_ora.lines_resized
            assert step_inc.worst_ir_drop == pytest.approx(
                step_ora.worst_ir_drop, abs=1e-9
            )

    def test_same_final_design(self, parity_plans):
        _, plan_inc, _, plan_ora = parity_plans
        np.testing.assert_allclose(plan_inc.widths, plan_ora.widths, rtol=0, atol=1e-9)
        assert plan_inc.ir_result.worst_ir_drop == pytest.approx(
            plan_ora.ir_result.worst_ir_drop, abs=1e-9
        )
        assert plan_inc.ir_result.worst_node == plan_ora.ir_result.worst_node
