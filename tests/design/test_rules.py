"""Tests for design rules and width legalisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.design import DesignRules
from repro.grid import generic_45nm


@pytest.fixture()
def rules():
    return DesignRules(min_width=0.8, max_width=30.0, min_spacing=0.8, width_step=0.05)


class TestLegalisation:
    def test_clamps_below_minimum(self, rules):
        assert rules.legalize_width(0.1) == pytest.approx(0.8)

    def test_clamps_above_maximum(self, rules):
        assert rules.legalize_width(100.0) == pytest.approx(30.0)

    def test_snaps_up_to_width_grid(self, rules):
        assert rules.legalize_width(1.01) == pytest.approx(1.05)
        assert rules.legalize_width(1.05) == pytest.approx(1.05)

    def test_vectorised_matches_scalar(self, rules, rng):
        widths = rng.uniform(0.01, 50.0, size=100)
        vectorised = rules.legalize_widths(widths)
        scalar = np.asarray([rules.legalize_width(w) for w in widths])
        np.testing.assert_allclose(vectorised, scalar, atol=1e-9)

    def test_from_technology(self):
        tech = generic_45nm()
        rules = DesignRules.from_technology(tech)
        assert rules.min_width == max(layer.min_width for layer in tech.layers)
        assert rules.max_width == min(layer.max_width for layer in tech.layers)

    def test_from_layer(self):
        tech = generic_45nm()
        layer = tech.layer("M6")
        rules = DesignRules.from_layer(layer)
        assert rules.min_width == layer.min_width

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DesignRules(min_width=0.0, max_width=1.0, min_spacing=0.5)
        with pytest.raises(ValueError):
            DesignRules(min_width=2.0, max_width=1.0, min_spacing=0.5)
        with pytest.raises(ValueError):
            DesignRules(min_width=1.0, max_width=2.0, min_spacing=0.5, max_utilisation=0.0)


class TestUtilisation:
    def test_routing_utilisation(self, rules):
        assert rules.routing_utilisation([10.0, 10.0], 100.0) == pytest.approx(0.2)

    def test_check_utilisation(self, rules):
        assert rules.check_utilisation([10.0] * 3, 100.0)
        assert not rules.check_utilisation([10.0] * 5, 100.0)

    def test_max_line_count_uses_pitch(self, rules):
        # pitch = 4.0 + 0.8 = 4.8 -> 20 lines fit in 100 um
        assert rules.max_line_count(100.0, 4.0) == 20

    def test_max_line_count_minimum_one(self, rules):
        assert rules.max_line_count(1.0, 30.0) == 1

    def test_bad_core_width_rejected(self, rules):
        with pytest.raises(ValueError):
            rules.routing_utilisation([1.0], 0.0)


@settings(max_examples=50, deadline=None)
@given(width=st.floats(min_value=1e-3, max_value=1e3, allow_nan=False))
def test_legalized_width_is_always_legal(width):
    """Legalised widths are within range and on the width grid."""
    rules = DesignRules(min_width=0.8, max_width=30.0, min_spacing=0.8, width_step=0.05)
    legal = rules.legalize_width(width)
    assert rules.min_width - 1e-9 <= legal <= rules.max_width + 1e-9
    steps = legal / rules.width_step
    assert abs(steps - round(steps)) < 1e-6
    # Legalisation never shrinks a width that was already in range.
    if rules.min_width <= width <= rules.max_width:
        assert legal >= width - 1e-9
