"""CLI behaviour: exit codes, reports, selection, baselines."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.devtools.lint.cli import main

CLEAN = "X = 1\n"
DIRTY = "cache = {}\npending = []\n"


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return str(path)


def test_clean_run_exits_zero(tmp_path, capsys):
    path = write(tmp_path, "clean.py", CLEAN)
    assert main([path]) == 0
    out = capsys.readouterr().out
    assert "clean: 0 findings in 1 files" in out


def test_findings_exit_one_and_render(tmp_path, capsys):
    path = write(tmp_path, "dirty.py", DIRTY)
    assert main([path]) == 1
    out = capsys.readouterr().out
    assert "RPR007" in out
    assert f"{path}:1:1:" in out
    assert "2 findings" in out


def test_json_format_and_artifact(tmp_path, capsys):
    path = write(tmp_path, "dirty.py", DIRTY)
    artifact = tmp_path / "report.json"
    assert main([path, "--format", "json", "--json-out", str(artifact)]) == 1
    stdout_report = json.loads(capsys.readouterr().out)
    file_report = json.loads(artifact.read_text(encoding="utf-8"))
    assert stdout_report == file_report
    assert file_report["version"] == 1
    assert file_report["summary"]["files_checked"] == 1
    assert file_report["summary"]["total"] == 2
    assert file_report["summary"]["by_code"] == {"RPR007": 2}
    assert {finding["code"] for finding in file_report["findings"]} == {"RPR007"}


def test_select_and_ignore(tmp_path):
    path = write(tmp_path, "dirty.py", DIRTY)
    assert main([path, "--select", "RPR001"]) == 0
    assert main([path, "--select", "RPR007"]) == 1
    assert main([path, "--ignore", "RPR007"]) == 0


def test_unknown_codes_are_usage_errors(tmp_path, capsys):
    path = write(tmp_path, "clean.py", CLEAN)
    assert main([path, "--select", "RPR999"]) == 2
    assert "unknown rule codes" in capsys.readouterr().err
    assert main([path, "--ignore", "bogus"]) == 2


def test_missing_path_is_a_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "no such file or directory" in capsys.readouterr().err


def test_no_pragmas_audit_mode(tmp_path):
    path = write(tmp_path, "dirty.py", "cache = {}  # reprolint: disable=RPR007\n")
    assert main([path]) == 0
    assert main([path, "--no-pragmas"]) == 1


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RPR001", "RPR008"):
        assert code in out


def test_baseline_ratchet(tmp_path, capsys):
    path = write(tmp_path, "dirty.py", DIRTY)
    baseline = tmp_path / "baseline.json"
    assert main([path, "--write-baseline", str(baseline)]) == 0
    assert "wrote 2 findings" in capsys.readouterr().out
    # Grandfathered findings no longer block…
    assert main([path, "--baseline", str(baseline)]) == 0
    # …but a new finding does.
    Path(path).write_text(DIRTY + "extra = set()\n", encoding="utf-8")
    assert main([path, "--baseline", str(baseline)]) == 1


def test_malformed_baseline_is_an_error(tmp_path, capsys):
    path = write(tmp_path, "clean.py", CLEAN)
    baseline = write(tmp_path, "baseline.json", '{"not": "a list"}')
    assert main([path, "--baseline", baseline]) == 2
    assert "baseline" in capsys.readouterr().err


def test_module_entry_point(tmp_path):
    """`python -m repro.devtools.lint` is the documented / CI invocation."""
    path = write(tmp_path, "clean.py", CLEAN)
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.devtools.lint", path],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "clean" in proc.stdout
