"""Fixture-driven rule tests.

Every fixture under ``fixtures/`` is a ``*.py.txt`` snippet (the suffix
keeps the directory walk of CI's ``lint src tests`` run from picking it
up) with two kinds of markers:

* a ``# lint-path: <virtual path>`` header — the path the snippet is
  linted *as*, so path-scoped rules (determinism, test-file detection)
  fire the way they would in the tree;
* ``# expect: RPRnnn`` on every line where a finding is expected.

The parametrized test asserts the *exact* ``(line, code)`` set — clean
fixtures carry no markers and must produce zero findings, so every rule
gets a positive and a negative case by construction.
"""

import re
from pathlib import Path

import pytest

from repro.devtools.lint import all_rules, lint_source

FIXTURES = Path(__file__).parent / "fixtures"
_LINT_PATH_RE = re.compile(r"^#\s*lint-path:\s*(\S+)")
_EXPECT_RE = re.compile(r"#\s*expect:\s*(RPR\d{3})")


def load_fixture(name):
    text = (FIXTURES / name).read_text(encoding="utf-8")
    lines = text.splitlines()
    header = _LINT_PATH_RE.match(lines[0])
    assert header, f"{name}: first line must be '# lint-path: <virtual path>'"
    expected = {
        (lineno, code)
        for lineno, line in enumerate(lines, start=1)
        for code in _EXPECT_RE.findall(line)
    }
    return text, header.group(1), expected


def all_fixture_names():
    names = sorted(path.name for path in FIXTURES.glob("*.py.txt"))
    assert names, "fixture corpus missing"
    return names


@pytest.mark.parametrize("name", all_fixture_names())
def test_fixture_findings_match_expect_markers(name):
    source, virtual_path, expected = load_fixture(name)
    findings = lint_source(source, virtual_path)
    actual = {(finding.line, finding.code) for finding in findings}
    assert actual == expected, "\n".join(
        ["fixture findings diverge from # expect markers:"]
        + [f"  unexpected: {finding.render()}" for finding in findings
           if (finding.line, finding.code) not in expected]
        + [f"  missing:    line {line} {code}" for line, code in sorted(expected - actual)]
    )


def test_every_rule_has_positive_and_negative_fixtures():
    names = all_fixture_names()
    for rule in all_rules():
        stem = rule.code.lower()
        positives = [name for name in names if name.startswith(f"{stem}_flags")]
        negatives = [name for name in names if name.startswith(f"{stem}_clean")]
        assert positives, f"{rule.code} has no *_flags fixture"
        assert negatives, f"{rule.code} has no *_clean fixture"
        for name in positives:
            _, _, expected = load_fixture(name)
            assert any(code == rule.code for _, code in expected), (
                f"{name} never expects {rule.code}"
            )
        for name in negatives:
            _, _, expected = load_fixture(name)
            assert not expected, f"{name} is a clean fixture but carries expect markers"


def test_lock_rule_flags_the_seeded_sweepqueue_fixture():
    """Acceptance criterion: the unguarded-mutation fixture modeled on
    SweepQueue is demonstrably caught by the lock-discipline rule."""
    source, virtual_path, expected = load_fixture("rpr001_flags.py.txt")
    findings = lint_source(source, virtual_path)
    lock_findings = [finding for finding in findings if finding.code == "RPR001"]
    assert len(lock_findings) >= 4
    assert all("_lock" in finding.message for finding in lock_findings)
    assert {(f.line, f.code) for f in lock_findings} == expected


def test_pragma_silences_a_fixture_finding():
    source, virtual_path, _ = load_fixture("rpr005_flags.py.txt")
    silenced = source.replace(
        "import repro.analysis.solver  # expect: RPR005",
        "import repro.analysis.solver  # reprolint: disable=RPR005",
    )
    findings = lint_source(silenced, virtual_path)
    assert len(findings) == len(lint_source(source, virtual_path)) - 1
