"""The repo must satisfy its own invariant linter.

This is the same check CI's blocking ``lint-invariants`` job runs
(``python -m repro.devtools.lint src tests``); keeping it in the test
suite means a plain ``pytest`` run catches violations before push.
"""

from pathlib import Path

from repro.devtools.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_linter_runs_clean_on_the_repo():
    targets = [REPO_ROOT / "src", REPO_ROOT / "tests"]
    findings = lint_paths(targets)
    assert not findings, "\n".join(finding.render() for finding in findings)


def test_lint_covers_a_nontrivial_file_count():
    from repro.devtools.lint.core import iter_python_files

    files = list(iter_python_files([REPO_ROOT / "src", REPO_ROOT / "tests"]))
    assert len(files) > 50  # the walk found the real tree, not an empty dir
