"""Framework-level tests: pragmas, parse errors, file walking, baselines."""

import ast
import re

import pytest

from repro.devtools.lint import RULE_REGISTRY, all_rules, lint_source
from repro.devtools.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.devtools.lint.core import (
    Finding,
    ModuleContext,
    PARSE_ERROR_CODE,
    iter_python_files,
)

MUTABLE_GLOBAL = "cache = {}\n"
MUTABLE_GLOBAL_PATH = "src/repro/example.py"


def codes(findings):
    return [finding.code for finding in findings]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_codes_are_stable_and_well_formed():
    rules = all_rules()
    assert [rule.code for rule in rules] == sorted(rule.code for rule in rules)
    for rule in rules:
        assert re.fullmatch(r"RPR\d{3}", rule.code)
        assert rule.name and rule.description
    assert len({rule.name for rule in rules}) == len(rules)


def test_registry_has_the_documented_rule_set():
    expected = {"RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006", "RPR007", "RPR008"}
    assert expected <= set(RULE_REGISTRY)


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------
def test_line_pragma_suppresses_only_its_line():
    source = "cache = {}  # reprolint: disable=RPR007\nother = {}\n"
    findings = lint_source(source, MUTABLE_GLOBAL_PATH)
    assert codes(findings) == ["RPR007"]
    assert findings[0].line == 2


def test_file_pragma_suppresses_everywhere():
    source = "# reprolint: disable-file=RPR007\ncache = {}\nother = {}\n"
    assert lint_source(source, MUTABLE_GLOBAL_PATH) == []


def test_disable_all_pragma():
    source = "cache = {}  # reprolint: disable=all\n"
    assert lint_source(source, MUTABLE_GLOBAL_PATH) == []


def test_pragma_with_wrong_code_does_not_suppress():
    source = "cache = {}  # reprolint: disable=RPR001\n"
    assert codes(lint_source(source, MUTABLE_GLOBAL_PATH)) == ["RPR007"]


def test_no_pragmas_mode_sees_suppressed_findings():
    source = "cache = {}  # reprolint: disable=RPR007\n"
    assert lint_source(source, MUTABLE_GLOBAL_PATH) == []
    audited = lint_source(source, MUTABLE_GLOBAL_PATH, respect_pragmas=False)
    assert codes(audited) == ["RPR007"]


# ----------------------------------------------------------------------
# Parse errors and rendering
# ----------------------------------------------------------------------
def test_syntax_error_becomes_rpr000():
    findings = lint_source("def broken(:\n", "src/repro/broken.py")
    assert codes(findings) == [PARSE_ERROR_CODE]
    assert "does not parse" in findings[0].message


def test_finding_render_is_path_line_col_code():
    finding = Finding("src/x.py", 3, 4, "RPR001", "lock-discipline", "msg")
    assert finding.render() == "src/x.py:3:5: RPR001 [lock-discipline] msg"
    assert finding.fingerprint == ("src/x.py", "RPR001", "msg")


# ----------------------------------------------------------------------
# ModuleContext path predicates
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    ("path", "dotted", "is_test"),
    [
        ("src/repro/analysis/engine.py", "repro.analysis.engine", False),
        ("src/repro/analysis/__init__.py", "repro.analysis", False),
        ("tests/analysis/test_engine.py", None, True),
        ("scripts/sweep.py", None, False),
        ("conftest.py", None, True),
    ],
)
def test_module_context_path_predicates(path, dotted, is_test):
    context = ModuleContext(path, "x = 1\n", ast.parse("x = 1\n"))
    assert context.module_dotted == dotted
    assert context.is_test_file is is_test


# ----------------------------------------------------------------------
# File walking
# ----------------------------------------------------------------------
def test_iter_python_files_walks_sorted_and_skips_caches(tmp_path):
    (tmp_path / "b.py").write_text("x = 1\n")
    (tmp_path / "a.py").write_text("x = 1\n")
    sub = tmp_path / "pkg"
    sub.mkdir()
    (sub / "c.py").write_text("x = 1\n")
    cache = tmp_path / "__pycache__"
    cache.mkdir()
    (cache / "a.cpython-311.py").write_text("x = 1\n")
    hidden = tmp_path / ".venv"
    hidden.mkdir()
    (hidden / "d.py").write_text("x = 1\n")

    names = [path.relative_to(tmp_path).as_posix() for path in iter_python_files([tmp_path])]
    assert names == ["a.py", "b.py", "pkg/c.py"]


def test_iter_python_files_takes_explicit_files_verbatim(tmp_path):
    fixture = tmp_path / "snippet.py.txt"
    fixture.write_text("x = 1\n")
    assert list(iter_python_files([fixture])) == [fixture]


def test_iter_python_files_missing_path_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        list(iter_python_files([tmp_path / "nope"]))


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
def test_baseline_round_trip_subtracts_old_findings(tmp_path):
    findings = lint_source(MUTABLE_GLOBAL, MUTABLE_GLOBAL_PATH)
    assert codes(findings) == ["RPR007"]
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, findings)
    assert apply_baseline(findings, load_baseline(baseline_file)) == []


def test_baseline_respects_multiplicity(tmp_path):
    # Two identical fingerprints (same message, different lines) with only
    # one baselined: exactly one must survive the subtraction.
    source = "cache = {}\n\ncache = {}\n"
    findings = lint_source(source, MUTABLE_GLOBAL_PATH)
    assert codes(findings) == ["RPR007", "RPR007"]
    assert findings[0].fingerprint == findings[1].fingerprint
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, findings[:1])
    kept = apply_baseline(findings, load_baseline(baseline_file))
    assert len(kept) == 1


def test_baseline_rejects_malformed_files(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"not": "a list"}')
    with pytest.raises(ValueError):
        load_baseline(bad)
    bad.write_text('[{"path": "x"}]')
    with pytest.raises(ValueError):
        load_baseline(bad)
