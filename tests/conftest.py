"""Shared fixtures for the test-suite.

Fixtures are kept deliberately small (tiny grids, few training epochs) so the
whole suite runs in well under a minute; the benchmark harness is where the
full-size experiments live.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DatasetBuilder, PowerPlanningDL
from repro.design import ConventionalPowerPlanner
from repro.grid import (
    Floorplan,
    FunctionalBlock,
    GridBuilder,
    GridTopology,
    PowerPad,
    SyntheticIBMSuite,
    generic_45nm,
    uniform_topology,
)
from repro.nn import RegressorConfig, TrainingConfig


@pytest.fixture(scope="session")
def technology():
    """The default 45 nm-class technology used throughout the tests."""
    return generic_45nm()


@pytest.fixture(scope="session")
def tiny_floorplan(technology):
    """A 4-block, 4-pad floorplan small enough for exhaustive checks."""
    blocks = [
        FunctionalBlock(
            name="b0", x=50.0, y=50.0, width=350.0, height=350.0, switching_current=0.08
        ),
        FunctionalBlock(
            name="b1", x=550.0, y=50.0, width=350.0, height=350.0, switching_current=0.20
        ),
        FunctionalBlock(
            name="b2", x=50.0, y=550.0, width=350.0, height=350.0, switching_current=0.05
        ),
        FunctionalBlock(
            name="b3", x=550.0, y=550.0, width=350.0, height=350.0, switching_current=0.12
        ),
    ]
    pads = [
        PowerPad(name="p0", x=250.0, y=250.0, voltage=technology.vdd),
        PowerPad(name="p1", x=750.0, y=250.0, voltage=technology.vdd),
        PowerPad(name="p2", x=250.0, y=750.0, voltage=technology.vdd),
        PowerPad(name="p3", x=750.0, y=750.0, voltage=technology.vdd),
    ]
    return Floorplan(name="tiny", core_width=1000.0, core_height=1000.0, blocks=blocks, pads=pads)


@pytest.fixture(scope="session")
def tiny_topology(tiny_floorplan) -> GridTopology:
    """An 8x8 stripe topology over the tiny floorplan."""
    return uniform_topology(tiny_floorplan, num_vertical=8, num_horizontal=8)


@pytest.fixture(scope="session")
def tiny_grid(technology, tiny_floorplan, tiny_topology):
    """A built power-grid network for the tiny floorplan (uniform 5 um)."""
    return GridBuilder(technology).build(tiny_floorplan, tiny_topology, 5.0)


@pytest.fixture(scope="session")
def small_benchmark():
    """The smallest suite benchmark (ibmpg1), shared across the session."""
    return SyntheticIBMSuite().load("ibmpg1")


@pytest.fixture(scope="session")
def fast_regressor_config() -> RegressorConfig:
    """A small regressor configuration for quick training in tests."""
    return RegressorConfig(
        hidden_layers=3,
        hidden_width=24,
        training=TrainingConfig(epochs=80, batch_size=64, early_stopping_patience=0, seed=0),
        seed=0,
    )


@pytest.fixture(scope="session")
def golden_plan(small_benchmark):
    """Conventional planner result for the small benchmark."""
    planner = ConventionalPowerPlanner(small_benchmark.technology)
    return planner.plan(small_benchmark.floorplan, small_benchmark.topology)


@pytest.fixture(scope="session")
def small_dataset(small_benchmark):
    """Training dataset extracted from the small benchmark's golden design."""
    builder = DatasetBuilder(ConventionalPowerPlanner(small_benchmark.technology))
    return builder.build_training(small_benchmark)


@pytest.fixture(scope="session")
def trained_framework(small_benchmark, fast_regressor_config):
    """A PowerPlanningDL framework trained on the small benchmark."""
    framework = PowerPlanningDL(small_benchmark.technology, fast_regressor_config)
    framework.train_on_benchmark(small_benchmark)
    return framework


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(1234)
