"""Exit-code-driven CLI of the invariant linter.

::

    python -m repro.devtools.lint [paths...] [options]

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage / IO errors.  The
default paths are ``src tests`` — exactly what CI's blocking
``lint-invariants`` job runs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .baseline import apply_baseline, load_baseline, write_baseline
from .core import all_rules, lint_paths
from .reporters import render_json, render_rule_list, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="AST-based invariant linter (lock discipline, picklability, "
        "sink conformance, determinism, imports, env registry).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files / directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout report format (default: text)",
    )
    parser.add_argument(
        "--json-out",
        metavar="FILE",
        help="additionally write the JSON report to FILE (CI artifact)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="subtract the findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--no-pragmas",
        action="store_true",
        help="ignore '# reprolint: disable' pragmas (audit mode)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _resolve_rules(select: str | None, ignore: str | None):
    rules = all_rules()
    known = {rule.code for rule in rules}
    for option, raw in (("--select", select), ("--ignore", ignore)):
        if raw:
            bad = [code for code in _split(raw) if code not in known]
            if bad:
                raise SystemExit(f"error: {option}: unknown rule codes {bad}")
    if select:
        wanted = set(_split(select))
        rules = [rule for rule in rules if rule.code in wanted]
    if ignore:
        dropped = set(_split(ignore))
        rules = [rule for rule in rules if rule.code not in dropped]
    return rules


def _split(raw: str) -> list[str]:
    return [part.strip() for part in raw.split(",") if part.strip()]


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_list())
        return 0

    try:
        rules = _resolve_rules(args.select, args.ignore)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2

    files_checked = 0

    def count(_path: Path) -> None:
        nonlocal files_checked
        files_checked += 1

    try:
        findings = lint_paths(
            args.paths,
            rules=rules,
            respect_pragmas=not args.no_pragmas,
            on_file=count,
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(f"wrote {len(findings)} findings to baseline {args.write_baseline}")
        return 0

    if args.baseline:
        try:
            findings = apply_baseline(findings, load_baseline(args.baseline))
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.json_out:
        Path(args.json_out).write_text(
            render_json(findings, files_checked), encoding="utf-8"
        )
    if args.format == "json":
        sys.stdout.write(render_json(findings, files_checked))
    else:
        print(render_text(findings, files_checked))
    return 1 if findings else 0
