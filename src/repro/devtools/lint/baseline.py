"""Optional baseline file: adopt the linter without fixing history first.

A baseline is a JSON list of finding fingerprints — ``(path, code,
message)``, deliberately line-free so reformatting does not churn it.
``--baseline FILE`` subtracts baselined findings (with multiplicity)
from a run; ``--write-baseline FILE`` records the current findings.

The repo itself carries **no** baseline — PR 9 fixed or annotated every
finding instead — but downstream forks adopting the linter over a dirty
tree get a ratchet: old findings are grandfathered, new ones block.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from .core import Finding


def write_baseline(path: str | Path, findings: Sequence[Finding]) -> None:
    entries = [
        {"path": f.path, "code": f.code, "message": f.message} for f in findings
    ]
    Path(path).write_text(json.dumps(entries, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: str | Path) -> Counter:
    """Fingerprint multiset of a baseline file (missing file = error)."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(raw, list):
        raise ValueError(f"baseline {path} must be a JSON list of findings")
    counter: Counter = Counter()
    for entry in raw:
        try:
            counter[(entry["path"], entry["code"], entry["message"])] += 1
        except (TypeError, KeyError) as exc:
            raise ValueError(
                f"baseline {path}: each entry needs path/code/message keys"
            ) from exc
    return counter


def apply_baseline(findings: Sequence[Finding], baseline: Counter) -> list[Finding]:
    """Subtract baselined fingerprints, respecting multiplicity."""
    remaining = Counter(baseline)
    kept: list[Finding] = []
    for finding in findings:
        if remaining.get(finding.fingerprint, 0) > 0:
            remaining[finding.fingerprint] -= 1
        else:
            kept.append(finding)
    return kept
