"""AST-based invariant linter for the repo's determinism conventions.

The sweep stack's headline guarantee — bitwise-identical results across
every executor, shard count and chunk size — rests on conventions that
ordinary linters cannot see: lock-guarded broker state, picklable shard
payloads, the ``MergeableSink`` snapshot/merge contract, no wall-clock or
unseeded randomness in fold paths.  This package machine-checks them::

    python -m repro.devtools.lint src tests            # exit 1 on findings
    python -m repro.devtools.lint --list-rules
    repro lint src tests                               # CLI alias

Rule codes are stable (``RPR001`` …); suppress one occurrence with
``# reprolint: disable=RPR001`` on the offending line, or a whole file
with ``# reprolint: disable-file=RPR001`` anywhere in it.  See
``docs/architecture.md`` ("Invariants & static checks") for the mapping
from each code to the runtime guarantee it protects.
"""

from .core import (
    Finding,
    ModuleContext,
    Rule,
    RULE_REGISTRY,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
)

__all__ = [
    "Finding",
    "ModuleContext",
    "RULE_REGISTRY",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
]
