"""Finding reporters: human text and machine JSON.

The JSON document is what CI uploads as the ``lint-report`` artifact, so
its shape is a small stable contract: a ``summary`` block (counts per
rule code, files checked, version) plus one record per finding.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from .core import RULE_REGISTRY, Finding

REPORT_VERSION = 1


def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    """``path:line:col: CODE [rule] message`` lines plus a summary tail."""
    lines = [finding.render() for finding in findings]
    if findings:
        per_code = Counter(finding.code for finding in findings)
        breakdown = ", ".join(f"{code}×{count}" for code, count in sorted(per_code.items()))
        lines.append("")
        lines.append(
            f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
            f"({breakdown}) in {files_checked} files"
        )
    else:
        lines.append(f"clean: 0 findings in {files_checked} files")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_checked: int) -> str:
    document = {
        "version": REPORT_VERSION,
        "summary": {
            "files_checked": files_checked,
            "total": len(findings),
            "by_code": dict(sorted(Counter(f.code for f in findings).items())),
        },
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "code": finding.code,
                "rule": finding.rule,
                "message": finding.message,
            }
            for finding in findings
        ],
    }
    return json.dumps(document, indent=2, sort_keys=False) + "\n"


def render_rule_list() -> str:
    """One line per registered rule, for ``--list-rules``."""
    from . import rules as _rules  # noqa: F401  (registration side effect)

    lines = []
    for code in sorted(RULE_REGISTRY):
        rule = RULE_REGISTRY[code]
        lines.append(f"{code}  {rule.name:<18} {rule.description}")
    return "\n".join(lines)
