"""The repo-specific rules: one class per ``RPR…`` code.

Every rule protects a *runtime* guarantee of the sweep stack; the
docstring of each names it.  Rules are pure functions of one file's
:class:`~repro.devtools.lint.core.ModuleContext` — no imports are
executed, no cross-file graph is built — so the linter stays fast and
runs identically on a checkout and in CI.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from .core import Finding, ModuleContext, Rule, register

# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def _attr_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``; ``None`` for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def _self_attr(node: ast.AST) -> str | None:
    """The attribute name when ``node`` is ``self.<attr>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _call_name(node: ast.Call) -> str | None:
    """Last segment of the called name (``engine.analyze_batch`` → that)."""
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _class_methods(cls: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
    return names


def _base_names(cls: ast.ClassDef) -> list[str]:
    names = []
    for base in cls.bases:
        chain = _attr_chain(base)
        if chain:
            names.append(chain[-1])
    return names


class _ClassTable:
    """In-file class index with a transitive in-file ancestry walk."""

    def __init__(self, tree: ast.Module) -> None:
        self.classes: dict[str, ast.ClassDef] = {
            node.name: node for node in ast.walk(tree) if isinstance(node, ast.ClassDef)
        }

    def ancestry(self, cls: ast.ClassDef) -> tuple[set[str], set[str]]:
        """``(all base names reachable, methods defined along the chain)``."""
        seen_bases: set[str] = set()
        methods = _class_methods(cls)
        stack = _base_names(cls)
        while stack:
            base = stack.pop()
            if base in seen_bases:
                continue
            seen_bases.add(base)
            parent = self.classes.get(base)
            if parent is not None:
                methods |= _class_methods(parent)
                stack.extend(_base_names(parent))
        return seen_bases, methods


def _local_scope_defs(func: ast.AST) -> dict[str, str]:
    """Names bound to lambdas / defs / classes in ``func``'s own scope.

    Nested function and class bodies open new scopes and are not
    descended into (their internals are invisible at the call site).
    """
    found: dict[str, str] = {}

    def scan(stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                found[stmt.name] = "nested function"
            elif isinstance(stmt, ast.ClassDef):
                found[stmt.name] = "locally-defined class"
            elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Lambda):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        found[target.id] = "lambda"
            elif isinstance(stmt, (ast.If, ast.For, ast.While, ast.With, ast.Try)):
                for field in ("body", "orelse", "finalbody", "handlers"):
                    block = getattr(stmt, field, None)
                    if not block:
                        continue
                    if field == "handlers":
                        for handler in block:
                            scan(handler.body)
                    else:
                        scan(block)

    scan(getattr(func, "body", []))
    return found


# ----------------------------------------------------------------------
# RPR001 — lock discipline
# ----------------------------------------------------------------------
_GUARDED_BY_RE = re.compile(r"guarded-by:\s*(?:self\.)?([A-Za-z_][A-Za-z0-9_]*)")
_REQUIRES_RE = re.compile(r"(?:requires-lock|guarded-by):\s*(?:self\.)?([A-Za-z_][A-Za-z0-9_]*)")


@register
class LockDisciplineRule(Rule):
    """Guarded attributes may only be touched while holding their lock.

    Protects: the thread-safety of shared mutable broker / cache state
    (``SweepQueue`` shard leasing, the engine's factorization cache) on
    which the executor layer's exactly-once fold rests.

    Declare the guard on the ``__init__`` assignment::

        self._sweeps = OrderedDict()  # guarded-by: _lock

    Every later read or write of ``self._sweeps`` anywhere in the class
    must then sit lexically inside ``with self._lock:``, or inside a
    method annotated ``# requires-lock: _lock`` (meaning: every caller
    already holds the lock).  ``__init__`` itself is exempt — objects
    under construction are single-threaded.
    """

    code = "RPR001"
    name = "lock-discipline"
    description = "guarded-by attributes accessed only under their lock"

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for cls in (n for n in ast.walk(context.tree) if isinstance(n, ast.ClassDef)):
            guarded = self._guarded_attrs(context, cls)
            if not guarded:
                continue
            for method in cls.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name == "__init__":
                    continue
                held = set(
                    _REQUIRES_RE.findall(context.comment_on(method.lineno))
                    + _REQUIRES_RE.findall(context.comment_on(method.lineno - 1))
                )
                for node in ast.walk(method):
                    attr = _self_attr(node)
                    if attr is None or attr not in guarded:
                        continue
                    lock = guarded[attr]
                    if lock in held or self._under_lock(context, node, lock):
                        continue
                    yield self.finding(
                        context,
                        node,
                        f"self.{attr} is '# guarded-by: {lock}' but accessed outside "
                        f"'with self.{lock}:'; take the lock, or annotate the method "
                        f"'# requires-lock: {lock}' when every caller already holds it",
                    )

    @staticmethod
    def _guarded_attrs(context: ModuleContext, cls: ast.ClassDef) -> dict[str, str]:
        init = next(
            (
                stmt
                for stmt in cls.body
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
            ),
            None,
        )
        guarded: dict[str, str] = {}
        if init is None:
            return guarded
        for stmt in ast.walk(init):
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                match = context.declaration_comment(stmt, _GUARDED_BY_RE)
                if match is None:
                    continue
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                for target in targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        guarded[attr] = match.group(1)
        return guarded

    @staticmethod
    def _under_lock(context: ModuleContext, node: ast.AST, lock: str) -> bool:
        for ancestor in context.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False  # stop at the enclosing scope boundary
            if isinstance(ancestor, ast.With):
                for item in ancestor.items:
                    if _self_attr(item.context_expr) == lock:
                        return True
        return False


# ----------------------------------------------------------------------
# RPR002 — picklability of shard payloads
# ----------------------------------------------------------------------
_ANALYZE_ENTRY_POINTS = {
    "analyze_batch",
    "analyze_pad_batch",
    "analyze_scenario_stream",
    "analyze_mega_sweep",
    "analyze_statistical",
}
_SHARDED_EXECUTOR_NAMES = {"processes", "hybrid", "remote"}
_SHARDED_EXECUTOR_CLASSES = {"ProcessShardedExecutor", "HybridExecutor", "RemoteExecutor"}
#: Positional slot of the scenario source per entry point (after self).
_SOURCE_POSITIONS = {"analyze_scenario_stream": 1}


@register
class PicklabilityRule(Rule):
    """Closures must not flow into sweeps that ship shards to processes.

    Protects: the process-sharded / remote payload contract — the
    scenario source, the compiled grid and every sink are pickled once
    and rebuilt inside worker processes, so lambdas, nested functions and
    locally-defined classes cannot ride along.

    Flags a lambda / nested function / local class passed as the
    ``source`` / ``scenario_source`` / ``sinks`` of an ``analyze_*``
    entry point when either

    * the call names a sharded executor (``executor="processes"`` /
      ``"remote"``, a ``ProcessShardedExecutor`` / ``RemoteExecutor``
      instance, or ``make_executor`` with one of those names), or
    * the file is library code (non-test) — production sources must be
      module-level picklable classes such as ``MatrixScenarioSource``,
      whatever executor today's caller picks.
    """

    code = "RPR002"
    name = "picklability"
    description = "no closures in analyze_* sources/sinks bound for process shards"

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for call in (n for n in ast.walk(context.tree) if isinstance(n, ast.Call)):
            name = _call_name(call)
            if name not in _ANALYZE_ENTRY_POINTS:
                continue
            scope = self._enclosing_function(context, call)
            local_defs = _local_scope_defs(scope) if scope is not None else {}
            must_pickle = not context.is_test_file or self._names_sharded_executor(
                call, local_defs, scope
            )
            if not must_pickle:
                continue
            for role, value in self._payload_values(name, call):
                for offender, kind in self._unpicklable(value, local_defs):
                    yield self.finding(
                        context,
                        offender,
                        f"{kind} flows into {name}({role}=...); process/remote shards "
                        "pickle the payload into worker processes — use a module-level "
                        "picklable class (e.g. MatrixScenarioSource, "
                        "CrossProductScenarioSource) instead",
                    )

    @staticmethod
    def _enclosing_function(context: ModuleContext, node: ast.AST):
        for ancestor in context.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    @staticmethod
    def _payload_values(entry: str, call: ast.Call) -> Iterator[tuple[str, ast.expr]]:
        position = _SOURCE_POSITIONS.get(entry)
        if position is not None and len(call.args) > position:
            yield "scenario_source", call.args[position]
        for keyword in call.keywords:
            if keyword.arg in ("source", "scenario_source", "sinks"):
                yield keyword.arg, keyword.value

    def _names_sharded_executor(
        self, call: ast.Call, local_defs: dict[str, str], scope: ast.AST | None
    ) -> bool:
        executor = next((k.value for k in call.keywords if k.arg == "executor"), None)
        if executor is None:
            return False
        return self._is_sharded_executor(executor, scope)

    def _is_sharded_executor(self, value: ast.expr, scope: ast.AST | None) -> bool:
        if isinstance(value, ast.Constant):
            return value.value in _SHARDED_EXECUTOR_NAMES
        if isinstance(value, ast.Call):
            name = _call_name(value)
            if name in _SHARDED_EXECUTOR_CLASSES:
                return True
            if name == "make_executor" and value.args:
                first = value.args[0]
                return isinstance(first, ast.Constant) and first.value in _SHARDED_EXECUTOR_NAMES
        if isinstance(value, ast.Name) and scope is not None:
            # Single-assignment resolution inside the enclosing function.
            for stmt in ast.walk(scope):
                if isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == value.id for t in stmt.targets
                ):
                    return self._is_sharded_executor(stmt.value, None)
        return False

    @staticmethod
    def _unpicklable(
        value: ast.expr, local_defs: dict[str, str]
    ) -> Iterator[tuple[ast.expr, str]]:
        candidates: list[ast.expr] = (
            list(value.elts) if isinstance(value, (ast.List, ast.Tuple)) else [value]
        )
        for candidate in candidates:
            if isinstance(candidate, ast.Lambda):
                yield candidate, "a lambda"
            elif isinstance(candidate, ast.Name) and candidate.id in local_defs:
                yield candidate, f"{local_defs[candidate.id]} '{candidate.id}'"
            elif isinstance(candidate, ast.Call):
                name = _call_name(candidate)
                if name in local_defs and local_defs[name] == "locally-defined class":
                    yield candidate, f"locally-defined class '{name}'"


# ----------------------------------------------------------------------
# RPR003 — sink protocol conformance
# ----------------------------------------------------------------------
_SINK_BASES = {"IRDropSink", "_ScalarStreamSink"}
_SINK_SURFACE = ("bind", "consume", "result")
#: Methods the IRDropSink base class itself provides to every subclass.
_SINK_BASE_PROVIDES = {"bind", "consume", "consume_drop_rows"}


@register
class SinkConformanceRule(Rule):
    """Sinks must implement their whole contract, not a working subset.

    Protects: the ``MergeableSink`` snapshot/merge protocol (a sink with
    ``snapshot`` but no ``merge`` passes serial sweeps and fails the
    first process-sharded one) and the ``ScenarioSink`` surface
    (``bind`` / ``consume`` / ``result``) every executor drives.

    * Any class defining exactly one of ``snapshot`` / ``merge`` is
      flagged — the pair is the unit of shard exactness.
    * Any public ``IRDropSink`` (or ``_ScalarStreamSink``) subclass must
      end up with ``bind``, ``consume`` and ``result`` — own, inherited
      in-file, or provided by the base.  Private (``_``-prefixed)
      intermediates are exempt.
    """

    code = "RPR003"
    name = "sink-conformance"
    description = "snapshot/merge defined as a pair; sink surface complete"

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        table = _ClassTable(context.tree)
        for cls in table.classes.values():
            methods = _class_methods(cls)
            if ("snapshot" in methods) != ("merge" in methods):
                present, missing = (
                    ("snapshot", "merge") if "snapshot" in methods else ("merge", "snapshot")
                )
                yield self.finding(
                    context,
                    cls,
                    f"class {cls.name} defines {present}() without {missing}(); the "
                    "MergeableSink contract is the pair — shard folds call both",
                )
            bases, chain_methods = table.ancestry(cls)
            if cls.name in _SINK_BASES or cls.name.startswith("_"):
                continue
            if not (bases & _SINK_BASES):
                continue
            available = chain_methods | _SINK_BASE_PROVIDES
            missing_surface = [m for m in _SINK_SURFACE if m not in available]
            if missing_surface:
                yield self.finding(
                    context,
                    cls,
                    f"sink class {cls.name} is missing {missing_surface} from the "
                    "ScenarioSink surface (bind/consume/result); every executor "
                    "drives all three",
                )


# ----------------------------------------------------------------------
# RPR004 — determinism in analysis fold paths
# ----------------------------------------------------------------------
_GLOBAL_RANDOM_FUNCS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "gauss",
    "normalvariate",
    "betavariate",
    "vonmisesvariate",
    "seed",
}


@register
class DeterminismRule(Rule):
    """No wall clock, global RNG or set-order iteration in analysis code.

    Protects: bitwise reproducibility of sweep results.  Floating-point
    folds are order- and input-sensitive, so anything feeding them must
    be a pure function of the scenario range: no ``time.time()`` /
    ``datetime.now()`` stamps, no unseeded ``np.random`` / stdlib
    ``random`` global state, and no iteration over ``set`` literals or
    ``set()`` constructors (hash-seed-dependent order).  Scoped to
    ``src/repro/analysis/`` — the engine, sinks, executors, remote
    broker and solver layers.  ``time.monotonic`` / ``perf_counter``
    (intervals) and seeded ``np.random.default_rng(seed)`` stay legal.
    """

    code = "RPR004"
    name = "determinism"
    description = "no time.time/now, unseeded RNG, or set-order iteration in analysis"

    def applies_to(self, context: ModuleContext) -> bool:
        return "repro/analysis/" in context.posix_path

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(context, node)
            elif isinstance(node, ast.For):
                yield from self._check_iteration(context, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    yield from self._check_iteration(context, generator.iter)

    def _check_call(self, context: ModuleContext, node: ast.Call) -> Iterator[Finding]:
        chain = _attr_chain(node.func)
        if chain is None:
            return
        if chain == ["time", "time"]:
            yield self.finding(
                context,
                node,
                "time.time() in analysis code; use time.monotonic()/time.perf_counter() "
                "for intervals and keep wall-clock stamps out of folded results",
            )
        elif (
            len(chain) >= 2
            and chain[-1] in ("now", "utcnow", "today")
            and chain[0] in ("datetime", "date")
        ):
            yield self.finding(
                context,
                node,
                f"{'.'.join(chain)}() in analysis code; wall-clock values are "
                "nondeterministic — pass timestamps in from the caller if needed",
            )
        elif len(chain) == 3 and chain[0] in ("np", "numpy") and chain[1] == "random":
            if chain[2] == "default_rng":
                if not node.args and not node.keywords:
                    yield self.finding(
                        context,
                        node,
                        "np.random.default_rng() without a seed; analysis sampling "
                        "must be a pure function of its inputs — pass an explicit seed",
                    )
            else:
                yield self.finding(
                    context,
                    node,
                    f"np.random.{chain[2]}() uses the unseeded global NumPy RNG; "
                    "use np.random.default_rng(seed) and thread the generator through",
                )
        elif chain[0] == "random" and len(chain) == 2:
            if chain[1] in _GLOBAL_RANDOM_FUNCS:
                yield self.finding(
                    context,
                    node,
                    f"random.{chain[1]}() uses the process-global stdlib RNG; "
                    "use a seeded np.random.default_rng(seed) instead",
                )
            elif chain[1] == "Random" and not node.args and not node.keywords:
                yield self.finding(
                    context,
                    node,
                    "random.Random() without a seed is nondeterministic; pass a seed",
                )

    def _check_iteration(self, context: ModuleContext, iter_node: ast.expr) -> Iterator[Finding]:
        is_set = isinstance(iter_node, (ast.Set, ast.SetComp))
        if isinstance(iter_node, ast.Call):
            chain = _attr_chain(iter_node.func)
            is_set = chain is not None and chain[-1] in ("set", "frozenset")
        if is_set:
            yield self.finding(
                context,
                iter_node,
                "iteration over a set in analysis code has hash-seed-dependent order; "
                "sort it (sorted(...)) before anything order-sensitive folds it",
            )


# ----------------------------------------------------------------------
# RPR005 — legacy solver-module import ban
# ----------------------------------------------------------------------
_LEGACY_MODULE = "repro.analysis.solver"


@register
class LegacyImportRule(Rule):
    """New code must not import the deprecated ``repro.analysis.solver``.

    Protects: the PR-7 solver-policy seam.  ``repro.analysis.solvers``
    is the canonical home of the factorization backends, the incremental
    updates and ``LinearSolverError``; the legacy module survives only
    for MNA-level callers.  Import from ``repro.analysis.solvers`` or
    the ``repro.analysis`` package re-exports instead.  Exempt: the
    legacy module itself and its dedicated ``test_solver*`` suites; the
    handful of intentional legacy couplings carry line pragmas.
    """

    code = "RPR005"
    name = "legacy-import"
    description = "no new imports of the deprecated repro.analysis.solver"

    def applies_to(self, context: ModuleContext) -> bool:
        path = context.posix_path
        if path.endswith("repro/analysis/solver.py"):
            return False
        stem = path.rsplit("/", 1)[-1]
        return not stem.startswith("test_solver")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == _LEGACY_MODULE:
                        yield self._flag(context, node)
            elif isinstance(node, ast.ImportFrom):
                module = self._absolute_module(context, node)
                if module == _LEGACY_MODULE:
                    yield self._flag(context, node)
                elif module == "repro.analysis" and any(
                    alias.name == "solver" for alias in node.names
                ):
                    yield self._flag(context, node)

    @staticmethod
    def _absolute_module(context: ModuleContext, node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module
        dotted = context.module_dotted
        if dotted is None:
            return None
        parts = dotted.split(".")
        if not context.posix_path.endswith("__init__.py"):
            parts = parts[:-1]  # the file's package
        parts = parts[: len(parts) - (node.level - 1)] if node.level > 1 else parts
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts)

    def _flag(self, context: ModuleContext, node: ast.stmt) -> Finding:
        return self.finding(
            context,
            node,
            "import of the deprecated repro.analysis.solver; use "
            "repro.analysis.solvers (backends, updates, LinearSolverError) or the "
            "repro.analysis package re-exports instead",
        )


# ----------------------------------------------------------------------
# RPR006 — environment-variable registry
# ----------------------------------------------------------------------
@register
class EnvRegistryRule(Rule):
    """Every environment read must use a key from ``KNOWN_ENV_VARS``.

    Protects: the documentation contract of the ``REPRO_*`` knobs.  A
    sweep whose behaviour silently depends on an undocumented variable
    is unreproducible by anyone who doesn't know the incantation, so
    :data:`repro.envvars.KNOWN_ENV_VARS` is the single source of truth
    and this rule keeps it exhaustive:

    * ``os.environ[...]`` / ``os.environ.get`` / ``os.getenv`` with a
      resolvable key (string literal, or an in-file module constant)
      must name a registered key;
    * module-level ``*_ENV = "..."`` constants must hold registered
      keys (reads through an *imported* ``*_ENV`` constant are trusted —
      the defining module is checked where the constant lives);
    * keys the linter cannot resolve statically are flagged as such.
    """

    code = "RPR006"
    name = "env-registry"
    description = "os.environ keys must be declared in repro.envvars.KNOWN_ENV_VARS"

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        from repro.envvars import KNOWN_ENV_VARS

        constants = self._module_constants(context.tree)
        for name, (value, node) in constants.items():
            if name.endswith("_ENV") and value not in KNOWN_ENV_VARS:
                yield self.finding(
                    context,
                    node,
                    f"env constant {name} = {value!r} is not declared in "
                    "repro.envvars.KNOWN_ENV_VARS; register it with a one-line "
                    "description",
                )
        for node, key_expr in self._env_reads(context.tree):
            yield from self._check_key(context, node, key_expr, constants, KNOWN_ENV_VARS)

    @staticmethod
    def _module_constants(tree: ast.Module) -> dict[str, tuple[str, ast.stmt]]:
        constants: dict[str, tuple[str, ast.stmt]] = {}
        for stmt in tree.body:
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                constants[target.id] = (value.value, stmt)
        return constants

    @staticmethod
    def _env_reads(tree: ast.Module) -> Iterator[tuple[ast.AST, ast.expr]]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if chain in (
                    ["os", "getenv"],
                    ["os", "environ", "get"],
                    ["os", "environ", "setdefault"],
                    ["os", "environ", "pop"],
                ):
                    if node.args:
                        yield node, node.args[0]
            elif isinstance(node, ast.Subscript):
                if _attr_chain(node.value) == ["os", "environ"]:
                    yield node, node.slice

    def _check_key(
        self,
        context: ModuleContext,
        node: ast.AST,
        key_expr: ast.expr,
        constants: dict[str, tuple[str, ast.stmt]],
        known: dict[str, str],
    ) -> Iterator[Finding]:
        key: str | None = None
        if isinstance(key_expr, ast.Constant) and isinstance(key_expr.value, str):
            key = key_expr.value
        elif isinstance(key_expr, ast.Name):
            if key_expr.id in constants:
                key = constants[key_expr.id][0]
            elif key_expr.id.endswith("_ENV"):
                return  # imported *_ENV constant; checked at its definition
        if key is None:
            yield self.finding(
                context,
                node,
                "environment key is not statically resolvable; read it through a "
                "module-level *_ENV string constant so the registry check can see it",
            )
        elif key not in known:
            yield self.finding(
                context,
                node,
                f"environment variable {key!r} is not declared in "
                "repro.envvars.KNOWN_ENV_VARS; register it with a one-line description",
            )


# ----------------------------------------------------------------------
# RPR007 — module-level mutable state
# ----------------------------------------------------------------------
_MUTABLE_CALLS = {"dict", "list", "set", "OrderedDict", "defaultdict", "deque", "Counter"}
_CONSTANT_NAME_RE = re.compile(r"^_?_?[A-Z][A-Z0-9_]*$")


@register
class MutableGlobalRule(Rule):
    """No lowercase module-level mutable containers in library code.

    Protects: process-shard equivalence.  A worker process starts from a
    fresh import, so any behaviour accumulated in a module-level dict or
    list in the parent silently diverges from the shards.  Deliberate
    module state (registries, per-worker context like
    ``_WORKER_STATE``) is spelled ``UPPER_CASE`` to mark the contract;
    anything lowercase is flagged.  Tests are out of scope.
    """

    code = "RPR007"
    name = "mutable-global"
    description = "module-level mutable containers must be UPPER_CASE contracts"

    def applies_to(self, context: ModuleContext) -> bool:
        return not context.is_test_file

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for stmt in context.tree.body:
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            if not self._is_mutable_literal(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("__") and name.endswith("__"):
                    continue  # dunders (__all__) have their own conventions
                if _CONSTANT_NAME_RE.match(name):
                    continue
                yield self.finding(
                    context,
                    stmt,
                    f"module-level mutable container {name!r}; worker processes "
                    "re-import modules, so shared mutable globals break shard "
                    "equivalence — make it function-local, or an UPPER_CASE "
                    "constant if the module state is deliberate",
                )

    @staticmethod
    def _is_mutable_literal(value: ast.expr) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            name = _call_name(value)
            return name in _MUTABLE_CALLS and not value.args and not value.keywords
        return False


# ----------------------------------------------------------------------
# RPR008 — executor contract surface
# ----------------------------------------------------------------------
_EXECUTOR_BASE = "SweepExecutor"
_EXECUTOR_SURFACE = ("name", "parallelism", "execute")


@register
class ExecutorContractRule(Rule):
    """``SweepExecutor`` subclasses must implement the full strategy surface.

    Protects: the pluggable execution layer.  ``make_executor``, the CLI
    and the environment default all drive executors through exactly
    ``name`` / ``parallelism`` / ``execute``; a subclass missing one
    inherits the abstract placeholder (``name = "abstract"``) and fails
    at sweep time instead of review time.  Private (``_``-prefixed)
    intermediate bases are exempt, like RPR003's sink intermediates.
    """

    code = "RPR008"
    name = "executor-contract"
    description = "SweepExecutor subclasses define name, parallelism and execute"

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        table = _ClassTable(context.tree)
        for cls in table.classes.values():
            if cls.name == _EXECUTOR_BASE or cls.name.startswith("_"):
                continue
            bases, chain_methods = table.ancestry(cls)
            if _EXECUTOR_BASE not in bases:
                continue
            # The chain walk unions SweepExecutor's own defaults in when it
            # is defined in-file; the subclass must override regardless.
            own_chain = self._methods_excluding_base(table, cls)
            missing = [m for m in _EXECUTOR_SURFACE if m not in own_chain]
            if missing:
                yield self.finding(
                    context,
                    cls,
                    f"executor class {cls.name} does not define {missing}; the "
                    "SweepExecutor contract (name, parallelism, execute) is what "
                    "make_executor and the engine drive",
                )

    @staticmethod
    def _methods_excluding_base(table: _ClassTable, cls: ast.ClassDef) -> set[str]:
        methods = _class_methods(cls)
        stack = [b for b in _base_names(cls) if b != _EXECUTOR_BASE]
        seen: set[str] = set()
        while stack:
            base = stack.pop()
            if base in seen or base == _EXECUTOR_BASE:
                continue
            seen.add(base)
            parent = table.classes.get(base)
            if parent is not None:
                methods |= _class_methods(parent)
                stack.extend(b for b in _base_names(parent) if b != _EXECUTOR_BASE)
        return methods
