"""Core of the invariant linter: contexts, rules, pragmas, the runner.

The linter is a thin frame around :mod:`ast`: every checked file becomes
one :class:`ModuleContext` (tree + raw lines + comment table + parent
links), every rule is a :class:`Rule` subclass registered under a stable
``RPR…`` code, and :func:`lint_paths` drives the lot and returns
:class:`Finding`\\ s.  Suppression is comment-driven::

    x = eval(blob)        # reprolint: disable=RPR004
    # reprolint: disable-file=RPR005   (anywhere in the file)

``disable=all`` works in both forms.  Rules never read pragmas — the
runner filters findings afterwards, so ``respect_pragmas=False`` (used by
the pragma tests themselves) sees everything.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

#: Code reserved for files the linter cannot parse at all.
PARSE_ERROR_CODE = "RPR000"

_PRAGMA_RE = re.compile(
    r"reprolint:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<codes>[A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    Attributes:
        path: File the finding is in, as given to the runner.
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        code: Stable rule code (``RPR001`` …).
        rule: Short rule name (``lock-discipline`` …).
        message: Human-readable explanation with the repair hint.
    """

    path: str
    line: int
    col: int
    code: str
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} [{self.rule}] {self.message}"

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """Line-independent identity used by the baseline file."""
        return (self.path, self.code, self.message)


class ModuleContext:
    """One parsed file plus everything rules need to inspect it.

    Args:
        path: Path the findings will report (tests may pass a *virtual*
            path so fixtures exercise path-scoped rules).
        source: Full text of the file.
        tree: Parsed ``ast.Module`` of ``source``.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.comments = _collect_comments(source)
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # -- structure -----------------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    # -- path predicates ----------------------------------------------
    @property
    def posix_path(self) -> str:
        return Path(self.path).as_posix()

    @property
    def is_test_file(self) -> bool:
        """Under a ``tests`` directory, or a ``test_*.py`` / ``conftest.py`` file."""
        path = Path(self.path)
        return (
            "tests" in path.parts
            or path.name.startswith("test_")
            or path.name == "conftest.py"
        )

    @property
    def module_dotted(self) -> str | None:
        """Dotted module path (``repro.analysis.engine``) when derivable.

        Derived from the first ``repro`` component of the file path, so
        it works for ``src/repro/…`` checkouts and installed trees alike;
        ``None`` for files outside a ``repro`` package (tests, scripts).
        """
        parts = list(Path(self.path).with_suffix("").parts)
        if "repro" not in parts:
            return None
        parts = parts[parts.index("repro"):]
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    # -- comments ------------------------------------------------------
    def comment_on(self, line: int) -> str:
        """The comment text (sans ``#``) on ``line``, or ``""``."""
        return self.comments.get(line, "")

    def declaration_comment(self, node: ast.stmt, pattern: re.Pattern[str]) -> re.Match | None:
        """Match ``pattern`` in the comment on the node's line or the line above."""
        for line in (node.lineno, node.lineno - 1):
            match = pattern.search(self.comments.get(line, ""))
            if match is not None:
                return match
        return None


def _collect_comments(source: str) -> dict[int, str]:
    comments: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string.lstrip("#").strip()
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - parse guard
        pass
    return comments


# ----------------------------------------------------------------------
# Rules and the registry
# ----------------------------------------------------------------------
class Rule:
    """One invariant check over a :class:`ModuleContext`.

    Subclasses set the three class attributes and implement
    :meth:`check`; registration is explicit via :func:`register` so the
    code → rule mapping stays greppable.
    """

    code: str = "RPR999"
    name: str = "unnamed"
    description: str = ""

    def applies_to(self, context: ModuleContext) -> bool:
        """Path scoping hook; default: every file."""
        return True

    def check(self, context: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, context: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            rule=self.name,
            message=message,
        )


RULE_REGISTRY: dict[str, type[Rule]] = {}
"""Stable code → rule class; populated by the :func:`register` decorator."""


def register(rule_class: type[Rule]) -> type[Rule]:
    code = rule_class.code
    if not re.fullmatch(r"RPR\d{3}", code):
        raise ValueError(f"rule code must look like RPR001, got {code!r}")
    existing = RULE_REGISTRY.get(code)
    if existing is not None and existing is not rule_class:
        raise ValueError(f"duplicate rule code {code}: {existing.__name__} vs {rule_class.__name__}")
    RULE_REGISTRY[code] = rule_class
    return rule_class


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in code order."""
    from . import rules as _rules  # noqa: F401  (registration side effect)

    return [RULE_REGISTRY[code]() for code in sorted(RULE_REGISTRY)]


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------
@dataclass
class PragmaTable:
    """Suppressions parsed from one file's comments."""

    file_codes: set[str] = field(default_factory=set)
    line_codes: dict[int, set[str]] = field(default_factory=dict)

    def suppresses(self, finding: Finding) -> bool:
        if "all" in self.file_codes or finding.code in self.file_codes:
            return True
        codes = self.line_codes.get(finding.line, ())
        return "all" in codes or finding.code in codes


def parse_pragmas(context: ModuleContext) -> PragmaTable:
    table = PragmaTable()
    for line, comment in context.comments.items():
        match = _PRAGMA_RE.search(comment)
        if match is None:
            continue
        codes = {code.strip() for code in match.group("codes").split(",") if code.strip()}
        if match.group("kind") == "disable-file":
            table.file_codes |= codes
        else:
            table.line_codes.setdefault(line, set()).update(codes)
    return table


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def lint_source(
    source: str,
    path: str,
    rules: Sequence[Rule] | None = None,
    respect_pragmas: bool = True,
) -> list[Finding]:
    """Lint one in-memory source blob reported under ``path``.

    ``path`` may be *virtual* — the fixture tests feed snippets through
    with paths like ``src/repro/analysis/example.py`` to hit path-scoped
    rules — which is why this is the primitive :func:`lint_file` wraps.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code=PARSE_ERROR_CODE,
                rule="parse-error",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    context = ModuleContext(path, source, tree)
    active = [rule for rule in (rules if rules is not None else all_rules())
              if rule.applies_to(context)]
    findings = [finding for rule in active for finding in rule.check(context)]
    if respect_pragmas:
        pragmas = parse_pragmas(context)
        findings = [finding for finding in findings if not pragmas.suppresses(finding)]
    return sorted(findings, key=lambda f: (f.line, f.col, f.code))


def lint_file(
    path: str | Path,
    rules: Sequence[Rule] | None = None,
    respect_pragmas: bool = True,
) -> list[Finding]:
    """Lint one file on disk."""
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, str(path), rules=rules, respect_pragmas=respect_pragmas)


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand the CLI path arguments into the files to lint.

    Directories are walked recursively for ``*.py`` (sorted, hidden and
    ``__pycache__`` subtrees skipped); explicitly named files are taken
    verbatim whatever their extension — which is how the fixture corpus
    (``*.py.txt``, invisible to the directory walk and therefore to CI's
    ``lint src tests`` run) still gets linted by its tests.
    """
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.exists():
            candidates = [path]
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in candidates:
            parts = candidate.parts
            if any(part == "__pycache__" or part.startswith(".") for part in parts):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule] | None = None,
    respect_pragmas: bool = True,
    on_file: Callable[[Path], None] | None = None,
) -> list[Finding]:
    """Lint files and directories; returns all findings, path-sorted."""
    rules = list(rules if rules is not None else all_rules())
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        if on_file is not None:
            on_file(path)
        findings.extend(lint_file(path, rules=rules, respect_pragmas=respect_pragmas))
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))
