"""Developer tooling that ships with the repo but stays out of runtime paths.

Nothing under :mod:`repro.devtools` is imported by the analysis, grid or
design layers — these are the tools that *check* those layers.  Current
contents:

* :mod:`repro.devtools.lint` — the AST-based invariant linter
  (``python -m repro.devtools.lint``) guarding the repo's determinism,
  lock-discipline and picklability conventions.
"""
