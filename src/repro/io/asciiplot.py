"""Text-mode rendering of the paper's figures.

Matplotlib is not available in this environment, so the heatmaps (IR-drop
maps of Fig. 8, memory profiles of Fig. 10) and histograms (Fig. 7b) are
rendered as ASCII art for the benchmark harness output, in addition to being
written out as CSV matrices by :mod:`repro.io.results` for external
plotting.
"""

from __future__ import annotations

import numpy as np

_SHADES = " .:-=+*#%@"


def ascii_heatmap(
    matrix: np.ndarray,
    width: int = 60,
    height: int = 24,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Render a 2-D array as an ASCII heatmap.

    Args:
        matrix: The values to render (larger = darker glyph).
        width: Output width in characters.
        height: Output height in rows.
        title: Optional title line.
        unit: Unit string appended to the min/max legend.

    Returns:
        A multi-line string; row 0 of the matrix is drawn at the bottom, like
        the paper's map plots.
    """
    matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
    if matrix.size == 0:
        raise ValueError("matrix must be non-empty")
    width = max(4, width)
    height = max(2, height)

    rows, cols = matrix.shape
    row_idx = np.linspace(0, rows - 1, height).astype(int)
    col_idx = np.linspace(0, cols - 1, width).astype(int)
    sampled = matrix[np.ix_(row_idx, col_idx)]

    low, high = float(np.min(matrix)), float(np.max(matrix))
    span = high - low
    if span == 0:
        normalised = np.zeros_like(sampled)
    else:
        normalised = (sampled - low) / span
    glyph_idx = np.clip((normalised * (len(_SHADES) - 1)).round().astype(int), 0, len(_SHADES) - 1)

    lines: list[str] = []
    if title:
        lines.append(title)
    for row in reversed(range(height)):
        lines.append("".join(_SHADES[index] for index in glyph_idx[row]))
    lines.append(f"min={low:.4g}{unit}  max={high:.4g}{unit}")
    return "\n".join(lines)


def ascii_histogram(
    counts: np.ndarray,
    bin_edges: np.ndarray,
    width: int = 50,
    title: str | None = None,
) -> str:
    """Render histogram counts as horizontal ASCII bars.

    Args:
        counts: Per-bin counts.
        bin_edges: Bin edges (length ``len(counts) + 1``).
        width: Maximum bar width in characters.
        title: Optional title line.
    """
    counts = np.asarray(counts, dtype=float)
    bin_edges = np.asarray(bin_edges, dtype=float)
    if bin_edges.size != counts.size + 1:
        raise ValueError("bin_edges must have one more element than counts")
    peak = counts.max() if counts.size else 0.0
    lines: list[str] = []
    if title:
        lines.append(title)
    for index, count in enumerate(counts):
        center = (bin_edges[index] + bin_edges[index + 1]) / 2.0
        bar_length = 0 if peak == 0 else int(round(count / peak * width))
        lines.append(f"{center:+10.3f} | {'#' * bar_length} {int(count)}")
    return "\n".join(lines)


def ascii_series(
    xs: np.ndarray,
    ys: np.ndarray,
    width: int = 60,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Render an (x, y) series as a scatter of ``*`` glyphs on a text canvas."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape:
        raise ValueError("xs and ys must have the same shape")
    if xs.size == 0:
        raise ValueError("series must be non-empty")
    width = max(4, width)
    height = max(2, height)

    x_low, x_high = float(xs.min()), float(xs.max())
    y_low, y_high = float(ys.min()), float(ys.max())
    x_span = max(x_high - x_low, 1e-12)
    y_span = max(y_high - y_low, 1e-12)
    canvas = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int(round((x - x_low) / x_span * (width - 1)))
        row = int(round((y - y_low) / y_span * (height - 1)))
        canvas[height - 1 - row][col] = "*"

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.extend("".join(row) for row in canvas)
    lines.append(f"x: [{x_low:.4g}, {x_high:.4g}]   y: [{y_low:.4g}, {y_high:.4g}]")
    return "\n".join(lines)
