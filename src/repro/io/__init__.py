"""Input/output helpers: switching activity, result files, ASCII figures."""

from .asciiplot import ascii_heatmap, ascii_histogram, ascii_series
from .results import (
    read_csv,
    read_json,
    read_matrix,
    write_csv,
    write_json,
    write_matrix,
)
from .vcd import (
    ActivityFormatError,
    BlockActivity,
    activities_from_floorplan,
    apply_activities,
    read_activity,
    write_activity,
)

__all__ = [
    "ActivityFormatError",
    "BlockActivity",
    "activities_from_floorplan",
    "apply_activities",
    "ascii_heatmap",
    "ascii_histogram",
    "ascii_series",
    "read_activity",
    "read_csv",
    "read_json",
    "read_matrix",
    "write_activity",
    "write_csv",
    "write_json",
    "write_matrix",
]
