"""Serialisation of experiment results to CSV and JSON.

The benchmark harness regenerates every table and figure of the paper as
rows / series; this module writes those results to disk so they can be
inspected, diffed against EXPERIMENTS.md and re-plotted outside this
environment.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

import numpy as np


class _NumpyJSONEncoder(json.JSONEncoder):
    """JSON encoder that understands NumPy scalars and arrays."""

    def default(self, obj: Any) -> Any:
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        return super().default(obj)


def write_json(data: Any, path: str | Path, indent: int = 2) -> Path:
    """Write ``data`` as JSON, transparently handling NumPy types."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as stream:
        json.dump(data, stream, indent=indent, cls=_NumpyJSONEncoder)
        stream.write("\n")
    return path


def read_json(path: str | Path) -> Any:
    """Read JSON previously written by :func:`write_json`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as stream:
        return json.load(stream)


def write_csv(
    rows: Iterable[Mapping[str, Any]], path: str | Path, fieldnames: Sequence[str] | None = None
) -> Path:
    """Write a sequence of dict rows to a CSV file.

    Args:
        rows: Row dictionaries; all keys become columns.
        path: Output path (parent directories are created).
        fieldnames: Column order; inferred from the first row when omitted.

    Raises:
        ValueError: If ``rows`` is empty and no fieldnames are given.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = list(rows)
    if fieldnames is None:
        if not rows:
            raise ValueError("cannot infer CSV columns from an empty row list")
        fieldnames = list(rows[0].keys())
    with path.open("w", encoding="utf-8", newline="") as stream:
        writer = csv.DictWriter(stream, fieldnames=list(fieldnames))
        writer.writeheader()
        for row in rows:
            writer.writerow({key: _to_plain(row.get(key)) for key in fieldnames})
    return path


def read_csv(path: str | Path) -> list[dict[str, str]]:
    """Read a CSV file into a list of string-valued dict rows."""
    path = Path(path)
    with path.open("r", encoding="utf-8", newline="") as stream:
        return [dict(row) for row in csv.DictReader(stream)]


def write_matrix(matrix: np.ndarray, path: str | Path, header: str | None = None) -> Path:
    """Write a 2-D array (e.g. an IR-drop map) as plain CSV numbers."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
    comments = f"# {header}\n" if header else ""
    with path.open("w", encoding="utf-8") as stream:
        stream.write(comments)
        np.savetxt(stream, matrix, delimiter=",", fmt="%.9g")
    return path


def read_matrix(path: str | Path) -> np.ndarray:
    """Read a matrix previously written by :func:`write_matrix`."""
    return np.atleast_2d(np.loadtxt(Path(path), delimiter=",", comments="#"))


def _to_plain(value: Any) -> Any:
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value
