"""Switching-activity files: a small VCD surrogate.

The paper derives the per-block switching current ``Id`` from the front-end
value-change dump (VCD) of the design.  Real VCD files (and the designs that
produce them) are not available offline, so this module defines a compact
text format that carries the same information — per-block toggle counts,
switched capacitance and clock frequency — and converts it to the switching
current used as a model feature via the standard dynamic-power relation
``I = alpha * C * V * f``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from ..grid.floorplan import Floorplan

_HEADER = "# repro switching activity v1"


@dataclass(frozen=True)
class BlockActivity:
    """Switching activity of one functional block.

    Attributes:
        block: Block name.
        toggle_rate: Average toggle (activity) factor ``alpha`` in [0, 1].
        capacitance: Total switched capacitance of the block in farads.
        frequency: Clock frequency in hertz.
    """

    block: str
    toggle_rate: float
    capacitance: float
    frequency: float

    def __post_init__(self) -> None:
        if not 0 <= self.toggle_rate <= 1:
            raise ValueError("toggle_rate must be in [0, 1]")
        if self.capacitance < 0:
            raise ValueError("capacitance must be non-negative")
        if self.frequency < 0:
            raise ValueError("frequency must be non-negative")

    def switching_current(self, vdd: float) -> float:
        """Average switching current ``alpha * C * Vdd * f`` in amperes."""
        if vdd <= 0:
            raise ValueError("vdd must be positive")
        return self.toggle_rate * self.capacitance * vdd * self.frequency


class ActivityFormatError(ValueError):
    """Raised when a switching-activity file cannot be parsed."""


def write_activity(activities: Iterable[BlockActivity], path: str | Path) -> Path:
    """Write block activities to a switching-activity file.

    The format is one block per line: ``block toggle_rate capacitance
    frequency``, preceded by a version header.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as stream:
        stream.write(_HEADER + "\n")
        stream.write("# block toggle_rate capacitance_farad frequency_hz\n")
        for activity in activities:
            stream.write(
                f"{activity.block} {activity.toggle_rate:.6g} "
                f"{activity.capacitance:.6g} {activity.frequency:.6g}\n"
            )
    return path


def read_activity(path: str | Path) -> list[BlockActivity]:
    """Read block activities from a switching-activity file.

    Raises:
        ActivityFormatError: If the header is missing or a line is malformed.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as stream:
        lines = stream.read().splitlines()
    if not lines or lines[0].strip() != _HEADER:
        raise ActivityFormatError(f"{path} is not a switching-activity file")
    activities: list[BlockActivity] = []
    for line_no, raw in enumerate(lines[1:], start=2):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        if len(tokens) != 4:
            raise ActivityFormatError(f"line {line_no}: expected 4 fields, got {len(tokens)}")
        try:
            activities.append(
                BlockActivity(
                    block=tokens[0],
                    toggle_rate=float(tokens[1]),
                    capacitance=float(tokens[2]),
                    frequency=float(tokens[3]),
                )
            )
        except ValueError as exc:
            raise ActivityFormatError(f"line {line_no}: {exc}") from exc
    return activities


def activities_from_floorplan(
    floorplan: Floorplan,
    vdd: float,
    frequency: float = 1e9,
    toggle_rate: float = 0.2,
) -> list[BlockActivity]:
    """Back-derive plausible activities from a floorplan's block currents.

    Given the block's switching current, the capacitance that reproduces it
    at the specified toggle rate and clock frequency is computed; writing and
    re-reading the resulting file therefore round-trips the switching
    currents exactly, which is what the tests verify.
    """
    if vdd <= 0 or frequency <= 0:
        raise ValueError("vdd and frequency must be positive")
    if not 0 < toggle_rate <= 1:
        raise ValueError("toggle_rate must be in (0, 1]")
    activities = []
    for block in floorplan.iter_blocks():
        capacitance = block.switching_current / (toggle_rate * vdd * frequency)
        activities.append(
            BlockActivity(
                block=block.name,
                toggle_rate=toggle_rate,
                capacitance=capacitance,
                frequency=frequency,
            )
        )
    return activities


def apply_activities(
    floorplan: Floorplan, activities: Iterable[BlockActivity], vdd: float, name: str | None = None
) -> Floorplan:
    """Return a floorplan whose block currents follow the given activities.

    Blocks not mentioned keep their existing switching current.

    Raises:
        KeyError: If an activity refers to a block that does not exist.
    """
    currents = {activity.block: activity.switching_current(vdd) for activity in activities}
    return floorplan.with_block_currents(currents, name=name)
