"""Construction of mesh power grids from a floorplan and per-line widths.

The grid builder turns a :class:`~repro.grid.floorplan.Floorplan` plus a
width assignment for every power-grid line (stripe) into a flat resistive
:class:`~repro.grid.network.PowerGridNetwork`:

* vertical stripes on the technology's vertical layer, horizontal stripes on
  the horizontal layer, connected by via resistors at every crossing;
* the switching current of every functional block is distributed over the
  grid nodes that cover the block;
* every power pad of the floorplan is snapped to the nearest grid node and
  attached through an ideal voltage source.

The builder is used both by the conventional iterative planner (which calls
it once per sizing iteration) and by the synthetic benchmark generator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .elements import CurrentSource, GridNode, Resistor, VoltageSource
from .floorplan import Floorplan
from .network import PowerGridNetwork
from .netlist import node_name
from .technology import Technology


@dataclass(frozen=True)
class GridTopology:
    """Topology of a mesh power grid: number and position of the stripes.

    Attributes:
        num_vertical: Number of vertical power-grid lines (stripes).
        num_horizontal: Number of horizontal power-grid lines.
        vertical_positions: X coordinate of each vertical line, in um.
        horizontal_positions: Y coordinate of each horizontal line, in um.
    """

    num_vertical: int
    num_horizontal: int
    vertical_positions: tuple[float, ...]
    horizontal_positions: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.num_vertical < 2 or self.num_horizontal < 2:
            raise ValueError("a mesh grid needs at least 2 lines per direction")
        if len(self.vertical_positions) != self.num_vertical:
            raise ValueError("vertical_positions length mismatch")
        if len(self.horizontal_positions) != self.num_horizontal:
            raise ValueError("horizontal_positions length mismatch")

    @property
    def num_lines(self) -> int:
        """Total number of power-grid lines (vertical + horizontal)."""
        return self.num_vertical + self.num_horizontal

    def line_position(self, line_id: int) -> float:
        """Return the coordinate of a line: x for vertical, y for horizontal.

        Line ids ``0 .. num_vertical-1`` are vertical lines; the remaining
        ids are horizontal lines.
        """
        if line_id < 0 or line_id >= self.num_lines:
            raise IndexError(f"line id {line_id} out of range")
        if line_id < self.num_vertical:
            return self.vertical_positions[line_id]
        return self.horizontal_positions[line_id - self.num_vertical]

    def is_vertical(self, line_id: int) -> bool:
        """Return True if ``line_id`` denotes a vertical line."""
        if line_id < 0 or line_id >= self.num_lines:
            raise IndexError(f"line id {line_id} out of range")
        return line_id < self.num_vertical


def uniform_topology(floorplan: Floorplan, num_vertical: int, num_horizontal: int) -> GridTopology:
    """Build a uniformly pitched topology covering the floorplan core.

    Lines are placed at equal pitch with a half-pitch margin from the core
    edges, which matches how power stripes are typically laid out over a
    core ring.
    """
    if num_vertical < 2 or num_horizontal < 2:
        raise ValueError("a mesh grid needs at least 2 lines per direction")
    xs = np.linspace(0.0, floorplan.core_width, num_vertical + 1)
    ys = np.linspace(0.0, floorplan.core_height, num_horizontal + 1)
    vertical = tuple(float(x) for x in (xs[:-1] + xs[1:]) / 2.0)
    horizontal = tuple(float(y) for y in (ys[:-1] + ys[1:]) / 2.0)
    return GridTopology(
        num_vertical=num_vertical,
        num_horizontal=num_horizontal,
        vertical_positions=vertical,
        horizontal_positions=horizontal,
    )


class GridBuilder:
    """Build mesh :class:`PowerGridNetwork` instances from floorplans.

    Args:
        technology: Technology parameters (sheet resistances, via resistance,
            Vdd) used to convert geometry into electrical values.
    """

    def __init__(self, technology: Technology) -> None:
        self.technology = technology

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def build(
        self,
        floorplan: Floorplan,
        topology: GridTopology,
        widths: np.ndarray | list[float] | float,
        name: str | None = None,
    ) -> PowerGridNetwork:
        """Build the power-grid network.

        Args:
            floorplan: Floorplan providing core size, blocks and pads.
            topology: Stripe topology (counts and positions).
            widths: Per-line width in um.  Either a scalar (uniform width) or
                a sequence of length ``topology.num_lines`` ordered as all
                vertical lines followed by all horizontal lines.
            name: Optional name for the resulting network; defaults to the
                floorplan name.

        Returns:
            A fully connected :class:`PowerGridNetwork` with loads and pads.

        Raises:
            ValueError: If the width vector has the wrong length or contains
                non-positive values.
        """
        width_vector = self._normalise_widths(topology, widths)
        network = PowerGridNetwork(name=name or floorplan.name, vdd=self.technology.vdd)

        v_layer = self.technology.vertical_layer
        h_layer = self.technology.horizontal_layer
        xs = topology.vertical_positions
        ys = topology.horizontal_positions

        # Crossing nodes: one node per (vertical line, horizontal line) pair
        # on each of the two layers, connected by a via.
        lower_names: dict[tuple[int, int], str] = {}
        upper_names: dict[tuple[int, int], str] = {}
        for i, x in enumerate(xs):
            for j, y in enumerate(ys):
                lower = node_name(1, x, y)
                upper = node_name(2, x, y)
                network.add_node(GridNode(name=lower, x=x, y=y, layer=v_layer.name))
                network.add_node(GridNode(name=upper, x=x, y=y, layer=h_layer.name))
                lower_names[(i, j)] = lower
                upper_names[(i, j)] = upper

        resistor_count = 0

        def next_resistor_name() -> str:
            nonlocal resistor_count
            resistor_count += 1
            return f"R{resistor_count}"

        # Vertical stripe segments (lower layer).
        for i, x in enumerate(xs):
            width = width_vector[i]
            for j in range(len(ys) - 1):
                length = ys[j + 1] - ys[j]
                resistance = v_layer.wire_resistance(length, width)
                network.add_resistor(
                    Resistor(
                        name=next_resistor_name(),
                        node_a=lower_names[(i, j)],
                        node_b=lower_names[(i, j + 1)],
                        resistance=resistance,
                        layer=v_layer.name,
                        width=width,
                        length=length,
                        line_id=i,
                    )
                )

        # Horizontal stripe segments (upper layer).
        for j, y in enumerate(ys):
            width = width_vector[topology.num_vertical + j]
            for i in range(len(xs) - 1):
                length = xs[i + 1] - xs[i]
                resistance = h_layer.wire_resistance(length, width)
                network.add_resistor(
                    Resistor(
                        name=next_resistor_name(),
                        node_a=upper_names[(i, j)],
                        node_b=upper_names[(i + 1, j)],
                        resistance=resistance,
                        layer=h_layer.name,
                        width=width,
                        length=length,
                        line_id=topology.num_vertical + j,
                    )
                )

        # Vias at every crossing.
        for (i, j), lower in lower_names.items():
            network.add_resistor(
                Resistor(
                    name=next_resistor_name(),
                    node_a=lower,
                    node_b=upper_names[(i, j)],
                    resistance=self.technology.via_resistance,
                    layer="VIA",
                )
            )

        self._attach_loads(network, floorplan, topology, lower_names)
        self._attach_pads(network, floorplan, topology, upper_names)
        return network

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _normalise_widths(
        self, topology: GridTopology, widths: np.ndarray | list[float] | float
    ) -> np.ndarray:
        if np.isscalar(widths):
            vector = np.full(topology.num_lines, float(widths))
        else:
            vector = np.asarray(widths, dtype=float)
        if vector.shape != (topology.num_lines,):
            raise ValueError(
                f"expected {topology.num_lines} widths, got shape {vector.shape}"
            )
        if np.any(vector <= 0):
            raise ValueError("all line widths must be positive")
        return vector

    def _nearest_index(self, positions: tuple[float, ...], value: float) -> int:
        array = np.asarray(positions)
        return int(np.argmin(np.abs(array - value)))

    def _attach_loads(
        self,
        network: PowerGridNetwork,
        floorplan: Floorplan,
        topology: GridTopology,
        lower_names: dict[tuple[int, int], str],
    ) -> None:
        """Distribute each block's switching current over covering grid nodes."""
        xs = np.asarray(topology.vertical_positions)
        ys = np.asarray(topology.horizontal_positions)
        load_count = 0
        for block in floorplan.iter_blocks():
            if block.switching_current <= 0:
                continue
            ix = np.where((xs >= block.x) & (xs <= block.x + block.width))[0]
            iy = np.where((ys >= block.y) & (ys <= block.y + block.height))[0]
            if ix.size == 0 or iy.size == 0:
                # Block smaller than the stripe pitch: snap to the nearest node.
                cx, cy = block.center
                ix = np.asarray([self._nearest_index(topology.vertical_positions, cx)])
                iy = np.asarray([self._nearest_index(topology.horizontal_positions, cy)])
            share = block.switching_current / (ix.size * iy.size)
            for i in ix:
                for j in iy:
                    load_count += 1
                    network.add_current_source(
                        CurrentSource(
                            name=f"I{load_count}",
                            node=lower_names[(int(i), int(j))],
                            current=share,
                            block=block.name,
                        )
                    )

    def _attach_pads(
        self,
        network: PowerGridNetwork,
        floorplan: Floorplan,
        topology: GridTopology,
        upper_names: dict[tuple[int, int], str],
    ) -> None:
        """Attach every power pad to its nearest upper-layer grid node."""
        pad_count = 0
        used_nodes: set[str] = set()
        for pad in floorplan.iter_pads():
            i = self._nearest_index(topology.vertical_positions, pad.x)
            j = self._nearest_index(topology.horizontal_positions, pad.y)
            node = upper_names[(i, j)]
            if node in used_nodes:
                continue
            used_nodes.add(node)
            pad_count += 1
            network.add_voltage_source(
                VoltageSource(name=f"V{pad_count}", node=node, voltage=pad.voltage)
            )
        if pad_count == 0:
            raise ValueError("floorplan has no power pads; the grid would be floating")
