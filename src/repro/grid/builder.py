"""Construction of mesh power grids from a floorplan and per-line widths.

The grid builder turns a :class:`~repro.grid.floorplan.Floorplan` plus a
width assignment for every power-grid line (stripe) into a flat resistive
:class:`~repro.grid.network.PowerGridNetwork`:

* vertical stripes on the technology's vertical layer, horizontal stripes on
  the horizontal layer, connected by via resistors at every crossing;
* the switching current of every functional block is distributed over the
  grid nodes that cover the block;
* every power pad of the floorplan is snapped to the nearest grid node and
  attached through an ideal voltage source.

The builder is used both by the conventional iterative planner (which calls
it once per sizing iteration) and by the synthetic benchmark generator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .compiled import CompiledGrid
from .elements import CurrentSource, GridNode, Resistor, VoltageSource
from .floorplan import Floorplan
from .netlist import node_name
from .network import PowerGridNetwork
from .technology import Technology


@dataclass(frozen=True)
class GridTopology:
    """Topology of a mesh power grid: number and position of the stripes.

    Attributes:
        num_vertical: Number of vertical power-grid lines (stripes).
        num_horizontal: Number of horizontal power-grid lines.
        vertical_positions: X coordinate of each vertical line, in um.
        horizontal_positions: Y coordinate of each horizontal line, in um.
    """

    num_vertical: int
    num_horizontal: int
    vertical_positions: tuple[float, ...]
    horizontal_positions: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.num_vertical < 2 or self.num_horizontal < 2:
            raise ValueError("a mesh grid needs at least 2 lines per direction")
        if len(self.vertical_positions) != self.num_vertical:
            raise ValueError("vertical_positions length mismatch")
        if len(self.horizontal_positions) != self.num_horizontal:
            raise ValueError("horizontal_positions length mismatch")

    @property
    def num_lines(self) -> int:
        """Total number of power-grid lines (vertical + horizontal)."""
        return self.num_vertical + self.num_horizontal

    def line_position(self, line_id: int) -> float:
        """Return the coordinate of a line: x for vertical, y for horizontal.

        Line ids ``0 .. num_vertical-1`` are vertical lines; the remaining
        ids are horizontal lines.
        """
        if line_id < 0 or line_id >= self.num_lines:
            raise IndexError(f"line id {line_id} out of range")
        if line_id < self.num_vertical:
            return self.vertical_positions[line_id]
        return self.horizontal_positions[line_id - self.num_vertical]

    def is_vertical(self, line_id: int) -> bool:
        """Return True if ``line_id`` denotes a vertical line."""
        if line_id < 0 or line_id >= self.num_lines:
            raise IndexError(f"line id {line_id} out of range")
        return line_id < self.num_vertical


def uniform_topology(floorplan: Floorplan, num_vertical: int, num_horizontal: int) -> GridTopology:
    """Build a uniformly pitched topology covering the floorplan core.

    Lines are placed at equal pitch with a half-pitch margin from the core
    edges, which matches how power stripes are typically laid out over a
    core ring.
    """
    if num_vertical < 2 or num_horizontal < 2:
        raise ValueError("a mesh grid needs at least 2 lines per direction")
    xs = np.linspace(0.0, floorplan.core_width, num_vertical + 1)
    ys = np.linspace(0.0, floorplan.core_height, num_horizontal + 1)
    vertical = tuple(float(x) for x in (xs[:-1] + xs[1:]) / 2.0)
    horizontal = tuple(float(y) for y in (ys[:-1] + ys[1:]) / 2.0)
    return GridTopology(
        num_vertical=num_vertical,
        num_horizontal=num_horizontal,
        vertical_positions=vertical,
        horizontal_positions=horizontal,
    )


class GridBuilder:
    """Build mesh :class:`PowerGridNetwork` instances from floorplans.

    Args:
        technology: Technology parameters (sheet resistances, via resistance,
            Vdd) used to convert geometry into electrical values.
    """

    def __init__(self, technology: Technology) -> None:
        self.technology = technology

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def build(
        self,
        floorplan: Floorplan,
        topology: GridTopology,
        widths: np.ndarray | list[float] | float,
        name: str | None = None,
    ) -> PowerGridNetwork:
        """Build the power-grid network.

        Args:
            floorplan: Floorplan providing core size, blocks and pads.
            topology: Stripe topology (counts and positions).
            widths: Per-line width in um.  Either a scalar (uniform width) or
                a sequence of length ``topology.num_lines`` ordered as all
                vertical lines followed by all horizontal lines.
            name: Optional name for the resulting network; defaults to the
                floorplan name.

        Returns:
            A fully connected :class:`PowerGridNetwork` with loads and pads.

        Raises:
            ValueError: If the width vector has the wrong length or contains
                non-positive values.
        """
        width_vector = self._normalise_widths(topology, widths)
        network = PowerGridNetwork(name=name or floorplan.name, vdd=self.technology.vdd)

        v_layer = self.technology.vertical_layer
        h_layer = self.technology.horizontal_layer
        xs = topology.vertical_positions
        ys = topology.horizontal_positions

        # Crossing nodes: one node per (vertical line, horizontal line) pair
        # on each of the two layers, connected by a via.
        lower_names: dict[tuple[int, int], str] = {}
        upper_names: dict[tuple[int, int], str] = {}
        for i, x in enumerate(xs):
            for j, y in enumerate(ys):
                lower = node_name(1, x, y)
                upper = node_name(2, x, y)
                network.add_node(GridNode(name=lower, x=x, y=y, layer=v_layer.name))
                network.add_node(GridNode(name=upper, x=x, y=y, layer=h_layer.name))
                lower_names[(i, j)] = lower
                upper_names[(i, j)] = upper

        resistor_count = 0

        def next_resistor_name() -> str:
            nonlocal resistor_count
            resistor_count += 1
            return f"R{resistor_count}"

        # Vertical stripe segments (lower layer).
        for i, x in enumerate(xs):
            width = width_vector[i]
            for j in range(len(ys) - 1):
                length = ys[j + 1] - ys[j]
                resistance = v_layer.wire_resistance(length, width)
                network.add_resistor(
                    Resistor(
                        name=next_resistor_name(),
                        node_a=lower_names[(i, j)],
                        node_b=lower_names[(i, j + 1)],
                        resistance=resistance,
                        layer=v_layer.name,
                        width=width,
                        length=length,
                        line_id=i,
                    )
                )

        # Horizontal stripe segments (upper layer).
        for j, y in enumerate(ys):
            width = width_vector[topology.num_vertical + j]
            for i in range(len(xs) - 1):
                length = xs[i + 1] - xs[i]
                resistance = h_layer.wire_resistance(length, width)
                network.add_resistor(
                    Resistor(
                        name=next_resistor_name(),
                        node_a=upper_names[(i, j)],
                        node_b=upper_names[(i + 1, j)],
                        resistance=resistance,
                        layer=h_layer.name,
                        width=width,
                        length=length,
                        line_id=topology.num_vertical + j,
                    )
                )

        # Vias at every crossing.
        for (i, j), lower in lower_names.items():
            network.add_resistor(
                Resistor(
                    name=next_resistor_name(),
                    node_a=lower,
                    node_b=upper_names[(i, j)],
                    resistance=self.technology.via_resistance,
                    layer="VIA",
                )
            )

        self._attach_loads(network, floorplan, topology, lower_names)
        self._attach_pads(network, floorplan, topology, upper_names)
        return network

    def build_compiled(
        self,
        floorplan: Floorplan,
        topology: GridTopology,
        widths: np.ndarray | list[float] | float,
        name: str | None = None,
    ) -> CompiledGrid:
        """Build the grid straight into its compiled array form.

        Produces exactly the grid :meth:`build` followed by
        :meth:`~repro.grid.network.PowerGridNetwork.compile` would — same
        node/resistor/load/pad ordering, bitwise-identical conductances and
        therefore the same topology fingerprint — but assembles the arrays
        with vectorised NumPy operations instead of an object graph of
        :class:`GridNode` / :class:`Resistor` dataclasses behind name-keyed
        dicts.  This is the planner's construction fast path; name-keyed
        views of the result are synthesised lazily on demand.

        Args:
            floorplan: Floorplan providing core size, blocks and pads.
            topology: Stripe topology (counts and positions).
            widths: Per-line width in um (scalar or per-line vector).
            name: Optional name for the grid; defaults to the floorplan name.

        Raises:
            ValueError: If the width vector is malformed, a stripe pitch is
                negative, the via resistance is not positive, or the
                floorplan has no power pads.
        """
        width_vector = self._normalise_widths(topology, widths)
        v_layer = self.technology.vertical_layer
        h_layer = self.technology.horizontal_layer
        if self.technology.via_resistance <= 0:
            raise ValueError("via resistance must be positive to build a mesh grid")
        xs = np.asarray(topology.vertical_positions, dtype=float)
        ys = np.asarray(topology.horizontal_positions, dtype=float)
        nx, ny = len(xs), len(ys)
        v_pitch = np.diff(ys)
        h_pitch = np.diff(xs)
        if np.any(v_pitch < 0) or np.any(h_pitch < 0):
            raise ValueError("stripe positions must be non-decreasing")

        # Node layout mirrors build(): for each (vertical i, horizontal j)
        # crossing, the lower-layer node then the upper-layer node, with i
        # as the outer loop.  index(lower(i, j)) = 2 * (i * ny + j).
        num_nodes = 2 * nx * ny
        pair_x = np.repeat(xs, ny)
        pair_y = np.tile(ys, nx)
        node_x = np.repeat(pair_x, 2)
        node_y = np.repeat(pair_y, 2)
        node_layer_index = np.tile(np.asarray([1, 2], dtype=np.int8), nx * ny)

        # Vertical stripe segments (lower layer), i outer / j inner.
        v_i = np.repeat(np.arange(nx), ny - 1)
        v_j = np.tile(np.arange(ny - 1), nx)
        va = 2 * (v_i * ny + v_j)
        vb = va + 2
        v_length = np.tile(v_pitch, nx)
        v_width = np.repeat(width_vector[:nx], ny - 1)
        v_resistance = v_layer.sheet_resistance * v_length / v_width

        # Horizontal stripe segments (upper layer), j outer / i inner.
        h_j = np.repeat(np.arange(ny), nx - 1)
        h_i = np.tile(np.arange(nx - 1), ny)
        ha = 2 * (h_i * ny + h_j) + 1
        hb = ha + 2 * ny
        h_length = np.tile(h_pitch, ny)
        h_width = np.repeat(width_vector[nx:], nx - 1)
        h_resistance = h_layer.sheet_resistance * h_length / h_width

        # Vias at every crossing, i outer / j inner.
        via_a = 2 * np.arange(nx * ny)
        via_b = via_a + 1
        num_vias = nx * ny

        res_a = np.concatenate((va, ha, via_a))
        res_b = np.concatenate((vb, hb, via_b))
        conductance = np.concatenate(
            (
                1.0 / v_resistance,
                1.0 / h_resistance,
                np.full(num_vias, 1.0 / self.technology.via_resistance),
            )
        )
        res_width = np.concatenate((v_width, h_width, np.zeros(num_vias)))
        res_length = np.concatenate((v_length, h_length, np.zeros(num_vias)))
        res_line_id = np.concatenate(
            (v_i, topology.num_vertical + h_j, np.full(num_vias, -1, dtype=np.int64))
        )
        res_layer_codes = np.concatenate(
            (
                np.zeros(len(va), dtype=np.int8),
                np.ones(len(ha), dtype=np.int8),
                np.full(num_vias, 2, dtype=np.int8),
            )
        )

        load_node, load_current, load_block = self._compiled_loads(floorplan, topology, xs, ys, ny)
        pad_node, pad_voltage_values = self._compiled_pads(floorplan, xs, ys, ny)

        return CompiledGrid.from_arrays(
            name=name or floorplan.name,
            vdd=self.technology.vdd,
            num_nodes=num_nodes,
            node_x=node_x,
            node_y=node_y,
            node_layer_index=node_layer_index,
            res_a=res_a,
            res_b=res_b,
            conductance=conductance,
            res_width=res_width,
            res_length=res_length,
            res_line_id=res_line_id,
            res_layer_codes=res_layer_codes,
            res_layer_names=(v_layer.name, h_layer.name, "VIA"),
            pad_node=pad_node,
            pad_voltage_values=pad_voltage_values,
            load_node=load_node,
            load_current=load_current,
            load_block=load_block,
        )

    def resize_compiled(
        self,
        compiled: CompiledGrid,
        topology: GridTopology,
        widths: np.ndarray | list[float] | float,
    ) -> CompiledGrid:
        """Re-size the stripes of a compiled grid without rebuilding it.

        Only the conductances and drawn widths of the stripe segments
        change; vias, topology, loads and pads are shared with ``compiled``
        via :meth:`CompiledGrid.with_conductances`.  The result is
        bitwise-identical (same fingerprint) to ``build_compiled`` called
        with the new widths.

        Args:
            compiled: A grid previously built for the same topology.
            topology: The stripe topology the grid was built from.
            widths: New per-line widths in um.
        """
        width_vector = self._normalise_widths(topology, widths)
        segment = compiled.res_line_id >= 0
        line = compiled.res_line_id[segment]
        sheet_resistance = np.where(
            line < topology.num_vertical,
            self.technology.vertical_layer.sheet_resistance,
            self.technology.horizontal_layer.sheet_resistance,
        )
        resistance = sheet_resistance * compiled.res_length[segment] / width_vector[line]
        conductance = compiled.conductance.copy()
        conductance[segment] = 1.0 / resistance
        res_width = compiled.res_width.copy()
        res_width[segment] = width_vector[line]
        return compiled.with_conductances(conductance, res_width=res_width)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _compiled_loads(
        self,
        floorplan: Floorplan,
        topology: GridTopology,
        xs: np.ndarray,
        ys: np.ndarray,
        ny: int,
    ) -> tuple[np.ndarray, np.ndarray, tuple[str, ...]]:
        """Vectorised twin of :meth:`_attach_loads` (same source ordering)."""
        nodes: list[np.ndarray] = []
        currents: list[np.ndarray] = []
        blocks: list[str] = []
        for block in floorplan.iter_blocks():
            if block.switching_current <= 0:
                continue
            ix = np.where((xs >= block.x) & (xs <= block.x + block.width))[0]
            iy = np.where((ys >= block.y) & (ys <= block.y + block.height))[0]
            if ix.size == 0 or iy.size == 0:
                # Block smaller than the stripe pitch: snap to the nearest node.
                cx, cy = block.center
                ix = np.asarray([int(np.argmin(np.abs(xs - cx)))])
                iy = np.asarray([int(np.argmin(np.abs(ys - cy)))])
            share = block.switching_current / (ix.size * iy.size)
            block_nodes = (2 * (ix[:, None] * ny + iy[None, :])).ravel()
            nodes.append(block_nodes)
            currents.append(np.full(block_nodes.size, share))
            blocks.extend([block.name] * block_nodes.size)
        if not nodes:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=float),
                (),
            )
        return (
            np.concatenate(nodes).astype(np.int64, copy=False),
            np.concatenate(currents),
            tuple(blocks),
        )

    def _compiled_pads(
        self, floorplan: Floorplan, xs: np.ndarray, ys: np.ndarray, ny: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised twin of :meth:`_attach_pads` (keep-first node dedupe)."""
        pads = list(floorplan.iter_pads())
        if not pads:
            raise ValueError("floorplan has no power pads; the grid would be floating")
        pad_x = np.fromiter((pad.x for pad in pads), dtype=float, count=len(pads))
        pad_y = np.fromiter((pad.y for pad in pads), dtype=float, count=len(pads))
        pad_v = np.fromiter((pad.voltage for pad in pads), dtype=float, count=len(pads))
        i = np.argmin(np.abs(xs[None, :] - pad_x[:, None]), axis=1)
        j = np.argmin(np.abs(ys[None, :] - pad_y[:, None]), axis=1)
        node = 2 * (i * ny + j) + 1
        _, first = np.unique(node, return_index=True)
        keep = np.sort(first)
        return node[keep].astype(np.int64, copy=False), pad_v[keep]

    def _normalise_widths(
        self, topology: GridTopology, widths: np.ndarray | list[float] | float
    ) -> np.ndarray:
        if np.isscalar(widths):
            vector = np.full(topology.num_lines, float(widths))
        else:
            vector = np.asarray(widths, dtype=float)
        if vector.shape != (topology.num_lines,):
            raise ValueError(
                f"expected {topology.num_lines} widths, got shape {vector.shape}"
            )
        if np.any(vector <= 0):
            raise ValueError("all line widths must be positive")
        return vector

    def _nearest_index(self, positions: tuple[float, ...], value: float) -> int:
        array = np.asarray(positions)
        return int(np.argmin(np.abs(array - value)))

    def _attach_loads(
        self,
        network: PowerGridNetwork,
        floorplan: Floorplan,
        topology: GridTopology,
        lower_names: dict[tuple[int, int], str],
    ) -> None:
        """Distribute each block's switching current over covering grid nodes."""
        xs = np.asarray(topology.vertical_positions)
        ys = np.asarray(topology.horizontal_positions)
        load_count = 0
        for block in floorplan.iter_blocks():
            if block.switching_current <= 0:
                continue
            ix = np.where((xs >= block.x) & (xs <= block.x + block.width))[0]
            iy = np.where((ys >= block.y) & (ys <= block.y + block.height))[0]
            if ix.size == 0 or iy.size == 0:
                # Block smaller than the stripe pitch: snap to the nearest node.
                cx, cy = block.center
                ix = np.asarray([self._nearest_index(topology.vertical_positions, cx)])
                iy = np.asarray([self._nearest_index(topology.horizontal_positions, cy)])
            share = block.switching_current / (ix.size * iy.size)
            for i in ix:
                for j in iy:
                    load_count += 1
                    network.add_current_source(
                        CurrentSource(
                            name=f"I{load_count}",
                            node=lower_names[(int(i), int(j))],
                            current=share,
                            block=block.name,
                        )
                    )

    def _attach_pads(
        self,
        network: PowerGridNetwork,
        floorplan: Floorplan,
        topology: GridTopology,
        upper_names: dict[tuple[int, int], str],
    ) -> None:
        """Attach every power pad to its nearest upper-layer grid node."""
        pad_count = 0
        used_nodes: set[str] = set()
        for pad in floorplan.iter_pads():
            i = self._nearest_index(topology.vertical_positions, pad.x)
            j = self._nearest_index(topology.horizontal_positions, pad.y)
            node = upper_names[(i, j)]
            if node in used_nodes:
                continue
            used_nodes.add(node)
            pad_count += 1
            network.add_voltage_source(
                VoltageSource(name=f"V{pad_count}", node=node, voltage=pad.voltage)
            )
        if pad_count == 0:
            raise ValueError("floorplan has no power pads; the grid would be floating")
