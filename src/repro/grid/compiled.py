"""Array-backed, analysis-ready representation of a power grid.

:class:`PowerGridNetwork` is optimised for incremental construction: every
element lives in a string-keyed dict and refers to its terminals by node
name.  That representation is convenient to build but slow to analyse — the
MNA assembly used to walk those dicts element by element for every solve.

:class:`CompiledGrid` is the analysis-side counterpart: integer-indexed
arrays (resistor endpoints, branch conductances, pad mask, load incidence)
from which the reduced nodal system is assembled with vectorised COO→CSR
operations.  A compiled grid is created in one of three ways:

* :func:`compile_grid` / :meth:`PowerGridNetwork.compile` — a single pass
  over an object-level network;
* :meth:`CompiledGrid.from_arrays` — direct array construction without any
  intermediate object graph (used by
  :meth:`~repro.grid.builder.GridBuilder.build_compiled`, which assembles
  mesh grids straight from the floorplan with vectorised NumPy ops);
* :meth:`CompiledGrid.with_conductances` — a value-only update that reuses
  the frozen topology, index maps and COO→CSR sparsity pattern of an
  existing compiled grid, which is what lets a planner resize iteration
  skip the full rebuild-and-recompile round trip.

The compiled form also exposes a **topology fingerprint** that identifies
the reduced conductance matrix: two grids with the same fingerprint share
the same matrix (pad voltages and load currents only enter the right-hand
side), which is what lets
:class:`~repro.analysis.engine.BatchedAnalysisEngine` reuse one sparse
factorization across thousands of load scenarios.

Name-keyed views (node names, :class:`Resistor` objects, source names) are
materialised lazily: array-built grids only pay for them when a consumer —
netlist export, EM violation reporting, result dictionaries — actually asks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np
import scipy.sparse as sp

from .elements import GROUND_NODE, CurrentSource, Resistor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import PowerGridNetwork

_GROUND_INDEX = -1
"""Endpoint index used for the implicit ground node."""

_VALUE_DEPENDENT_STATE = frozenset(
    {
        "conductance",
        "res_width",
        "_resistors_eager",
        # cached_property results that depend on the conductance values:
        "reduced_matrix",
        "pad_rhs",
        "pad_incidence",
        "fingerprint",
        "resistors",
        # update provenance is per-clone, never inherited:
        "update_base_fingerprint",
        "update_indices",
    }
)
"""Attributes :meth:`CompiledGrid.with_conductances` must not share."""


@dataclass(frozen=True)
class _SparsityPattern:
    """Frozen COO→CSR mapping of the reduced-matrix stamps.

    Computed once per grid topology and shared across every
    :meth:`CompiledGrid.with_conductances` clone: ``rank[s]`` is the CSR
    data position of stamp ``s``, so a conductance update refreshes the
    matrix with one ``bincount`` instead of a full COO→CSR conversion.
    """

    size: int
    nnz: int
    indptr: np.ndarray
    indices: np.ndarray
    rank: np.ndarray

    @classmethod
    def build(cls, rows: np.ndarray, cols: np.ndarray, size: int) -> "_SparsityPattern":
        if rows.size == 0:
            return cls(
                size=size,
                nnz=0,
                indptr=np.zeros(size + 1, dtype=np.int64),
                indices=np.zeros(0, dtype=np.int64),
                rank=np.zeros(0, dtype=np.int64),
            )
        order = np.lexsort((cols, rows))
        sorted_rows = rows[order]
        sorted_cols = cols[order]
        first = np.empty(order.size, dtype=bool)
        first[0] = True
        first[1:] = (sorted_rows[1:] != sorted_rows[:-1]) | (sorted_cols[1:] != sorted_cols[:-1])
        group = np.cumsum(first) - 1
        rank = np.empty(order.size, dtype=np.int64)
        rank[order] = group
        nnz = int(group[-1]) + 1
        counts = np.bincount(sorted_rows[first], minlength=size)
        indptr = np.zeros(size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(size=size, nnz=nnz, indptr=indptr, indices=sorted_cols[first], rank=rank)

    def assemble(self, data: np.ndarray) -> sp.csr_matrix:
        """Sum duplicate stamps into CSR data positions and wrap as CSR."""
        values = np.bincount(self.rank, weights=data, minlength=self.nnz)
        return sp.csr_matrix(
            (values, self.indices, self.indptr), shape=(self.size, self.size)
        )


class CompiledGrid:
    """Array-backed, analysis-ready form of a power grid.

    Instances are treated as immutable: all arrays are derived once and
    never written to afterwards (:meth:`with_conductances` returns a new
    instance sharing the frozen topology).

    Attributes:
        name: Name of the source network.
        vdd: Nominal supply voltage of the source network.
        node_x: Per-node X coordinate in um (0 when unknown).
        node_y: Per-node Y coordinate in um.
        res_a: Resistor first-endpoint node indices (``-1`` for ground).
        res_b: Resistor second-endpoint node indices (``-1`` for ground).
        conductance: Per-resistor branch conductance in siemens.
        res_width: Per-resistor drawn width in um (0 for vias).
        res_length: Per-resistor segment length in um (0 for vias).
        res_line_id: Per-resistor power-grid line id (-1 for vias).
        is_pad: Boolean mask over nodes marking supply-pad nodes.
        pad_voltage: Per-node pad voltage (0 for non-pad nodes).  When
            several pads share a node, the last added pad wins, matching the
            legacy assembler.
        pad_node: Per-pad node index, in insertion order.
        pad_voltage_values: Per-pad voltage, aligned with ``pad_node``.
        base_loads: Per-node total load current in amperes.
        load_node: Per-current-source node index, in insertion order.
        load_current: Per-current-source nominal current, aligned with
            ``load_node``.
        load_block: Per-current-source functional-block name ("" when the
            source is not tied to a block).
    """

    def __init__(self, network: "PowerGridNetwork") -> None:
        self.name = network.name
        self.vdd = network.vdd
        names = tuple(network.nodes)
        self._node_names_eager: tuple[str, ...] | None = names
        self._node_layer_index: np.ndarray | None = None
        index = {name: i for i, name in enumerate(names)}
        self.__dict__["node_index"] = index
        n = len(names)
        nodes = network.nodes
        self.node_x = np.fromiter((nodes[name].x for name in names), dtype=float, count=n)
        self.node_y = np.fromiter((nodes[name].y for name in names), dtype=float, count=n)

        resistors = tuple(network.iter_resistors())
        self._resistors_eager: tuple[Resistor, ...] | None = resistors
        self._res_layer_codes: np.ndarray | None = None
        self._res_layer_names: tuple[str, ...] = ()
        m = len(resistors)
        self.res_a = np.fromiter(
            (index.get(r.node_a, _GROUND_INDEX) for r in resistors), dtype=np.int64, count=m
        )
        self.res_b = np.fromiter(
            (index.get(r.node_b, _GROUND_INDEX) for r in resistors), dtype=np.int64, count=m
        )
        self.conductance = np.fromiter(
            (1.0 / r.resistance for r in resistors), dtype=float, count=m
        )
        self.res_width = np.fromiter((r.width for r in resistors), dtype=float, count=m)
        self.res_length = np.fromiter((r.length for r in resistors), dtype=float, count=m)
        self.res_line_id = np.fromiter((r.line_id for r in resistors), dtype=np.int64, count=m)

        pads = tuple(network.iter_pads())
        self._pad_names_eager: tuple[str, ...] | None = tuple(pad.name for pad in pads)
        self.pad_node = np.fromiter(
            (index[pad.node] for pad in pads), dtype=np.int64, count=len(pads)
        )
        self.pad_voltage_values = np.fromiter(
            (pad.voltage for pad in pads), dtype=float, count=len(pads)
        )

        sources = tuple(network.iter_loads())
        self._load_names_eager: tuple[str, ...] | None = tuple(s.name for s in sources)
        self.load_block: tuple[str, ...] = tuple(s.block for s in sources)
        self.load_node = np.fromiter(
            (index[s.node] for s in sources), dtype=np.int64, count=len(sources)
        )
        self.load_current = np.fromiter(
            (s.current for s in sources), dtype=float, count=len(sources)
        )

        # Network-built grids keep the legacy scipy COO→CSR assembly for the
        # first matrix; array-built grids and conductance-update clones use
        # the shared sparsity pattern.
        self._use_pattern_assembly = False
        self._finalize(n)

    # ------------------------------------------------------------------
    # Alternative constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        *,
        name: str,
        vdd: float,
        num_nodes: int,
        node_x: np.ndarray,
        node_y: np.ndarray,
        node_layer_index: np.ndarray | None,
        res_a: np.ndarray,
        res_b: np.ndarray,
        conductance: np.ndarray,
        res_width: np.ndarray,
        res_length: np.ndarray,
        res_line_id: np.ndarray,
        res_layer_codes: np.ndarray | None = None,
        res_layer_names: tuple[str, ...] = (),
        pad_node: np.ndarray,
        pad_voltage_values: np.ndarray,
        load_node: np.ndarray,
        load_current: np.ndarray,
        load_block: tuple[str, ...] = (),
    ) -> "CompiledGrid":
        """Build a compiled grid directly from arrays (no object graph).

        All name-keyed views (node names, resistor objects, source names)
        are synthesised lazily on first access; ``node_layer_index`` (1 for
        the lower layer, 2 for the upper) drives the IBM-style node-name
        synthesis and may be omitted when names are never needed.
        """
        self = object.__new__(cls)
        self.name = name
        self.vdd = float(vdd)
        self._node_names_eager = None
        self._node_layer_index = node_layer_index
        self.node_x = np.asarray(node_x, dtype=float)
        self.node_y = np.asarray(node_y, dtype=float)
        self._resistors_eager = None
        self._res_layer_codes = res_layer_codes
        self._res_layer_names = res_layer_names
        self.res_a = np.asarray(res_a, dtype=np.int64)
        self.res_b = np.asarray(res_b, dtype=np.int64)
        self.conductance = np.asarray(conductance, dtype=float)
        self.res_width = np.asarray(res_width, dtype=float)
        self.res_length = np.asarray(res_length, dtype=float)
        self.res_line_id = np.asarray(res_line_id, dtype=np.int64)
        self._pad_names_eager = None
        self.pad_node = np.asarray(pad_node, dtype=np.int64)
        self.pad_voltage_values = np.asarray(pad_voltage_values, dtype=float)
        self._load_names_eager = None
        self.load_block = load_block
        self.load_node = np.asarray(load_node, dtype=np.int64)
        self.load_current = np.asarray(load_current, dtype=float)
        self._use_pattern_assembly = True
        self._finalize(num_nodes)
        return self

    def with_conductances(
        self, conductance: np.ndarray, res_width: np.ndarray | None = None
    ) -> "CompiledGrid":
        """Return a copy with new branch conductances on the same topology.

        The clone shares every frozen topology structure — endpoint arrays,
        index maps, branch classification, the COO→CSR sparsity pattern and
        the topology part of the fingerprint — so only the value-dependent
        pieces (matrix data, pad RHS, fingerprint digest) are recomputed.
        This is the planner's resize fast path: a width change becomes a
        pure array update instead of a network rebuild plus full recompile.

        The clone also records its **update provenance** — the parent's
        fingerprint in :attr:`update_base_fingerprint` and the changed
        branch indices in :attr:`update_indices` — which is what lets the
        analysis engine serve the clone with a low-rank incremental update
        of the parent's cached factorization instead of a fresh one (only
        the strings and index arrays are kept, never the parent object, so
        clone chains do not pin their ancestors in memory).

        Args:
            conductance: New per-resistor conductances in siemens.
            res_width: Optional new per-resistor drawn widths (used by the
                EM checker); the previous widths are kept when omitted.

        Raises:
            ValueError: On shape mismatch or non-positive conductances.
        """
        conductance = np.asarray(conductance, dtype=float)
        if conductance.shape != (self.num_resistors,):
            raise ValueError(
                f"expected {self.num_resistors} conductances, got shape {conductance.shape}"
            )
        if np.any(conductance <= 0):
            raise ValueError("all branch conductances must be positive")
        if res_width is not None:
            res_width = np.asarray(res_width, dtype=float)
            if res_width.shape != (self.num_resistors,):
                raise ValueError(
                    f"expected {self.num_resistors} widths, got shape {res_width.shape}"
                )
        # Network-built grids carry layer information only inside their
        # eager Resistor tuple; snapshot the shareable name/layer views once
        # so clones can still materialise resistors lazily.
        if self._res_layer_codes is None and self._resistors_eager is not None:
            self.res_names
            self.res_layers
        self._topology_digest  # ensure the shared prefix digest exists
        clone = object.__new__(CompiledGrid)
        clone.__dict__.update(
            {k: v for k, v in self.__dict__.items() if k not in _VALUE_DEPENDENT_STATE}
        )
        clone.conductance = conductance
        clone.res_width = self.res_width if res_width is None else res_width
        clone._resistors_eager = None
        clone._use_pattern_assembly = True
        clone.update_base_fingerprint = self.fingerprint
        clone.update_indices = np.flatnonzero(conductance != self.conductance)
        return clone

    # ------------------------------------------------------------------
    # Shared finalisation (reduced-system bookkeeping)
    # ------------------------------------------------------------------
    def _finalize(self, num_nodes: int) -> None:
        n = num_nodes
        self._num_nodes = n
        self.is_pad = np.zeros(n, dtype=bool)
        self.pad_voltage = np.zeros(n, dtype=float)
        if self.pad_node.size:
            self.is_pad[self.pad_node] = True
            # Fancy assignment resolves duplicate pad nodes last-wins,
            # matching the legacy assembler's iteration order.
            self.pad_voltage[self.pad_node] = self.pad_voltage_values

        self.base_loads = (
            np.bincount(self.load_node, weights=self.load_current, minlength=n)
            if self.load_node.size
            else np.zeros(n, dtype=float)
        )

        # Unknown (non-pad) nodes keep their relative insertion order,
        # exactly like the legacy assembler.
        self.unknown_sel = np.flatnonzero(~self.is_pad)
        self.unknown_index = np.full(n, _GROUND_INDEX, dtype=np.int64)
        self.unknown_index[self.unknown_sel] = np.arange(len(self.unknown_sel))
        self._classify_branches()
        self._pattern_box: list[_SparsityPattern | None] = [None]
        # Update provenance (set by with_conductances on its clones).
        self.update_base_fingerprint: str | None = None
        self.update_indices: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of grid nodes (excluding the implicit ground)."""
        return self._num_nodes

    @property
    def num_resistors(self) -> int:
        """Number of resistive branches."""
        return len(self.res_a)

    @property
    def num_unknowns(self) -> int:
        """Number of unknown (non-pad) node voltages in the reduced system."""
        return len(self.unknown_sel)

    # ------------------------------------------------------------------
    # Lazily materialised name-keyed views
    # ------------------------------------------------------------------
    @cached_property
    def node_names(self) -> tuple[str, ...]:
        """All node names in insertion order (synthesised when array-built)."""
        if self._node_names_eager is not None:
            return self._node_names_eager
        if self._node_layer_index is None:
            return tuple(f"n{i}" for i in range(self.num_nodes))
        from .netlist import node_name  # deferred: netlist imports network

        return tuple(
            node_name(int(layer), float(x), float(y))
            for layer, x, y in zip(self._node_layer_index, self.node_x, self.node_y)
        )

    @cached_property
    def node_index(self) -> dict[str, int]:
        """Node-name → array-index mapping."""
        return {name: i for i, name in enumerate(self.node_names)}

    @cached_property
    def unknown_nodes(self) -> tuple[str, ...]:
        """Names of the unknown nodes, in reduced-system row order."""
        names = self.node_names
        return tuple(names[i] for i in self.unknown_sel)

    @cached_property
    def res_names(self) -> tuple[str, ...]:
        """Per-resistor element names (``R1``, ``R2``, ... when synthesised)."""
        if self._resistors_eager is not None:
            return tuple(r.name for r in self._resistors_eager)
        return tuple(f"R{i + 1}" for i in range(self.num_resistors))

    @cached_property
    def res_layers(self) -> tuple[str, ...]:
        """Per-resistor layer names."""
        if self._resistors_eager is not None:
            return tuple(r.layer for r in self._resistors_eager)
        if self._res_layer_codes is None:
            return ("",) * self.num_resistors
        names = self._res_layer_names
        return tuple(names[code] for code in self._res_layer_codes)

    @cached_property
    def resistors(self) -> tuple[Resistor, ...]:
        """The resistive branches as :class:`Resistor` objects.

        Array-built grids materialise the objects on first access; the hot
        analysis paths never touch them.
        """
        if self._resistors_eager is not None:
            return self._resistors_eager
        names = self.res_names
        layers = self.res_layers
        node_names = self.node_names
        return tuple(
            Resistor(
                name=names[i],
                node_a=GROUND_NODE if self.res_a[i] == _GROUND_INDEX else node_names[self.res_a[i]],
                node_b=GROUND_NODE if self.res_b[i] == _GROUND_INDEX else node_names[self.res_b[i]],
                resistance=1.0 / float(self.conductance[i]),
                layer=layers[i],
                width=float(self.res_width[i]),
                length=float(self.res_length[i]),
                line_id=int(self.res_line_id[i]),
            )
            for i in range(self.num_resistors)
        )

    @cached_property
    def pad_names(self) -> tuple[str, ...]:
        """Per-pad element names (``V1``, ``V2``, ... when synthesised)."""
        if self._pad_names_eager is not None:
            return self._pad_names_eager
        return tuple(f"V{i + 1}" for i in range(len(self.pad_node)))

    @cached_property
    def load_names(self) -> tuple[str, ...]:
        """Per-source element names (``I1``, ``I2``, ... when synthesised)."""
        if self._load_names_eager is not None:
            return self._load_names_eager
        return tuple(f"I{i + 1}" for i in range(len(self.load_node)))

    # ------------------------------------------------------------------
    # Branch classification (done once per topology)
    # ------------------------------------------------------------------
    def _classify_branches(self) -> None:
        a, b = self.res_a, self.res_b
        a_ground = a == _GROUND_INDEX
        b_ground = b == _GROUND_INDEX
        a_safe = np.where(a_ground, 0, a)
        b_safe = np.where(b_ground, 0, b)
        self._res_a_ground, self._res_b_ground = a_ground, b_ground
        self._res_a_safe, self._res_b_safe = a_safe, b_safe
        a_pad = ~a_ground & self.is_pad[a_safe]
        b_pad = ~b_ground & self.is_pad[b_safe]
        a_free = ~a_ground & ~a_pad
        b_free = ~b_ground & ~b_pad

        one_ground = a_ground ^ b_ground
        self.ground_connected = bool(one_ground.any())

        # Ground branch whose other endpoint is a free node: diagonal only.
        ground_free = one_ground & (np.where(a_ground, b_free, a_free))
        self._gf_sel = np.flatnonzero(ground_free)
        self._gf_node = self.unknown_index[np.where(a_ground, b_safe, a_safe)[ground_free]]

        # Pad-to-free branch: diagonal on the free node plus a pad-voltage
        # contribution on the right-hand side.
        pad_free = (a_pad & b_free) | (b_pad & a_free)
        self._pf_sel = np.flatnonzero(pad_free)
        free_end = np.where(a_pad, b_safe, a_safe)[pad_free]
        pad_end = np.where(a_pad, a_safe, b_safe)[pad_free]
        self._pf_free = self.unknown_index[free_end]
        self._pf_pad = pad_end

        # Free-to-free branch: two diagonal and two off-diagonal stamps.
        free_free = a_free & b_free
        self._ff_sel = np.flatnonzero(free_free)
        self._ff_i = self.unknown_index[a_safe[free_free]]
        self._ff_j = self.unknown_index[b_safe[free_free]]

    def _stamp_coords(self) -> tuple[np.ndarray, np.ndarray]:
        rows = np.concatenate(
            (self._gf_node, self._pf_free, self._ff_i, self._ff_j, self._ff_i, self._ff_j)
        )
        cols = np.concatenate(
            (self._gf_node, self._pf_free, self._ff_i, self._ff_j, self._ff_j, self._ff_i)
        )
        return rows, cols

    def _stamp_data(self) -> np.ndarray:
        g = self.conductance
        gf_g = g[self._gf_sel]
        pf_g = g[self._pf_sel]
        ff_g = g[self._ff_sel]
        return np.concatenate((gf_g, pf_g, ff_g, ff_g, -ff_g, -ff_g))

    # ------------------------------------------------------------------
    # Reduced system assembly
    # ------------------------------------------------------------------
    @cached_property
    def reduced_matrix(self) -> sp.csr_matrix:
        """Sparse SPD conductance matrix over the unknown nodes (CSR).

        Assembled fully vectorised.  Network-built grids use a one-shot
        COO→CSR conversion; array-built grids and conductance-update clones
        assemble through the shared :class:`_SparsityPattern`, so repeated
        value updates of the same topology cost one ``bincount`` each.
        """
        n = self.num_unknowns
        data = self._stamp_data()
        if not self._use_pattern_assembly:
            rows, cols = self._stamp_coords()
            matrix = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
            matrix.sum_duplicates()
            return matrix
        pattern = self._pattern_box[0]
        if pattern is None or pattern.size != n:
            rows, cols = self._stamp_coords()
            pattern = _SparsityPattern.build(rows, cols, n)
            self._pattern_box[0] = pattern
        return pattern.assemble(data)

    @cached_property
    def pad_rhs(self) -> np.ndarray:
        """RHS contribution of the fixed pad voltages, over the unknowns."""
        rhs = np.zeros(self.num_unknowns, dtype=float)
        pf_g = self.conductance[self._pf_sel]
        np.add.at(rhs, self._pf_free, pf_g * self.pad_voltage[self._pf_pad])
        return rhs

    def rhs(self, loads: np.ndarray | None = None) -> np.ndarray:
        """Right-hand side of the reduced system for one load scenario.

        Args:
            loads: Per-node load currents over all nodes (defaults to the
                compiled network's own loads).  Loads attached to pad nodes
                are ignored, as in the legacy assembler.
        """
        loads = self.base_loads if loads is None else np.asarray(loads, dtype=float)
        if loads.shape != (self.num_nodes,):
            raise ValueError(f"expected loads of shape ({self.num_nodes},), got {loads.shape}")
        return self.pad_rhs - loads[self.unknown_sel]

    def rhs_matrix(
        self,
        load_matrix: np.ndarray | None,
        pad_voltage_matrix: np.ndarray | None = None,
    ) -> np.ndarray:
        """Right-hand sides for many scenarios at once.

        Args:
            load_matrix: ``(num_scenarios, num_nodes)`` per-node currents,
                or ``None`` to use the grid's own loads in every scenario
                (allowed only together with ``pad_voltage_matrix``).
            pad_voltage_matrix: Optional ``(num_scenarios, num_pads)``
                per-pad voltages aligned with :attr:`pad_names`; when given,
                scenario ``i`` replaces the fixed pad voltages with row
                ``i`` (the NODE_VOLTAGES sweep of the paper's Fig. 9).

        Returns:
            ``(num_unknowns, num_scenarios)`` RHS matrix, ready for a
            multi-RHS sparse triangular solve.
        """
        if load_matrix is None:
            if pad_voltage_matrix is None:
                raise ValueError("provide load_matrix, pad_voltage_matrix, or both")
            k = np.asarray(pad_voltage_matrix).shape[0]
            load_part = np.broadcast_to(
                self.base_loads[self.unknown_sel][:, None], (self.num_unknowns, k)
            )
        else:
            load_matrix = np.asarray(load_matrix, dtype=float)
            if load_matrix.ndim != 2 or load_matrix.shape[1] != self.num_nodes:
                raise ValueError(
                    f"expected load matrix of shape (k, {self.num_nodes}), got {load_matrix.shape}"
                )
            load_part = load_matrix[:, self.unknown_sel].T
        if pad_voltage_matrix is None:
            return self.pad_rhs[:, None] - load_part
        pad_part = self.pad_rhs_matrix(pad_voltage_matrix)
        if load_matrix is not None and pad_part.shape[1] != load_part.shape[1]:
            raise ValueError(
                "load_matrix and pad_voltage_matrix must have the same number of scenarios"
            )
        return pad_part - load_part

    @cached_property
    def pad_incidence(self) -> sp.csr_matrix:
        """Sparse ``(num_unknowns, num_nodes)`` pad-conductance incidence.

        Multiplying a per-node pad-voltage vector by this incidence yields
        the pad contribution to the reduced right-hand side — the batched
        generalisation of :attr:`pad_rhs`.
        """
        pf_g = self.conductance[self._pf_sel]
        matrix = sp.csr_matrix(
            (pf_g, (self._pf_free, self._pf_pad)),
            shape=(self.num_unknowns, self.num_nodes),
        )
        matrix.sum_duplicates()
        return matrix

    def pad_voltage_vectors(self, pad_voltage_matrix: np.ndarray) -> np.ndarray:
        """Scatter per-pad voltage scenarios onto per-node vectors.

        Args:
            pad_voltage_matrix: ``(num_scenarios, num_pads)`` voltages
                aligned with :attr:`pad_names`.

        Returns:
            ``(num_scenarios, num_nodes)`` per-node pad voltages (0 on
            non-pad nodes; duplicates resolve last-wins like the legacy
            assembler).
        """
        pad_voltage_matrix = np.asarray(pad_voltage_matrix, dtype=float)
        if pad_voltage_matrix.ndim != 2 or pad_voltage_matrix.shape[1] != len(self.pad_node):
            raise ValueError(
                f"expected pad voltage matrix of shape (k, {len(self.pad_node)}), "
                f"got {pad_voltage_matrix.shape}"
            )
        vectors = np.zeros((pad_voltage_matrix.shape[0], self.num_nodes), dtype=float)
        vectors[:, self.pad_node] = pad_voltage_matrix
        return vectors

    def pad_rhs_matrix(self, pad_voltage_matrix: np.ndarray) -> np.ndarray:
        """Pad contribution to the RHS for many pad-voltage scenarios.

        Returns:
            ``(num_unknowns, num_scenarios)`` matrix.
        """
        vectors = self.pad_voltage_vectors(pad_voltage_matrix)
        return self.pad_incidence @ vectors.T

    @cached_property
    def load_incidence(self) -> sp.csr_matrix:
        """Sparse ``(num_sources, num_nodes)`` current-source incidence.

        Multiplying a ``(k, num_sources)`` matrix of per-source currents by
        this incidence yields the ``(k, num_nodes)`` per-node load matrix —
        the bridge between per-source perturbation factors and RHS vectors.
        """
        m = len(self.load_node)
        return sp.csr_matrix(
            (np.ones(m), (np.arange(m), self.load_node)),
            shape=(m, self.num_nodes),
        )

    # ------------------------------------------------------------------
    # Low-rank update support
    # ------------------------------------------------------------------
    @cached_property
    def _update_map(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-branch reduced-space stamp shape, shared across clones.

        For each resistive branch: ``kind`` is 0 when the branch does not
        appear in the reduced matrix at all (both endpoints pad or
        ground), 1 when it stamps a single diagonal (ground–free and
        pad–free branches) and 2 when it stamps the full free–free
        pattern; ``node1`` / ``node2`` hold the reduced row indices.
        Topology-only, so :meth:`with_conductances` clones share it.
        """
        m = self.num_resistors
        kind = np.zeros(m, dtype=np.int8)
        node1 = np.full(m, _GROUND_INDEX, dtype=np.int64)
        node2 = np.full(m, _GROUND_INDEX, dtype=np.int64)
        kind[self._gf_sel] = 1
        node1[self._gf_sel] = self._gf_node
        kind[self._pf_sel] = 1
        node1[self._pf_sel] = self._pf_free
        kind[self._ff_sel] = 2
        node1[self._ff_sel] = self._ff_i
        node2[self._ff_sel] = self._ff_j
        return kind, node1, node2

    def update_columns(self, indices: np.ndarray) -> tuple[sp.csc_matrix, np.ndarray]:
        """Reduced-space incidence of a set of touched branches.

        A conductance change of ``Δg`` on the branches ``indices`` moves
        the reduced matrix by the symmetric low-rank term
        ``ΔG = B·diag(Δg_active)·Bᵀ`` where ``B`` is the returned
        incidence: one column per *matrix-affecting* touched branch —
        ``e_k`` for a branch stamping only the diagonal of reduced node
        ``k`` (ground–free and pad–free branches) and ``e_i − e_j`` for a
        free–free branch.  Branches with no matrix effect (both endpoints
        pad or ground — they only shift the RHS) are dropped.

        Args:
            indices: Branch indices whose conductance changed (e.g.
                :attr:`update_indices` of a :meth:`with_conductances`
                clone).

        Returns:
            ``(B, active)`` where ``B`` is the
            ``(num_unknowns, len(active))`` CSC incidence and ``active``
            is the subset of ``indices`` the columns correspond to, in
            order.
        """
        kind, node1, node2 = self._update_map
        indices = np.asarray(indices, dtype=np.int64)
        active = indices[kind[indices] != 0]
        is_pair = kind[active] == 2
        columns = np.arange(active.size, dtype=np.int64)
        rows = np.concatenate((node1[active], node2[active[is_pair]]))
        cols = np.concatenate((columns, columns[is_pair]))
        data = np.concatenate((np.ones(active.size), -np.ones(int(is_pair.sum()))))
        incidence = sp.csc_matrix(
            (data, (rows, cols)), shape=(self.num_unknowns, active.size)
        )
        return incidence, active

    # ------------------------------------------------------------------
    # Fingerprint
    # ------------------------------------------------------------------
    @cached_property
    def _topology_digest(self) -> "hashlib._Hash":
        """Partial digest over the value-independent fingerprint prefix.

        Shared across :meth:`with_conductances` clones, so a conductance
        update only re-hashes the value-dependent suffix.
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(np.int64(self.num_nodes).tobytes())
        digest.update(self.res_a.tobytes())
        digest.update(self.res_b.tobytes())
        return digest

    @cached_property
    def fingerprint(self) -> str:
        """Digest identifying the reduced conductance matrix.

        Covers the node count, resistor endpoints, branch conductances and
        the pad mask — everything that shapes the matrix.  Pad *voltages*
        and load currents are deliberately excluded: they only affect the
        right-hand side, so grids differing only in those share a
        factorization.
        """
        digest = self._topology_digest.copy()
        digest.update(np.ascontiguousarray(self.conductance).tobytes())
        digest.update(np.packbits(self.is_pad).tobytes())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Solution helpers
    # ------------------------------------------------------------------
    def full_voltages(
        self,
        unknown_voltages: np.ndarray,
        pad_voltage_vectors: np.ndarray | None = None,
    ) -> np.ndarray:
        """Scatter solved unknowns and pad voltages into a per-node vector.

        Args:
            unknown_voltages: ``(num_unknowns,)`` solution vector, or a
                ``(num_unknowns, k)`` matrix for batched solutions.
            pad_voltage_vectors: Optional ``(k, num_nodes)`` per-node pad
                voltages (from :meth:`pad_voltage_vectors`) for batches
                whose pad voltages vary per scenario; the grid's own fixed
                pad voltages are used when omitted.

        Returns:
            ``(num_nodes,)`` (or ``(num_nodes, k)``) voltages over all nodes.
        """
        unknown_voltages = np.asarray(unknown_voltages, dtype=float)
        if unknown_voltages.shape[0] != self.num_unknowns:
            raise ValueError(
                f"expected {self.num_unknowns} unknown voltages, got {unknown_voltages.shape[0]}"
            )
        shape = (self.num_nodes,) + unknown_voltages.shape[1:]
        voltages = np.empty(shape, dtype=float)
        voltages[self.unknown_sel] = unknown_voltages
        pad_sel = np.flatnonzero(self.is_pad)
        if pad_voltage_vectors is not None:
            if unknown_voltages.ndim != 2:
                raise ValueError("per-scenario pad voltages require a batched solution")
            voltages[pad_sel] = pad_voltage_vectors[:, pad_sel].T
        else:
            voltages[pad_sel] = (
                self.pad_voltage[pad_sel][:, None]
                if unknown_voltages.ndim == 2
                else self.pad_voltage[pad_sel]
            )
        return voltages

    def voltages_dict(self, voltages: np.ndarray) -> dict[str, float]:
        """Convert a per-node voltage vector into a name-keyed mapping."""
        return {name: float(v) for name, v in zip(self.node_names, voltages)}

    def load_nodes_by_block(self) -> dict[str, np.ndarray]:
        """Node indices carrying each functional block's current sources.

        Returns:
            Mapping of block name to the (unique, sorted) node indices of
            that block's load sources.  Sources not tied to a block
            (empty block name) are omitted.
        """
        nodes: dict[str, list[int]] = {}
        for block, node in zip(self.load_block, self.load_node):
            if block:
                nodes.setdefault(block, []).append(int(node))
        return {
            block: np.unique(np.asarray(indices, dtype=np.int64))
            for block, indices in nodes.items()
        }

    def voltage_array(self, voltages: Mapping[str, float]) -> np.ndarray:
        """Convert a name-keyed voltage mapping into compiled node order."""
        return np.fromiter(
            (voltages[name] for name in self.node_names), dtype=float, count=self.num_nodes
        )

    def branch_current_array(self, voltages: np.ndarray) -> np.ndarray:
        """Vectorised Ohm's law over every branch.

        Args:
            voltages: Per-node voltages in compiled order.

        Returns:
            Signed currents flowing from ``node_a`` to ``node_b``, aligned
            with :attr:`resistors`.
        """
        v = np.asarray(voltages, dtype=float)
        va = np.where(self._res_a_ground, 0.0, v[self._res_a_safe])
        vb = np.where(self._res_b_ground, 0.0, v[self._res_b_safe])
        return (va - vb) * self.conductance

    def node_outflow(self, branch_currents: np.ndarray) -> np.ndarray:
        """Net branch current flowing out of each node, in amperes.

        Args:
            branch_currents: Signed per-branch currents (``node_a`` →
                ``node_b``), aligned with :attr:`resistors`.
        """
        branch_currents = np.asarray(branch_currents, dtype=float)
        outflow = np.zeros(self.num_nodes, dtype=float)
        a_live = ~self._res_a_ground
        b_live = ~self._res_b_ground
        np.add.at(outflow, self._res_a_safe[a_live], branch_currents[a_live])
        np.add.at(outflow, self._res_b_safe[b_live], -branch_currents[b_live])
        return outflow

    def loads_from_sources(self, sources: Iterable[CurrentSource]) -> np.ndarray:
        """Aggregate arbitrary current sources into a per-node load vector.

        Raises:
            KeyError: If a source references a node unknown to this grid.
        """
        loads = np.zeros(self.num_nodes, dtype=float)
        for source in sources:
            loads[self.node_index[source.node]] += source.current
        return loads

    def block_factor_load_matrix(
        self, block_names: Sequence[str], factors: np.ndarray
    ) -> np.ndarray:
        """Per-node load scenarios from per-block current scale factors.

        Scenario ``i`` scales every current source belonging to block
        ``block_names[j]`` by ``factors[i, j]`` (sources without a matching
        block keep their nominal current), reproducing the loads of a grid
        rebuilt from a block-perturbed floorplan without any rebuild.

        Args:
            block_names: Block names, ordered like the factor columns.
            factors: ``(num_scenarios, len(block_names))`` scale factors.

        Returns:
            ``(num_scenarios, num_nodes)`` per-node current matrix.
        """
        factors = np.asarray(factors, dtype=float)
        if factors.ndim != 2 or factors.shape[1] != len(block_names):
            raise ValueError(
                f"expected factors of shape (k, {len(block_names)}), got {factors.shape}"
            )
        block_index = {name: j for j, name in enumerate(block_names)}
        source_block = np.fromiter(
            (block_index.get(block, -1) for block in self.load_block),
            dtype=np.int64,
            count=len(self.load_block),
        )
        source_factors = np.ones((factors.shape[0], len(self.load_node)), dtype=float)
        matched = source_block >= 0
        source_factors[:, matched] = factors[:, source_block[matched]]
        per_source = source_factors * self.load_current
        return np.asarray(self.load_incidence.T.dot(per_source.T)).T

    def __getstate__(self) -> dict:
        """Drop the unpicklable cached hash object before pickling.

        Process-sharded sweeps ship the compiled grid to worker processes;
        everything in it is arrays and sparse matrices except the cached
        ``hashlib`` partial digest, which a clone recomputes on demand
        (the finished :attr:`fingerprint` string, if cached, travels
        along, so workers usually never re-hash).
        """
        state = self.__dict__.copy()
        state.pop("_topology_digest", None)
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"CompiledGrid(name={self.name!r}, nodes={self.num_nodes}, "
            f"resistors={self.num_resistors}, unknowns={self.num_unknowns})"
        )


def compile_grid(network: "PowerGridNetwork") -> CompiledGrid:
    """Compile ``network`` into its array-backed analysis form."""
    return CompiledGrid(network)
