"""One-shot compilation of a power-grid network into NumPy arrays.

:class:`PowerGridNetwork` is optimised for incremental construction: every
element lives in a string-keyed dict and refers to its terminals by node
name.  That representation is convenient to build but slow to analyse — the
MNA assembly used to walk those dicts element by element for every solve.

:class:`CompiledGrid` is the analysis-side counterpart: a single pass over
the network produces integer-indexed arrays (resistor endpoints, branch
conductances, pad mask, load incidence) from which the reduced nodal system
is assembled with vectorised COO→CSR operations.  The compiled form also
exposes a **topology fingerprint** that identifies the reduced conductance
matrix: two grids with the same fingerprint share the same matrix (pad
voltages and load currents only enter the right-hand side), which is what
lets :class:`~repro.analysis.engine.BatchedAnalysisEngine` reuse one sparse
factorization across thousands of load scenarios.
"""

from __future__ import annotations

import hashlib
from functools import cached_property
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np
import scipy.sparse as sp

from .elements import GROUND_NODE, CurrentSource, Resistor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import PowerGridNetwork

_GROUND_INDEX = -1
"""Endpoint index used for the implicit ground node."""


class CompiledGrid:
    """Array-backed, analysis-ready form of a :class:`PowerGridNetwork`.

    Instances are created by :func:`compile_grid` (or the cached
    :meth:`PowerGridNetwork.compile`) and treated as immutable: all arrays
    are derived once from the network and never written to afterwards.

    Attributes:
        name: Name of the source network.
        vdd: Nominal supply voltage of the source network.
        node_names: All node names in network insertion order; array indices
            throughout the compiled grid refer to this order.
        res_a: Resistor first-endpoint node indices (``-1`` for ground).
        res_b: Resistor second-endpoint node indices (``-1`` for ground).
        conductance: Per-resistor branch conductance in siemens.
        res_width: Per-resistor drawn width in um (0 for vias).
        res_line_id: Per-resistor power-grid line id (-1 for vias).
        resistors: The source :class:`Resistor` objects, aligned with the
            resistor arrays.
        is_pad: Boolean mask over nodes marking supply-pad nodes.
        pad_voltage: Per-node pad voltage (0 for non-pad nodes).  When
            several pads share a node, the last added pad wins, matching the
            legacy assembler.
        base_loads: Per-node total load current in amperes.
        load_node: Per-current-source node index, in insertion order.
        load_current: Per-current-source nominal current, aligned with
            ``load_node``.
    """

    def __init__(self, network: "PowerGridNetwork") -> None:
        self.name = network.name
        self.vdd = network.vdd
        self.node_names: tuple[str, ...] = tuple(network.nodes)
        index = {name: i for i, name in enumerate(self.node_names)}
        self.node_index: dict[str, int] = index
        n = len(self.node_names)

        resistors = tuple(network.iter_resistors())
        self.resistors: tuple[Resistor, ...] = resistors
        self.res_a = np.fromiter(
            (index.get(r.node_a, _GROUND_INDEX) for r in resistors), dtype=np.int64, count=len(resistors)
        )
        self.res_b = np.fromiter(
            (index.get(r.node_b, _GROUND_INDEX) for r in resistors), dtype=np.int64, count=len(resistors)
        )
        self.conductance = np.fromiter(
            (1.0 / r.resistance for r in resistors), dtype=float, count=len(resistors)
        )
        self.res_width = np.fromiter((r.width for r in resistors), dtype=float, count=len(resistors))
        self.res_line_id = np.fromiter(
            (r.line_id for r in resistors), dtype=np.int64, count=len(resistors)
        )

        self.is_pad = np.zeros(n, dtype=bool)
        self.pad_voltage = np.zeros(n, dtype=float)
        for pad in network.iter_pads():
            i = index[pad.node]
            self.is_pad[i] = True
            self.pad_voltage[i] = pad.voltage
        self.pad_names: tuple[str, ...] = tuple(pad.name for pad in network.iter_pads())
        self.pad_node: np.ndarray = np.fromiter(
            (index[pad.node] for pad in network.iter_pads()), dtype=np.int64, count=len(self.pad_names)
        )

        sources = tuple(network.iter_loads())
        self.load_names: tuple[str, ...] = tuple(s.name for s in sources)
        self.load_node = np.fromiter(
            (index[s.node] for s in sources), dtype=np.int64, count=len(sources)
        )
        self.load_current = np.fromiter((s.current for s in sources), dtype=float, count=len(sources))
        self.base_loads = np.bincount(
            self.load_node, weights=self.load_current, minlength=n
        ) if len(sources) else np.zeros(n, dtype=float)

        # Reduced-system bookkeeping: unknown (non-pad) nodes keep their
        # relative insertion order, exactly like the legacy assembler.
        self.unknown_sel = np.flatnonzero(~self.is_pad)
        self.unknown_index = np.full(n, _GROUND_INDEX, dtype=np.int64)
        self.unknown_index[self.unknown_sel] = np.arange(len(self.unknown_sel))
        self.unknown_nodes: tuple[str, ...] = tuple(
            self.node_names[i] for i in self.unknown_sel
        )

        self._classify_branches()

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of grid nodes (excluding the implicit ground)."""
        return len(self.node_names)

    @property
    def num_resistors(self) -> int:
        """Number of resistive branches."""
        return len(self.resistors)

    @property
    def num_unknowns(self) -> int:
        """Number of unknown (non-pad) node voltages in the reduced system."""
        return len(self.unknown_sel)

    # ------------------------------------------------------------------
    # Branch classification (done once at compile time)
    # ------------------------------------------------------------------
    def _classify_branches(self) -> None:
        a, b = self.res_a, self.res_b
        a_ground = a == _GROUND_INDEX
        b_ground = b == _GROUND_INDEX
        a_safe = np.where(a_ground, 0, a)
        b_safe = np.where(b_ground, 0, b)
        self._res_a_ground, self._res_b_ground = a_ground, b_ground
        self._res_a_safe, self._res_b_safe = a_safe, b_safe
        a_pad = ~a_ground & self.is_pad[a_safe]
        b_pad = ~b_ground & self.is_pad[b_safe]
        a_free = ~a_ground & ~a_pad
        b_free = ~b_ground & ~b_pad

        one_ground = a_ground ^ b_ground
        self.ground_connected = bool(one_ground.any())

        # Ground branch whose other endpoint is a free node: diagonal only.
        ground_free = one_ground & (np.where(a_ground, b_free, a_free))
        self._gf_node = self.unknown_index[np.where(a_ground, b_safe, a_safe)[ground_free]]
        self._gf_g = self.conductance[ground_free]

        # Pad-to-free branch: diagonal on the free node plus a pad-voltage
        # contribution on the right-hand side.
        pad_free = (a_pad & b_free) | (b_pad & a_free)
        free_end = np.where(a_pad, b_safe, a_safe)[pad_free]
        pad_end = np.where(a_pad, a_safe, b_safe)[pad_free]
        self._pf_free = self.unknown_index[free_end]
        self._pf_pad = pad_end
        self._pf_g = self.conductance[pad_free]

        # Free-to-free branch: two diagonal and two off-diagonal stamps.
        free_free = a_free & b_free
        self._ff_i = self.unknown_index[a_safe[free_free]]
        self._ff_j = self.unknown_index[b_safe[free_free]]
        self._ff_g = self.conductance[free_free]

    # ------------------------------------------------------------------
    # Reduced system assembly
    # ------------------------------------------------------------------
    @cached_property
    def reduced_matrix(self) -> sp.csr_matrix:
        """Sparse SPD conductance matrix over the unknown nodes (CSR).

        Assembled fully vectorised: stamp coordinates are concatenated into
        one COO triplet set and duplicate entries are summed by the COO→CSR
        conversion.
        """
        n = self.num_unknowns
        rows = np.concatenate(
            (self._gf_node, self._pf_free, self._ff_i, self._ff_j, self._ff_i, self._ff_j)
        )
        cols = np.concatenate(
            (self._gf_node, self._pf_free, self._ff_i, self._ff_j, self._ff_j, self._ff_i)
        )
        data = np.concatenate(
            (self._gf_g, self._pf_g, self._ff_g, self._ff_g, -self._ff_g, -self._ff_g)
        )
        matrix = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
        matrix.sum_duplicates()
        return matrix

    @cached_property
    def pad_rhs(self) -> np.ndarray:
        """RHS contribution of the fixed pad voltages, over the unknowns."""
        rhs = np.zeros(self.num_unknowns, dtype=float)
        np.add.at(rhs, self._pf_free, self._pf_g * self.pad_voltage[self._pf_pad])
        return rhs

    def rhs(self, loads: np.ndarray | None = None) -> np.ndarray:
        """Right-hand side of the reduced system for one load scenario.

        Args:
            loads: Per-node load currents over all nodes (defaults to the
                compiled network's own loads).  Loads attached to pad nodes
                are ignored, as in the legacy assembler.
        """
        loads = self.base_loads if loads is None else np.asarray(loads, dtype=float)
        if loads.shape != (self.num_nodes,):
            raise ValueError(f"expected loads of shape ({self.num_nodes},), got {loads.shape}")
        return self.pad_rhs - loads[self.unknown_sel]

    def rhs_matrix(self, load_matrix: np.ndarray) -> np.ndarray:
        """Right-hand sides for many load scenarios at once.

        Args:
            load_matrix: ``(num_scenarios, num_nodes)`` per-node currents.

        Returns:
            ``(num_unknowns, num_scenarios)`` RHS matrix, ready for a
            multi-RHS sparse triangular solve.
        """
        load_matrix = np.asarray(load_matrix, dtype=float)
        if load_matrix.ndim != 2 or load_matrix.shape[1] != self.num_nodes:
            raise ValueError(
                f"expected load matrix of shape (k, {self.num_nodes}), got {load_matrix.shape}"
            )
        return self.pad_rhs[:, None] - load_matrix[:, self.unknown_sel].T

    @cached_property
    def load_incidence(self) -> sp.csr_matrix:
        """Sparse ``(num_sources, num_nodes)`` current-source incidence.

        Multiplying a ``(k, num_sources)`` matrix of per-source currents by
        this incidence yields the ``(k, num_nodes)`` per-node load matrix —
        the bridge between per-source perturbation factors and RHS vectors.
        """
        m = len(self.load_names)
        return sp.csr_matrix(
            (np.ones(m), (np.arange(m), self.load_node)),
            shape=(m, self.num_nodes),
        )

    # ------------------------------------------------------------------
    # Fingerprint
    # ------------------------------------------------------------------
    @cached_property
    def fingerprint(self) -> str:
        """Digest identifying the reduced conductance matrix.

        Covers the node count, resistor endpoints, branch conductances and
        the pad mask — everything that shapes the matrix.  Pad *voltages*
        and load currents are deliberately excluded: they only affect the
        right-hand side, so grids differing only in those share a
        factorization.
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(np.int64(self.num_nodes).tobytes())
        digest.update(self.res_a.tobytes())
        digest.update(self.res_b.tobytes())
        digest.update(np.ascontiguousarray(self.conductance).tobytes())
        digest.update(np.packbits(self.is_pad).tobytes())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Solution helpers
    # ------------------------------------------------------------------
    def full_voltages(self, unknown_voltages: np.ndarray) -> np.ndarray:
        """Scatter solved unknowns and pad voltages into a per-node vector.

        Args:
            unknown_voltages: ``(num_unknowns,)`` solution vector, or a
                ``(num_unknowns, k)`` matrix for batched solutions.

        Returns:
            ``(num_nodes,)`` (or ``(num_nodes, k)``) voltages over all nodes.
        """
        unknown_voltages = np.asarray(unknown_voltages, dtype=float)
        if unknown_voltages.shape[0] != self.num_unknowns:
            raise ValueError(
                f"expected {self.num_unknowns} unknown voltages, got {unknown_voltages.shape[0]}"
            )
        shape = (self.num_nodes,) + unknown_voltages.shape[1:]
        voltages = np.empty(shape, dtype=float)
        voltages[self.unknown_sel] = unknown_voltages
        pad_sel = np.flatnonzero(self.is_pad)
        voltages[pad_sel] = (
            self.pad_voltage[pad_sel][:, None]
            if unknown_voltages.ndim == 2
            else self.pad_voltage[pad_sel]
        )
        return voltages

    def voltages_dict(self, voltages: np.ndarray) -> dict[str, float]:
        """Convert a per-node voltage vector into a name-keyed mapping."""
        return {name: float(v) for name, v in zip(self.node_names, voltages)}

    def voltage_array(self, voltages: Mapping[str, float]) -> np.ndarray:
        """Convert a name-keyed voltage mapping into compiled node order."""
        return np.fromiter(
            (voltages[name] for name in self.node_names), dtype=float, count=self.num_nodes
        )

    def branch_current_array(self, voltages: np.ndarray) -> np.ndarray:
        """Vectorised Ohm's law over every branch.

        Args:
            voltages: Per-node voltages in compiled order.

        Returns:
            Signed currents flowing from ``node_a`` to ``node_b``, aligned
            with :attr:`resistors`.
        """
        v = np.asarray(voltages, dtype=float)
        va = np.where(self._res_a_ground, 0.0, v[self._res_a_safe])
        vb = np.where(self._res_b_ground, 0.0, v[self._res_b_safe])
        return (va - vb) * self.conductance

    def node_outflow(self, branch_currents: np.ndarray) -> np.ndarray:
        """Net branch current flowing out of each node, in amperes.

        Args:
            branch_currents: Signed per-branch currents (``node_a`` →
                ``node_b``), aligned with :attr:`resistors`.
        """
        branch_currents = np.asarray(branch_currents, dtype=float)
        outflow = np.zeros(self.num_nodes, dtype=float)
        a_live = ~self._res_a_ground
        b_live = ~self._res_b_ground
        np.add.at(outflow, self._res_a_safe[a_live], branch_currents[a_live])
        np.add.at(outflow, self._res_b_safe[b_live], -branch_currents[b_live])
        return outflow

    def loads_from_sources(self, sources: Iterable[CurrentSource]) -> np.ndarray:
        """Aggregate arbitrary current sources into a per-node load vector.

        Raises:
            KeyError: If a source references a node unknown to this grid.
        """
        loads = np.zeros(self.num_nodes, dtype=float)
        for source in sources:
            loads[self.node_index[source.node]] += source.current
        return loads

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"CompiledGrid(name={self.name!r}, nodes={self.num_nodes}, "
            f"resistors={self.num_resistors}, unknowns={self.num_unknowns})"
        )


def compile_grid(network: "PowerGridNetwork") -> CompiledGrid:
    """Compile ``network`` into its array-backed analysis form."""
    return CompiledGrid(network)
