"""Power-grid substrate: network model, floorplans, netlists, benchmarks.

This subpackage provides everything the PowerPlanningDL framework and the
conventional baseline operate on:

* :class:`~repro.grid.network.PowerGridNetwork` — the flat resistive network
  (nodes, resistors, pads, loads);
* :class:`~repro.grid.floorplan.Floorplan` — core area, functional blocks and
  power pads with switching currents;
* :class:`~repro.grid.builder.GridBuilder` — mesh-grid construction from a
  floorplan and per-line widths;
* :class:`~repro.grid.benchmarks.SyntheticIBMSuite` — synthetic stand-ins for
  the IBM power-grid benchmarks of the paper's Table II;
* :mod:`~repro.grid.netlist` — IBM-style SPICE netlist reader/writer;
* :mod:`~repro.grid.perturbation` — the gamma-perturbation engine used for
  test-set generation (paper Section IV-D).
"""

from .benchmarks import (
    BenchmarkConfig,
    SUITE_NAMES,
    SyntheticBenchmark,
    SyntheticIBMSuite,
    benchmark_config,
    generate_floorplan,
    generate_topology,
    load_benchmark,
)
from .builder import GridBuilder, GridTopology, uniform_topology
from .compiled import CompiledGrid, compile_grid
from .elements import GROUND_NODE, CurrentSource, GridNode, Resistor, VoltageSource
from .floorplan import Floorplan, FunctionalBlock, PowerPad
from .netlist import (
    NetlistFormatError,
    NetlistReader,
    NetlistWriter,
    node_name,
    parse_node_name,
    parse_spice_value,
    read_netlist,
    write_netlist,
)
from .network import GridStatistics, PowerGridNetwork
from .perturbation import (
    FloorplanPerturbator,
    NetworkPerturbator,
    PerturbationKind,
    PerturbationSpec,
    floorplan_perturbed_load_matrix,
    mega_sweep_matrices,
    perturbation_sweep,
    perturbed_load_matrix,
    perturbed_pad_voltage_matrix,
)
from .technology import (
    DEFAULT_TECHNOLOGY,
    MetalLayerSpec,
    Technology,
    generic_45nm,
    generic_65nm,
)

__all__ = [
    "BenchmarkConfig",
    "CompiledGrid",
    "CurrentSource",
    "DEFAULT_TECHNOLOGY",
    "Floorplan",
    "FloorplanPerturbator",
    "FunctionalBlock",
    "GROUND_NODE",
    "GridBuilder",
    "GridNode",
    "GridStatistics",
    "GridTopology",
    "MetalLayerSpec",
    "NetlistFormatError",
    "NetlistReader",
    "NetlistWriter",
    "NetworkPerturbator",
    "PerturbationKind",
    "PerturbationSpec",
    "PowerGridNetwork",
    "PowerPad",
    "Resistor",
    "SUITE_NAMES",
    "SyntheticBenchmark",
    "SyntheticIBMSuite",
    "Technology",
    "VoltageSource",
    "benchmark_config",
    "compile_grid",
    "floorplan_perturbed_load_matrix",
    "generate_floorplan",
    "generate_topology",
    "generic_45nm",
    "generic_65nm",
    "load_benchmark",
    "mega_sweep_matrices",
    "node_name",
    "parse_node_name",
    "parse_spice_value",
    "perturbation_sweep",
    "perturbed_load_matrix",
    "perturbed_pad_voltage_matrix",
    "read_netlist",
    "uniform_topology",
    "write_netlist",
]
