"""Synthetic stand-ins for the IBM power-grid benchmarks.

The paper trains and evaluates PowerPlanningDL on the IBM power-grid
benchmarks (Nassif, ASP-DAC 2008), which are proprietary extractions of IBM
processors with up to ~1.7 million nodes.  Those netlists are not available
offline, so this module generates *synthetic* benchmarks with the same
structure (mesh power grid over a block-level floorplan with Vdd pads and
per-block workload currents) and the same *relative* size ordering as
Table II of the paper, scaled down so that the conventional sparse-solver
baseline remains tractable on a single machine.

Each benchmark is generated deterministically from its name, so results are
reproducible across runs and machines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .builder import GridBuilder, GridTopology, uniform_topology
from .floorplan import Floorplan, FunctionalBlock, PowerPad
from .network import PowerGridNetwork
from .technology import DEFAULT_TECHNOLOGY, Technology


@dataclass(frozen=True)
class BenchmarkConfig:
    """Configuration of one synthetic IBM-style benchmark.

    Attributes:
        name: Benchmark name (``"ibmpg1"`` ... ``"ibmpgnew2"``).
        core_size: Core edge length in um (square core).
        num_vertical: Number of vertical power-grid lines.
        num_horizontal: Number of horizontal power-grid lines.
        num_blocks: Number of functional blocks placed on the floorplan.
        num_pads: Number of Vdd power pads.
        total_current: Total switching current of all blocks, in amperes.
        current_skew: Exponent controlling how unevenly the current is spread
            over the blocks (1.0 = uniform-ish, larger = a few hot blocks).
        seed: Seed for the deterministic random generator.
    """

    name: str
    core_size: float
    num_vertical: int
    num_horizontal: int
    num_blocks: int
    num_pads: int
    total_current: float
    current_skew: float = 1.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.core_size <= 0:
            raise ValueError("core_size must be positive")
        if self.num_vertical < 2 or self.num_horizontal < 2:
            raise ValueError("need at least 2 lines per direction")
        if self.num_blocks < 1:
            raise ValueError("need at least one functional block")
        if self.num_pads < 1:
            raise ValueError("need at least one power pad")
        if self.total_current <= 0:
            raise ValueError("total_current must be positive")

    @property
    def num_lines(self) -> int:
        """Total number of power-grid lines."""
        return self.num_vertical + self.num_horizontal

    @property
    def approx_nodes(self) -> int:
        """Approximate node count of the built grid (two layers per crossing)."""
        return 2 * self.num_vertical * self.num_horizontal


# The relative ordering of grid sizes, pad counts and load counts follows
# Table II of the paper (ibmpg1 smallest, ibmpg6 / ibmpgnew1 largest), scaled
# down by roughly two orders of magnitude so that the sparse-solver baseline
# completes in seconds rather than minutes.
_SUITE_CONFIGS: dict[str, BenchmarkConfig] = {
    "ibmpg1": BenchmarkConfig(
        name="ibmpg1", core_size=2000.0, num_vertical=28, num_horizontal=28,
        num_blocks=12, num_pads=16, total_current=1.3, current_skew=1.8, seed=11,
    ),
    "ibmpg2": BenchmarkConfig(
        name="ibmpg2", core_size=4000.0, num_vertical=48, num_horizontal=48,
        num_blocks=24, num_pads=64, total_current=2.0, current_skew=1.6, seed=22,
    ),
    "ibmpg3": BenchmarkConfig(
        name="ibmpg3", core_size=8000.0, num_vertical=72, num_horizontal=72,
        num_blocks=40, num_pads=225, total_current=1.8, current_skew=1.4, seed=33,
    ),
    "ibmpg4": BenchmarkConfig(
        name="ibmpg4", core_size=8000.0, num_vertical=76, num_horizontal=76,
        num_blocks=44, num_pads=676, total_current=1.6, current_skew=1.3, seed=44,
    ),
    "ibmpg5": BenchmarkConfig(
        name="ibmpg5", core_size=9000.0, num_vertical=64, num_horizontal=64,
        num_blocks=36, num_pads=1024, total_current=0.5, current_skew=1.2, seed=55,
    ),
    "ibmpg6": BenchmarkConfig(
        name="ibmpg6", core_size=10000.0, num_vertical=80, num_horizontal=80,
        num_blocks=52, num_pads=576, total_current=1.2, current_skew=1.4, seed=66,
    ),
    "ibmpgnew1": BenchmarkConfig(
        name="ibmpgnew1", core_size=10000.0, num_vertical=84, num_horizontal=84,
        num_blocks=56, num_pads=256, total_current=2.8, current_skew=1.5, seed=77,
    ),
    "ibmpgnew2": BenchmarkConfig(
        name="ibmpgnew2", core_size=9000.0, num_vertical=78, num_horizontal=78,
        num_blocks=48, num_pads=400, total_current=2.4, current_skew=1.4, seed=88,
    ),
}

SUITE_NAMES: tuple[str, ...] = tuple(_SUITE_CONFIGS)
"""Names of the synthetic benchmarks, in the paper's Table II order."""


def benchmark_config(name: str) -> BenchmarkConfig:
    """Return the configuration of the named synthetic benchmark.

    Raises:
        KeyError: If the benchmark name is unknown.
    """
    try:
        return _SUITE_CONFIGS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(SUITE_NAMES)}"
        ) from exc


def generate_floorplan(config: BenchmarkConfig, technology: Technology | None = None) -> Floorplan:
    """Generate the synthetic floorplan of a benchmark.

    The floorplan tiles the core with non-overlapping functional blocks laid
    out on a coarse grid (jittered sizes), assigns each block a switching
    current drawn from a skewed distribution normalised to
    ``config.total_current``, and places power pads on a regular array, the
    way flip-chip bump arrays supply real designs.
    """
    technology = technology or DEFAULT_TECHNOLOGY
    rng = np.random.default_rng(config.seed)
    core = config.core_size

    # Block placement: a ceil(sqrt(num_blocks)) x ceil(sqrt(num_blocks)) tile
    # grid, taking the first num_blocks tiles, each block filling 60-95 % of
    # its tile so blocks never overlap.
    tiles_per_side = int(np.ceil(np.sqrt(config.num_blocks)))
    tile = core / tiles_per_side
    blocks: list[FunctionalBlock] = []
    raw_currents = rng.pareto(config.current_skew, size=config.num_blocks) + 0.2
    currents = raw_currents / raw_currents.sum() * config.total_current
    index = 0
    for row in range(tiles_per_side):
        for col in range(tiles_per_side):
            if index >= config.num_blocks:
                break
            fill_x = rng.uniform(0.6, 0.95)
            fill_y = rng.uniform(0.6, 0.95)
            width = tile * fill_x
            height = tile * fill_y
            x = col * tile + rng.uniform(0.0, tile - width)
            y = row * tile + rng.uniform(0.0, tile - height)
            blocks.append(
                FunctionalBlock(
                    name=f"b{index}",
                    x=float(x),
                    y=float(y),
                    width=float(width),
                    height=float(height),
                    switching_current=float(currents[index]),
                )
            )
            index += 1

    pads_per_side = max(1, int(round(np.sqrt(config.num_pads))))
    pad_xs = np.linspace(0.0, core, pads_per_side + 2)[1:-1]
    pad_ys = np.linspace(0.0, core, pads_per_side + 2)[1:-1]
    pads: list[PowerPad] = []
    pad_index = 0
    for y in pad_ys:
        for x in pad_xs:
            if pad_index >= config.num_pads:
                break
            pads.append(
                PowerPad(name=f"pad{pad_index}", x=float(x), y=float(y), voltage=technology.vdd)
            )
            pad_index += 1
    if pad_index == 0:
        pads.append(PowerPad(name="pad0", x=core / 2, y=core / 2, voltage=technology.vdd))

    return Floorplan(
        name=config.name,
        core_width=core,
        core_height=core,
        blocks=blocks,
        pads=pads,
    )


def generate_topology(config: BenchmarkConfig, floorplan: Floorplan | None = None) -> GridTopology:
    """Generate the stripe topology of a benchmark."""
    floorplan = floorplan or generate_floorplan(config)
    return uniform_topology(floorplan, config.num_vertical, config.num_horizontal)


@dataclass
class SyntheticBenchmark:
    """A fully generated synthetic benchmark: floorplan, topology, technology.

    The network itself is built on demand (by the conventional planner with
    sized widths, or uniformly for quick experiments).
    """

    config: BenchmarkConfig
    floorplan: Floorplan
    topology: GridTopology
    technology: Technology

    @property
    def name(self) -> str:
        """Benchmark name."""
        return self.config.name

    def build_uniform_grid(self, width: float = 5.0) -> PowerGridNetwork:
        """Build the power grid with a uniform stripe width, for quick tests."""
        builder = GridBuilder(self.technology)
        return builder.build(self.floorplan, self.topology, width, name=self.name)

    def build_grid(self, widths: np.ndarray | list[float]) -> PowerGridNetwork:
        """Build the power grid with per-line widths."""
        builder = GridBuilder(self.technology)
        return builder.build(self.floorplan, self.topology, widths, name=self.name)

    def build_compiled_grid(self, widths: np.ndarray | list[float] | float = 5.0):
        """Build the compiled (array-form) grid directly, skipping the network."""
        builder = GridBuilder(self.technology)
        return builder.build_compiled(self.floorplan, self.topology, widths, name=self.name)


class SyntheticIBMSuite:
    """Factory for the whole synthetic benchmark suite.

    Args:
        technology: Technology used for all benchmarks (default: generic
            45 nm).
        scale: Optional global scale factor (< 1 shrinks every benchmark's
            stripe counts; useful to speed up the test-suite).
    """

    def __init__(self, technology: Technology | None = None, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.technology = technology or DEFAULT_TECHNOLOGY
        self.scale = scale

    def names(self) -> tuple[str, ...]:
        """Return the available benchmark names in Table II order."""
        return SUITE_NAMES

    def config(self, name: str) -> BenchmarkConfig:
        """Return the (possibly rescaled) configuration of a benchmark."""
        base = benchmark_config(name)
        if self.scale == 1.0:
            return base
        return BenchmarkConfig(
            name=base.name,
            core_size=base.core_size,
            num_vertical=max(4, int(round(base.num_vertical * self.scale))),
            num_horizontal=max(4, int(round(base.num_horizontal * self.scale))),
            num_blocks=max(2, int(round(base.num_blocks * min(1.0, self.scale * 2)))),
            num_pads=max(1, int(round(base.num_pads * min(1.0, self.scale * 2)))),
            total_current=base.total_current * min(1.0, self.scale * 2),
            current_skew=base.current_skew,
            seed=base.seed,
        )

    def load(self, name: str) -> SyntheticBenchmark:
        """Generate the named benchmark (floorplan + topology)."""
        config = self.config(name)
        floorplan = generate_floorplan(config, self.technology)
        topology = generate_topology(config, floorplan)
        return SyntheticBenchmark(
            config=config,
            floorplan=floorplan,
            topology=topology,
            technology=self.technology,
        )

    def load_all(self) -> list[SyntheticBenchmark]:
        """Generate every benchmark in the suite."""
        return [self.load(name) for name in self.names()]


def load_benchmark(
    name: str, technology: Technology | None = None, scale: float = 1.0
) -> SyntheticBenchmark:
    """Convenience wrapper: generate one synthetic IBM-style benchmark."""
    return SyntheticIBMSuite(technology=technology, scale=scale).load(name)
