"""Floorplan model: core area, functional blocks, power pads.

The PowerPlanningDL features are floorplan quantities: the X / Y coordinate
of a point in the planned floorplan and the switching current ``Id`` of the
functional block underneath (Section IV-B of the paper).  This module models
the floorplan explicitly so that feature extraction and grid construction
both read from the same source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator

import numpy as np


@dataclass(frozen=True)
class FunctionalBlock:
    """A placed functional block drawing switching current from the grid.

    Attributes:
        name: Block name, e.g. ``"b3"``.
        x: Lower-left X coordinate of the block in um.
        y: Lower-left Y coordinate of the block in um.
        width: Block width in um.
        height: Block height in um.
        switching_current: Total switching current ``Id`` of the block in
            amperes, as obtained from the front-end switching activity
            (value-change dump) in the paper.
    """

    name: str
    x: float
    y: float
    width: float
    height: float
    switching_current: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"block {self.name!r} must have positive dimensions")
        if self.switching_current < 0:
            raise ValueError(f"block {self.name!r} switching current must be non-negative")

    @property
    def center(self) -> tuple[float, float]:
        """Return the centre coordinates of the block."""
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    @property
    def area(self) -> float:
        """Return the block area in um^2."""
        return self.width * self.height

    @property
    def current_density(self) -> float:
        """Return the block current per unit area in A/um^2."""
        return self.switching_current / self.area

    def contains(self, x: float, y: float) -> bool:
        """Return True if the point ``(x, y)`` lies inside the block."""
        return self.x <= x <= self.x + self.width and self.y <= y <= self.y + self.height

    def with_current(self, current: float) -> "FunctionalBlock":
        """Return a copy of the block with a different switching current."""
        return replace(self, switching_current=current)


@dataclass(frozen=True)
class PowerPad:
    """A power pad (Vdd bump) location on the floorplan.

    Attributes:
        name: Pad name, e.g. ``"pad_0_0"``.
        x: X coordinate in um.
        y: Y coordinate in um.
        voltage: Supplied voltage in volts.
    """

    name: str
    x: float
    y: float
    voltage: float

    def __post_init__(self) -> None:
        if self.voltage <= 0:
            raise ValueError(f"pad {self.name!r} must have positive voltage")


class Floorplan:
    """A rectangular core area with placed functional blocks and power pads.

    Args:
        name: Floorplan name (usually matches the benchmark name).
        core_width: Core width ``Wcore`` in um (paper eq. 3).
        core_height: Core height in um.
        blocks: Functional blocks placed inside the core.
        pads: Power pads placed on or inside the core.

    Raises:
        ValueError: If the core dimensions are not positive or a block lies
            outside the core.
    """

    def __init__(
        self,
        name: str,
        core_width: float,
        core_height: float,
        blocks: Iterable[FunctionalBlock] = (),
        pads: Iterable[PowerPad] = (),
    ) -> None:
        if core_width <= 0 or core_height <= 0:
            raise ValueError("core dimensions must be positive")
        self.name = name
        self.core_width = float(core_width)
        self.core_height = float(core_height)
        self._blocks: dict[str, FunctionalBlock] = {}
        self._pads: dict[str, PowerPad] = {}
        for block in blocks:
            self.add_block(block)
        for pad in pads:
            self.add_pad(pad)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_block(self, block: FunctionalBlock) -> FunctionalBlock:
        """Add a functional block to the floorplan.

        Raises:
            ValueError: If the name is taken or the block is outside the core.
        """
        if block.name in self._blocks:
            raise ValueError(f"block {block.name!r} already exists")
        if block.x < 0 or block.y < 0:
            raise ValueError(f"block {block.name!r} has negative origin")
        if block.x + block.width > self.core_width + 1e-9:
            raise ValueError(f"block {block.name!r} exceeds the core width")
        if block.y + block.height > self.core_height + 1e-9:
            raise ValueError(f"block {block.name!r} exceeds the core height")
        self._blocks[block.name] = block
        return block

    def add_pad(self, pad: PowerPad) -> PowerPad:
        """Add a power pad to the floorplan.

        Raises:
            ValueError: If the name is taken or the pad is outside the core.
        """
        if pad.name in self._pads:
            raise ValueError(f"pad {pad.name!r} already exists")
        if not (0 <= pad.x <= self.core_width and 0 <= pad.y <= self.core_height):
            raise ValueError(f"pad {pad.name!r} lies outside the core")
        self._pads[pad.name] = pad
        return pad

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def blocks(self) -> dict[str, FunctionalBlock]:
        """Mapping of block name to functional block."""
        return self._blocks

    @property
    def pads(self) -> dict[str, PowerPad]:
        """Mapping of pad name to power pad."""
        return self._pads

    def iter_blocks(self) -> Iterator[FunctionalBlock]:
        """Iterate over functional blocks in insertion order."""
        return iter(self._blocks.values())

    def iter_pads(self) -> Iterator[PowerPad]:
        """Iterate over power pads in insertion order."""
        return iter(self._pads.values())

    @property
    def total_switching_current(self) -> float:
        """Total switching current of all blocks, in amperes."""
        return sum(block.switching_current for block in self._blocks.values())

    @property
    def core_area(self) -> float:
        """Core area in um^2."""
        return self.core_width * self.core_height

    # ------------------------------------------------------------------
    # Queries used by feature extraction and grid construction
    # ------------------------------------------------------------------
    def block_at(self, x: float, y: float) -> FunctionalBlock | None:
        """Return the block covering the point ``(x, y)``, if any.

        If blocks overlap, the first one in insertion order wins (synthetic
        floorplans produced by this library never overlap blocks).
        """
        for block in self._blocks.values():
            if block.contains(x, y):
                return block
        return None

    def switching_current_at(self, x: float, y: float) -> float:
        """Return the switching current ``Id`` associated with a point.

        This is the feature the paper extracts per power-grid interconnect:
        the switching current of the functional block underneath the
        interconnect location.  Points not covered by any block draw zero
        current.
        """
        block = self.block_at(x, y)
        if block is None:
            return 0.0
        return block.switching_current

    def switching_currents_at(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`switching_current_at` over arrays of points.

        Args:
            xs: X coordinates, any shape.
            ys: Y coordinates, same shape as ``xs``.

        Returns:
            Array of switching currents with the same shape as ``xs``.  When
            blocks overlap, the first block in insertion order wins, matching
            the scalar query.
        """
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if xs.shape != ys.shape:
            raise ValueError("xs and ys must have the same shape")
        currents = np.zeros_like(xs, dtype=float)
        assigned = np.zeros_like(xs, dtype=bool)
        for block in self._blocks.values():
            inside = (
                (xs >= block.x)
                & (xs <= block.x + block.width)
                & (ys >= block.y)
                & (ys <= block.y + block.height)
                & ~assigned
            )
            currents[inside] = block.switching_current
            assigned |= inside
        return currents

    def current_density_map(self, resolution: int = 64) -> np.ndarray:
        """Rasterise the per-block current density onto a square map.

        Args:
            resolution: Number of bins along each axis.

        Returns:
            A ``(resolution, resolution)`` array, ``map[j, i]`` giving the
            current density (A/um^2) at bin column ``i`` (x) and row ``j``
            (y).
        """
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        density = np.zeros((resolution, resolution), dtype=float)
        xs = (np.arange(resolution) + 0.5) * self.core_width / resolution
        ys = (np.arange(resolution) + 0.5) * self.core_height / resolution
        for block in self._blocks.values():
            ix = np.where((xs >= block.x) & (xs <= block.x + block.width))[0]
            iy = np.where((ys >= block.y) & (ys <= block.y + block.height))[0]
            if ix.size == 0 or iy.size == 0:
                continue
            density[np.ix_(iy, ix)] += block.current_density
        return density

    # ------------------------------------------------------------------
    # Modification helpers
    # ------------------------------------------------------------------
    def with_scaled_currents(self, factor: float, name: str | None = None) -> "Floorplan":
        """Return a copy with every block switching current scaled by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        blocks = [
            block.with_current(block.switching_current * factor) for block in self.iter_blocks()
        ]
        return Floorplan(
            name=name or self.name,
            core_width=self.core_width,
            core_height=self.core_height,
            blocks=blocks,
            pads=list(self.iter_pads()),
        )

    def with_block_currents(
        self, currents: dict[str, float], name: str | None = None
    ) -> "Floorplan":
        """Return a copy with selected block currents replaced.

        Args:
            currents: Mapping of block name to new switching current.
            name: Optional name for the new floorplan.

        Raises:
            KeyError: If a block name in ``currents`` does not exist.
        """
        for block_name in currents:
            if block_name not in self._blocks:
                raise KeyError(f"unknown block {block_name!r}")
        blocks = [
            block.with_current(currents.get(block.name, block.switching_current))
            for block in self.iter_blocks()
        ]
        return Floorplan(
            name=name or self.name,
            core_width=self.core_width,
            core_height=self.core_height,
            blocks=blocks,
            pads=list(self.iter_pads()),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Floorplan(name={self.name!r}, core={self.core_width}x{self.core_height} um, "
            f"blocks={len(self._blocks)}, pads={len(self._pads)})"
        )
