"""Reader / writer for IBM power-grid style SPICE netlists.

The IBM power-grid benchmarks are distributed as flat SPICE decks containing
only resistors, independent voltage sources and independent current sources::

    * comment
    R15 n1_100_200 n1_100_300 0.85
    V3  n1_0_0     0          1.8
    I27 n1_100_200 0          0.004
    .op
    .end

Node names encode the layer and the coordinates as ``n<layer>_<x>_<y>``.
This module parses and emits that format so that grids produced by the
synthetic benchmark generator can be written to disk, re-read and shared,
exactly as a user of the original benchmarks would.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, TextIO

from .elements import GROUND_NODE, CurrentSource, GridNode, Resistor, VoltageSource
from .network import PowerGridNetwork

_NODE_PATTERN = re.compile(r"^n(?P<layer>\d+)_(?P<x>-?\d+(?:\.\d+)?)_(?P<y>-?\d+(?:\.\d+)?)$")

_SI_SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
}


class NetlistFormatError(ValueError):
    """Raised when a SPICE netlist line cannot be parsed."""


def parse_spice_value(token: str) -> float:
    """Parse a SPICE numeric token with an optional SI suffix.

    Examples: ``"0.85"``, ``"1k"``, ``"4.7m"``, ``"100u"``, ``"3meg"``.

    Raises:
        NetlistFormatError: If the token is not a valid SPICE number.
    """
    token = token.strip().lower()
    if not token:
        raise NetlistFormatError("empty numeric token")
    match = re.match(r"^([-+]?[0-9]*\.?[0-9]+(?:e[-+]?[0-9]+)?)([a-z]*)$", token)
    if match is None:
        raise NetlistFormatError(f"invalid SPICE number {token!r}")
    value = float(match.group(1))
    suffix = match.group(2)
    if not suffix:
        return value
    if suffix.startswith("meg"):
        return value * _SI_SUFFIXES["meg"]
    scale = _SI_SUFFIXES.get(suffix[0])
    if scale is None:
        raise NetlistFormatError(f"unknown SI suffix in {token!r}")
    return value * scale


def format_spice_value(value: float) -> str:
    """Format a float as a plain SPICE number (no suffix, full precision)."""
    return f"{value:.9g}"


def node_name(layer_index: int, x: float, y: float) -> str:
    """Build an IBM-style node name ``n<layer>_<x>_<y>``.

    Coordinates are rendered as integers when they are whole numbers to keep
    the netlists compact and round-trippable.
    """

    def fmt(value: float) -> str:
        if float(value).is_integer():
            return str(int(value))
        return f"{value:g}"

    return f"n{layer_index}_{fmt(x)}_{fmt(y)}"


def parse_node_name(name: str) -> tuple[int, float, float] | None:
    """Parse an IBM-style node name into ``(layer_index, x, y)``.

    Returns ``None`` for names that do not follow the convention (such names
    are still accepted by the parser; they simply get coordinate 0, 0).
    """
    match = _NODE_PATTERN.match(name)
    if match is None:
        return None
    return (int(match.group("layer")), float(match.group("x")), float(match.group("y")))


class NetlistWriter:
    """Serialise a :class:`PowerGridNetwork` to the IBM SPICE format."""

    def write(self, network: PowerGridNetwork, stream: TextIO) -> None:
        """Write ``network`` to an open text stream."""
        stream.write(f"* power grid netlist: {network.name}\n")
        stream.write(f"* vdd = {format_spice_value(network.vdd)}\n")
        for resistor in network.iter_resistors():
            stream.write(
                f"{resistor.name} {resistor.node_a} {resistor.node_b} "
                f"{format_spice_value(resistor.resistance)}\n"
            )
        for source in network.iter_pads():
            stream.write(
                f"{source.name} {source.node} {GROUND_NODE} "
                f"{format_spice_value(source.voltage)}\n"
            )
        for load in network.iter_loads():
            stream.write(
                f"{load.name} {load.node} {GROUND_NODE} "
                f"{format_spice_value(load.current)}\n"
            )
        stream.write(".op\n.end\n")

    def write_file(self, network: PowerGridNetwork, path: str | Path) -> Path:
        """Write ``network`` to ``path`` and return the path."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as stream:
            self.write(network, stream)
        return path


class NetlistReader:
    """Parse an IBM power-grid SPICE deck into a :class:`PowerGridNetwork`.

    Node coordinates are recovered from the ``n<layer>_<x>_<y>`` naming
    convention when possible; nodes with free-form names are placed at the
    origin on layer ``"M?"`` so that purely electrical analyses still work.
    """

    def __init__(self, default_vdd: float = 1.0) -> None:
        if default_vdd <= 0:
            raise ValueError("default_vdd must be positive")
        self.default_vdd = default_vdd

    def read(self, stream: TextIO, name: str = "netlist") -> PowerGridNetwork:
        """Parse an open text stream into a power-grid network."""
        lines = stream.read().splitlines()
        return self.read_lines(lines, name=name)

    def read_file(self, path: str | Path) -> PowerGridNetwork:
        """Parse the netlist file at ``path``."""
        path = Path(path)
        with path.open("r", encoding="utf-8") as stream:
            return self.read(stream, name=path.stem)

    def read_lines(self, lines: Iterable[str], name: str = "netlist") -> PowerGridNetwork:
        """Parse an iterable of netlist lines."""
        raw_resistors: list[tuple[str, str, str, float]] = []
        raw_vsources: list[tuple[str, str, str, float]] = []
        raw_isources: list[tuple[str, str, str, float]] = []
        vdd = self.default_vdd
        vdd_from_comment = False

        for line_no, raw in enumerate(lines, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("*"):
                comment_match = re.search(r"vdd\s*=\s*([0-9.eE+-]+)", line)
                if comment_match:
                    vdd = float(comment_match.group(1))
                    vdd_from_comment = True
                continue
            if line.startswith("."):
                continue
            tokens = line.split()
            if len(tokens) < 4:
                raise NetlistFormatError(f"line {line_no}: expected 4 tokens, got {len(tokens)}")
            element, node_a, node_b = tokens[0], tokens[1], tokens[2]
            value = parse_spice_value(tokens[3])
            kind = element[0].upper()
            if kind == "R":
                raw_resistors.append((element, node_a, node_b, value))
            elif kind == "V":
                raw_vsources.append((element, node_a, node_b, value))
            elif kind == "I":
                raw_isources.append((element, node_a, node_b, value))
            else:
                raise NetlistFormatError(f"line {line_no}: unsupported element {element!r}")

        if not vdd_from_comment and raw_vsources:
            positive = [value for _, _, _, value in raw_vsources if value > 0]
            if positive:
                vdd = max(positive)

        network = PowerGridNetwork(name=name, vdd=vdd)

        def ensure_node(node: str) -> None:
            if node == GROUND_NODE or node in network:
                return
            parsed = parse_node_name(node)
            if parsed is None:
                network.add_node(GridNode(name=node, x=0.0, y=0.0, layer="M?"))
            else:
                layer_index, x, y = parsed
                network.add_node(GridNode(name=node, x=x, y=y, layer=f"M{layer_index}"))

        for element, node_a, node_b, value in raw_resistors:
            ensure_node(node_a)
            ensure_node(node_b)
            network.add_resistor(
                Resistor(name=element, node_a=node_a, node_b=node_b, resistance=value)
            )
        for element, node_a, node_b, value in raw_vsources:
            node = node_a if node_b == GROUND_NODE else node_b
            ensure_node(node)
            network.add_voltage_source(VoltageSource(name=element, node=node, voltage=value))
        for element, node_a, node_b, value in raw_isources:
            node = node_a if node_b == GROUND_NODE else node_b
            ensure_node(node)
            network.add_current_source(CurrentSource(name=element, node=node, current=abs(value)))
        return network


def write_netlist(network: PowerGridNetwork, path: str | Path) -> Path:
    """Convenience wrapper: write ``network`` to ``path`` in SPICE format."""
    return NetlistWriter().write_file(network, path)


def read_netlist(path: str | Path, default_vdd: float = 1.0) -> PowerGridNetwork:
    """Convenience wrapper: read a SPICE power-grid netlist from ``path``."""
    return NetlistReader(default_vdd=default_vdd).read_file(path)
