"""In-memory model of a power-grid network.

:class:`PowerGridNetwork` is the central data structure of the substrate: it
owns the grid nodes, the resistive branches, the supply pads (voltage
sources) and the workload current loads.  Every other part of the library —
the conventional MNA-based analysis engine, the conventional iterative
planner and the PowerPlanningDL feature extractor — operates on this class.

The statistics exposed by :meth:`PowerGridNetwork.statistics` intentionally
mirror Table II of the paper (``#n``, ``#r``, ``#v``, ``#i``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import networkx as nx

from .compiled import CompiledGrid
from .elements import GROUND_NODE, CurrentSource, GridNode, Resistor, VoltageSource


@dataclass(frozen=True)
class GridStatistics:
    """Size statistics of a power grid, mirroring Table II of the paper.

    Attributes:
        num_nodes: Total number of grid nodes (``#n``).
        num_resistors: Total number of resistive branches (``#r``).
        num_sources: Total number of supply voltage sources (``#v``).
        num_loads: Total number of workload current sources (``#i``).
    """

    num_nodes: int
    num_resistors: int
    num_sources: int
    num_loads: int

    def as_row(self) -> tuple[int, int, int, int]:
        """Return the statistics as the ``(#n, #r, #v, #i)`` tuple."""
        return (self.num_nodes, self.num_resistors, self.num_sources, self.num_loads)


class PowerGridNetwork:
    """A flat resistive power-grid network.

    The network is a container of :class:`~repro.grid.elements.GridNode`,
    :class:`~repro.grid.elements.Resistor`,
    :class:`~repro.grid.elements.VoltageSource` and
    :class:`~repro.grid.elements.CurrentSource` objects.  Element names are
    unique within their element class; node names are unique overall.  The
    ground node ``"0"`` is implicit and never stored.

    Args:
        name: Human-readable name of the grid (benchmark name).
        vdd: Nominal supply voltage the grid is designed for, in volts.
    """

    def __init__(self, name: str = "grid", vdd: float = 1.0) -> None:
        if vdd <= 0:
            raise ValueError("vdd must be positive")
        self.name = name
        self.vdd = vdd
        self._nodes: dict[str, GridNode] = {}
        self._resistors: dict[str, Resistor] = {}
        self._voltage_sources: dict[str, VoltageSource] = {}
        self._current_sources: dict[str, CurrentSource] = {}
        self._node_index: dict[str, int] | None = None
        self._compiled: "CompiledGrid | None" = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: GridNode) -> GridNode:
        """Add a node to the grid.

        Adding a node with a name that already exists returns the existing
        node unchanged (idempotent), but adding a different node under an
        existing name raises.

        Raises:
            ValueError: If a different node is already registered under the
                same name.
        """
        existing = self._nodes.get(node.name)
        if existing is not None:
            if existing != node:
                raise ValueError(f"node {node.name!r} already exists with different attributes")
            return existing
        self._nodes[node.name] = node
        self._node_index = None
        self._compiled = None
        return node

    def add_resistor(self, resistor: Resistor) -> Resistor:
        """Add a resistive branch.

        Both terminals must be existing nodes or the ground node.

        Raises:
            ValueError: If the name is already used or a terminal is unknown.
        """
        if resistor.name in self._resistors:
            raise ValueError(f"resistor {resistor.name!r} already exists")
        self._require_node(resistor.node_a)
        self._require_node(resistor.node_b)
        self._resistors[resistor.name] = resistor
        self._compiled = None
        return resistor

    def add_voltage_source(self, source: VoltageSource) -> VoltageSource:
        """Add a supply pad (voltage source to ground).

        Raises:
            ValueError: If the name is already used or the node is unknown.
        """
        if source.name in self._voltage_sources:
            raise ValueError(f"voltage source {source.name!r} already exists")
        self._require_node(source.node)
        self._voltage_sources[source.name] = source
        self._compiled = None
        return source

    def add_current_source(self, source: CurrentSource) -> CurrentSource:
        """Add a workload current source (load).

        Raises:
            ValueError: If the name is already used or the node is unknown.
        """
        if source.name in self._current_sources:
            raise ValueError(f"current source {source.name!r} already exists")
        self._require_node(source.node)
        self._current_sources[source.name] = source
        self._compiled = None
        return source

    def _require_node(self, name: str) -> None:
        if name != GROUND_NODE and name not in self._nodes:
            raise ValueError(f"unknown node {name!r}")

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> dict[str, GridNode]:
        """Mapping of node name to node (excluding the implicit ground)."""
        return self._nodes

    @property
    def resistors(self) -> dict[str, Resistor]:
        """Mapping of resistor name to resistor."""
        return self._resistors

    @property
    def voltage_sources(self) -> dict[str, VoltageSource]:
        """Mapping of voltage-source name to voltage source."""
        return self._voltage_sources

    @property
    def current_sources(self) -> dict[str, CurrentSource]:
        """Mapping of current-source name to current source."""
        return self._current_sources

    def node(self, name: str) -> GridNode:
        """Return the node called ``name``.

        Raises:
            KeyError: If the node does not exist.
        """
        return self._nodes[name]

    def __contains__(self, node_name: str) -> bool:
        return node_name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def iter_resistors(self) -> Iterator[Resistor]:
        """Iterate over the resistive branches in insertion order."""
        return iter(self._resistors.values())

    def iter_loads(self) -> Iterator[CurrentSource]:
        """Iterate over the workload current sources in insertion order."""
        return iter(self._current_sources.values())

    def iter_pads(self) -> Iterator[VoltageSource]:
        """Iterate over the supply pads in insertion order."""
        return iter(self._voltage_sources.values())

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def node_index(self) -> dict[str, int]:
        """Return a stable node-name -> dense index mapping.

        The mapping is cached and invalidated when nodes are added.  The
        ground node is not part of the mapping.
        """
        if self._node_index is None:
            self._node_index = {name: i for i, name in enumerate(self._nodes)}
        return self._node_index

    def compile(self) -> CompiledGrid:
        """Return the array-backed :class:`CompiledGrid` form of this network.

        The compiled form is cached and invalidated whenever an element is
        added, so repeated analyses of an unchanged network compile once.
        """
        if self._compiled is None:
            self._compiled = CompiledGrid(self)
        return self._compiled

    def statistics(self) -> GridStatistics:
        """Return the Table II-style size statistics of the grid."""
        return GridStatistics(
            num_nodes=len(self._nodes),
            num_resistors=len(self._resistors),
            num_sources=len(self._voltage_sources),
            num_loads=len(self._current_sources),
        )

    def total_load_current(self) -> float:
        """Return the total workload current drawn from the grid, in amperes."""
        return sum(source.current for source in self._current_sources.values())

    def pad_nodes(self) -> set[str]:
        """Return the set of node names that carry a supply pad."""
        return {source.node for source in self._voltage_sources.values()}

    def load_by_node(self) -> dict[str, float]:
        """Return the total load current attached to each node."""
        loads: dict[str, float] = {}
        for source in self._current_sources.values():
            loads[source.node] = loads.get(source.node, 0.0) + source.current
        return loads

    def lines(self) -> dict[int, list[Resistor]]:
        """Group wire-segment resistors by their power-grid line id.

        Vias and resistors without a line id (``line_id == -1``) are not
        included.
        """
        groups: dict[int, list[Resistor]] = {}
        for resistor in self._resistors.values():
            if resistor.line_id < 0:
                continue
            groups.setdefault(resistor.line_id, []).append(resistor)
        return groups

    def to_graph(self) -> nx.Graph:
        """Return an undirected NetworkX graph of the resistive network.

        Nodes keep their coordinates and layer as attributes; edges carry the
        branch resistance and the originating resistor name.  The ground node
        is included if any resistor references it.
        """
        graph = nx.Graph()
        for node in self._nodes.values():
            graph.add_node(node.name, x=node.x, y=node.y, layer=node.layer)
        for resistor in self._resistors.values():
            graph.add_edge(
                resistor.node_a,
                resistor.node_b,
                resistance=resistor.resistance,
                name=resistor.name,
            )
        return graph

    def is_connected_to_pads(self) -> bool:
        """Check that every node can reach at least one supply pad.

        A disconnected node would make the conductance matrix singular, so
        the analysis engine and the grid builder use this check as a guard.
        """
        pads = self.pad_nodes()
        if not pads:
            return False
        graph = self.to_graph()
        reachable: set[str] = set()
        for pad in pads:
            if pad in graph:
                reachable |= nx.node_connected_component(graph, pad)
        return all(name in reachable for name in self._nodes)

    # ------------------------------------------------------------------
    # Copying / modification helpers
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "PowerGridNetwork":
        """Return a shallow copy of the grid (elements are immutable)."""
        clone = PowerGridNetwork(name=name or self.name, vdd=self.vdd)
        clone._nodes = dict(self._nodes)
        clone._resistors = dict(self._resistors)
        clone._voltage_sources = dict(self._voltage_sources)
        clone._current_sources = dict(self._current_sources)
        # Callers (with_scaled_loads, replace_loads, NetworkPerturbator)
        # overwrite the element dicts wholesale after copying, bypassing the
        # add_* invalidation hooks — reset the derived caches explicitly so
        # the clone can never serve a stale compiled form.
        clone._node_index = None
        clone._compiled = None
        return clone

    def with_scaled_loads(self, factor: float, name: str | None = None) -> "PowerGridNetwork":
        """Return a copy of the grid with every load current scaled by ``factor``."""
        clone = self.copy(name=name)
        clone._current_sources = {
            src_name: source.scaled(factor)
            for src_name, source in self._current_sources.items()
        }
        return clone

    def replace_loads(
        self, loads: Iterable[CurrentSource], name: str | None = None
    ) -> "PowerGridNetwork":
        """Return a copy of the grid with its loads replaced by ``loads``."""
        clone = self.copy(name=name)
        clone._current_sources = {}
        for source in loads:
            clone.add_current_source(source)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        stats = self.statistics()
        return (
            f"PowerGridNetwork(name={self.name!r}, nodes={stats.num_nodes}, "
            f"resistors={stats.num_resistors}, sources={stats.num_sources}, "
            f"loads={stats.num_loads})"
        )
