"""Circuit elements of a power-grid netlist.

The IBM power-grid benchmarks (Nassif, ASP-DAC 2008) describe a power grid as
a flat SPICE netlist made of three element types:

* resistors (``R``) for the metal wire segments and vias,
* independent voltage sources (``V``) for the Vdd / ground pads, and
* independent current sources (``I``) for the workloads (switching current
  drawn by the underlying functional blocks).

This module defines small immutable dataclasses for those elements plus the
grid node.  The elements reference nodes by name; the
:class:`repro.grid.network.PowerGridNetwork` container owns the name ->
:class:`GridNode` mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

GROUND_NODE = "0"
"""Conventional name of the ground / reference node in SPICE netlists."""


@dataclass(frozen=True)
class GridNode:
    """A node of the power-grid network.

    Attributes:
        name: Unique node name (e.g. ``"n1_120_340"``).
        x: X coordinate in um within the core area.
        y: Y coordinate in um within the core area.
        layer: Name of the metal layer the node lies on (``"M5"``, ``"M6"``,
            ...) or ``"PAD"`` for package bump locations.
    """

    name: str
    x: float
    y: float
    layer: str = "M6"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be non-empty")
        if self.name == GROUND_NODE:
            raise ValueError("the ground node is implicit and cannot be added")

    @property
    def position(self) -> tuple[float, float]:
        """Return the ``(x, y)`` position of the node."""
        return (self.x, self.y)


@dataclass(frozen=True)
class Resistor:
    """A resistive branch (wire segment or via) of the power grid.

    Attributes:
        name: Unique element name, e.g. ``"R12"``.
        node_a: Name of the first terminal node.
        node_b: Name of the second terminal node.
        resistance: Resistance in ohms (must be positive).
        layer: Metal layer of the segment, or ``"VIA"`` for a via.
        width: Drawn wire width in um (0 for vias / unknown).
        length: Segment length in um (0 for vias / unknown).
        line_id: Index of the power-grid line (stripe) this segment belongs
            to, or ``-1`` if it is not part of a stripe (e.g. a via).
    """

    name: str
    node_a: str
    node_b: str
    resistance: float
    layer: str = "M6"
    width: float = 0.0
    length: float = 0.0
    line_id: int = -1

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError(f"resistor {self.name!r} must have positive resistance")
        if self.node_a == self.node_b:
            raise ValueError(f"resistor {self.name!r} connects a node to itself")

    @property
    def is_via(self) -> bool:
        """True if this resistor models a via between two metal layers."""
        return self.layer.upper() == "VIA"

    def other(self, node: str) -> str:
        """Return the terminal opposite to ``node``.

        Raises:
            ValueError: If ``node`` is not a terminal of this resistor.
        """
        if node == self.node_a:
            return self.node_b
        if node == self.node_b:
            return self.node_a
        raise ValueError(f"{node!r} is not a terminal of resistor {self.name!r}")


@dataclass(frozen=True)
class CurrentSource:
    """A workload current drawn from the grid by a functional block.

    The source sinks ``current`` amperes from ``node`` to ground, modelling
    the switching current of the logic underneath that grid location.

    Attributes:
        name: Unique element name, e.g. ``"I37"``.
        node: Grid node the current is drawn from.
        current: Drawn current in amperes (non-negative).
        block: Optional name of the functional block this load belongs to.
    """

    name: str
    node: str
    current: float
    block: str = ""

    def __post_init__(self) -> None:
        if self.current < 0:
            raise ValueError(f"current source {self.name!r} must be non-negative")

    def scaled(self, factor: float) -> "CurrentSource":
        """Return a copy of this source with its current multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return CurrentSource(
            name=self.name,
            node=self.node,
            current=self.current * factor,
            block=self.block,
        )


@dataclass(frozen=True)
class VoltageSource:
    """An ideal supply pad (Vdd bump) tying a grid node to the supply rail.

    Attributes:
        name: Unique element name, e.g. ``"V3"``.
        node: Grid node the pad is attached to.
        voltage: Pad voltage in volts (non-negative; Vdd for power nets,
            0 for ground nets).
    """

    name: str
    node: str
    voltage: float

    def __post_init__(self) -> None:
        if self.voltage < 0:
            raise ValueError(f"voltage source {self.name!r} must be non-negative")
