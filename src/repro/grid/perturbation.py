"""Perturbation engine for test-set generation.

Section IV-D of the paper generates the *test* dataset by perturbing the same
designs used for training: branch currents, node voltages and the switching
current of the functional blocks are changed by a perturbation size
``gamma`` (10 % by default), and Section V-F sweeps ``gamma`` from 10 % to
30 % to study how the prediction error grows.

This module implements that perturbation on both levels of the model:

* :class:`FloorplanPerturbator` perturbs the block switching currents and pad
  voltages of a :class:`~repro.grid.floorplan.Floorplan` (the representation
  the DL flow consumes), and
* :class:`NetworkPerturbator` perturbs the loads / pad voltages of an already
  built :class:`~repro.grid.network.PowerGridNetwork` (the representation the
  conventional analysis consumes).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from .compiled import CompiledGrid
from .elements import CurrentSource, VoltageSource
from .floorplan import Floorplan
from .network import PowerGridNetwork


class PerturbationKind(str, Enum):
    """Which quantities are perturbed, matching the three curves of Fig. 9."""

    NODE_VOLTAGES = "node_voltages"
    CURRENT_WORKLOADS = "current_workloads"
    BOTH = "both"


@dataclass(frozen=True)
class PerturbationSpec:
    """Specification of a perturbation experiment.

    Attributes:
        gamma: Perturbation size as a fraction (0.10 for the paper's 10 %).
        kind: Which quantities to perturb.
        seed: Random seed for reproducibility.
    """

    gamma: float
    kind: PerturbationKind = PerturbationKind.BOTH
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.gamma < 1:
            raise ValueError("gamma must be in [0, 1)")

    @property
    def perturbs_currents(self) -> bool:
        """True if workload currents are perturbed."""
        return self.kind in (PerturbationKind.CURRENT_WORKLOADS, PerturbationKind.BOTH)

    @property
    def perturbs_voltages(self) -> bool:
        """True if supply/node voltages are perturbed."""
        return self.kind in (PerturbationKind.NODE_VOLTAGES, PerturbationKind.BOTH)


def _relative_jitter(rng: np.random.Generator, size: int, gamma: float) -> np.ndarray:
    """Return multiplicative factors uniformly distributed in ``1 +/- gamma``."""
    return 1.0 + rng.uniform(-gamma, gamma, size=size)


class FloorplanPerturbator:
    """Perturb the switching currents and pad voltages of a floorplan."""

    def __init__(self, spec: PerturbationSpec) -> None:
        self.spec = spec

    def perturb(self, floorplan: Floorplan, name: str | None = None) -> Floorplan:
        """Return a perturbed copy of ``floorplan``.

        Block switching currents are scaled by independent factors in
        ``1 +/- gamma`` when the spec perturbs currents; pad voltages are
        scaled similarly when the spec perturbs voltages.
        """
        rng = np.random.default_rng(self.spec.seed)
        blocks = list(floorplan.iter_blocks())
        pads = list(floorplan.iter_pads())

        if self.spec.perturbs_currents and blocks:
            factors = _relative_jitter(rng, len(blocks), self.spec.gamma)
            blocks = [
                block.with_current(block.switching_current * factor)
                for block, factor in zip(blocks, factors)
            ]
        if self.spec.perturbs_voltages and pads:
            factors = _relative_jitter(rng, len(pads), self.spec.gamma)
            pads = [
                type(pad)(name=pad.name, x=pad.x, y=pad.y, voltage=pad.voltage * factor)
                for pad, factor in zip(pads, factors)
            ]

        return Floorplan(
            name=name or f"{floorplan.name}_perturbed",
            core_width=floorplan.core_width,
            core_height=floorplan.core_height,
            blocks=blocks,
            pads=pads,
        )


class NetworkPerturbator:
    """Perturb the loads and pad voltages of a built power-grid network."""

    def __init__(self, spec: PerturbationSpec) -> None:
        self.spec = spec

    def perturb(self, network: PowerGridNetwork, name: str | None = None) -> PowerGridNetwork:
        """Return a perturbed copy of ``network``.

        Load currents (the benchmark's ``I`` elements) and pad voltages (the
        ``V`` elements) are scaled by independent factors in ``1 +/- gamma``
        according to the perturbation kind.  Wire resistances are left
        untouched: the paper perturbs the electrical operating point, not the
        extracted geometry.
        """
        rng = np.random.default_rng(self.spec.seed)
        clone = network.copy(name=name or f"{network.name}_perturbed")

        if self.spec.perturbs_currents and clone.current_sources:
            loads = list(clone.current_sources.values())
            factors = _relative_jitter(rng, len(loads), self.spec.gamma)
            clone._current_sources = {
                load.name: CurrentSource(
                    name=load.name,
                    node=load.node,
                    current=load.current * factor,
                    block=load.block,
                )
                for load, factor in zip(loads, factors)
            }

        if self.spec.perturbs_voltages and clone.voltage_sources:
            pads = list(clone.voltage_sources.values())
            factors = _relative_jitter(rng, len(pads), self.spec.gamma)
            clone._voltage_sources = {
                pad.name: VoltageSource(
                    name=pad.name,
                    node=pad.node,
                    voltage=pad.voltage * factor,
                )
                for pad, factor in zip(pads, factors)
            }
        return clone


def perturbed_load_matrix(
    network: PowerGridNetwork | CompiledGrid,
    spec: PerturbationSpec,
    num_scenarios: int,
) -> np.ndarray:
    """Generate per-node load vectors for a current-only perturbation sweep.

    Scenario ``i`` jitters every current source by independent factors in
    ``1 +/- gamma`` drawn from ``default_rng(spec.seed + i)`` — scenario
    ``i`` therefore matches ``NetworkPerturbator`` run with the same spec at
    seed ``spec.seed + i``.  Because only the right-hand side changes, the
    whole sweep can be solved against a single cached factorization by
    :class:`~repro.analysis.engine.BatchedAnalysisEngine`.

    Args:
        network: The base grid (or its compiled form).
        spec: Perturbation specification; must not perturb voltages (a pad
            voltage change needs a rebuilt network, even though it too would
            reuse the factorization).
        num_scenarios: Number of load scenarios to generate.

    Returns:
        ``(num_scenarios, num_nodes)`` per-node current matrix in compiled
        node order.

    Raises:
        ValueError: If the spec perturbs voltages or ``num_scenarios < 1``.
    """
    if spec.perturbs_voltages:
        raise ValueError(
            "perturbed_load_matrix only supports current-only perturbations; "
            "use NetworkPerturbator for voltage perturbations"
        )
    if num_scenarios < 1:
        raise ValueError("num_scenarios must be at least 1")
    compiled = network if isinstance(network, CompiledGrid) else network.compile()
    num_sources = len(compiled.load_names)
    if num_sources == 0:
        return np.zeros((num_scenarios, compiled.num_nodes))
    factors = np.empty((num_scenarios, num_sources), dtype=float)
    for scenario in range(num_scenarios):
        rng = np.random.default_rng(spec.seed + scenario)
        factors[scenario] = _relative_jitter(rng, num_sources, spec.gamma)
    per_source = factors * compiled.load_current
    return np.asarray(compiled.load_incidence.T.dot(per_source.T)).T


def perturbed_pad_voltage_matrix(
    network: PowerGridNetwork | CompiledGrid,
    spec: PerturbationSpec,
    num_scenarios: int,
) -> np.ndarray:
    """Generate per-pad voltage rows for a voltage-only perturbation sweep.

    Scenario ``i`` jitters every supply pad by independent factors in
    ``1 +/- gamma`` drawn from ``default_rng(spec.seed + i)`` — scenario
    ``i`` therefore matches ``NetworkPerturbator`` run with the same spec at
    seed ``spec.seed + i``.  Pad voltages only enter the right-hand side, so
    the whole sweep can be solved against one cached factorization by
    :meth:`~repro.analysis.engine.BatchedAnalysisEngine.analyze_pad_batch`
    (the Fig. 9 NODE_VOLTAGES sweep run multi-RHS).

    Args:
        network: The base grid (or its compiled form).
        spec: Perturbation specification; must perturb voltages only (a
            current perturbation belongs in the load matrix).
        num_scenarios: Number of pad-voltage scenarios to generate.

    Returns:
        ``(num_scenarios, num_pads)`` per-pad voltage matrix aligned with
        the compiled grid's ``pad_names``.

    Raises:
        ValueError: If the spec perturbs currents or ``num_scenarios < 1``.
    """
    if spec.kind is not PerturbationKind.NODE_VOLTAGES:
        raise ValueError(
            "perturbed_pad_voltage_matrix only supports voltage-only perturbations; "
            "use perturbed_load_matrix for current perturbations"
        )
    if num_scenarios < 1:
        raise ValueError("num_scenarios must be at least 1")
    compiled = network if isinstance(network, CompiledGrid) else network.compile()
    base = compiled.pad_voltage_values
    factors = np.empty((num_scenarios, base.size), dtype=float)
    for scenario in range(num_scenarios):
        rng = np.random.default_rng(spec.seed + scenario)
        factors[scenario] = _relative_jitter(rng, base.size, spec.gamma)
    return factors * base


def floorplan_perturbed_load_matrix(
    network: PowerGridNetwork | CompiledGrid,
    floorplan: Floorplan,
    spec: PerturbationSpec,
    num_scenarios: int,
) -> np.ndarray:
    """Per-node load scenarios matching floorplan-level block perturbation.

    Scenario ``i`` reproduces the loads of a grid rebuilt (same topology and
    widths) from ``FloorplanPerturbator`` applied at seed ``spec.seed + i``:
    per-*block* jitter factors are drawn exactly like the floorplan
    perturbator draws them and mapped onto the grid's current sources
    through their block attribution — without rebuilding anything.  This is
    how the Fig. 9 golden workload scenarios are generated on the engine.

    Args:
        network: The base grid (or its compiled form), built from
            ``floorplan``.
        floorplan: The floorplan whose block ordering defines the factor
            columns.
        spec: Perturbation specification; must perturb currents only.
        num_scenarios: Number of load scenarios to generate.

    Returns:
        ``(num_scenarios, num_nodes)`` per-node current matrix in compiled
        node order.

    Raises:
        ValueError: If the spec perturbs voltages or ``num_scenarios < 1``.
    """
    if spec.perturbs_voltages:
        raise ValueError(
            "floorplan_perturbed_load_matrix only supports current-only perturbations"
        )
    if num_scenarios < 1:
        raise ValueError("num_scenarios must be at least 1")
    compiled = network if isinstance(network, CompiledGrid) else network.compile()
    blocks = list(floorplan.iter_blocks())
    block_names = tuple(block.name for block in blocks)
    factors = np.empty((num_scenarios, len(blocks)), dtype=float)
    for scenario in range(num_scenarios):
        rng = np.random.default_rng(spec.seed + scenario)
        factors[scenario] = _relative_jitter(rng, len(blocks), spec.gamma)
    return compiled.block_factor_load_matrix(block_names, factors)


def mega_sweep_matrices(
    network: PowerGridNetwork | CompiledGrid,
    floorplan: Floorplan,
    gamma: float,
    num_load_scenarios: int,
    num_pad_scenarios: int,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Load and pad-voltage matrices for a combined cross-product mega-sweep.

    Pairs :func:`floorplan_perturbed_load_matrix` (block-level workload
    jitter) with :func:`perturbed_pad_voltage_matrix` (supply jitter) on
    disjoint seed ranges, producing the two inputs of
    :meth:`~repro.analysis.engine.BatchedAnalysisEngine.analyze_mega_sweep`
    — ``num_load_scenarios * num_pad_scenarios`` combined scenarios from
    ``num_load_scenarios + num_pad_scenarios`` stored rows.

    Args:
        network: The base grid (or its compiled form), built from
            ``floorplan``.
        floorplan: The floorplan whose blocks drive the workload jitter.
        gamma: Perturbation size applied to both currents and voltages.
        num_load_scenarios: Number of workload (load-matrix) rows.
        num_pad_scenarios: Number of supply (pad-voltage) rows.
        seed: Base seed; pad scenarios use ``seed + num_load_scenarios``
            onward so no scenario shares a generator with a load row.

    Returns:
        ``(load_matrix, pad_voltage_matrix)`` of shapes
        ``(num_load_scenarios, num_nodes)`` and
        ``(num_pad_scenarios, num_pads)``.
    """
    current_spec = PerturbationSpec(
        gamma=gamma, kind=PerturbationKind.CURRENT_WORKLOADS, seed=seed
    )
    voltage_spec = PerturbationSpec(
        gamma=gamma, kind=PerturbationKind.NODE_VOLTAGES, seed=seed + num_load_scenarios
    )
    load_matrix = floorplan_perturbed_load_matrix(
        network, floorplan, current_spec, num_load_scenarios
    )
    pad_matrix = perturbed_pad_voltage_matrix(network, voltage_spec, num_pad_scenarios)
    return load_matrix, pad_matrix


def perturbation_sweep(gammas: list[float] | None = None) -> list[PerturbationSpec]:
    """Return the Fig. 9 sweep: every gamma x every perturbation kind.

    Args:
        gammas: Perturbation sizes; defaults to the paper's 10-30 % range.
    """
    if gammas is None:
        gammas = [0.10, 0.15, 0.20, 0.25, 0.30]
    specs = []
    for gamma in gammas:
        for kind in PerturbationKind:
            specs.append(PerturbationSpec(gamma=gamma, kind=kind, seed=int(gamma * 1000)))
    return specs
