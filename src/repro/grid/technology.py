"""Technology parameters for on-chip power grid design.

The paper sizes power-grid interconnects against three technology-level
quantities (Section III of the paper):

* the sheet resistance ``rho`` of the metal layers, which converts a wire
  geometry (length, width) into an electrical resistance ``R = rho * l / w``;
* the maximum allowed current density ``Jmax`` used for the electromigration
  (EM) constraint ``I_i / w_i <= Jmax`` (eq. 4);
* the supply voltage ``Vdd`` and the allowed worst-case IR-drop margin,
  usually expressed as a percentage of ``Vdd``.

All geometric quantities in this package are expressed in micrometres (um),
currents in amperes (A), voltages in volts (V) and resistances in ohms.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MetalLayerSpec:
    """Physical description of one metal layer used for power routing.

    Attributes:
        name: Layer name, e.g. ``"M5"``.
        sheet_resistance: Sheet resistance in ohm/square.
        min_width: Minimum drawable wire width in um.
        max_width: Maximum wire width allowed by the design rules in um.
        min_spacing: Minimum spacing between two parallel wires in um.
        direction: Preferred routing direction, ``"horizontal"`` or
            ``"vertical"``.
        thickness: Metal thickness in um (used only for reporting; the EM
            constraint in the paper is expressed per unit width).
    """

    name: str
    sheet_resistance: float
    min_width: float
    max_width: float
    min_spacing: float
    direction: str
    thickness: float = 0.5

    def __post_init__(self) -> None:
        if self.sheet_resistance <= 0:
            raise ValueError("sheet_resistance must be positive")
        if self.min_width <= 0:
            raise ValueError("min_width must be positive")
        if self.max_width < self.min_width:
            raise ValueError("max_width must be >= min_width")
        if self.min_spacing <= 0:
            raise ValueError("min_spacing must be positive")
        if self.direction not in ("horizontal", "vertical"):
            raise ValueError("direction must be 'horizontal' or 'vertical'")

    def wire_resistance(self, length: float, width: float) -> float:
        """Return the resistance of a wire segment on this layer.

        Implements ``R = rho * l / w`` (paper eq. 1 rearranged).

        Args:
            length: Segment length in um.
            width: Segment width in um.

        Returns:
            Resistance in ohms.

        Raises:
            ValueError: If ``length`` is negative or ``width`` is not positive.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        if width <= 0:
            raise ValueError("width must be positive")
        return self.sheet_resistance * length / width


@dataclass(frozen=True)
class Technology:
    """A named collection of technology parameters for power planning.

    Attributes:
        name: Technology node name, e.g. ``"generic-45nm"``.
        vdd: Nominal supply voltage in volts.
        jmax: Maximum current density for EM, in A per um of wire width.
        ir_drop_limit_fraction: Allowed worst-case IR drop as a fraction of
            ``vdd`` (a common sign-off budget is 5-10 %).
        layers: Metal layers available for power routing, ordered from the
            lower layer to the upper layer.
        via_resistance: Resistance of a single via cut between two adjacent
            power layers, in ohms.
    """

    name: str
    vdd: float
    jmax: float
    ir_drop_limit_fraction: float
    layers: tuple[MetalLayerSpec, ...]
    via_resistance: float = 0.5

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        if self.jmax <= 0:
            raise ValueError("jmax must be positive")
        if not 0 < self.ir_drop_limit_fraction < 1:
            raise ValueError("ir_drop_limit_fraction must be in (0, 1)")
        if not self.layers:
            raise ValueError("at least one metal layer is required")
        if self.via_resistance < 0:
            raise ValueError("via_resistance must be non-negative")

    @property
    def ir_drop_limit(self) -> float:
        """Allowed worst-case IR drop in volts."""
        return self.vdd * self.ir_drop_limit_fraction

    def layer(self, name: str) -> MetalLayerSpec:
        """Return the metal layer called ``name``.

        Raises:
            KeyError: If no layer with that name exists.
        """
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"unknown metal layer {name!r}")

    @property
    def horizontal_layer(self) -> MetalLayerSpec:
        """The first layer whose preferred direction is horizontal."""
        for layer in self.layers:
            if layer.direction == "horizontal":
                return layer
        raise ValueError("technology has no horizontal power layer")

    @property
    def vertical_layer(self) -> MetalLayerSpec:
        """The first layer whose preferred direction is vertical."""
        for layer in self.layers:
            if layer.direction == "vertical":
                return layer
        raise ValueError("technology has no vertical power layer")

    def with_vdd(self, vdd: float) -> "Technology":
        """Return a copy of this technology with a different supply voltage."""
        return replace(self, vdd=vdd)


def generic_45nm() -> Technology:
    """Return a generic 45 nm-class technology for synthetic benchmarks.

    The values are representative of published 45 nm power-delivery numbers
    (sheet resistance of a few tens of milliohm/square on thick upper metals,
    1.0-1.1 V supply, EM limits of a few mA per um of width). They are not
    tied to any proprietary PDK.
    """
    layers = (
        MetalLayerSpec(
            name="M5",
            sheet_resistance=0.08,
            min_width=0.4,
            max_width=30.0,
            min_spacing=0.4,
            direction="vertical",
            thickness=0.45,
        ),
        MetalLayerSpec(
            name="M6",
            sheet_resistance=0.04,
            min_width=0.8,
            max_width=30.0,
            min_spacing=0.8,
            direction="horizontal",
            thickness=0.9,
        ),
    )
    return Technology(
        name="generic-45nm",
        vdd=1.0,
        jmax=1.0e-2,
        ir_drop_limit_fraction=0.10,
        layers=layers,
        via_resistance=0.5,
    )


def generic_65nm() -> Technology:
    """Return a generic 65 nm-class technology (slightly more resistive)."""
    layers = (
        MetalLayerSpec(
            name="M5",
            sheet_resistance=0.10,
            min_width=0.5,
            max_width=35.0,
            min_spacing=0.5,
            direction="vertical",
            thickness=0.5,
        ),
        MetalLayerSpec(
            name="M6",
            sheet_resistance=0.05,
            min_width=1.0,
            max_width=35.0,
            min_spacing=1.0,
            direction="horizontal",
            thickness=1.0,
        ),
    )
    return Technology(
        name="generic-65nm",
        vdd=1.1,
        jmax=8.0e-3,
        ir_drop_limit_fraction=0.10,
        layers=layers,
        via_resistance=0.8,
    )


DEFAULT_TECHNOLOGY: Technology = generic_45nm()
"""Technology used by the synthetic benchmark suite unless overridden."""
