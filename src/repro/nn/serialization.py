"""Persistence of trained regression models.

A deployed PowerPlanningDL flow trains once on historical designs and is then
reused across many incremental redesigns, so the trained width model must be
storable.  This module serialises a :class:`~repro.nn.regression.MultiTargetRegressor`
— architecture, layer weights and both scalers — to a single ``.npz`` file
plus and restores it exactly (bit-for-bit predictions).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .network import NetworkArchitecture, NeuralNetwork
from .regression import MultiTargetRegressor, NotFittedError, RegressorConfig
from .scaling import StandardScaler
from .training import TrainingConfig

_FORMAT_VERSION = 1


class ModelFormatError(ValueError):
    """Raised when a model file cannot be loaded."""


def _config_to_dict(config: RegressorConfig) -> dict:
    return {
        "hidden_layers": config.hidden_layers,
        "hidden_width": config.hidden_width,
        "hidden_activation": config.hidden_activation,
        "output_activation": config.output_activation,
        "scale_features": config.scale_features,
        "scale_targets": config.scale_targets,
        "seed": config.seed,
        "training": {
            "epochs": config.training.epochs,
            "batch_size": config.training.batch_size,
            "learning_rate": config.training.learning_rate,
            "optimizer": config.training.optimizer,
            "loss": config.training.loss,
            "validation_split": config.training.validation_split,
            "early_stopping_patience": config.training.early_stopping_patience,
            "shuffle": config.training.shuffle,
            "seed": config.training.seed,
        },
    }


def _config_from_dict(data: dict) -> RegressorConfig:
    training = TrainingConfig(**data["training"])
    return RegressorConfig(
        hidden_layers=data["hidden_layers"],
        hidden_width=data["hidden_width"],
        hidden_activation=data["hidden_activation"],
        output_activation=data["output_activation"],
        training=training,
        scale_features=data["scale_features"],
        scale_targets=data["scale_targets"],
        seed=data["seed"],
    )


def save_regressor(model: MultiTargetRegressor, path: str | Path) -> Path:
    """Save a fitted regressor to ``path`` (``.npz`` format).

    Raises:
        NotFittedError: If the model has not been fitted.
    """
    if model.network is None:
        raise NotFittedError("only fitted models can be saved")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    arrays: dict[str, np.ndarray] = {}
    for index, (weights, bias) in enumerate(model.network.get_parameters()):
        arrays[f"layer_{index}_weights"] = weights
        arrays[f"layer_{index}_bias"] = bias
    if model.feature_scaler.is_fitted:
        arrays["feature_mean"] = model.feature_scaler.mean_
        arrays["feature_scale"] = model.feature_scaler.scale_
    if model.target_scaler.is_fitted:
        arrays["target_mean"] = model.target_scaler.mean_
        arrays["target_scale"] = model.target_scaler.scale_

    architecture = model.network.architecture
    metadata = {
        "format_version": _FORMAT_VERSION,
        "num_layers": len(model.network.layers),
        "config": _config_to_dict(model.config),
        "architecture": {
            "input_size": architecture.input_size,
            "hidden_sizes": list(architecture.hidden_sizes),
            "output_size": architecture.output_size,
            "hidden_activation": architecture.hidden_activation,
            "output_activation": architecture.output_activation,
        },
    }
    arrays["metadata"] = np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **arrays)
    return path


def load_regressor(path: str | Path) -> MultiTargetRegressor:
    """Load a regressor previously stored with :func:`save_regressor`.

    Raises:
        ModelFormatError: If the file is missing fields or has an unsupported
            format version.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as bundle:
        if "metadata" not in bundle:
            raise ModelFormatError(f"{path} is not a repro model file")
        metadata = json.loads(bytes(bundle["metadata"].tobytes()).decode("utf-8"))
        if metadata.get("format_version") != _FORMAT_VERSION:
            raise ModelFormatError(
                f"unsupported model format version {metadata.get('format_version')!r}"
            )

        config = _config_from_dict(metadata["config"])
        model = MultiTargetRegressor(config)
        arch_data = metadata["architecture"]
        architecture = NetworkArchitecture(
            input_size=arch_data["input_size"],
            hidden_sizes=tuple(arch_data["hidden_sizes"]),
            output_size=arch_data["output_size"],
            hidden_activation=arch_data["hidden_activation"],
            output_activation=arch_data["output_activation"],
        )
        network = NeuralNetwork(architecture, seed=config.seed)
        parameters = []
        for index in range(metadata["num_layers"]):
            weights_key = f"layer_{index}_weights"
            bias_key = f"layer_{index}_bias"
            if weights_key not in bundle or bias_key not in bundle:
                raise ModelFormatError(f"{path} is missing parameters for layer {index}")
            parameters.append((bundle[weights_key], bundle[bias_key]))
        network.set_parameters(parameters)
        model.network = network

        if "feature_mean" in bundle:
            scaler = StandardScaler()
            scaler.mean_ = bundle["feature_mean"]
            scaler.scale_ = bundle["feature_scale"]
            model.feature_scaler = scaler
        if "target_mean" in bundle:
            scaler = StandardScaler()
            scaler.mean_ = bundle["target_mean"]
            scaler.scale_ = bundle["target_scale"]
            model.target_scaler = scaler
    return model
