"""Regression metrics: MSE, MAE, r² score, correlation, error histograms.

The paper reports three accuracy quantities:

* the **r² score** (coefficient of determination, its Definition 1) used for
  feature selection (Table I / Fig. 4b) and for model accuracy (Table V);
* the **MSE** (eq. 10) used for model accuracy (Table V) and the
  perturbation sweep (Fig. 9); and
* the **error histogram** of golden minus predicted widths (Fig. 7b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _flatten_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("metrics require at least one sample")
    return y_true, y_pred


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """MSE = mean((y - y')^2), paper eq. (10)."""
    y_true, y_pred = _flatten_pair(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def root_mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Square root of the MSE."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """MAE = mean(|y - y'|)."""
    y_true, y_pred = _flatten_pair(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def mean_absolute_percentage_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """MAPE in percent; samples with zero truth are skipped."""
    y_true, y_pred = _flatten_pair(y_true, y_pred)
    nonzero = y_true != 0
    if not np.any(nonzero):
        raise ValueError("MAPE undefined: every target is zero")
    return float(np.mean(np.abs((y_true[nonzero] - y_pred[nonzero]) / y_true[nonzero])) * 100.0)


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination (paper Definition 1).

    ``1 - SS_res / SS_tot``; a constant target vector yields 0.0 when the
    prediction matches it exactly and a large negative value otherwise,
    matching the scikit-learn convention closely enough for the paper's use.
    """
    y_true, y_pred = _flatten_pair(y_true, y_pred)
    residual = np.sum((y_true - y_pred) ** 2)
    total = np.sum((y_true - y_true.mean()) ** 2)
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return float(1.0 - residual / total)


def pearson_correlation(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Pearson correlation coefficient between truth and prediction (Fig. 7a)."""
    y_true, y_pred = _flatten_pair(y_true, y_pred)
    if np.std(y_true) == 0.0 or np.std(y_pred) == 0.0:
        return 0.0
    return float(np.corrcoef(y_true, y_pred)[0, 1])


@dataclass(frozen=True)
class ErrorHistogram:
    """Histogram of prediction errors (golden minus predicted), Fig. 7(b).

    Attributes:
        bin_edges: Bin edges, length ``num_bins + 1``.
        counts: Number of samples per bin, length ``num_bins``.
        overpredicted: Number of samples with negative error (prediction too
            large), matching the paper's "overpredicted" annotation.
        underpredicted: Number of samples with positive error.
    """

    bin_edges: np.ndarray
    counts: np.ndarray
    overpredicted: int
    underpredicted: int

    @property
    def num_samples(self) -> int:
        """Total number of histogrammed samples."""
        return int(self.counts.sum())

    @property
    def peak_bin_center(self) -> float:
        """Centre of the most populated bin (the paper's peak sits near 0)."""
        index = int(np.argmax(self.counts))
        return float((self.bin_edges[index] + self.bin_edges[index + 1]) / 2.0)


def error_histogram(
    y_true: np.ndarray, y_pred: np.ndarray, num_bins: int = 41, limit: float | None = None
) -> ErrorHistogram:
    """Build the Fig. 7(b)-style histogram of ``golden - predicted`` errors.

    Args:
        y_true: Golden values.
        y_pred: Predicted values.
        num_bins: Number of histogram bins (odd keeps a bin centred at 0).
        limit: Symmetric histogram range; defaults to the largest absolute
            error.
    """
    y_true, y_pred = _flatten_pair(y_true, y_pred)
    errors = y_true - y_pred
    if limit is None:
        limit = float(max(np.max(np.abs(errors)), 1e-12))
    counts, edges = np.histogram(errors, bins=num_bins, range=(-limit, limit))
    return ErrorHistogram(
        bin_edges=edges,
        counts=counts,
        overpredicted=int(np.sum(errors < 0)),
        underpredicted=int(np.sum(errors > 0)),
    )


def relative_mse_percent(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """MSE normalised by the target variance, in percent.

    This is the quantity Fig. 9 plots ("MSE(%)"): it is scale-free, so the
    perturbation sweep is comparable across benchmarks of different sizes.
    """
    y_true, y_pred = _flatten_pair(y_true, y_pred)
    variance = float(np.var(y_true))
    if variance == 0.0:
        return 0.0 if np.allclose(y_true, y_pred) else 100.0
    return mean_squared_error(y_true, y_pred) / variance * 100.0
