"""Gradient-descent optimizers.

The paper trains its model with the Adam optimizer (its ref. [13]); SGD and
SGD-with-momentum are also provided for the ablation benches and as simpler
baselines.  Optimizers operate on the generic ``parameters`` / ``gradients``
dictionaries exposed by :class:`~repro.nn.layers.DenseLayer`, keyed by a
``(layer_index, parameter_name)`` pair so per-parameter state (momentum,
Adam moments) survives across steps.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class Optimizer(ABC):
    """Base class for optimizers updating layer parameters in place."""

    def __init__(self, learning_rate: float = 1e-3) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate

    @abstractmethod
    def update(self, key: tuple[int, str], parameter: np.ndarray, gradient: np.ndarray) -> None:
        """Update ``parameter`` in place using ``gradient``.

        Args:
            key: Unique identifier of the parameter (layer index, name).
            parameter: The parameter array to update in place.
            gradient: The gradient of the loss with respect to the parameter.
        """

    def step(self, layers) -> None:
        """Apply one update step to every parameter of every layer."""
        for layer_index, layer in enumerate(layers):
            for name, parameter in layer.parameters.items():
                gradient = layer.gradients[name]
                self.update((layer_index, name), parameter, gradient)

    def reset(self) -> None:
        """Clear any per-parameter state (momenta, step counters)."""


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    def update(self, key: tuple[int, str], parameter: np.ndarray, gradient: np.ndarray) -> None:
        parameter -= self.learning_rate * gradient


class MomentumSGD(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, learning_rate: float = 1e-3, momentum: float = 0.9) -> None:
        super().__init__(learning_rate)
        if not 0 <= momentum < 1:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: dict[tuple[int, str], np.ndarray] = {}

    def update(self, key: tuple[int, str], parameter: np.ndarray, gradient: np.ndarray) -> None:
        velocity = self._velocity.get(key)
        if velocity is None:
            velocity = np.zeros_like(parameter)
        velocity = self.momentum * velocity - self.learning_rate * gradient
        self._velocity[key] = velocity
        parameter += velocity

    def reset(self) -> None:
        self._velocity.clear()


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2014) — the optimizer used by the paper.

    Args:
        learning_rate: Step size.
        beta1: Exponential decay of the first-moment estimate.
        beta2: Exponential decay of the second-moment estimate.
        epsilon: Numerical stabiliser added to the denominator.
    """

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        if not 0 <= beta1 < 1:
            raise ValueError("beta1 must be in [0, 1)")
        if not 0 <= beta2 < 1:
            raise ValueError("beta2 must be in [0, 1)")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._first_moment: dict[tuple[int, str], np.ndarray] = {}
        self._second_moment: dict[tuple[int, str], np.ndarray] = {}
        self._steps: dict[tuple[int, str], int] = {}

    def update(self, key: tuple[int, str], parameter: np.ndarray, gradient: np.ndarray) -> None:
        first = self._first_moment.get(key)
        second = self._second_moment.get(key)
        if first is None or second is None:
            first = np.zeros_like(parameter)
            second = np.zeros_like(parameter)
        step = self._steps.get(key, 0) + 1

        first = self.beta1 * first + (1.0 - self.beta1) * gradient
        second = self.beta2 * second + (1.0 - self.beta2) * gradient**2
        first_hat = first / (1.0 - self.beta1**step)
        second_hat = second / (1.0 - self.beta2**step)
        parameter -= self.learning_rate * first_hat / (np.sqrt(second_hat) + self.epsilon)

        self._first_moment[key] = first
        self._second_moment[key] = second
        self._steps[key] = step

    def reset(self) -> None:
        self._first_moment.clear()
        self._second_moment.clear()
        self._steps.clear()


_OPTIMIZERS: dict[str, type[Optimizer]] = {
    "sgd": SGD,
    "momentum": MomentumSGD,
    "adam": Adam,
}


def get_optimizer(name: str | Optimizer, learning_rate: float = 1e-3) -> Optimizer:
    """Resolve an optimizer by name, or pass an instance through.

    Raises:
        KeyError: If the name is unknown.
    """
    if isinstance(name, Optimizer):
        return name
    try:
        return _OPTIMIZERS[name](learning_rate=learning_rate)
    except KeyError as exc:
        raise KeyError(
            f"unknown optimizer {name!r}; available: {', '.join(_OPTIMIZERS)}"
        ) from exc
