"""High-level multi-target regression estimator.

:class:`MultiTargetRegressor` bundles the pieces a user of the paper's method
actually needs — feature/target scaling, the MLP, the trainer and the
metrics — behind a scikit-learn-style ``fit`` / ``predict`` / ``score``
interface.  The width-prediction model of the PowerPlanningDL framework
(paper Algorithm 1) is a thin wrapper around this class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .metrics import mean_squared_error, r2_score
from .network import NetworkArchitecture, NeuralNetwork
from .scaling import StandardScaler
from .training import Trainer, TrainingConfig, TrainingHistory


@dataclass(frozen=True)
class RegressorConfig:
    """Configuration of the multi-target regressor.

    Attributes:
        hidden_layers: Number of hidden layers (the paper uses 10).
        hidden_width: Units per hidden layer.
        hidden_activation: Hidden-layer activation name.
        output_activation: Output activation name (``linear`` by default).
        training: Training hyper-parameters.
        scale_features: Whether to standardise the input features.
        scale_targets: Whether to standardise the regression targets.
        seed: Seed for weight initialisation.
    """

    hidden_layers: int = 10
    hidden_width: int = 32
    hidden_activation: str = "relu"
    output_activation: str = "linear"
    training: TrainingConfig = TrainingConfig()
    scale_features: bool = True
    scale_targets: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.hidden_layers <= 0:
            raise ValueError("hidden_layers must be positive")
        if self.hidden_width <= 0:
            raise ValueError("hidden_width must be positive")

    @classmethod
    def paper_default(cls, epochs: int = 200, seed: int = 0) -> "RegressorConfig":
        """The paper's configuration: 10 hidden layers trained with Adam/MSE."""
        return cls(
            hidden_layers=10,
            hidden_width=32,
            training=TrainingConfig(epochs=epochs, optimizer="adam", loss="mse", seed=seed),
            seed=seed,
        )

    @classmethod
    def fast(cls, epochs: int = 60, seed: int = 0) -> "RegressorConfig":
        """A smaller, faster configuration used by the test-suite."""
        return cls(
            hidden_layers=3,
            hidden_width=24,
            training=TrainingConfig(
                epochs=epochs, batch_size=64, optimizer="adam", loss="mse", seed=seed,
                early_stopping_patience=10,
            ),
            seed=seed,
        )


class NotFittedError(RuntimeError):
    """Raised when ``predict`` or ``score`` is called before ``fit``."""


class MultiTargetRegressor:
    """Neural-network multi-target regression with built-in scaling.

    Args:
        config: Regressor configuration (architecture + training).
    """

    def __init__(self, config: RegressorConfig | None = None) -> None:
        self.config = config or RegressorConfig()
        self.network: NeuralNetwork | None = None
        self.feature_scaler = StandardScaler()
        self.target_scaler = StandardScaler()
        self.history: TrainingHistory | None = None
        self._num_outputs: int | None = None
        self._num_features: int | None = None

    # ------------------------------------------------------------------
    # Estimator interface
    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, targets: np.ndarray) -> TrainingHistory:
        """Train the regressor on ``(features, targets)``.

        Args:
            features: Array of shape ``(samples, num_features)``.
            targets: Array of shape ``(samples,)`` or ``(samples, num_targets)``.

        Returns:
            The training history.
        """
        features = np.atleast_2d(np.asarray(features, dtype=float))
        targets = np.asarray(targets, dtype=float)
        if targets.ndim == 1:
            targets = targets.reshape(-1, 1)
        if features.shape[0] != targets.shape[0]:
            raise ValueError("features and targets must have the same number of samples")
        self._num_outputs = targets.shape[1]
        self._num_features = features.shape[1]

        scaled_features = (
            self.feature_scaler.fit_transform(features) if self.config.scale_features else features
        )
        scaled_targets = (
            self.target_scaler.fit_transform(targets) if self.config.scale_targets else targets
        )

        architecture = NetworkArchitecture(
            input_size=features.shape[1],
            hidden_sizes=(self.config.hidden_width,) * self.config.hidden_layers,
            output_size=targets.shape[1],
            hidden_activation=self.config.hidden_activation,
            output_activation=self.config.output_activation,
        )
        self.network = NeuralNetwork(architecture, seed=self.config.seed)
        trainer = Trainer(self.network, config=self.config.training)
        self.history = trainer.fit(scaled_features, scaled_targets)
        return self.history

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets in original (unscaled) units.

        A single sample may be passed 1-D; it is promoted to one row.

        Returns:
            Array of shape ``(samples, num_targets)``; single-target models
            still return a 2-D array for consistency.

        Raises:
            NotFittedError: If the model has not been fitted.
            ValueError: If the feature count differs from the one seen
                at fit time.
        """
        if self.network is None:
            raise NotFittedError("fit() must be called before predict()")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        expected = getattr(self, "_num_features", None)
        if expected is not None and features.shape[1] != expected:
            raise ValueError(
                f"expected {expected} features per sample, got {features.shape[1]}"
            )
        scaled = (
            self.feature_scaler.transform(features) if self.config.scale_features else features
        )
        outputs = self.network.predict(scaled)
        if self.config.scale_targets:
            outputs = self.target_scaler.inverse_transform(outputs)
        return outputs

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Return the r² score of the model on ``(features, targets)``."""
        predictions = self.predict(features)
        return r2_score(np.asarray(targets, dtype=float), predictions)

    def mse(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Return the MSE of the model on ``(features, targets)``."""
        predictions = self.predict(features)
        return mean_squared_error(np.asarray(targets, dtype=float), predictions)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """True once the model has been trained."""
        return self.network is not None

    @property
    def num_parameters(self) -> int:
        """Number of trainable parameters of the underlying network.

        Raises:
            NotFittedError: If the model has not been fitted.
        """
        if self.network is None:
            raise NotFittedError("fit() must be called first")
        return self.network.num_parameters
