"""Weight initializers for the from-scratch neural network.

The paper trains a TensorFlow multilayer perceptron; this reproduction
implements the network in NumPy, so the standard initialisation schemes are
provided here: Glorot/Xavier (good default for tanh/sigmoid), He (good for
ReLU) and plain scaled-normal initialisation.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np


class Initializer(Protocol):
    """Callable producing a weight matrix of a requested shape."""

    def __call__(self, rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
        """Return an array of shape ``(fan_in, fan_out)``."""
        ...


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialisation: U(-limit, limit) with
    ``limit = sqrt(6 / (fan_in + fan_out))``."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def xavier_normal(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier normal initialisation with std ``sqrt(2 / (fan_in + fan_out))``."""
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def he_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He (Kaiming) uniform initialisation suited to ReLU layers."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_normal(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He (Kaiming) normal initialisation suited to ReLU layers."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def small_normal(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Plain normal initialisation with a small fixed standard deviation."""
    return rng.normal(0.0, 0.01, size=(fan_in, fan_out))


_INITIALIZERS: dict[str, Initializer] = {
    "xavier_uniform": xavier_uniform,
    "xavier_normal": xavier_normal,
    "he_uniform": he_uniform,
    "he_normal": he_normal,
    "small_normal": small_normal,
}


def get_initializer(name: str | Initializer) -> Initializer:
    """Resolve an initializer by name, or pass a callable through.

    Raises:
        KeyError: If the name is unknown.
    """
    if callable(name):
        return name
    try:
        return _INITIALIZERS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown initializer {name!r}; available: {', '.join(_INITIALIZERS)}"
        ) from exc


def available_initializers() -> tuple[str, ...]:
    """Return the names of the registered initializers."""
    return tuple(_INITIALIZERS)
