"""Mini-batch training loop with validation and early stopping.

The trainer drives a :class:`~repro.nn.network.NeuralNetwork` through
shuffled mini-batches, applies the optimizer after every batch, tracks
training / validation losses per epoch and optionally stops early when the
validation loss has not improved for a configurable number of epochs
(restoring the best weights seen so far).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .losses import Loss, get_loss
from .network import NeuralNetwork
from .optimizers import Optimizer, get_optimizer


@dataclass
class TrainingHistory:
    """Per-epoch record of a training run.

    Attributes:
        train_losses: Mean training loss of each epoch.
        validation_losses: Mean validation loss of each epoch (empty when no
            validation split was used).
        epochs_run: Number of epochs actually executed.
        stopped_early: True if early stopping triggered.
        best_epoch: Index of the epoch with the lowest validation (or
            training) loss.
        training_time: Total wall-clock training time in seconds.
    """

    train_losses: list[float] = field(default_factory=list)
    validation_losses: list[float] = field(default_factory=list)
    epochs_run: int = 0
    stopped_early: bool = False
    best_epoch: int = 0
    training_time: float = 0.0

    @property
    def final_train_loss(self) -> float:
        """Training loss of the last executed epoch."""
        if not self.train_losses:
            raise ValueError("no epochs have been run")
        return self.train_losses[-1]

    @property
    def best_validation_loss(self) -> float:
        """Lowest validation loss observed (falls back to training loss)."""
        losses = self.validation_losses or self.train_losses
        if not losses:
            raise ValueError("no epochs have been run")
        return min(losses)


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of one training run.

    Attributes:
        epochs: Maximum number of epochs.
        batch_size: Mini-batch size.
        learning_rate: Optimizer learning rate.
        optimizer: Optimizer name (``adam`` as in the paper, ``sgd``,
            ``momentum``).
        loss: Loss name (``mse`` as in the paper, ``mae``, ``huber``).
        validation_split: Fraction of the training data held out for
            validation (0 disables validation and early stopping).
        early_stopping_patience: Number of epochs without validation
            improvement before stopping (0 disables early stopping).
        shuffle: Whether to reshuffle the training data every epoch.
        seed: Seed for shuffling and the validation split.
    """

    epochs: int = 200
    batch_size: int = 64
    learning_rate: float = 1e-3
    optimizer: str = "adam"
    loss: str = "mse"
    validation_split: float = 0.1
    early_stopping_patience: int = 15
    shuffle: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0 <= self.validation_split < 1:
            raise ValueError("validation_split must be in [0, 1)")
        if self.early_stopping_patience < 0:
            raise ValueError("early_stopping_patience must be non-negative")


class Trainer:
    """Train a neural network on ``(features, targets)`` arrays.

    Args:
        network: The network to train (updated in place).
        config: Training hyper-parameters.
        optimizer: Optional pre-built optimizer; overrides the config's
            optimizer name.
        loss: Optional pre-built loss; overrides the config's loss name.
    """

    def __init__(
        self,
        network: NeuralNetwork,
        config: TrainingConfig | None = None,
        optimizer: Optimizer | None = None,
        loss: Loss | None = None,
    ) -> None:
        self.network = network
        self.config = config or TrainingConfig()
        self.optimizer = optimizer or get_optimizer(
            self.config.optimizer, learning_rate=self.config.learning_rate
        )
        self.loss = loss or get_loss(self.config.loss)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, targets: np.ndarray) -> TrainingHistory:
        """Train the network and return the training history.

        Args:
            features: Array of shape ``(samples, input_size)``.
            targets: Array of shape ``(samples, output_size)`` or
                ``(samples,)`` for single-target regression.

        Raises:
            ValueError: If features and targets disagree on the sample count
                or the data is empty.
        """
        features = np.atleast_2d(np.asarray(features, dtype=float))
        targets = np.asarray(targets, dtype=float)
        if targets.ndim == 1:
            targets = targets.reshape(-1, 1)
        if features.shape[0] != targets.shape[0]:
            raise ValueError("features and targets must have the same number of samples")
        if features.shape[0] == 0:
            raise ValueError("training data is empty")

        rng = np.random.default_rng(self.config.seed)
        train_x, train_y, val_x, val_y = self._split(features, targets, rng)

        history = TrainingHistory()
        best_loss = np.inf
        best_parameters = self.network.get_parameters()
        patience_left = self.config.early_stopping_patience
        start = time.perf_counter()

        for epoch in range(self.config.epochs):
            epoch_loss = self._run_epoch(train_x, train_y, rng)
            history.train_losses.append(epoch_loss)
            history.epochs_run = epoch + 1

            monitored = epoch_loss
            if val_x is not None:
                predictions = self.network.predict(val_x)
                validation_loss = self.loss.forward(predictions, val_y)
                history.validation_losses.append(validation_loss)
                monitored = validation_loss

            if monitored < best_loss - 1e-12:
                best_loss = monitored
                best_parameters = self.network.get_parameters()
                history.best_epoch = epoch
                patience_left = self.config.early_stopping_patience
            elif self.config.early_stopping_patience > 0 and val_x is not None:
                patience_left -= 1
                if patience_left <= 0:
                    history.stopped_early = True
                    break

        self.network.set_parameters(best_parameters)
        history.training_time = time.perf_counter() - start
        return history

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _split(
        self, features: np.ndarray, targets: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None]:
        split = self.config.validation_split
        if split <= 0 or features.shape[0] < 5:
            return features, targets, None, None
        indices = rng.permutation(features.shape[0])
        num_validation = max(1, int(round(features.shape[0] * split)))
        validation_idx = indices[:num_validation]
        training_idx = indices[num_validation:]
        if training_idx.size == 0:
            return features, targets, None, None
        return (
            features[training_idx],
            targets[training_idx],
            features[validation_idx],
            targets[validation_idx],
        )

    def _run_epoch(
        self, features: np.ndarray, targets: np.ndarray, rng: np.random.Generator
    ) -> float:
        num_samples = features.shape[0]
        if self.config.shuffle:
            order = rng.permutation(num_samples)
        else:
            order = np.arange(num_samples)
        batch_size = min(self.config.batch_size, num_samples)
        total_loss = 0.0
        num_batches = 0
        for start in range(0, num_samples, batch_size):
            batch_idx = order[start : start + batch_size]
            batch_loss = self.network.train_batch(
                self.loss, features[batch_idx], targets[batch_idx]
            )
            self.optimizer.step(self.network.layers)
            total_loss += batch_loss
            num_batches += 1
        return total_loss / max(num_batches, 1)
