"""From-scratch neural-network substrate (NumPy only).

The paper builds its model with TensorFlow; since no deep-learning framework
is available in this environment, this package implements the same
mathematical machinery from scratch: dense layers with backpropagation,
common activations and losses, SGD / momentum / Adam optimizers, feature and
target scalers, the regression metrics the paper reports (MSE, r² score,
error histograms), a mini-batch trainer with early stopping, a
scikit-learn-style multi-target regressor, and grid / random hyper-parameter
search.
"""

from .activations import (
    Activation,
    LeakyReLU,
    Linear,
    ReLU,
    Sigmoid,
    Softplus,
    Tanh,
    available_activations,
    get_activation,
)
from .hyperopt import HyperparameterSearch, SearchResult, SearchSpace, TrialResult
from .initializers import available_initializers, get_initializer
from .layers import DenseLayer
from .losses import (
    ConstraintPenalizedLoss,
    HuberLoss,
    Loss,
    MeanAbsoluteError,
    MeanSquaredError,
    get_loss,
)
from .metrics import (
    ErrorHistogram,
    error_histogram,
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_squared_error,
    pearson_correlation,
    r2_score,
    relative_mse_percent,
    root_mean_squared_error,
)
from .network import NetworkArchitecture, NeuralNetwork
from .optimizers import SGD, Adam, MomentumSGD, Optimizer, get_optimizer
from .regression import MultiTargetRegressor, NotFittedError, RegressorConfig
from .scaling import IdentityScaler, MinMaxScaler, StandardScaler
from .serialization import ModelFormatError, load_regressor, save_regressor
from .training import Trainer, TrainingConfig, TrainingHistory

__all__ = [
    "Activation",
    "Adam",
    "ConstraintPenalizedLoss",
    "DenseLayer",
    "ErrorHistogram",
    "HuberLoss",
    "HyperparameterSearch",
    "IdentityScaler",
    "LeakyReLU",
    "Linear",
    "Loss",
    "MeanAbsoluteError",
    "MeanSquaredError",
    "MinMaxScaler",
    "ModelFormatError",
    "MomentumSGD",
    "MultiTargetRegressor",
    "NetworkArchitecture",
    "NeuralNetwork",
    "NotFittedError",
    "Optimizer",
    "ReLU",
    "RegressorConfig",
    "SGD",
    "SearchResult",
    "SearchSpace",
    "Sigmoid",
    "Softplus",
    "StandardScaler",
    "Tanh",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "TrialResult",
    "available_activations",
    "available_initializers",
    "error_histogram",
    "get_activation",
    "get_initializer",
    "get_loss",
    "get_optimizer",
    "load_regressor",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "mean_squared_error",
    "pearson_correlation",
    "r2_score",
    "relative_mse_percent",
    "root_mean_squared_error",
    "save_regressor",
]
