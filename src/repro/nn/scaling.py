"""Feature / target scalers.

The input features of the width model live on wildly different scales
(coordinates in thousands of um, switching currents in milliamps, widths in
single-digit um), so both the features and the targets are standardised
before training.  The scalers follow the scikit-learn fit / transform
convention and support exact inverse transforms, which the framework uses to
report predictions back in physical units.
"""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Standardise features to zero mean and unit variance per column."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "StandardScaler":
        """Learn per-column mean and standard deviation.

        Columns with zero variance get a scale of 1 so they pass through
        unchanged instead of dividing by zero.
        """
        data = np.atleast_2d(np.asarray(data, dtype=float))
        self.mean_ = data.mean(axis=0)
        scale = data.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Apply the learned standardisation.

        Raises:
            RuntimeError: If the scaler has not been fitted.
        """
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler must be fitted before transform()")
        data = np.atleast_2d(np.asarray(data, dtype=float))
        return (data - self.mean_) / self.scale_

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its transform."""
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        """Map standardised values back to the original units.

        Raises:
            RuntimeError: If the scaler has not been fitted.
        """
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler must be fitted before inverse_transform()")
        data = np.atleast_2d(np.asarray(data, dtype=float))
        return data * self.scale_ + self.mean_

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has been called."""
        return self.mean_ is not None


class MinMaxScaler:
    """Scale features linearly into a target range (default ``[0, 1]``)."""

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)) -> None:
        low, high = feature_range
        if high <= low:
            raise ValueError("feature_range must be increasing")
        self.feature_range = (float(low), float(high))
        self.data_min_: np.ndarray | None = None
        self.data_max_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "MinMaxScaler":
        """Learn per-column minima and maxima."""
        data = np.atleast_2d(np.asarray(data, dtype=float))
        self.data_min_ = data.min(axis=0)
        self.data_max_ = data.max(axis=0)
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Apply the learned linear scaling.

        Constant columns are mapped to the middle of the target range.

        Raises:
            RuntimeError: If the scaler has not been fitted.
        """
        if self.data_min_ is None or self.data_max_ is None:
            raise RuntimeError("scaler must be fitted before transform()")
        data = np.atleast_2d(np.asarray(data, dtype=float))
        span = self.data_max_ - self.data_min_
        low, high = self.feature_range
        with np.errstate(divide="ignore", invalid="ignore"):
            unit = np.where(
                span == 0.0, 0.5, (data - self.data_min_) / np.where(span == 0.0, 1.0, span)
            )
        return unit * (high - low) + low

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its transform."""
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        """Map scaled values back to the original units.

        Raises:
            RuntimeError: If the scaler has not been fitted.
        """
        if self.data_min_ is None or self.data_max_ is None:
            raise RuntimeError("scaler must be fitted before inverse_transform()")
        data = np.atleast_2d(np.asarray(data, dtype=float))
        low, high = self.feature_range
        unit = (data - low) / (high - low)
        span = self.data_max_ - self.data_min_
        return unit * span + self.data_min_

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has been called."""
        return self.data_min_ is not None


class IdentityScaler:
    """A no-op scaler, useful to disable scaling in ablation experiments."""

    def fit(self, data: np.ndarray) -> "IdentityScaler":
        """No-op fit."""
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Return the data unchanged (as a 2-D float array)."""
        return np.atleast_2d(np.asarray(data, dtype=float))

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Return the data unchanged."""
        return self.transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        """Return the data unchanged."""
        return np.atleast_2d(np.asarray(data, dtype=float))

    @property
    def is_fitted(self) -> bool:
        """Identity scalers are always "fitted"."""
        return True
