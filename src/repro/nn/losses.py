"""Loss functions for regression training.

The paper minimises a mean-squared-error loss (its eq. 10 reports MSE as the
accuracy overhead metric) with an optional regularisation term ``lambda *
C(omega)`` that folds the reliability constraints into the objective
(eq. 2).  The losses here follow the same convention as the activations:
``forward`` returns the scalar loss, ``backward`` the gradient with respect
to the predictions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class Loss(ABC):
    """Base class for losses over ``(predictions, targets)`` batches."""

    name: str = "loss"

    @abstractmethod
    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Return the scalar loss for a batch."""

    @abstractmethod
    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Return d(loss)/d(predictions), same shape as ``predictions``."""

    @staticmethod
    def _validate(predictions: np.ndarray, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        predictions = np.atleast_2d(predictions)
        targets = np.atleast_2d(targets)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"prediction shape {predictions.shape} does not match target shape {targets.shape}"
            )
        return predictions, targets


class MeanSquaredError(Loss):
    """MSE loss, ``mean((y - y')^2)`` — paper eq. (10)."""

    name = "mse"

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions, targets = self._validate(predictions, targets)
        return float(np.mean((predictions - targets) ** 2))

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions, targets = self._validate(predictions, targets)
        return 2.0 * (predictions - targets) / predictions.size


class MeanAbsoluteError(Loss):
    """MAE loss, ``mean(|y - y'|)``."""

    name = "mae"

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions, targets = self._validate(predictions, targets)
        return float(np.mean(np.abs(predictions - targets)))

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions, targets = self._validate(predictions, targets)
        return np.sign(predictions - targets) / predictions.size


class HuberLoss(Loss):
    """Huber loss: quadratic near zero, linear in the tails."""

    name = "huber"

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions, targets = self._validate(predictions, targets)
        error = predictions - targets
        absolute = np.abs(error)
        quadratic = np.minimum(absolute, self.delta)
        linear = absolute - quadratic
        return float(np.mean(0.5 * quadratic**2 + self.delta * linear))

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions, targets = self._validate(predictions, targets)
        error = predictions - targets
        gradient = np.clip(error, -self.delta, self.delta)
        return gradient / predictions.size


class ConstraintPenalizedLoss(Loss):
    """A base loss plus a ``lambda``-weighted constraint penalty (paper eq. 2).

    The penalty callable receives the predictions and must return a
    per-sample, per-output penalty array of the same shape (for instance the
    amount by which a predicted width violates the EM-required minimum
    width).  The total loss is ``base(y', y) + lam * mean(penalty(y'))`` and
    the penalty's gradient is approximated by its subgradient (penalty terms
    are built from ReLU-style hinge functions, so this is exact almost
    everywhere).
    """

    name = "constraint_penalized"

    def __init__(self, base: Loss, penalty, lam: float = 0.1) -> None:
        if lam < 0:
            raise ValueError("lam must be non-negative")
        self.base = base
        self.penalty = penalty
        self.lam = lam

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions, targets = self._validate(predictions, targets)
        penalty_values = np.asarray(self.penalty(predictions), dtype=float)
        return self.base.forward(predictions, targets) + self.lam * float(np.mean(penalty_values))

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions, targets = self._validate(predictions, targets)
        epsilon = 1e-6
        base_gradient = self.base.backward(predictions, targets)
        # Central-difference subgradient of the mean penalty; the penalties
        # used in practice are elementwise, so a per-element difference is
        # both exact and cheap.
        plus = np.asarray(self.penalty(predictions + epsilon), dtype=float)
        minus = np.asarray(self.penalty(predictions - epsilon), dtype=float)
        penalty_gradient = (plus - minus) / (2.0 * epsilon) / predictions.size
        return base_gradient + self.lam * penalty_gradient


_LOSSES: dict[str, type[Loss]] = {
    "mse": MeanSquaredError,
    "mae": MeanAbsoluteError,
    "huber": HuberLoss,
}


def get_loss(name: str | Loss) -> Loss:
    """Resolve a loss by name, or pass an instance through.

    Raises:
        KeyError: If the name is unknown.
    """
    if isinstance(name, Loss):
        return name
    try:
        return _LOSSES[name]()
    except KeyError as exc:
        raise KeyError(f"unknown loss {name!r}; available: {', '.join(_LOSSES)}") from exc
