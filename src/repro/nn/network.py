"""The multilayer perceptron used for multi-target regression.

The paper's model is a fully connected network with one input layer, a stack
of hidden layers (10 in the paper, found by hyper-parameter optimisation) and
one output layer, trained with Adam on an MSE loss.
:class:`NeuralNetwork` assembles :class:`~repro.nn.layers.DenseLayer` objects
into that topology and provides forward prediction and the
backpropagation-based gradient computation used by the trainer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .layers import DenseLayer
from .losses import Loss, get_loss


@dataclass(frozen=True)
class NetworkArchitecture:
    """Topology description of a multilayer perceptron.

    Attributes:
        input_size: Number of input features (3 in the paper: X, Y, Id).
        hidden_sizes: Width of each hidden layer; the paper uses 10 hidden
            layers of equal width.
        output_size: Number of regression targets (the predicted widths).
        hidden_activation: Activation of the hidden layers.
        output_activation: Activation of the output layer (``linear`` or
            ``softplus`` for strictly positive widths).
    """

    input_size: int
    hidden_sizes: tuple[int, ...]
    output_size: int
    hidden_activation: str = "relu"
    output_activation: str = "linear"

    def __post_init__(self) -> None:
        if self.input_size <= 0 or self.output_size <= 0:
            raise ValueError("input_size and output_size must be positive")
        if not self.hidden_sizes:
            raise ValueError("at least one hidden layer is required")
        if any(size <= 0 for size in self.hidden_sizes):
            raise ValueError("hidden layer sizes must be positive")

    @property
    def num_hidden_layers(self) -> int:
        """Number of hidden layers."""
        return len(self.hidden_sizes)

    @classmethod
    def paper_default(
        cls, input_size: int = 3, output_size: int = 1, hidden_width: int = 32
    ) -> "NetworkArchitecture":
        """The paper's topology: 10 hidden layers (width chosen by hyperopt)."""
        return cls(
            input_size=input_size,
            hidden_sizes=(hidden_width,) * 10,
            output_size=output_size,
            hidden_activation="relu",
            output_activation="linear",
        )


class NeuralNetwork:
    """A feed-forward multilayer perceptron for multi-target regression.

    Args:
        architecture: The network topology.
        initializer: Weight initializer name passed to every layer.
        seed: Seed for reproducible weight initialisation.
    """

    def __init__(
        self,
        architecture: NetworkArchitecture,
        initializer: str = "he_normal",
        seed: int | None = 0,
    ) -> None:
        self.architecture = architecture
        rng = np.random.default_rng(seed)
        sizes = (architecture.input_size, *architecture.hidden_sizes, architecture.output_size)
        activations = (
            [architecture.hidden_activation] * architecture.num_hidden_layers
            + [architecture.output_activation]
        )
        self.layers: list[DenseLayer] = []
        for index in range(len(sizes) - 1):
            self.layers.append(
                DenseLayer(
                    input_size=sizes[index],
                    output_size=sizes[index + 1],
                    activation=activations[index],
                    initializer=initializer,
                    rng=rng,
                )
            )

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the forward pass on a batch of inputs."""
        outputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        for layer in self.layers:
            outputs = layer.forward(outputs, training=training)
        return outputs

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Alias for a non-training forward pass."""
        return self.forward(inputs, training=False)

    def backward(self, loss: Loss, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Backpropagate the loss gradient through every layer.

        The forward pass must have been run with ``training=True`` so that
        each layer holds its caches.

        Returns:
            The scalar loss value for the batch.
        """
        value = loss.forward(predictions, targets)
        gradient = loss.backward(predictions, targets)
        for layer in reversed(self.layers):
            gradient = layer.backward(gradient)
        return value

    def train_batch(self, loss: Loss | str, inputs: np.ndarray, targets: np.ndarray) -> float:
        """Run one forward + backward pass and return the batch loss.

        The caller is responsible for applying an optimizer step afterwards.
        """
        loss = get_loss(loss)
        predictions = self.forward(inputs, training=True)
        return self.backward(loss, predictions, np.atleast_2d(np.asarray(targets, dtype=float)))

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        """Total number of trainable scalars in the network."""
        return sum(layer.num_parameters for layer in self.layers)

    def get_parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Return copies of every layer's ``(weights, bias)``."""
        return [layer.get_weights() for layer in self.layers]

    def set_parameters(self, parameters: list[tuple[np.ndarray, np.ndarray]]) -> None:
        """Load parameters previously returned by :meth:`get_parameters`.

        Raises:
            ValueError: If the number of layers does not match.
        """
        if len(parameters) != len(self.layers):
            raise ValueError("parameter list length does not match the number of layers")
        for layer, (weights, bias) in zip(self.layers, parameters):
            layer.set_weights(weights, bias)

    def copy(self) -> "NeuralNetwork":
        """Return a deep copy of the network (same architecture and weights)."""
        clone = NeuralNetwork(self.architecture, seed=None)
        clone.set_parameters(self.get_parameters())
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        hidden = "x".join(str(size) for size in self.architecture.hidden_sizes)
        return (
            f"NeuralNetwork({self.architecture.input_size} -> [{hidden}] -> "
            f"{self.architecture.output_size}, params={self.num_parameters})"
        )
