"""Hyper-parameter search for the regression network.

The paper states that its 10-hidden-layer topology was "obtained by
hyperparameter optimization".  This module provides the two standard search
strategies over :class:`~repro.nn.regression.RegressorConfig` fields — an
exhaustive grid search and a random search — evaluated with a simple
hold-out split.  The ablation bench for hidden-layer depth is built on top
of this.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, replace

import numpy as np

from .metrics import mean_squared_error, r2_score
from .regression import MultiTargetRegressor, RegressorConfig


@dataclass(frozen=True)
class SearchSpace:
    """Candidate values for the tunable hyper-parameters.

    Attributes:
        hidden_layers: Candidate hidden-layer counts.
        hidden_width: Candidate hidden-layer widths.
        learning_rate: Candidate learning rates.
        batch_size: Candidate batch sizes.
    """

    hidden_layers: tuple[int, ...] = (2, 4, 6, 8, 10)
    hidden_width: tuple[int, ...] = (16, 32, 64)
    learning_rate: tuple[float, ...] = (1e-3,)
    batch_size: tuple[int, ...] = (64,)

    def __post_init__(self) -> None:
        for name in ("hidden_layers", "hidden_width", "learning_rate", "batch_size"):
            values = getattr(self, name)
            if not values:
                raise ValueError(f"{name} must contain at least one candidate")

    def grid(self) -> list[dict[str, float]]:
        """Return every combination of candidate values as keyword dicts."""
        combinations = itertools.product(
            self.hidden_layers, self.hidden_width, self.learning_rate, self.batch_size
        )
        return [
            {
                "hidden_layers": layers,
                "hidden_width": width,
                "learning_rate": rate,
                "batch_size": batch,
            }
            for layers, width, rate, batch in combinations
        ]

    def sample(self, rng: np.random.Generator) -> dict[str, float]:
        """Draw one random combination of candidate values."""
        return {
            "hidden_layers": int(rng.choice(self.hidden_layers)),
            "hidden_width": int(rng.choice(self.hidden_width)),
            "learning_rate": float(rng.choice(self.learning_rate)),
            "batch_size": int(rng.choice(self.batch_size)),
        }


@dataclass
class TrialResult:
    """Result of evaluating one hyper-parameter combination.

    Attributes:
        parameters: The evaluated combination.
        validation_mse: MSE on the hold-out split.
        validation_r2: r² on the hold-out split.
        train_time: Wall-clock training time in seconds.
    """

    parameters: dict[str, float]
    validation_mse: float
    validation_r2: float
    train_time: float


@dataclass
class SearchResult:
    """Outcome of a hyper-parameter search.

    Attributes:
        trials: Every evaluated trial, in evaluation order.
        best: The trial with the lowest validation MSE.
        best_config: A regressor config built from the best trial.
    """

    trials: list[TrialResult]
    best: TrialResult
    best_config: RegressorConfig


class HyperparameterSearch:
    """Grid / random search over the regressor hyper-parameters.

    Args:
        base_config: Configuration whose non-searched fields are kept.
        space: The search space.
        validation_fraction: Hold-out fraction used to score each trial.
        seed: Seed for the hold-out split and random search.
    """

    def __init__(
        self,
        base_config: RegressorConfig | None = None,
        space: SearchSpace | None = None,
        validation_fraction: float = 0.2,
        seed: int = 0,
    ) -> None:
        if not 0 < validation_fraction < 1:
            raise ValueError("validation_fraction must be in (0, 1)")
        self.base_config = base_config or RegressorConfig.fast()
        self.space = space or SearchSpace()
        self.validation_fraction = validation_fraction
        self.seed = seed

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def grid_search(self, features: np.ndarray, targets: np.ndarray) -> SearchResult:
        """Evaluate every combination in the search space."""
        candidates = self.space.grid()
        return self._run(features, targets, candidates)

    def random_search(
        self, features: np.ndarray, targets: np.ndarray, num_trials: int = 10
    ) -> SearchResult:
        """Evaluate ``num_trials`` randomly sampled combinations."""
        if num_trials <= 0:
            raise ValueError("num_trials must be positive")
        rng = np.random.default_rng(self.seed)
        seen: set[tuple] = set()
        candidates: list[dict[str, float]] = []
        attempts = 0
        while len(candidates) < num_trials and attempts < num_trials * 20:
            attempts += 1
            candidate = self.space.sample(rng)
            key = tuple(sorted(candidate.items()))
            if key in seen:
                continue
            seen.add(key)
            candidates.append(candidate)
        return self._run(features, targets, candidates)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _make_config(self, parameters: dict[str, float]) -> RegressorConfig:
        training = replace(
            self.base_config.training,
            learning_rate=float(parameters["learning_rate"]),
            batch_size=int(parameters["batch_size"]),
        )
        return replace(
            self.base_config,
            hidden_layers=int(parameters["hidden_layers"]),
            hidden_width=int(parameters["hidden_width"]),
            training=training,
        )

    def _run(
        self, features: np.ndarray, targets: np.ndarray, candidates: list[dict[str, float]]
    ) -> SearchResult:
        features = np.atleast_2d(np.asarray(features, dtype=float))
        targets = np.asarray(targets, dtype=float)
        if targets.ndim == 1:
            targets = targets.reshape(-1, 1)
        rng = np.random.default_rng(self.seed)
        indices = rng.permutation(features.shape[0])
        num_validation = max(1, int(round(features.shape[0] * self.validation_fraction)))
        validation_idx = indices[:num_validation]
        training_idx = indices[num_validation:]
        if training_idx.size == 0:
            raise ValueError("not enough samples for a train/validation split")

        trials: list[TrialResult] = []
        for parameters in candidates:
            config = self._make_config(parameters)
            model = MultiTargetRegressor(config)
            start = time.perf_counter()
            model.fit(features[training_idx], targets[training_idx])
            elapsed = time.perf_counter() - start
            predictions = model.predict(features[validation_idx])
            trials.append(
                TrialResult(
                    parameters=parameters,
                    validation_mse=mean_squared_error(targets[validation_idx], predictions),
                    validation_r2=r2_score(targets[validation_idx], predictions),
                    train_time=elapsed,
                )
            )
        best = min(trials, key=lambda trial: trial.validation_mse)
        return SearchResult(
            trials=trials, best=best, best_config=self._make_config(best.parameters)
        )
