"""Activation functions and their derivatives.

Each activation is a small object exposing ``forward`` and ``backward``:
``backward`` receives the activation *input* (pre-activation values) and the
gradient flowing back from above, and returns the gradient with respect to
the pre-activation values.  This is everything the dense layer needs for
backpropagation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class Activation(ABC):
    """Base class for activation functions."""

    name: str = "activation"

    @abstractmethod
    def forward(self, z: np.ndarray) -> np.ndarray:
        """Apply the activation elementwise to the pre-activation ``z``."""

    @abstractmethod
    def derivative(self, z: np.ndarray) -> np.ndarray:
        """Return the elementwise derivative evaluated at ``z``."""

    def backward(self, z: np.ndarray, upstream: np.ndarray) -> np.ndarray:
        """Chain the upstream gradient through the activation."""
        return upstream * self.derivative(z)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}()"


class Linear(Activation):
    """Identity activation (used on regression output layers)."""

    name = "linear"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return z

    def derivative(self, z: np.ndarray) -> np.ndarray:
        return np.ones_like(z)


class ReLU(Activation):
    """Rectified linear unit, ``max(0, z)``."""

    name = "relu"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.maximum(z, 0.0)

    def derivative(self, z: np.ndarray) -> np.ndarray:
        return (z > 0.0).astype(z.dtype)


class LeakyReLU(Activation):
    """Leaky ReLU with a configurable negative-side slope."""

    name = "leaky_relu"

    def __init__(self, alpha: float = 0.01) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.where(z > 0.0, z, self.alpha * z)

    def derivative(self, z: np.ndarray) -> np.ndarray:
        return np.where(z > 0.0, 1.0, self.alpha)


class Tanh(Activation):
    """Hyperbolic tangent activation."""

    name = "tanh"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.tanh(z)

    def derivative(self, z: np.ndarray) -> np.ndarray:
        return 1.0 - np.tanh(z) ** 2


class Sigmoid(Activation):
    """Logistic sigmoid activation."""

    name = "sigmoid"

    def forward(self, z: np.ndarray) -> np.ndarray:
        out = np.empty_like(z)
        positive = z >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
        exp_z = np.exp(z[~positive])
        out[~positive] = exp_z / (1.0 + exp_z)
        return out

    def derivative(self, z: np.ndarray) -> np.ndarray:
        s = self.forward(z)
        return s * (1.0 - s)


class Softplus(Activation):
    """Softplus activation, ``log(1 + exp(z))`` — a smooth ReLU.

    Useful as an output activation when the target (a wire width) must be
    strictly positive.
    """

    name = "softplus"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.logaddexp(0.0, z)

    def derivative(self, z: np.ndarray) -> np.ndarray:
        return Sigmoid().forward(z)


_ACTIVATIONS: dict[str, type[Activation]] = {
    "linear": Linear,
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
    "softplus": Softplus,
}


def get_activation(name: str | Activation) -> Activation:
    """Resolve an activation by name, or pass an instance through.

    Raises:
        KeyError: If the name is unknown.
    """
    if isinstance(name, Activation):
        return name
    try:
        return _ACTIVATIONS[name]()
    except KeyError as exc:
        raise KeyError(
            f"unknown activation {name!r}; available: {', '.join(_ACTIVATIONS)}"
        ) from exc


def available_activations() -> tuple[str, ...]:
    """Return the names of the registered activation functions."""
    return tuple(_ACTIVATIONS)
