"""Dense (fully connected) layers with backpropagation.

The layer stores its parameters and, during the forward pass, caches the
inputs needed by the backward pass.  Gradients are accumulated into
``gradients`` with the same keys as ``parameters`` so that any optimizer can
update them generically.
"""

from __future__ import annotations

import numpy as np

from .activations import Activation, get_activation
from .initializers import Initializer, get_initializer


class DenseLayer:
    """A fully connected layer ``a = activation(x @ W + b)``.

    Args:
        input_size: Number of input features.
        output_size: Number of output units.
        activation: Activation function or its registered name.
        initializer: Weight initializer or its registered name.
        rng: Random generator used to draw the initial weights.
    """

    def __init__(
        self,
        input_size: int,
        output_size: int,
        activation: str | Activation = "relu",
        initializer: str | Initializer = "he_normal",
        rng: np.random.Generator | None = None,
    ) -> None:
        if input_size <= 0 or output_size <= 0:
            raise ValueError("layer sizes must be positive")
        self.input_size = input_size
        self.output_size = output_size
        self.activation = get_activation(activation)
        init = get_initializer(initializer)
        rng = rng or np.random.default_rng()
        self.parameters: dict[str, np.ndarray] = {
            "weights": init(rng, input_size, output_size),
            "bias": np.zeros(output_size),
        }
        self.gradients: dict[str, np.ndarray] = {
            "weights": np.zeros_like(self.parameters["weights"]),
            "bias": np.zeros_like(self.parameters["bias"]),
        }
        self._cache_input: np.ndarray | None = None
        self._cache_preactivation: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for a batch of inputs.

        Args:
            inputs: Array of shape ``(batch, input_size)``.
            training: If True, cache intermediates for the backward pass.

        Returns:
            Activations of shape ``(batch, output_size)``.
        """
        inputs = np.atleast_2d(inputs)
        if inputs.shape[1] != self.input_size:
            raise ValueError(
                f"expected input with {self.input_size} features, got {inputs.shape[1]}"
            )
        preactivation = inputs @ self.parameters["weights"] + self.parameters["bias"]
        if training:
            self._cache_input = inputs
            self._cache_preactivation = preactivation
        return self.activation.forward(preactivation)

    def backward(self, upstream: np.ndarray) -> np.ndarray:
        """Backpropagate through the layer.

        Args:
            upstream: Gradient of the loss with respect to this layer's
                output, shape ``(batch, output_size)``.

        Returns:
            Gradient of the loss with respect to this layer's input, shape
            ``(batch, input_size)``.

        Raises:
            RuntimeError: If called before a training-mode forward pass.
        """
        if self._cache_input is None or self._cache_preactivation is None:
            raise RuntimeError("backward() called before a training forward pass")
        delta = self.activation.backward(self._cache_preactivation, upstream)
        # The loss gradient already carries the batch normalisation (MSE
        # divides by the number of elements), so the parameter gradients are
        # plain accumulations — this keeps them equal to the true derivative
        # of the scalar loss, which the gradient-check tests verify.
        self.gradients["weights"] = self._cache_input.T @ delta
        self.gradients["bias"] = delta.sum(axis=0)
        return delta @ self.parameters["weights"].T

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        """Total number of trainable scalars in this layer."""
        return sum(param.size for param in self.parameters.values())

    def get_weights(self) -> tuple[np.ndarray, np.ndarray]:
        """Return copies of ``(weights, bias)``."""
        return self.parameters["weights"].copy(), self.parameters["bias"].copy()

    def set_weights(self, weights: np.ndarray, bias: np.ndarray) -> None:
        """Overwrite the layer parameters (shapes must match).

        Raises:
            ValueError: If the shapes do not match the layer dimensions.
        """
        if weights.shape != (self.input_size, self.output_size):
            raise ValueError("weights shape mismatch")
        if bias.shape != (self.output_size,):
            raise ValueError("bias shape mismatch")
        self.parameters["weights"] = weights.astype(float).copy()
        self.parameters["bias"] = bias.astype(float).copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DenseLayer({self.input_size} -> {self.output_size}, "
            f"activation={self.activation.name})"
        )
