"""Experiment-level evaluation utilities shared by the benchmark harness.

The functions here compute the exact quantities the paper's tables and
figures report, from the objects the framework and the conventional planner
produce: feature r² studies (Table I / Fig. 4b), width-prediction
correlation and error histograms (Fig. 7), worst-case IR-drop comparisons
(Table III), convergence-time speedups (Table IV) and accuracy/memory rows
(Table V).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..analysis.engine import BatchedAnalysisEngine
from ..analysis.irdrop import IRDropAnalyzer
from ..design.planner import PowerPlanResult
from ..grid.network import PowerGridNetwork
from ..grid.perturbation import NetworkPerturbator, PerturbationSpec, perturbed_load_matrix
from ..nn.metrics import (
    ErrorHistogram,
    error_histogram,
    mean_squared_error,
    pearson_correlation,
    r2_score,
)
from ..nn.regression import MultiTargetRegressor, RegressorConfig
from .dataset import RegressionDataset
from .features import FEATURE_NAMES
from .framework import PredictedDesign


# ----------------------------------------------------------------------
# Table I / Fig. 4(b): feature r2 study
# ----------------------------------------------------------------------
@dataclass
class FeatureScoreStudy:
    """r² of each individual feature and of the combined feature set.

    Attributes:
        scores: Mapping of feature name (plus ``"combined"``) to r² score.
        per_interconnect: Optional mapping of feature name to an array of
            per-interconnect r² scores (the Fig. 4b series).
    """

    scores: dict[str, float]
    per_interconnect: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def best_feature(self) -> str:
        """Name of the feature set with the highest r² score."""
        return max(self.scores, key=self.scores.get)


def feature_r2_study(
    dataset: RegressionDataset,
    config: RegressorConfig | None = None,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> FeatureScoreStudy:
    """Reproduce the Table I study: r² of X, Y, Id and the combined features.

    A separate regressor is trained per feature subset on a train split and
    scored on the held-out split.
    """
    config = config or RegressorConfig.fast()
    train, test = dataset.split(test_fraction=test_fraction, seed=seed)
    scores: dict[str, float] = {}

    for name, column_getter in _feature_subsets().items():
        model = MultiTargetRegressor(config)
        model.fit(column_getter(train.features), train.widths)
        predictions = model.predict(column_getter(test.features))
        scores[name] = r2_score(test.widths, predictions)
    return FeatureScoreStudy(scores=scores)


def per_interconnect_r2_series(
    dataset: RegressionDataset,
    config: RegressorConfig | None = None,
    num_interconnects: int = 1000,
    window: int = 50,
    seed: int = 0,
) -> FeatureScoreStudy:
    """Reproduce Fig. 4(b): r² variation over a window sweep of interconnects.

    The paper plots, for 1000 interconnects of ibmpg1, how well each feature
    subset predicts the width.  We evaluate a model per feature subset once,
    then compute r² over a sliding window of ``window`` consecutive test
    interconnects to obtain a per-interconnect series of the same shape.
    """
    config = config or RegressorConfig.fast()
    train, test = dataset.split(test_fraction=0.5, seed=seed)
    limit = min(num_interconnects, test.num_samples)
    series: dict[str, np.ndarray] = {}
    scores: dict[str, float] = {}

    for name, column_getter in _feature_subsets().items():
        model = MultiTargetRegressor(config)
        model.fit(column_getter(train.features), train.widths)
        predictions = model.predict(column_getter(test.features))
        scores[name] = r2_score(test.widths, predictions)
        values = np.empty(limit)
        for index in range(limit):
            start = max(0, index - window // 2)
            stop = min(test.num_samples, start + window)
            values[index] = r2_score(test.widths[start:stop], predictions[start:stop])
        series[name] = values
    return FeatureScoreStudy(scores=scores, per_interconnect=series)


def _feature_subsets():
    subsets = {
        name: (lambda features, index=index: features[:, [index]])
        for index, name in enumerate(FEATURE_NAMES)
    }
    subsets["combined"] = lambda features: features
    return subsets


# ----------------------------------------------------------------------
# Fig. 7: width prediction correlation and error histogram
# ----------------------------------------------------------------------
@dataclass
class WidthPredictionStudy:
    """Correlation scatter and error histogram data for width prediction.

    Attributes:
        golden: Golden sample widths in um.
        predicted: Predicted sample widths in um.
        correlation: Pearson correlation (Fig. 7a).
        r2: r² score of the predictions.
        mse: MSE of the predictions in um².
        histogram: Error histogram of golden minus predicted (Fig. 7b).
    """

    golden: np.ndarray
    predicted: np.ndarray
    correlation: float
    r2: float
    mse: float
    histogram: ErrorHistogram


def width_prediction_study(
    golden: np.ndarray, predicted: np.ndarray, num_bins: int = 41
) -> WidthPredictionStudy:
    """Build the Fig. 7 artefacts from golden and predicted sample widths."""
    golden = np.asarray(golden, dtype=float).ravel()
    predicted = np.asarray(predicted, dtype=float).ravel()
    return WidthPredictionStudy(
        golden=golden,
        predicted=predicted,
        correlation=pearson_correlation(golden, predicted),
        r2=r2_score(golden, predicted),
        mse=mean_squared_error(golden, predicted),
        histogram=error_histogram(golden, predicted, num_bins=num_bins),
    )


# ----------------------------------------------------------------------
# Table III: worst-case IR drop comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IRDropComparison:
    """Worst-case IR-drop of the conventional vs. the DL flow (one benchmark).

    Attributes:
        benchmark: Benchmark name.
        conventional_mv: Conventional (full-analysis) worst-case drop in mV.
        predicted_mv: PowerPlanningDL predicted worst-case drop in mV.
    """

    benchmark: str
    conventional_mv: float
    predicted_mv: float

    @property
    def absolute_error_mv(self) -> float:
        """Absolute difference between the two worst-case drops in mV."""
        return abs(self.conventional_mv - self.predicted_mv)

    @property
    def relative_error(self) -> float:
        """Relative error of the prediction against the conventional value."""
        if self.conventional_mv == 0:
            return 0.0 if self.predicted_mv == 0 else float("inf")
        return self.absolute_error_mv / self.conventional_mv


def compare_worst_ir_drop(plan: PowerPlanResult, predicted: PredictedDesign) -> IRDropComparison:
    """Build one Table III row from a golden plan and a predicted design."""
    return IRDropComparison(
        benchmark=plan.benchmark,
        conventional_mv=plan.ir_result.worst_ir_drop_mv,
        predicted_mv=predicted.ir_drop.worst_ir_drop_mv,
    )


# ----------------------------------------------------------------------
# Table IV: convergence time and speedup
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConvergenceComparison:
    """Convergence time of the conventional vs. the DL flow (one benchmark).

    Attributes:
        benchmark: Benchmark name.
        conventional_seconds: Conventional analysis time in seconds (the
            paper counts the IR-drop analysis as the dominant cost and the
            best case of a single design iteration).
        powerplanningdl_seconds: PowerPlanningDL prediction time in seconds
            (width prediction + IR-drop prediction).
    """

    benchmark: str
    conventional_seconds: float
    powerplanningdl_seconds: float

    @property
    def speedup(self) -> float:
        """``T_conventional / T_PowerPlanningDL`` (Table IV rightmost column)."""
        if self.powerplanningdl_seconds <= 0:
            return float("inf")
        return self.conventional_seconds / self.powerplanningdl_seconds


def compare_convergence(plan: PowerPlanResult, predicted: PredictedDesign) -> ConvergenceComparison:
    """Build one Table IV row.

    Following the paper, the conventional time is the convergence time of
    the iterative analyse-and-resize flow (dominated by the repeated
    power-grid analyses), measured here as the flow's wall-clock time.  The
    PowerPlanningDL time is the width + IR-drop prediction time, which
    needs neither a grid build nor an analysis.  (Earlier revisions used a
    single build+analyse step as the conventional reference; since the
    planner's rebuild-free compiled loop, one step of a small grid is a
    couple of milliseconds and no longer represents the conventional cost.)
    """
    conventional = plan.total_time if plan.total_time > 0 else plan.analysis_time
    return ConvergenceComparison(
        benchmark=plan.benchmark,
        conventional_seconds=conventional,
        powerplanningdl_seconds=predicted.convergence_time,
    )


# ----------------------------------------------------------------------
# Batched-engine throughput: naive re-solve vs cached-factorization multi-RHS
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchedSolveStudy:
    """Throughput comparison of the per-solve path vs the batched engine.

    Attributes:
        benchmark: Name of the analysed grid.
        num_scenarios: Number of load scenarios solved by both paths.
        naive_seconds: Wall-clock time of the per-solve baseline (one
            assemble + factorize + solve per scenario).
        batched_seconds: Wall-clock time of the batched engine (one
            factorization, multi-RHS solve).
        batched_factorizations: Factorizations performed by the engine
            (1 for a current-only sweep).
        max_voltage_difference: Worst per-node voltage difference between
            the two paths over all scenarios, in volts.
    """

    benchmark: str
    num_scenarios: int
    naive_seconds: float
    batched_seconds: float
    batched_factorizations: int
    max_voltage_difference: float

    @property
    def speedup(self) -> float:
        """``T_naive / T_batched`` of the load-scenario sweep."""
        if self.batched_seconds <= 0:
            return float("inf")
        return self.naive_seconds / self.batched_seconds

    def as_record(self) -> dict:
        """JSON-serialisable record of the study."""
        return {
            "benchmark": self.benchmark,
            "num_scenarios": self.num_scenarios,
            "naive_seconds": self.naive_seconds,
            "batched_seconds": self.batched_seconds,
            "batched_factorizations": self.batched_factorizations,
            "max_voltage_difference": self.max_voltage_difference,
            "speedup": self.speedup,
        }


def batched_solve_study(
    network: PowerGridNetwork,
    spec: PerturbationSpec,
    num_scenarios: int,
) -> BatchedSolveStudy:
    """Compare naive per-scenario re-solving against the batched engine.

    Both paths solve the same ``num_scenarios`` current-only perturbations
    of ``network``.  The naive path rebuilds the perturbed network and runs
    a fresh :class:`IRDropAnalyzer` per scenario (assembly + factorization
    every time); the batched path compiles once and solves every RHS
    against one cached factorization.  The per-node voltages of the two
    paths are compared to guarantee the comparison is apples-to-apples.

    Args:
        network: The base grid (loads at nominal values).
        spec: Current-only perturbation specification; scenario ``i`` uses
            seed ``spec.seed + i``.
        num_scenarios: Number of load scenarios (the acceptance sweep uses
            at least 50).
    """
    load_matrix = perturbed_load_matrix(network, spec, num_scenarios)
    compiled = network.compile()

    engine = BatchedAnalysisEngine()
    batched_start = time.perf_counter()
    batch = engine.analyze_batch(compiled, load_matrix)
    batched_seconds = time.perf_counter() - batched_start

    analyzer = IRDropAnalyzer()
    max_difference = 0.0
    naive_seconds = 0.0
    for scenario in range(num_scenarios):
        perturbed = NetworkPerturbator(
            PerturbationSpec(gamma=spec.gamma, kind=spec.kind, seed=spec.seed + scenario)
        ).perturb(network)
        naive_start = time.perf_counter()
        result = analyzer.analyze(perturbed)
        naive_seconds += time.perf_counter() - naive_start
        naive_voltages = compiled.voltage_array(result.node_voltages)
        difference = np.abs(naive_voltages - batch.scenario_voltages(scenario)).max()
        max_difference = max(max_difference, float(difference))

    return BatchedSolveStudy(
        benchmark=network.name,
        num_scenarios=num_scenarios,
        naive_seconds=naive_seconds,
        batched_seconds=batched_seconds,
        batched_factorizations=engine.cache_info().factorizations,
        max_voltage_difference=max_difference,
    )


# ----------------------------------------------------------------------
# Table V: accuracy and memory rows
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AccuracyRow:
    """One Table V row: interconnect count, r², MSE and peak memory.

    Attributes:
        benchmark: Benchmark name.
        num_interconnects: Number of interconnect samples evaluated.
        r2: r² score on the test dataset.
        mse: MSE on the test dataset in um².
        peak_memory_mib: Peak memory of the DL flow in MiB.
    """

    benchmark: str
    num_interconnects: int
    r2: float
    mse: float
    peak_memory_mib: float
