"""Plain-text table formatting for the benchmark harness.

Every bench prints the same rows the paper's tables report; this module
renders those rows with aligned columns so the harness output is directly
comparable with the paper (and with EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render dict rows as an aligned text table.

    Args:
        rows: Row dictionaries.
        columns: Column order; inferred from the first row when omitted.
        title: Optional title line printed above the table.
        float_format: Format applied to float cells.

    Returns:
        A multi-line string with a header, a separator and one line per row.

    Raises:
        ValueError: If there are no rows and no explicit columns.
    """
    rows = list(rows)
    if columns is None:
        if not rows:
            raise ValueError("cannot infer columns from an empty table")
        columns = list(rows[0].keys())

    def render(value: Any) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in rendered))
        if rendered
        else len(str(column))
        for index, column in enumerate(columns)
    ]

    lines: list[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def format_key_values(
    values: Mapping[str, Any], title: str | None = None, float_format: str = "{:.4g}"
) -> str:
    """Render a mapping as aligned ``key : value`` lines."""
    lines: list[str] = []
    if title:
        lines.append(title)
    if not values:
        return "\n".join(lines)
    key_width = max(len(str(key)) for key in values)
    for key, value in values.items():
        if isinstance(value, float):
            value = float_format.format(value)
        lines.append(f"{str(key).ljust(key_width)} : {value}")
    return "\n".join(lines)


def format_speedup(speedup: float) -> str:
    """Render a speedup factor the way the paper prints it (e.g. ``5.87x``)."""
    return f"{speedup:.2f}x"
