"""Fast Kirchhoff-based IR-drop prediction (paper Algorithm 2).

Once the width model has produced per-line widths, PowerPlanningDL predicts
the IR drop *without* running the full power-grid analysis: the switching
currents of the blocks are allocated to the power-grid lines that cross them
(the current-requirement decomposition of eqs. 7-9), and the IR drop along
each line is accumulated segment by segment with Kirchhoff's laws, treating
each line as a one-dimensional resistive ladder fed at the crossings nearest
to the supply pads.  This costs O(#segments) instead of a sparse solve over
the whole grid, which is where the paper's ~6x speedup comes from — at the
cost of some accuracy, exactly as the paper notes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..grid.builder import GridTopology
from ..grid.floorplan import Floorplan
from ..grid.technology import Technology


@dataclass
class IRDropPrediction:
    """Predicted IR drops for one design.

    Attributes:
        line_ir_drop: Worst IR drop predicted on each power-grid line, volts.
        segment_ir_drop: Per-line array of per-segment IR drops, volts.
        worst_ir_drop: Predicted worst-case IR drop over the design, volts.
        worst_line: Line id where the worst drop occurs.
        prediction_time: Wall-clock prediction time, seconds.
        line_currents: Current allocated to each line (eqs. 7-9), amperes.
    """

    line_ir_drop: np.ndarray
    segment_ir_drop: list[np.ndarray]
    worst_ir_drop: float
    worst_line: int
    prediction_time: float
    line_currents: np.ndarray

    @property
    def worst_ir_drop_mv(self) -> float:
        """Predicted worst-case IR drop in millivolts (Table III units)."""
        return self.worst_ir_drop * 1000.0


class KirchhoffIRDropEstimator:
    """Analytic IR-drop estimator used by PowerPlanningDL (Algorithm 2).

    Args:
        technology: Provides sheet resistances and the supply voltage.
        distance_decay: Exponential decay length (as a fraction of the core
            size) used when allocating block currents to nearby lines; the
            same parameter as the analytical sizer so the two stay
            consistent.
        sharing_factor: Fraction of a line's allocated current assumed to be
            carried by the line itself (the rest is delivered through the
            orthogonal layer and the vias of the mesh).  1.0 is the most
            pessimistic single-layer assumption.
        approach_factor: Damping applied to the pad-to-line approach
            resistance; the approach path is shared by several parallel
            stripes of the orthogonal layer, so its effective resistance is
            a fraction of a single stripe's.
    """

    def __init__(
        self,
        technology: Technology,
        distance_decay: float = 0.15,
        sharing_factor: float = 1.0,
        approach_factor: float = 0.5,
    ) -> None:
        if distance_decay <= 0:
            raise ValueError("distance_decay must be positive")
        if not 0 < sharing_factor <= 1:
            raise ValueError("sharing_factor must be in (0, 1]")
        if not 0 <= approach_factor <= 1:
            raise ValueError("approach_factor must be in [0, 1]")
        self.technology = technology
        self.distance_decay = distance_decay
        self.sharing_factor = sharing_factor
        self.approach_factor = approach_factor

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def allocate_line_currents(self, floorplan: Floorplan, topology: GridTopology) -> np.ndarray:
        """Allocate each block's current to the grid lines (eqs. 7-9).

        Each block's switching current is split over the lines of each
        direction with exponentially decaying weights in the distance from
        the block centre; both directions share the delivery evenly (half
        each), reflecting that a mesh delivers current through both layers.
        """
        currents = np.zeros(topology.num_lines, dtype=float)
        v_positions = np.asarray(topology.vertical_positions)
        h_positions = np.asarray(topology.horizontal_positions)
        v_decay = max(floorplan.core_width * self.distance_decay, 1e-9)
        h_decay = max(floorplan.core_height * self.distance_decay, 1e-9)
        for block in floorplan.iter_blocks():
            if block.switching_current <= 0:
                continue
            cx, cy = block.center
            v_weights = np.exp(-np.abs(v_positions - cx) / v_decay)
            h_weights = np.exp(-np.abs(h_positions - cy) / h_decay)
            v_weights /= v_weights.sum()
            h_weights /= h_weights.sum()
            currents[: topology.num_vertical] += 0.5 * block.switching_current * v_weights
            currents[topology.num_vertical :] += 0.5 * block.switching_current * h_weights
        return currents

    def predict(
        self,
        floorplan: Floorplan,
        topology: GridTopology,
        line_widths: np.ndarray,
    ) -> IRDropPrediction:
        """Predict per-line and worst-case IR drops from predicted widths.

        Args:
            floorplan: Floorplan providing blocks, pads and core size.
            topology: Stripe topology.
            line_widths: Per-line widths (vertical lines first), um.

        Raises:
            ValueError: If the width vector has the wrong length or contains
                non-positive values, or the floorplan has no pads.
        """
        line_widths = np.asarray(line_widths, dtype=float)
        if line_widths.shape != (topology.num_lines,):
            raise ValueError(f"expected {topology.num_lines} widths")
        if np.any(line_widths <= 0):
            raise ValueError("line widths must be positive")

        pad_xs = np.asarray([pad.x for pad in floorplan.iter_pads()])
        pad_ys = np.asarray([pad.y for pad in floorplan.iter_pads()])
        if pad_xs.size == 0:
            raise ValueError("floorplan has no power pads")

        start = time.perf_counter()
        line_currents = self.allocate_line_currents(floorplan, topology)

        v_layer = self.technology.vertical_layer
        h_layer = self.technology.horizontal_layer
        num_pads = pad_xs.size
        pad_pitch_x = floorplan.core_width / max(np.sqrt(num_pads), 1.0)
        pad_pitch_y = floorplan.core_height / max(np.sqrt(num_pads), 1.0)

        # Pre-compute the switching current under every segment midpoint of
        # every line in two vectorised queries (one per direction).
        v_positions = np.asarray(topology.vertical_positions)
        h_positions = np.asarray(topology.horizontal_positions)
        v_midpoints = (h_positions[:-1] + h_positions[1:]) / 2.0
        h_midpoints = (v_positions[:-1] + v_positions[1:]) / 2.0
        v_grid_x, v_grid_y = np.meshgrid(v_positions, v_midpoints, indexing="ij")
        h_grid_x, h_grid_y = np.meshgrid(h_midpoints, h_positions, indexing="xy")
        vertical_local_currents = floorplan.switching_currents_at(v_grid_x, v_grid_y)
        horizontal_local_currents = floorplan.switching_currents_at(h_grid_x, h_grid_y)

        line_ir_drop = np.zeros(topology.num_lines, dtype=float)
        segment_ir_drop: list[np.ndarray] = []
        for line_id in range(topology.num_lines):
            vertical = topology.is_vertical(line_id)
            layer = v_layer if vertical else h_layer
            if vertical:
                coordinate = topology.vertical_positions[line_id]
                span_positions = h_positions
                pad_axis, pad_other = pad_ys, pad_xs
                pad_reach = pad_pitch_x
                local_currents = vertical_local_currents[line_id]
            else:
                row = line_id - topology.num_vertical
                coordinate = topology.horizontal_positions[row]
                span_positions = v_positions
                pad_axis, pad_other = pad_xs, pad_ys
                pad_reach = pad_pitch_y
                local_currents = horizontal_local_currents[row]

            if vertical:
                orthogonal_layer = h_layer
                orthogonal_width = float(np.median(line_widths[topology.num_vertical :]))
            else:
                orthogonal_layer = v_layer
                orthogonal_width = float(np.median(line_widths[: topology.num_vertical]))

            drops = self._line_ladder_drop(
                span_positions=span_positions,
                pad_axis_positions=pad_axis,
                pad_other_positions=pad_other,
                pad_reach=pad_reach,
                line_coordinate=coordinate,
                sheet_resistance=layer.sheet_resistance,
                width=line_widths[line_id],
                total_current=line_currents[line_id] * self.sharing_factor,
                local_currents=local_currents,
                approach_resistance_per_um=(
                    self.approach_factor
                    * orthogonal_layer.sheet_resistance
                    / max(orthogonal_width, 1e-9)
                ),
                via_resistance=self.technology.via_resistance,
            )
            segment_ir_drop.append(drops)
            line_ir_drop[line_id] = drops.max() if drops.size else 0.0

        worst_line = int(np.argmax(line_ir_drop))
        elapsed = time.perf_counter() - start
        return IRDropPrediction(
            line_ir_drop=line_ir_drop,
            segment_ir_drop=segment_ir_drop,
            worst_ir_drop=float(line_ir_drop[worst_line]),
            worst_line=worst_line,
            prediction_time=elapsed,
            line_currents=line_currents,
        )

    def ir_drop_map(
        self,
        floorplan: Floorplan,
        topology: GridTopology,
        prediction: IRDropPrediction,
        resolution: int = 100,
    ) -> np.ndarray:
        """Rasterise the predicted per-segment IR drops onto a map (Fig. 8).

        Every segment midpoint deposits its predicted drop into its bin
        (keeping the maximum per bin); empty bins are filled with the minimum
        observed drop, mirroring :func:`repro.analysis.irdrop.ir_drop_map`.
        """
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        grid = np.full((resolution, resolution), np.nan)
        width = max(floorplan.core_width, 1e-12)
        height = max(floorplan.core_height, 1e-12)
        for line_id in range(topology.num_lines):
            drops = prediction.segment_ir_drop[line_id]
            vertical = topology.is_vertical(line_id)
            if vertical:
                x = topology.vertical_positions[line_id]
                span = np.asarray(topology.horizontal_positions)
                midpoints_x = np.full(drops.shape, x)
                midpoints_y = (span[:-1] + span[1:]) / 2.0
            else:
                y = topology.horizontal_positions[line_id - topology.num_vertical]
                span = np.asarray(topology.vertical_positions)
                midpoints_y = np.full(drops.shape, y)
                midpoints_x = (span[:-1] + span[1:]) / 2.0
            x_bins = np.clip((midpoints_x / width * resolution).astype(int), 0, resolution - 1)
            y_bins = np.clip((midpoints_y / height * resolution).astype(int), 0, resolution - 1)
            for xb, yb, drop in zip(x_bins, y_bins, drops):
                current = grid[yb, xb]
                if np.isnan(current) or drop > current:
                    grid[yb, xb] = drop
        observed_min = np.nanmin(grid) if np.any(~np.isnan(grid)) else 0.0
        return np.where(np.isnan(grid), observed_min, grid)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _line_ladder_drop(
        self,
        span_positions: np.ndarray,
        pad_axis_positions: np.ndarray,
        pad_other_positions: np.ndarray,
        pad_reach: float,
        line_coordinate: float,
        sheet_resistance: float,
        width: float,
        total_current: float,
        local_currents: np.ndarray,
        approach_resistance_per_um: float = 0.0,
        via_resistance: float = 0.0,
    ) -> np.ndarray:
        """IR drop along one line modelled as a multi-feed 1-D ladder.

        The line's allocated current is distributed over its segments in
        proportion to the switching current under each segment (uniformly
        when no block covers the line).  Feed points are the crossings
        nearest to the pads whose orthogonal distance from the line is
        within one pad pitch (falling back to the single nearest pad when
        no pad is that close).  Each segment's tap current flows to its
        nearest feed point; the IR drop accumulates away from each feed as
        ``sum(R_segment * I_carried)`` on top of the feed's *approach drop*
        — the drop incurred reaching the line from the pad through the
        orthogonal layer and the via stack.
        """
        num_segments = span_positions.size - 1
        if num_segments <= 0:
            return np.zeros(0)

        midpoints = (span_positions[:-1] + span_positions[1:]) / 2.0
        lengths = np.diff(span_positions)
        resistances = sheet_resistance * lengths / width

        # Per-segment tap currents proportional to the local switching current.
        local_currents = np.asarray(local_currents, dtype=float)
        if local_currents.sum() <= 0:
            taps = np.full(num_segments, total_current / num_segments)
        else:
            taps = total_current * local_currents / local_currents.sum()

        # Feed points: crossings nearest to the pads that are close enough to
        # supply this line through the orthogonal layer.
        distance_to_line = np.abs(pad_other_positions - line_coordinate)
        nearby = distance_to_line <= pad_reach
        if not np.any(nearby):
            nearby = distance_to_line == distance_to_line.min()
        feed_positions = pad_axis_positions[nearby]
        feed_distances = distance_to_line[nearby]
        projected = np.argmin(
            np.abs(span_positions[None, :] - feed_positions[:, None]), axis=1
        )
        feed_indices, inverse = np.unique(projected, return_inverse=True)
        # The approach distance of a feed is the closest pad projecting there.
        approach_distance = np.full(feed_indices.shape, np.inf)
        np.minimum.at(approach_distance, inverse, feed_distances)

        # Assign every segment to its nearest feed.  Feeds are sorted along
        # the line, so the assignment splits the segments into contiguous
        # regions separated at the midpoints between adjacent feeds.
        feed_span = span_positions[feed_indices]
        boundaries = (feed_span[:-1] + feed_span[1:]) / 2.0
        slots = np.searchsorted(boundaries, midpoints)
        num_slots = feed_indices.size
        region_start = np.searchsorted(slots, np.arange(num_slots), side="left")
        region_end = np.searchsorted(slots, np.arange(num_slots), side="right")

        # Prefix sums that turn the per-region ladder accumulation into a
        # closed form:  T = prefix taps, CR = prefix resistances,
        # CRT[i] = sum_{m<i} R[m] * T[m],  CRT2[i] = sum_{m<i} R[m] * T[m+1].
        prefix_taps = np.concatenate(([0.0], np.cumsum(taps)))
        prefix_res = np.concatenate(([0.0], np.cumsum(resistances)))
        prefix_rt = np.concatenate(([0.0], np.cumsum(resistances * prefix_taps[:-1])))
        prefix_rt_next = np.concatenate(([0.0], np.cumsum(resistances * prefix_taps[1:])))

        region_current = prefix_taps[region_end] - prefix_taps[region_start]
        approach_drop = region_current * (
            approach_resistance_per_um * approach_distance + via_resistance
        )

        segment_index = np.arange(num_segments)
        feed_of_segment = feed_indices[slots]
        start_of_segment = region_start[slots]
        end_of_segment = region_end[slots]
        approach_of_segment = approach_drop[slots]

        drops = np.empty(num_segments)
        right = segment_index >= feed_of_segment
        left = ~right
        # Right of the feed: segment j carries the taps of segments j..end-1.
        drops[right] = (
            prefix_taps[end_of_segment[right]]
            * (prefix_res[segment_index[right] + 1] - prefix_res[feed_of_segment[right]])
            - (prefix_rt[segment_index[right] + 1] - prefix_rt[feed_of_segment[right]])
        )
        # Left of the feed: segment j carries the taps of segments start..j.
        drops[left] = (
            prefix_rt_next[feed_of_segment[left]]
            - prefix_rt_next[segment_index[left]]
            - prefix_taps[start_of_segment[left]]
            * (prefix_res[feed_of_segment[left]] - prefix_res[segment_index[left]])
        )
        return drops + approach_of_segment


def pg_line_count(core_width: float, width: float) -> int:
    """Implement paper eq. (6): ``#PG lines = Wcore / w_i`` (floored, >= 1).

    Raises:
        ValueError: If either argument is not positive.
    """
    if core_width <= 0:
        raise ValueError("core_width must be positive")
    if width <= 0:
        raise ValueError("width must be positive")
    return max(1, int(core_width // width))
