"""The end-to-end PowerPlanningDL framework (paper Fig. 2 / Fig. 6).

:class:`PowerPlanningDL` ties the pieces together exactly as the paper's
simulation-setup figure describes:

1. run the conventional flow on a benchmark netlist to obtain the golden
   ("historical") power-grid design;
2. extract per-interconnect features (X, Y, Id) and golden widths, forming
   the training dataset;
3. train the neural-network width model (Algorithm 1);
4. for a new (perturbed) specification, predict the interconnect widths and
   then the IR drop via the Kirchhoff estimator (Algorithm 2), measuring the
   prediction ("convergence") time that Table IV compares against the
   conventional approach;
5. compute the evaluation metrics (MSE, r² score) of Table V.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..design.planner import ConventionalPowerPlanner, PowerPlanResult
from ..design.rules import DesignRules
from ..grid.benchmarks import SyntheticBenchmark
from ..grid.floorplan import Floorplan
from ..grid.perturbation import PerturbationKind, PerturbationSpec
from ..nn.metrics import mean_squared_error, pearson_correlation, r2_score, relative_mse_percent
from ..nn.regression import RegressorConfig
from ..nn.training import TrainingHistory
from .dataset import BenchmarkDataset, DatasetBuilder, RegressionDataset
from .irdrop_model import IRDropPrediction, KirchhoffIRDropEstimator
from .width_model import WidthPredictionResult, WidthPredictor


@dataclass
class PredictedDesign:
    """A power-grid design predicted by PowerPlanningDL for one specification.

    Attributes:
        name: Name of the specification (floorplan) the design is for.
        line_widths: Predicted per-line widths in um.
        width_result: Full per-sample width prediction result.
        ir_drop: Kirchhoff-based IR-drop prediction.
        convergence_time: Total prediction time (width + IR drop), seconds —
            the PowerPlanningDL column of Table IV.
    """

    name: str
    line_widths: np.ndarray
    width_result: WidthPredictionResult
    ir_drop: IRDropPrediction
    convergence_time: float


@dataclass
class EvaluationMetrics:
    """Accuracy metrics of the framework on a labeled test dataset (Table V).

    Attributes:
        dataset_name: Name of the evaluated dataset.
        num_interconnects: Number of evaluated interconnect samples.
        r2: r² score between golden and predicted sample widths.
        mse: Mean squared error in um².
        mse_percent: Variance-normalised MSE in percent (Fig. 9 units).
        correlation: Pearson correlation between golden and predicted widths
            (Fig. 7a).
    """

    dataset_name: str
    num_interconnects: int
    r2: float
    mse: float
    mse_percent: float
    correlation: float


@dataclass
class TrainedFramework:
    """Everything produced by training the framework on one benchmark.

    Attributes:
        benchmark_dataset: The golden plan and training dataset.
        training_history: Neural-network training history.
        training_time: Wall-clock training time in seconds.
        feature_extraction_time: Time spent building the training dataset
            (conventional golden plan excluded), in seconds.
    """

    benchmark_dataset: BenchmarkDataset
    training_history: TrainingHistory
    training_time: float
    feature_extraction_time: float


class PowerPlanningDL:
    """Reliability-aware deep-learning power-planning framework.

    Args:
        technology: Technology shared by training and prediction.
        regressor_config: Width-model configuration; the paper's default
            (10 hidden layers, Adam, MSE) is used when omitted.
        rules: Design rules used to legalise predicted widths; derived from
            the technology when omitted.
        planner: Conventional planner used to create golden designs; a
            default planner is created when omitted.
    """

    def __init__(
        self,
        technology,
        regressor_config: RegressorConfig | None = None,
        rules: DesignRules | None = None,
        planner: ConventionalPowerPlanner | None = None,
    ) -> None:
        self.technology = technology
        self.rules = rules or DesignRules.from_technology(technology)
        self.width_predictor = WidthPredictor(
            config=regressor_config or RegressorConfig.paper_default(),
            rules=self.rules,
        )
        self.ir_estimator = KirchhoffIRDropEstimator(technology)
        self.dataset_builder = DatasetBuilder(planner or ConventionalPowerPlanner(technology))
        self._trained: TrainedFramework | None = None

    # ------------------------------------------------------------------
    # Training (Fig. 2 upper path)
    # ------------------------------------------------------------------
    def train_on_benchmark(self, benchmark: SyntheticBenchmark) -> TrainedFramework:
        """Run the golden flow, extract features and train the width model."""
        start = time.perf_counter()
        benchmark_dataset = self.dataset_builder.build_training(benchmark)
        feature_time = time.perf_counter() - start - benchmark_dataset.golden_plan.total_time

        history = self.width_predictor.fit(benchmark_dataset.training)
        trained = TrainedFramework(
            benchmark_dataset=benchmark_dataset,
            training_history=history,
            training_time=self.width_predictor.training_time,
            feature_extraction_time=max(feature_time, 0.0),
        )
        self._trained = trained
        return trained

    def train_on_dataset(self, dataset: RegressionDataset) -> TrainingHistory:
        """Train the width model directly on a pre-built dataset."""
        return self.width_predictor.fit(dataset)

    @property
    def is_trained(self) -> bool:
        """True once the width model has been trained."""
        return self.width_predictor.is_fitted

    @property
    def trained(self) -> TrainedFramework:
        """The result of the last :meth:`train_on_benchmark` call.

        Raises:
            RuntimeError: If the framework was not trained on a benchmark.
        """
        if self._trained is None:
            raise RuntimeError("the framework has not been trained on a benchmark")
        return self._trained

    # ------------------------------------------------------------------
    # Prediction (Fig. 2 lower path)
    # ------------------------------------------------------------------
    def predict_design(self, floorplan: Floorplan, topology) -> PredictedDesign:
        """Predict a full power-grid design for a new specification.

        This is the PowerPlanningDL "convergence" path of Table IV: a width
        prediction (Algorithm 1) followed by the Kirchhoff IR-drop
        estimation (Algorithm 2), with no power-grid analysis.
        """
        start = time.perf_counter()
        width_result = self.width_predictor.predict_design(floorplan, topology)
        ir_prediction = self.ir_estimator.predict(floorplan, topology, width_result.line_widths)
        elapsed = time.perf_counter() - start
        return PredictedDesign(
            name=floorplan.name,
            line_widths=width_result.line_widths,
            width_result=width_result,
            ir_drop=ir_prediction,
            convergence_time=elapsed,
        )

    def predict_for_perturbation(
        self, benchmark: SyntheticBenchmark, spec: PerturbationSpec
    ) -> tuple[PredictedDesign, RegressionDataset, PowerPlanResult]:
        """Predict the design for a perturbed specification of a benchmark.

        Returns the predicted design, the labeled perturbed test dataset and
        the conventional plan of the perturbed design (for golden
        comparisons).
        """
        test_dataset, perturbed_floorplan, perturbed_plan = (
            self.dataset_builder.build_perturbed_test(benchmark, spec)
        )
        predicted = self.predict_design(perturbed_floorplan, benchmark.topology)
        return predicted, test_dataset, perturbed_plan

    # ------------------------------------------------------------------
    # Evaluation (Table V metrics)
    # ------------------------------------------------------------------
    def evaluate(self, dataset: RegressionDataset) -> EvaluationMetrics:
        """Compute r², MSE, MSE% and correlation on a labeled dataset."""
        predictions = self.width_predictor.predict_samples(dataset.features)
        return EvaluationMetrics(
            dataset_name=dataset.name,
            num_interconnects=dataset.num_interconnects,
            r2=r2_score(dataset.widths, predictions),
            mse=mean_squared_error(dataset.widths, predictions),
            mse_percent=relative_mse_percent(dataset.widths, predictions),
            correlation=pearson_correlation(dataset.widths, predictions),
        )

    def default_perturbation(
        self,
        gamma: float = 0.10,
        kind: PerturbationKind = PerturbationKind.BOTH,
        seed: int = 1,
    ) -> PerturbationSpec:
        """The paper's default test-set perturbation: gamma = 10 %, both kinds."""
        return PerturbationSpec(gamma=gamma, kind=kind, seed=seed)
