"""Peak-memory profiling (the paper's mprof study, Table V / Fig. 10).

The paper profiles its framework with the ``mprof`` tool and reports peak
memory per benchmark (Table V) and memory-versus-time curves (Fig. 10).
``mprof`` is not available offline, so this module provides a
``tracemalloc``-based profiler that measures the Python-level heap: the
current and peak allocated bytes are sampled over the run of a callable,
yielding the same two artefacts (a peak figure and a time series).

Note: ``tracemalloc`` tracks Python allocations (including NumPy array
buffers), not the process RSS that ``mprof`` reports, so absolute numbers
are smaller than the paper's; relative ordering across benchmarks is the
comparable quantity.
"""

from __future__ import annotations

import threading
import time
import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable

_BYTES_PER_MIB = 1024.0 * 1024.0


@dataclass
class MemorySample:
    """One sample of the memory profile.

    Attributes:
        elapsed: Seconds since profiling started.
        current_mib: Currently allocated Python heap in MiB.
        peak_mib: Peak allocated Python heap so far in MiB.
    """

    elapsed: float
    current_mib: float
    peak_mib: float


@dataclass
class MemoryProfile:
    """Memory usage of one profiled call.

    Attributes:
        label: Name of the profiled activity.
        samples: Time-ordered memory samples (the Fig. 10 series).
        peak_mib: Peak allocated memory over the whole call, in MiB.
        duration: Total wall-clock duration of the call, in seconds.
        result: Return value of the profiled callable.
    """

    label: str
    samples: list[MemorySample]
    peak_mib: float
    duration: float
    result: Any = None

    def series(self) -> tuple[list[float], list[float]]:
        """Return the ``(times, current_mib)`` series for plotting."""
        return (
            [sample.elapsed for sample in self.samples],
            [sample.current_mib for sample in self.samples],
        )


class PeakMemoryProfiler:
    """Profile the peak memory and memory-over-time of a callable.

    Args:
        sample_interval: Seconds between background samples of the heap.
    """

    def __init__(self, sample_interval: float = 0.05) -> None:
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.sample_interval = sample_interval

    def profile(self, func: Callable[[], Any], label: str = "run") -> MemoryProfile:
        """Run ``func`` under the profiler and return its memory profile.

        The profiler owns the ``tracemalloc`` session: it is started before
        the call and stopped afterwards, even if the callable raises.
        """
        samples: list[MemorySample] = []
        stop_event = threading.Event()
        was_tracing = tracemalloc.is_tracing()
        if not was_tracing:
            tracemalloc.start()
        tracemalloc.reset_peak()
        start = time.perf_counter()

        def sampler() -> None:
            while not stop_event.wait(self.sample_interval):
                current, peak = tracemalloc.get_traced_memory()
                samples.append(
                    MemorySample(
                        elapsed=time.perf_counter() - start,
                        current_mib=current / _BYTES_PER_MIB,
                        peak_mib=peak / _BYTES_PER_MIB,
                    )
                )

        thread = threading.Thread(target=sampler, daemon=True)
        thread.start()
        try:
            result = func()
        finally:
            stop_event.set()
            thread.join()
            current, peak = tracemalloc.get_traced_memory()
            duration = time.perf_counter() - start
            if not was_tracing:
                tracemalloc.stop()

        samples.append(
            MemorySample(
                elapsed=duration,
                current_mib=current / _BYTES_PER_MIB,
                peak_mib=peak / _BYTES_PER_MIB,
            )
        )
        return MemoryProfile(
            label=label,
            samples=samples,
            peak_mib=peak / _BYTES_PER_MIB,
            duration=duration,
            result=result,
        )


def peak_memory_of(func: Callable[[], Any], label: str = "run") -> tuple[float, Any]:
    """Convenience wrapper: return ``(peak_mib, result)`` of one call."""
    profile = PeakMemoryProfiler().profile(func, label=label)
    return profile.peak_mib, profile.result
