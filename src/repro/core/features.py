"""Feature extraction for the PowerPlanningDL model (paper Section IV-B).

The training dataset is built from quadruples ``(X coordinate, Y coordinate,
Id, w_i)`` — one per power-grid interconnect — where ``(X, Y)`` is the
location of the interconnect over the planned floorplan, ``Id`` is the
switching current of the functional block underneath, and ``w_i`` is the
(golden) width of the power-grid lines at that location.

The model is a *multi-target* regressor, as in the paper: each sample sits
at a crossing of one vertical and one horizontal power-grid line, and the
two regression targets are the widths of those two lines.  One sample per
crossing makes the mapping ``(X, Y, Id) -> (w_vertical, w_horizontal)``
well defined (each location pins down exactly one line in each direction)
and gives a sample count of the same order as the grid's interconnect
count, which is what the paper's Table V ``#interconnects`` column tracks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..grid.builder import GridTopology
from ..grid.floorplan import Floorplan

FEATURE_NAMES: tuple[str, str, str] = ("x", "y", "switching_current")
"""Names (and order) of the input features used by the width model."""

TARGET_NAMES: tuple[str, str] = ("vertical_width", "horizontal_width")
"""Names (and order) of the multi-target regression outputs."""


@dataclass(frozen=True)
class InterconnectSample:
    """One training / test sample at a power-grid crossing.

    Attributes:
        vertical_line: Id of the vertical line at this crossing.
        horizontal_line: Id of the horizontal line at this crossing (global
            line id, i.e. offset by the number of vertical lines).
        x: X coordinate of the crossing in um.
        y: Y coordinate of the crossing in um.
        switching_current: Switching current ``Id`` of the block under the
            crossing, in amperes (0 when no block covers the point).
        vertical_width: Golden width of the vertical line in um (NaN when
            unlabeled).
        horizontal_width: Golden width of the horizontal line in um (NaN
            when unlabeled).
    """

    vertical_line: int
    horizontal_line: int
    x: float
    y: float
    switching_current: float
    vertical_width: float = float("nan")
    horizontal_width: float = float("nan")

    @property
    def features(self) -> tuple[float, float, float]:
        """The (X, Y, Id) feature triple of this sample."""
        return (self.x, self.y, self.switching_current)

    @property
    def targets(self) -> tuple[float, float]:
        """The (vertical width, horizontal width) target pair."""
        return (self.vertical_width, self.horizontal_width)

    @property
    def is_labeled(self) -> bool:
        """True if the sample carries golden widths."""
        return not (np.isnan(self.vertical_width) or np.isnan(self.horizontal_width))


class FeatureExtractor:
    """Extract per-crossing feature quadruples from a floorplan.

    Args:
        floorplan: The floorplan providing block locations and switching
            currents.
        topology: The power-grid stripe topology; samples are located at the
            stripe crossings.
    """

    def __init__(self, floorplan: Floorplan, topology: GridTopology) -> None:
        self.floorplan = floorplan
        self.topology = topology

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def crossing_grid(self) -> tuple[np.ndarray, np.ndarray]:
        """Return meshgrid arrays of the crossing coordinates.

        Returns:
            ``(xs, ys)`` arrays of shape ``(num_horizontal, num_vertical)``.
        """
        xs, ys = np.meshgrid(
            np.asarray(self.topology.vertical_positions),
            np.asarray(self.topology.horizontal_positions),
        )
        return xs, ys

    def feature_matrix(
        self, widths: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Extract features, targets and line ids for every crossing.

        Args:
            widths: Golden per-line widths of length ``topology.num_lines``;
                when omitted the target matrix is filled with NaN.

        Returns:
            features: ``(n, 3)`` array of (x, y, Id).
            targets: ``(n, 2)`` array of (vertical width, horizontal width).
            line_ids: ``(n, 2)`` integer array of (vertical line id, global
                horizontal line id) per sample.

        Raises:
            ValueError: If the width vector has the wrong length.
        """
        topology = self.topology
        if widths is not None:
            widths = np.asarray(widths, dtype=float)
            if widths.shape != (topology.num_lines,):
                raise ValueError(
                    f"expected {topology.num_lines} widths, got shape {widths.shape}"
                )

        xs, ys = self.crossing_grid()
        currents = self.floorplan.switching_currents_at(xs, ys)
        v_index, h_index = np.meshgrid(
            np.arange(topology.num_vertical), np.arange(topology.num_horizontal)
        )
        features = np.column_stack([xs.ravel(), ys.ravel(), currents.ravel()])
        vertical_ids = v_index.ravel()
        horizontal_ids = h_index.ravel() + topology.num_vertical
        line_ids = np.column_stack([vertical_ids, horizontal_ids])

        if widths is None:
            targets = np.full((features.shape[0], 2), np.nan)
        else:
            targets = np.column_stack([widths[vertical_ids], widths[horizontal_ids]])
        return features, targets, line_ids

    def extract(self, widths: np.ndarray | None = None) -> list[InterconnectSample]:
        """Extract one :class:`InterconnectSample` per crossing."""
        features, targets, line_ids = self.feature_matrix(widths)
        samples: list[InterconnectSample] = []
        for row in range(features.shape[0]):
            samples.append(
                InterconnectSample(
                    vertical_line=int(line_ids[row, 0]),
                    horizontal_line=int(line_ids[row, 1]),
                    x=float(features[row, 0]),
                    y=float(features[row, 1]),
                    switching_current=float(features[row, 2]),
                    vertical_width=float(targets[row, 0]),
                    horizontal_width=float(targets[row, 1]),
                )
            )
        return samples


def single_feature_columns(features: np.ndarray) -> dict[str, np.ndarray]:
    """Split the feature matrix into named single-feature columns.

    Used by the Table I / Fig. 4(b) study, which compares the r² score of
    each individual feature against the combined feature set.
    """
    features = np.atleast_2d(np.asarray(features, dtype=float))
    if features.shape[1] != len(FEATURE_NAMES):
        raise ValueError(f"expected {len(FEATURE_NAMES)} feature columns")
    return {name: features[:, [index]] for index, name in enumerate(FEATURE_NAMES)}
