"""PowerPlanningDL core: the paper's deep-learning power-planning framework.

Contains feature extraction (X, Y, Id, w quadruples), dataset preparation
from golden conventional designs and gamma-perturbed test specifications,
the neural width predictor (Algorithm 1), the Kirchhoff IR-drop estimator
(Algorithm 2), the end-to-end :class:`PowerPlanningDL` framework, the
experiment-level evaluation helpers behind every table and figure, the
tracemalloc-based memory profiler and plain-text report formatting.
"""

from .dataset import BenchmarkDataset, DatasetBuilder, RegressionDataset
from .evaluation import (
    AccuracyRow,
    BatchedSolveStudy,
    ConvergenceComparison,
    FeatureScoreStudy,
    IRDropComparison,
    WidthPredictionStudy,
    batched_solve_study,
    compare_convergence,
    compare_worst_ir_drop,
    feature_r2_study,
    per_interconnect_r2_series,
    width_prediction_study,
)
from .features import FEATURE_NAMES, FeatureExtractor, InterconnectSample, single_feature_columns
from .framework import EvaluationMetrics, PowerPlanningDL, PredictedDesign, TrainedFramework
from .irdrop_model import IRDropPrediction, KirchhoffIRDropEstimator, pg_line_count
from .memory import MemoryProfile, MemorySample, PeakMemoryProfiler, peak_memory_of
from .report import format_key_values, format_speedup, format_table
from .width_model import WidthPredictionResult, WidthPredictor

__all__ = [
    "AccuracyRow",
    "BatchedSolveStudy",
    "BenchmarkDataset",
    "ConvergenceComparison",
    "DatasetBuilder",
    "EvaluationMetrics",
    "FEATURE_NAMES",
    "FeatureExtractor",
    "FeatureScoreStudy",
    "IRDropComparison",
    "IRDropPrediction",
    "InterconnectSample",
    "KirchhoffIRDropEstimator",
    "MemoryProfile",
    "MemorySample",
    "PeakMemoryProfiler",
    "PowerPlanningDL",
    "PredictedDesign",
    "RegressionDataset",
    "TrainedFramework",
    "WidthPredictionResult",
    "WidthPredictionStudy",
    "WidthPredictor",
    "batched_solve_study",
    "compare_convergence",
    "compare_worst_ir_drop",
    "feature_r2_study",
    "format_key_values",
    "format_speedup",
    "format_table",
    "peak_memory_of",
    "per_interconnect_r2_series",
    "pg_line_count",
    "single_feature_columns",
    "width_prediction_study",
]
