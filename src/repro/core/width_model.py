"""Power-grid interconnect width prediction (paper Algorithm 1).

The width predictor is the supervised heart of PowerPlanningDL: a neural
multi-target regressor mapping the per-crossing features (X, Y, Id) to the
widths of the vertical and horizontal power-grid lines at that crossing.
Per-line widths for grid construction are obtained by aggregating the
per-crossing predictions of each line (median by default, which is robust
to a few badly predicted samples).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..design.rules import DesignRules
from ..grid.builder import GridTopology
from ..grid.floorplan import Floorplan
from ..nn.metrics import mean_squared_error, r2_score
from ..nn.regression import MultiTargetRegressor, RegressorConfig
from ..nn.training import TrainingHistory
from .dataset import RegressionDataset
from .features import FeatureExtractor


@dataclass
class WidthPredictionResult:
    """Per-crossing and per-line width predictions for one design.

    Attributes:
        sample_widths: ``(n, 2)`` predicted (vertical, horizontal) widths per
            crossing, um.
        line_widths: Aggregated per-line widths (length ``num_lines``), um.
        prediction_time: Wall-clock time of the forward passes, seconds.
    """

    sample_widths: np.ndarray
    line_widths: np.ndarray
    prediction_time: float


class WidthPredictor:
    """Neural-network width predictor (Algorithm 1 of the paper).

    Args:
        config: Regressor configuration; the paper's 10-hidden-layer default
            is used when omitted.
        rules: Optional design rules used to legalise aggregated line widths
            (clamping to min/max width and snapping to the width grid).
        aggregation: How per-crossing predictions are combined into one width
            per line: ``"median"``, ``"mean"`` or ``"max"``.
    """

    _AGGREGATIONS = ("median", "mean", "max")

    def __init__(
        self,
        config: RegressorConfig | None = None,
        rules: DesignRules | None = None,
        aggregation: str = "median",
    ) -> None:
        if aggregation not in self._AGGREGATIONS:
            raise ValueError(f"aggregation must be one of {self._AGGREGATIONS}")
        self.config = config or RegressorConfig.paper_default()
        self.rules = rules
        self.aggregation = aggregation
        self.regressor = MultiTargetRegressor(self.config)
        self.training_time: float = 0.0

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, dataset: RegressionDataset) -> TrainingHistory:
        """Train the width model on a labeled dataset.

        Raises:
            ValueError: If the dataset contains unlabeled (NaN-width) samples.
        """
        if np.any(np.isnan(dataset.widths)):
            raise ValueError("training dataset contains unlabeled samples")
        start = time.perf_counter()
        history = self.regressor.fit(dataset.features, dataset.widths)
        self.training_time = time.perf_counter() - start
        return history

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_samples(self, features: np.ndarray) -> np.ndarray:
        """Predict (vertical, horizontal) widths for raw feature rows, in um.

        Predictions are clipped at a small positive floor so downstream
        resistance computations never see a non-positive width.
        """
        predictions = self.regressor.predict(features)
        floor = self.rules.min_width if self.rules is not None else 1e-3
        return np.maximum(predictions, floor)

    def predict_dataset(self, dataset: RegressionDataset) -> WidthPredictionResult:
        """Predict widths for every sample of a dataset and aggregate per line."""
        start = time.perf_counter()
        sample_widths = self.predict_samples(dataset.features)
        line_widths = self._aggregate(sample_widths, dataset.line_ids, dataset.num_lines)
        elapsed = time.perf_counter() - start
        return WidthPredictionResult(
            sample_widths=sample_widths,
            line_widths=line_widths,
            prediction_time=elapsed,
        )

    def predict_design(self, floorplan: Floorplan, topology: GridTopology) -> WidthPredictionResult:
        """Predict per-line widths directly from a floorplan (no labels needed)."""
        extractor = FeatureExtractor(floorplan, topology)
        features, _, line_ids = extractor.feature_matrix()
        start = time.perf_counter()
        sample_widths = self.predict_samples(features)
        line_widths = self._aggregate(sample_widths, line_ids, topology.num_lines)
        elapsed = time.perf_counter() - start
        return WidthPredictionResult(
            sample_widths=sample_widths,
            line_widths=line_widths,
            prediction_time=elapsed,
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, dataset: RegressionDataset) -> dict[str, float]:
        """Return r² and MSE of the sample-level predictions on a dataset."""
        predictions = self.predict_samples(dataset.features)
        return {
            "r2_score": r2_score(dataset.widths, predictions),
            "mse": mean_squared_error(dataset.widths, predictions),
        }

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has been called."""
        return self.regressor.is_fitted

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _aggregate(
        self, sample_widths: np.ndarray, line_ids: np.ndarray, num_lines: int
    ) -> np.ndarray:
        """Combine per-crossing predictions into one width per line.

        Column 0 of ``sample_widths`` holds vertical-line predictions keyed
        by ``line_ids[:, 0]``, column 1 horizontal-line predictions keyed by
        ``line_ids[:, 1]``.
        """
        line_widths = np.empty(num_lines, dtype=float)
        fallback = float(np.median(sample_widths))
        for line_id in range(num_lines):
            values_v = sample_widths[line_ids[:, 0] == line_id, 0]
            values_h = sample_widths[line_ids[:, 1] == line_id, 1]
            values = np.concatenate([values_v, values_h])
            if values.size == 0:
                line_widths[line_id] = fallback
                continue
            if self.aggregation == "median":
                line_widths[line_id] = float(np.median(values))
            elif self.aggregation == "mean":
                line_widths[line_id] = float(np.mean(values))
            else:
                line_widths[line_id] = float(np.max(values))
        if self.rules is not None:
            line_widths = self.rules.legalize_widths(line_widths)
        return line_widths
