"""Central registry of every environment variable the repo reads.

Every ``REPRO_*`` knob must be declared here with a one-line description
— the :mod:`repro.devtools.lint` rule ``RPR006`` (env-var registry)
rejects any ``os.environ`` / ``os.getenv`` read whose key is missing
from :data:`KNOWN_ENV_VARS`, so this table cannot silently go stale.

Conventions the linter enforces alongside the registry:

* Read keys through a module-level ``*_ENV`` string constant (e.g.
  ``EXECUTOR_ENV = "REPRO_TEST_EXECUTOR"``) or a string literal, never a
  dynamically-built expression — a key the linter cannot resolve cannot
  be checked against this table.
* The constant's *definition* is checked where it is assigned, so a
  module importing someone else's ``*_ENV`` constant needs no local
  entry lookup.
"""

from __future__ import annotations

KNOWN_ENV_VARS: dict[str, str] = {
    # --- engine / executor defaults (test-suite steering) -------------
    "REPRO_TEST_WORKERS": (
        "Default solver-thread count of BatchedAnalysisEngine; CI runs "
        "tier-1 once with 2 to exercise the parallel chunk pipeline."
    ),
    "REPRO_TEST_EXECUTOR": (
        "Default sweep executor (serial|threads|processes|hybrid|remote) "
        "for every analyze_* call that passes neither executor= nor "
        "workers=."
    ),
    "REPRO_HYBRID_SHARD_WORKERS": (
        "Process-shard count of HybridExecutor when shard_workers= is "
        "not passed; auto-resolved from os.cpu_count() when unset."
    ),
    "REPRO_HYBRID_THREADS": (
        "Solver threads inside each HybridExecutor process shard when "
        "threads_per_shard= is not passed."
    ),
    "REPRO_TEST_SOLVER": (
        "Default factorization backend (splu|cholmod|auto) of "
        "resolve_solver_backend."
    ),
    # --- remote fleet -------------------------------------------------
    "REPRO_REMOTE_COORDINATOR": (
        "Base URL of a standing sweep coordinator; RemoteExecutor submits "
        "there instead of hosting an embedded localhost fleet."
    ),
    "REPRO_REMOTE_WORKERS": (
        "Worker hint of RemoteExecutor: embedded worker processes spawned "
        "and the basis of the workers x oversubscribe shard count."
    ),
    # --- benchmark harness --------------------------------------------
    "REPRO_BENCH_SCALE": (
        "Grid-size scale factor of the benchmark suite (1 = full scale; "
        "CI smoke runs use 0.15 and tag records as smoke)."
    ),
    "REPRO_BENCH_EPOCHS": "Training-epoch budget of the NN benchmark legs.",
    "REPRO_BENCH_SUITE": "Benchmark-grid suite override of benchmarks/conftest.py.",
    "REPRO_BENCH_PLANNER_GRID": (
        "Benchmark-grid override of the planner iteration / search benches."
    ),
}
"""Mapping of environment-variable name to its one-line contract."""
