"""repro — reproduction of PowerPlanningDL (Dey, Nandi, Trivedi, DATE 2020).

PowerPlanningDL replaces the iterative power-planning loop of VLSI physical
design with a deep-learning surrogate: a neural multi-target regressor
predicts power-grid interconnect widths from floorplan features (X, Y,
switching current), and a fast Kirchhoff-based estimator predicts the
resulting IR drop without a full power-grid solve.

The package is organised as:

* :mod:`repro.grid` — power-grid network model, floorplans, SPICE netlists,
  synthetic IBM-style benchmarks, perturbation engine;
* :mod:`repro.analysis` — conventional MNA-based IR-drop analysis, EM
  checking, vectorless bounds (the baseline's substrate);
* :mod:`repro.design` — the conventional iterative power planner, analytical
  sizing and reliability constraints;
* :mod:`repro.nn` — from-scratch NumPy neural-network stack (layers, Adam,
  training loop, metrics, hyper-parameter search);
* :mod:`repro.core` — the PowerPlanningDL framework itself (feature
  extraction, width predictor, IR-drop predictor, evaluation, memory
  profiling);
* :mod:`repro.io` — switching-activity files, result serialisation, ASCII
  figures.

Quickstart::

    from repro import PowerPlanningDL, load_benchmark
    from repro.nn import RegressorConfig

    bench = load_benchmark("ibmpg1", scale=0.5)
    framework = PowerPlanningDL(bench.technology, RegressorConfig.fast())
    framework.train_on_benchmark(bench)
    spec = framework.default_perturbation(gamma=0.10)
    predicted, test_set, golden = framework.predict_for_perturbation(bench, spec)
    print(framework.evaluate(test_set))
"""

from .analysis import BatchedAnalysisEngine, EMChecker, IRDropAnalyzer, PowerGridSolver
from .core import (
    DatasetBuilder,
    FeatureExtractor,
    KirchhoffIRDropEstimator,
    PowerPlanningDL,
    PredictedDesign,
    WidthPredictor,
)
from .design import ConventionalPowerPlanner, DesignRules, ReliabilityConstraints
from .grid import (
    CompiledGrid,
    Floorplan,
    GridBuilder,
    PowerGridNetwork,
    SyntheticIBMSuite,
    Technology,
    generic_45nm,
    generic_65nm,
    load_benchmark,
)
from .nn import MultiTargetRegressor, RegressorConfig

__version__ = "1.0.0"

__all__ = [
    "BatchedAnalysisEngine",
    "CompiledGrid",
    "ConventionalPowerPlanner",
    "DatasetBuilder",
    "DesignRules",
    "EMChecker",
    "FeatureExtractor",
    "Floorplan",
    "GridBuilder",
    "IRDropAnalyzer",
    "KirchhoffIRDropEstimator",
    "MultiTargetRegressor",
    "PowerGridNetwork",
    "PowerGridSolver",
    "PowerPlanningDL",
    "PredictedDesign",
    "RegressorConfig",
    "ReliabilityConstraints",
    "SyntheticIBMSuite",
    "Technology",
    "WidthPredictor",
    "__version__",
    "generic_45nm",
    "generic_65nm",
    "load_benchmark",
]
