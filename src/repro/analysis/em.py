"""Electromigration (EM) checking against the Jmax current-density limit.

The paper's reliability constraint (eq. 4) bounds the current density of
every power-grid line: ``I_i / w_i <= Jmax``.  This module evaluates that
constraint over a solved grid, reports violations per segment and per line,
and provides the simple Black-equation-style lifetime ratio that designers
use to rank how severe a violation is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..grid.compiled import CompiledGrid
from ..grid.network import PowerGridNetwork
from ..grid.technology import Technology
from .irdrop import IRDropResult


@dataclass(frozen=True)
class EMViolation:
    """One segment exceeding the EM current-density limit.

    Attributes:
        resistor_name: Name of the violating wire segment.
        line_id: Power-grid line the segment belongs to (-1 for vias).
        current: Segment current magnitude in amperes.
        width: Segment width in um.
        current_density: Current density in A/um.
        jmax: The limit that was exceeded, in A/um.
    """

    resistor_name: str
    line_id: int
    current: float
    width: float
    current_density: float
    jmax: float

    @property
    def severity(self) -> float:
        """Ratio of the current density to the limit (>= 1 for violations)."""
        return self.current_density / self.jmax


@dataclass
class EMReport:
    """Outcome of an EM check over a whole grid.

    Attributes:
        network_name: Name of the checked grid.
        jmax: Current-density limit in A/um.
        violations: All violating segments, worst first.
        worst_density: Worst observed current density in A/um.
        checked_segments: Number of wire segments that were checked (vias and
            zero-width branches are skipped).
    """

    network_name: str
    jmax: float
    violations: list[EMViolation]
    worst_density: float
    checked_segments: int

    @property
    def passed(self) -> bool:
        """True if no segment violates the EM limit."""
        return not self.violations

    @property
    def violating_lines(self) -> set[int]:
        """Ids of the power-grid lines that contain at least one violation."""
        return {violation.line_id for violation in self.violations if violation.line_id >= 0}


class EMChecker:
    """Check a solved power grid against the EM constraint of eq. (4).

    Args:
        technology: Provides the ``Jmax`` limit.
        margin: Extra safety factor applied to the limit (0.1 means segments
            must stay 10 % below ``Jmax``).
    """

    def __init__(self, technology: Technology, margin: float = 0.0) -> None:
        if not 0 <= margin < 1:
            raise ValueError("margin must be in [0, 1)")
        self.technology = technology
        self.margin = margin

    @property
    def effective_jmax(self) -> float:
        """The limit actually enforced, after applying the margin."""
        return self.technology.jmax * (1.0 - self.margin)

    def check(self, network: PowerGridNetwork | CompiledGrid, result: IRDropResult) -> EMReport:
        """Evaluate the EM constraint on every sized wire segment.

        Current magnitudes and densities are computed vectorised over the
        compiled grid arrays; per-violation objects are only materialised
        for segments that actually exceed the limit.
        """
        compiled = network if isinstance(network, CompiledGrid) else network.compile()
        voltages = compiled.voltage_array(result.node_voltages)
        return self.check_voltages(compiled, voltages)

    def check_voltages(
        self,
        network: PowerGridNetwork | CompiledGrid,
        voltages: np.ndarray,
        name: str | None = None,
    ) -> EMReport:
        """Array-level :meth:`check` for callers that hold raw voltages.

        This is the planner's fast path: it never materialises
        :class:`~repro.grid.elements.Resistor` objects — violating segments
        are reported straight from the compiled arrays.

        Args:
            network: The grid (or its compiled form).
            voltages: Per-node voltages in compiled node order.
            name: Optional report name (defaults to the grid name).
        """
        limit = self.effective_jmax
        compiled = network if isinstance(network, CompiledGrid) else network.compile()
        magnitudes = np.abs(compiled.branch_current_array(np.asarray(voltages, dtype=float)))

        sized = compiled.res_width > 0
        densities = magnitudes[sized] / compiled.res_width[sized]
        worst_density = float(densities.max()) if densities.size else 0.0

        violations: list[EMViolation] = []
        violating = np.flatnonzero(densities > limit)
        if violating.size:
            names = compiled.res_names
            sized_indices = np.flatnonzero(sized)
            for position in violating:
                branch_index = sized_indices[position]
                violations.append(
                    EMViolation(
                        resistor_name=names[branch_index],
                        line_id=int(compiled.res_line_id[branch_index]),
                        current=float(magnitudes[branch_index]),
                        width=float(compiled.res_width[branch_index]),
                        current_density=float(densities[position]),
                        jmax=limit,
                    )
                )
            violations.sort(key=lambda violation: violation.severity, reverse=True)
        return EMReport(
            network_name=name or compiled.name,
            jmax=limit,
            violations=violations,
            worst_density=worst_density,
            checked_segments=int(sized.sum()),
        )


def required_width_for_current(current: float, jmax: float) -> float:
    """Return the minimum wire width satisfying the EM limit for ``current``.

    Direct rearrangement of eq. (4): ``w >= I / Jmax``.

    Raises:
        ValueError: If ``jmax`` is not positive or ``current`` is negative.
    """
    if jmax <= 0:
        raise ValueError("jmax must be positive")
    if current < 0:
        raise ValueError("current must be non-negative")
    return current / jmax


def em_lifetime_ratio(current_density: float, jmax: float, exponent: float = 2.0) -> float:
    """Relative median-time-to-failure versus a wire running exactly at Jmax.

    Black's equation gives MTTF proportional to ``J^-n`` (n ~ 2 for copper).
    A ratio above 1 means the wire outlives the reference; below 1 means it
    fails sooner.  Used for reporting, not for pass/fail decisions.
    """
    if current_density <= 0:
        return float("inf")
    if jmax <= 0:
        raise ValueError("jmax must be positive")
    return (jmax / current_density) ** exponent
