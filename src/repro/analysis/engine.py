"""Cached-factorization, multi-RHS power-grid analysis engine.

The conventional analysis path re-assembles and re-factorizes the nodal
system for every solve.  For the workloads this repository actually runs —
perturbation sweeps, vectorless budget bounds, planner iterations over many
load scenarios — the expensive part (the sparse LU factorization of the
reduced conductance matrix) depends only on the grid *topology* and branch
conductances, not on the loads or pad voltages.

:class:`BatchedAnalysisEngine` exploits that: it compiles the network once
(:class:`~repro.grid.compiled.CompiledGrid`), caches the sparse
factorization — produced by a pluggable solver backend
(:mod:`repro.analysis.solvers`): SuperLU by default, CHOLMOD when
``scikit-sparse`` is installed — keyed on the compiled grid's topology
fingerprint, and solves arbitrarily many right-hand sides against one
factorization — either one at a time (:meth:`analyze`, a drop-in
replacement for :class:`~repro.analysis.irdrop.IRDropAnalyzer`) or as a
single multi-RHS triangular solve (:meth:`analyze_batch`).  Grids derived
by a conductance-only change
(:meth:`~repro.grid.compiled.CompiledGrid.with_conductances`, the
planner's resize step) are served by **low-rank incremental updates** of
the parent's cached factors instead of fresh factorizations.

Chunked and streamed sweeps run on a pluggable execution layer
(:mod:`repro.analysis.executors`).  ``workers=`` keeps its original
semantics — RHS chunks solve concurrently on a thread pool (SuperLU's
triangular solve and the large NumPy reductions release the GIL) while the
calling thread folds finished chunks into the reductions and sinks strictly
in ascending scenario order, bitwise-identical to the sequential path with
memory bounded at ``O(num_nodes * chunk_size * workers)``.  ``executor=``
selects the strategy explicitly: ``SerialExecutor`` / ``ThreadedExecutor``
(the above), or ``ProcessShardedExecutor``, which splits the *scenario
range* across worker processes — each with its own factorization and its
own fold — and merges the shard results through the
:class:`~repro.analysis.sinks.MergeableSink` protocol, scaling sweeps past
the GIL-bound fold.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Sequence

import numpy as np

from ..grid.compiled import CompiledGrid
from ..grid.network import PowerGridNetwork
from .executors import (
    EXECUTOR_ENV,
    ExecutorIncompatibility,
    SweepExecutor,
    SweepPlan,
    ThreadedExecutor,
    make_executor,
)
from .irdrop import IRDropResult
from .mna import system_from_compiled
from .sinks import IRDropSink, ScenarioSink
# The legacy module still owns the CG fallback solver and the method
# enum; LinearSolverError moved to .solvers (its canonical home).
from .solver import PowerGridSolver, SolverMethod  # reprolint: disable=RPR005
from .solvers import (
    Factorization,
    LinearSolverError,
    UpdateDivergenceError,
    UpdatePolicy,
    make_update_factorization,
    resolve_solver_backend,
)

ENGINE_METHOD = "cached_lu"
"""Solver-method tag recorded in results produced by the engine."""

WORKERS_ENV = "REPRO_TEST_WORKERS"
"""Environment variable supplying the engine's default ``workers`` count.

Lets CI (and local runs) exercise the parallel chunk pipeline across the
whole test suite without touching any call site: every chunked / streamed
sweep that does not pass ``workers=`` explicitly uses this value.  Unset or
empty means ``1`` (sequential), which is also the hard default.
"""


def _default_workers() -> int:
    """Resolve the engine's default worker count from :data:`WORKERS_ENV`."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        workers = int(raw)
    except ValueError as exc:
        raise ValueError(f"{WORKERS_ENV} must be an integer, got {raw!r}") from exc
    if workers < 1:
        raise ValueError(f"{WORKERS_ENV} must be at least 1, got {workers}")
    return workers

ScenarioSource = Callable[[int, int], tuple[np.ndarray | None, np.ndarray | None]]
"""Chunk generator for streamed sweeps.

Called with a half-open scenario range ``(begin, end)``; returns the
``(end - begin, num_nodes)`` load chunk and the ``(end - begin, num_pads)``
pad-voltage chunk for those scenarios (either may be ``None`` to use the
grid's own loads / pad voltages).  Sources must be pure functions of the
range so that resuming, re-chunking or *sharding* a sweep reproduces it
exactly — the process-sharded executor calls pickled copies of the source
from its worker processes, each over a sub-range.
"""


MIN_CHUNK_SIZE = 32
"""Smallest RHS chunk width :func:`resolve_chunk_size` will pick."""

MAX_CHUNK_SIZE = 4096
"""Largest RHS chunk width :func:`resolve_chunk_size` will pick."""

CHUNK_MEMORY_BUDGET_BYTES = 256 * 1024 * 1024
"""Default RHS working-set target shared by all in-flight chunks."""


def resolve_chunk_size(
    num_unknowns: int,
    workers: int | None = None,
    memory_budget_bytes: int = CHUNK_MEMORY_BUDGET_BYTES,
) -> int:
    """Adaptive RHS chunk width for streamed sweeps.

    Wide chunks amortise the per-chunk Python and triangular-solve setup
    cost; narrow chunks bound memory — and with ``workers`` chunks in
    flight the working set scales with the worker count too.  This
    heuristic spends a fixed byte budget across all in-flight chunks:
    roughly four dense double arrays of ``num_unknowns × chunk`` live per
    chunk (the RHS block, the unknown solution, the full voltages and the
    transposed drop rows), so

    ``chunk = budget // (workers * 4 * 8 * num_unknowns)``

    clamped to ``[MIN_CHUNK_SIZE, MAX_CHUNK_SIZE]``.  Streamed entry
    points use it whenever ``chunk_size`` is omitted.

    Args:
        num_unknowns: Unknown count of the reduced system
            (:attr:`~repro.grid.compiled.CompiledGrid.num_unknowns`).
        workers: In-flight chunk count — the executor's **effective
            parallel width**.  For the hybrid executor that is
            ``shard_workers × threads_per_shard`` (its ``parallelism``
            property), since every shard process runs ``threads``
            chunks in flight at once; the single-axis executors pass
            their thread or shard count.  ``None`` uses
            ``os.cpu_count()``.
        memory_budget_bytes: Total bytes the in-flight chunk state may
            occupy.

    Returns:
        A chunk width in ``[MIN_CHUNK_SIZE, MAX_CHUNK_SIZE]``,
        non-increasing in both ``num_unknowns`` and ``workers``.
    """
    if num_unknowns < 0:
        raise ValueError("num_unknowns must be non-negative")
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if memory_budget_bytes < 1:
        raise ValueError("memory_budget_bytes must be positive")
    per_scenario_bytes = 4 * 8 * max(1, num_unknowns)
    chunk = memory_budget_bytes // (workers * per_scenario_bytes)
    return int(min(MAX_CHUNK_SIZE, max(MIN_CHUNK_SIZE, chunk)))


@dataclass(frozen=True)
class MatrixScenarioSource:
    """Picklable :data:`ScenarioSource` slicing preassembled matrices.

    The batched entry points wrap their scenario matrices in this source
    so that sharded solves — including process-sharded ones, which pickle
    the source into worker processes — read rows straight out of the
    shared arrays.

    Attributes:
        load_matrix: Optional ``(num_scenarios, num_nodes)`` loads.
        pad_voltage_matrix: Optional ``(num_scenarios, num_pads)`` pad
            voltages; at least one of the two must be given.
    """

    load_matrix: np.ndarray | None = None
    pad_voltage_matrix: np.ndarray | None = None

    def __call__(self, begin: int, end: int) -> tuple[np.ndarray | None, np.ndarray | None]:
        return (
            None if self.load_matrix is None else self.load_matrix[begin:end],
            None if self.pad_voltage_matrix is None else self.pad_voltage_matrix[begin:end],
        )


@dataclass(frozen=True)
class CrossProductScenarioSource:
    """Picklable :data:`ScenarioSource` over a load × pad cross product.

    Scenario ``s`` combines load row ``s // num_pad_scenarios`` with pad
    row ``s % num_pad_scenarios`` (loads outer, pads inner) — the
    mega-sweep ordering.  Chunks gather their rows by index, so the
    combined scenario set is never materialised.

    Attributes:
        load_matrix: ``(num_load_scenarios, num_nodes)`` load rows.
        pad_voltage_matrix: ``(num_pad_scenarios, num_pads)`` pad rows.
    """

    load_matrix: np.ndarray
    pad_voltage_matrix: np.ndarray

    def __call__(self, begin: int, end: int) -> tuple[np.ndarray, np.ndarray]:
        indices = np.arange(begin, end)
        num_pad_rows = self.pad_voltage_matrix.shape[0]
        return (
            self.load_matrix[indices // num_pad_rows],
            self.pad_voltage_matrix[indices % num_pad_rows],
        )


@dataclass(frozen=True)
class EngineCacheInfo:
    """Counters describing the engine's factorization cache behaviour.

    All counters survive :meth:`BatchedAnalysisEngine.clear_cache` (only
    ``entries`` drops to zero), so long-running consumers can report
    totals.

    Attributes:
        factorizations: Number of fresh sparse factorizations performed.
        hits: Number of solves served by an already cached factorization.
        entries: Number of factorizations currently cached.
        updates: Number of factorizations served as low-rank incremental
            updates of a previous factorization instead of fresh ones.
        update_fallbacks: Number of times the incremental path was
            applicable but downgraded to a fresh factorization — the
            update rank crossed the policy threshold, the capacitance
            system was unusable, or an update solve diverged.
        backend: Name of the resolved solver backend (``splu`` /
            ``cholmod``).
    """

    factorizations: int
    hits: int
    entries: int
    updates: int = 0
    update_fallbacks: int = 0
    backend: str = "splu"


@dataclass
class _FactorCacheEntry:
    """One cached factorization plus the state incremental updates need.

    Attributes:
        factor: The factorization solves are served from (may be a
            low-rank update object).
        direct: The underlying fresh factorization — updates chain
            against this, never against each other, so a resize sequence
            of any length pays one preconditioner application per CG
            iteration instead of recursing.
        base_conductance: Branch conductances ``direct`` was factored
            from; the union delta of a chained resize is computed against
            these.
    """

    factor: Factorization
    direct: Factorization
    base_conductance: np.ndarray


def _row_reductions(rows: np.ndarray) -> "BatchReductions":
    """Per-scenario worst / mean / worst-node over contiguous ``(k, n)`` rows."""
    return BatchReductions(
        worst_ir_drop=rows.max(axis=1),
        average_ir_drop=rows.mean(axis=1),
        worst_node_index=rows.argmax(axis=1),
    )


def _column_reductions(ir_drop: np.ndarray) -> "BatchReductions":
    """Per-scenario worst / mean / worst-node over a ``(num_nodes, k)`` block.

    Reduces over contiguous per-scenario rows (the transposed layout) so the
    floating-point summation order per scenario is identical no matter how
    many scenarios share the block — which is what makes sharded reductions
    bitwise-equal to unsharded ones for every chunk size.
    """
    return _row_reductions(np.ascontiguousarray(ir_drop.T))


def _feed_sinks(
    sinks: Sequence[ScenarioSink],
    voltages: np.ndarray,
    drop_rows: np.ndarray,
    scenario_offset: int,
) -> None:
    """Offer one solved chunk to every sink, sharing the drop rows.

    :class:`~repro.analysis.sinks.IRDropSink` subclasses take the
    precomputed contiguous ``(c, num_nodes)`` IR-drop block the engine
    already derived for its reductions; other protocol implementations get
    the raw voltage chunk.
    """
    for sink in sinks:
        if isinstance(sink, IRDropSink):
            sink.consume_drop_rows(drop_rows, scenario_offset)
        else:
            sink.consume(voltages, scenario_offset)


@dataclass(frozen=True)
class BatchReductions:
    """Per-scenario IR-drop reductions streamed out of a sharded solve.

    Attributes:
        worst_ir_drop: ``(num_scenarios,)`` worst IR drop per scenario.
        average_ir_drop: ``(num_scenarios,)`` mean IR drop per scenario.
        worst_node_index: ``(num_scenarios,)`` compiled node index of the
            worst-drop node per scenario.
    """

    worst_ir_drop: np.ndarray
    average_ir_drop: np.ndarray
    worst_node_index: np.ndarray


@dataclass
class BatchAnalysisResult:
    """Voltages of many load scenarios solved against one grid topology.

    The batched result intentionally keeps everything in arrays — per-node
    dictionaries are only materialised when a scenario is converted into a
    full :class:`~repro.analysis.irdrop.IRDropResult` via :meth:`result`.

    When the solve was sharded (``chunk_size`` passed to
    :meth:`BatchedAnalysisEngine.analyze_batch`), the dense
    ``(num_nodes, num_scenarios)`` voltage matrix is never materialised:
    :attr:`voltages` is ``None`` and the per-scenario reductions
    (:attr:`worst_ir_drop`, :attr:`average_ir_drop`,
    :attr:`worst_node_index`) were accumulated chunk by chunk.  They are
    bitwise-identical to the unsharded reductions.

    Attributes:
        compiled: The compiled grid all scenarios were solved on.
        voltages: ``(num_nodes, num_scenarios)`` node-voltage matrix in
            compiled node order, or ``None`` for sharded solves.
        scenario_names: One name per scenario (used for materialised
            results).
        analysis_time: Wall-clock time of the whole batched solve in
            seconds.
        factorization_reused: True if the solve was served from the engine's
            factorization cache instead of factorizing anew.
        reductions: Streamed per-scenario reductions (sharded solves only).
        sinks: The scenario sinks that observed this solve, in the order
            they were passed (empty when none were attached).
        solver_method: The solver that actually produced the voltages —
            ``"cached_lu"`` for the factorization path, ``"cg"`` when the
            system exceeded the engine's ``direct_size_limit`` and every
            column fell back to preconditioned CG.
        solver_iterations: ``(num_scenarios,)`` per-scenario iteration
            counts (all zero on the direct path), or ``None`` for results
            predating the solve (never for engine-produced batches).
    """

    compiled: CompiledGrid
    voltages: np.ndarray | None
    scenario_names: tuple[str, ...]
    analysis_time: float
    factorization_reused: bool
    reductions: BatchReductions | None = None
    sinks: tuple[ScenarioSink, ...] = ()
    solver_method: str = ENGINE_METHOD
    solver_iterations: np.ndarray | None = None

    def sink_results(self) -> tuple:
        """Finished results of every attached sink, in sink order."""
        return tuple(sink.result() for sink in self.sinks)

    @property
    def num_scenarios(self) -> int:
        """Number of solved load scenarios."""
        return len(self.scenario_names)

    def _require_voltages(self) -> np.ndarray:
        if self.voltages is None:
            raise ValueError(
                "this batch was solved with RHS sharding; the dense voltage "
                "matrix was never materialised (only the streamed reductions "
                "are available)"
            )
        return self.voltages

    @cached_property
    def ir_drop(self) -> np.ndarray:
        """``(num_nodes, num_scenarios)`` IR-drop matrix ``vdd - v``.

        Raises:
            ValueError: If the batch was solved with RHS sharding.
        """
        return self.compiled.vdd - self._require_voltages()

    @cached_property
    def _reductions(self) -> BatchReductions:
        if self.reductions is not None:
            return self.reductions
        return _column_reductions(self.ir_drop)

    @property
    def worst_ir_drop(self) -> np.ndarray:
        """Worst-case IR drop of each scenario, in volts."""
        return self._reductions.worst_ir_drop

    @property
    def average_ir_drop(self) -> np.ndarray:
        """Mean IR drop of each scenario over all nodes, in volts."""
        return self._reductions.average_ir_drop

    @property
    def worst_node_index(self) -> np.ndarray:
        """Compiled node index of the worst-drop node per scenario."""
        return self._reductions.worst_node_index

    def worst_node(self, scenario: int) -> str:
        """Name of the worst-drop node of one scenario."""
        return self.compiled.node_names[int(self.worst_node_index[scenario])]

    def scenario_voltages(self, scenario: int) -> np.ndarray:
        """Per-node voltage vector of one scenario, in compiled order."""
        return self._require_voltages()[:, scenario]

    def result(self, scenario: int) -> IRDropResult:
        """Materialise one scenario as a full :class:`IRDropResult`."""
        voltages = self._require_voltages()[:, scenario]
        drops = self.ir_drop[:, scenario]
        compiled = self.compiled
        return IRDropResult(
            network_name=self.scenario_names[scenario],
            vdd=compiled.vdd,
            node_voltages=compiled.voltages_dict(voltages),
            node_ir_drop=compiled.voltages_dict(drops),
            worst_ir_drop=float(self.worst_ir_drop[scenario]),
            worst_node=self.worst_node(scenario),
            average_ir_drop=float(self.average_ir_drop[scenario]),
            analysis_time=self.analysis_time / max(1, self.num_scenarios),
            solver_method=self.solver_method,
            solver_iterations=(
                int(self.solver_iterations[scenario])
                if self.solver_iterations is not None
                else 0
            ),
        )

    def results(self) -> list[IRDropResult]:
        """Materialise every scenario as a full :class:`IRDropResult`."""
        return [self.result(i) for i in range(self.num_scenarios)]


@dataclass
class StreamedSweepResult:
    """Outcome of a chunk-streamed sweep that never held dense voltages.

    Streamed sweeps (:meth:`BatchedAnalysisEngine.analyze_scenario_stream`,
    :meth:`BatchedAnalysisEngine.analyze_mega_sweep`) solve scenarios in
    RHS chunks and keep only the per-scenario reductions plus whatever the
    attached :class:`~repro.analysis.sinks.ScenarioSink` objects
    accumulated — the memory high-water mark is ``O(num_nodes *
    chunk_size)`` regardless of sweep size.

    Attributes:
        compiled: The compiled grid every scenario was solved on.
        num_scenarios: Number of scenarios streamed.
        chunk_size: RHS chunk width used for the solve.
        reductions: Per-scenario worst / mean / worst-node reductions,
            bitwise-identical to an unsharded solve of the same scenarios.
        sinks: The scenario sinks that observed the sweep, in order.
        analysis_time: Wall-clock time of the whole sweep in seconds.
        factorization_reused: True if at least one chunk was served from
            a factorization cache (the engine's, or a process shard
            worker's).
        workers: Parallelism the sweep ran with — solver threads for the
            serial / threaded executors, shard processes for the
            process-sharded one, ``shard_workers × threads_per_shard``
            for the hybrid one.  Does not affect any exact result value.
        executor: Name of the executor that drove the sweep (one of
            :data:`~repro.analysis.executors.EXECUTOR_NAMES`).
        solver_method: The solver that produced every chunk
            (``"cached_lu"`` or ``"cg"``).
        solver_iterations: ``(num_scenarios,)`` per-scenario CG iteration
            counts (all zero on the direct path).
    """

    compiled: CompiledGrid
    num_scenarios: int
    chunk_size: int
    reductions: BatchReductions
    sinks: tuple[ScenarioSink, ...]
    analysis_time: float
    factorization_reused: bool
    workers: int = 1
    executor: str = "threads"
    solver_method: str = ENGINE_METHOD
    solver_iterations: np.ndarray | None = None

    @property
    def worst_ir_drop(self) -> np.ndarray:
        """Worst-case IR drop of each scenario, in volts."""
        return self.reductions.worst_ir_drop

    @property
    def average_ir_drop(self) -> np.ndarray:
        """Mean IR drop of each scenario over all nodes, in volts."""
        return self.reductions.average_ir_drop

    @property
    def worst_node_index(self) -> np.ndarray:
        """Compiled node index of the worst-drop node per scenario."""
        return self.reductions.worst_node_index

    @property
    def scenarios_per_second(self) -> float:
        """Solved-scenario throughput of the sweep."""
        return self.num_scenarios / self.analysis_time if self.analysis_time > 0 else 0.0

    def worst_node(self, scenario: int) -> str:
        """Name of the worst-drop node of one scenario."""
        return self.compiled.node_names[int(self.worst_node_index[scenario])]

    def sink_results(self) -> tuple:
        """Finished results of every attached sink, in sink order."""
        return tuple(sink.result() for sink in self.sinks)


@dataclass
class MegaSweepResult(StreamedSweepResult):
    """Streamed result of a pad-voltage × load cross-product mega-sweep.

    Scenario ``s`` combines load row ``s // num_pad_scenarios`` with pad
    row ``s % num_pad_scenarios`` (loads outer, pads inner).

    Attributes:
        num_load_scenarios: Number of rows of the load matrix swept.
        num_pad_scenarios: Number of rows of the pad-voltage matrix swept.
    """

    num_load_scenarios: int = 0
    num_pad_scenarios: int = 0

    def scenario_pair(self, scenario: int) -> tuple[int, int]:
        """Map a global scenario index to its (load row, pad row) pair."""
        if not 0 <= scenario < self.num_scenarios:
            raise IndexError(f"scenario {scenario} out of range [0, {self.num_scenarios})")
        return scenario // self.num_pad_scenarios, scenario % self.num_pad_scenarios


class BatchedAnalysisEngine:
    """IR-drop analysis with a cross-solve sparse-factorization cache.

    The engine quacks like :class:`~repro.analysis.irdrop.IRDropAnalyzer`
    (its :meth:`analyze` signature and result type are identical), so it can
    be handed to every consumer that previously owned an analyzer — the
    planner, the vectorless analyzer, the CLI.  On top of that it offers
    batched multi-RHS solving for sweeps where only the loads change.

    Args:
        cache_size: Maximum number of factorizations kept alive (LRU).
        direct_size_limit: Systems with more unknowns than this fall back to
            the memory-lean preconditioned-CG solver instead of a cached LU
            factorization — the same threshold the legacy ``AUTO`` solver
            policy used, preserved because SuperLU fill-in can exhaust
            memory on the largest grids.
        default_workers: Worker-thread count used by chunked / streamed
            sweeps whose callers do not pass ``workers=`` explicitly.
            ``None`` (the default) reads :data:`WORKERS_ENV` and falls back
            to 1 (sequential).
        default_executor: Sweep executor used when a caller passes neither
            ``executor=`` nor ``workers=``.  ``None`` (the default) reads
            :data:`~repro.analysis.executors.EXECUTOR_ENV` — in that case
            sweeps the strategy cannot run (non-mergeable sinks or an
            unpicklable source under ``processes``) fall back to the
            threaded pipeline instead of failing — and otherwise uses the
            threaded pipeline at ``default_workers``.  A name from
            :data:`~repro.analysis.executors.EXECUTOR_NAMES` or an
            executor instance pins the strategy strictly.
        solver: Solver backend policy — a name from
            :data:`~repro.analysis.solvers.SOLVER_NAMES` (``"splu"``,
            ``"cholmod"``, ``"auto"``), a backend instance, or ``None``
            (the default) to read
            :data:`~repro.analysis.solvers.SOLVER_ENV` and fall back to
            ``splu``.  Requesting ``cholmod`` without ``scikit-sparse``
            installed degrades to ``splu`` with a warning.
        incremental_updates: When True (the default), a compiled grid
            produced by
            :meth:`~repro.grid.compiled.CompiledGrid.with_conductances`
            whose parent factorization is still cached is served by a
            low-rank incremental update (Sherman–Morrison–Woodbury at
            small rank, base-preconditioned CG above it) instead of a
            fresh factorization — the planner's analyse–resize fast
            path.  Updates that cross the policy's rank threshold or
            fail to converge fall back to fresh factorizations
            automatically (counted in ``EngineCacheInfo``).
        update_policy: Crossover / tolerance knobs of the incremental
            path (:class:`~repro.analysis.solvers.UpdatePolicy`).
    """

    def __init__(
        self,
        cache_size: int = 8,
        direct_size_limit: int = 60000,
        default_workers: int | None = None,
        default_executor: SweepExecutor | str | None = None,
        solver: str | None = None,
        incremental_updates: bool = True,
        update_policy: UpdatePolicy | None = None,
    ) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be at least 1")
        if direct_size_limit < 1:
            raise ValueError("direct_size_limit must be at least 1")
        if default_workers is None:
            default_workers = _default_workers()
        if default_workers < 1:
            raise ValueError("default_workers must be at least 1")
        self.cache_size = cache_size
        self.direct_size_limit = direct_size_limit
        self.default_workers = default_workers
        self._default_executor_lenient = False
        if default_executor is None:
            env_name = os.environ.get(EXECUTOR_ENV, "").strip()
            if env_name:
                try:
                    default_executor = self._executor_from_name(env_name)
                except ValueError as exc:
                    raise ValueError(f"{EXECUTOR_ENV}: {exc}") from exc
                # Environment-selected strategies downgrade gracefully so a
                # whole test suite can run under them without every P²/
                # closure-source sweep failing.
                self._default_executor_lenient = True
        elif isinstance(default_executor, str):
            default_executor = self._executor_from_name(default_executor)
        self._default_executor = default_executor
        self.solver_backend = resolve_solver_backend(solver)
        self.incremental_updates = bool(incremental_updates)
        self.update_policy = update_policy or UpdatePolicy()
        self._cg_solver = PowerGridSolver(method=SolverMethod.CG)
        self._cache_lock = threading.Lock()
        self._cache: OrderedDict[str, _FactorCacheEntry] = OrderedDict()  # guarded-by: _cache_lock
        self._factorizations = 0  # guarded-by: _cache_lock
        self._hits = 0  # guarded-by: _cache_lock
        self._updates = 0  # guarded-by: _cache_lock
        self._update_fallbacks = 0  # guarded-by: _cache_lock

    def _executor_from_name(self, name: str) -> SweepExecutor:
        """Default-executor construction honouring ``default_workers``."""
        if name == "serial":
            return make_executor(name)
        workers = self.default_workers if self.default_workers > 1 else None
        return make_executor(name, workers)

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def cache_info(self) -> EngineCacheInfo:
        """Return factorization / cache-hit / incremental-update counters.

        Taken under the cache lock so a snapshot read concurrently with
        parallel chunk workers is coherent (counters and entry count from
        one moment, not interleaved with a mid-flight factorization).
        """
        with self._cache_lock:
            return EngineCacheInfo(
                factorizations=self._factorizations,
                hits=self._hits,
                entries=len(self._cache),
                updates=self._updates,
                update_fallbacks=self._update_fallbacks,
                backend=self.solver_backend.name,
            )

    def clear_cache(self) -> None:
        """Drop all cached factorizations (every counter is kept)."""
        with self._cache_lock:
            self._cache.clear()

    def _cache_key(self, fingerprint: str) -> str:
        """Per-backend cache key: factors from different backends never mix."""
        return f"{self.solver_backend.name}:{fingerprint}"

    # requires-lock: _cache_lock
    def _store_entry(self, key: str, entry: _FactorCacheEntry) -> None:
        self._cache[key] = entry
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    # requires-lock: _cache_lock
    def _fresh_entry(self, compiled: CompiledGrid) -> _FactorCacheEntry:
        factor = self.solver_backend.factor(compiled.reduced_matrix)
        self._factorizations += 1
        return _FactorCacheEntry(
            factor=factor, direct=factor, base_conductance=compiled.conductance
        )

    def _update_entry(  # requires-lock: _cache_lock
        self, compiled: CompiledGrid, prev: _FactorCacheEntry
    ) -> _FactorCacheEntry | None:
        """Build an incremental-update entry against ``prev``, or ``None``.

        The delta is taken against the conductances of ``prev``'s *direct*
        factorization, so chained resizes accumulate one union update on
        the original factors instead of stacking update objects.  ``None``
        means the caller should factor fresh (rank past the crossover, or
        the update construction failed); the downgrade is counted.
        """
        changed = np.flatnonzero(compiled.conductance != prev.base_conductance)
        incidence, active = compiled.update_columns(changed)
        rank = int(active.size)
        if rank == 0:
            # Only RHS-side branches changed: the matrix is identical to
            # the base, so the direct factors serve the clone as-is.
            self._updates += 1
            return _FactorCacheEntry(
                factor=prev.direct,
                direct=prev.direct,
                base_conductance=prev.base_conductance,
            )
        if rank > self.update_policy.crossover_fraction * compiled.num_unknowns:
            self._update_fallbacks += 1
            return None
        delta = compiled.conductance[active] - prev.base_conductance[active]
        try:
            factor = make_update_factorization(
                matrix=compiled.reduced_matrix,
                base=prev.direct,
                update_incidence=incidence,
                delta=delta,
                policy=self.update_policy,
            )
        except LinearSolverError:
            self._update_fallbacks += 1
            return None
        self._updates += 1
        return _FactorCacheEntry(
            factor=factor, direct=prev.direct, base_conductance=prev.base_conductance
        )

    def _factor(self, compiled: CompiledGrid) -> tuple[Factorization, bool]:
        """Return the (cached) factorization of the reduced matrix.

        Serialised by a lock so that parallel chunk workers racing on a
        cold cache perform exactly one factorization (and keep the LRU
        bookkeeping consistent); cache hits only pay an uncontended
        acquire.  A miss first tries the incremental path: when the grid
        is a :meth:`~repro.grid.compiled.CompiledGrid.with_conductances`
        clone whose parent factorization is still cached, a low-rank
        update of those factors is built instead of a fresh
        factorization.
        """
        key = self._cache_key(compiled.fingerprint)
        with self._cache_lock:
            entry = self._cache.get(key)
            if entry is not None:
                self._hits += 1
                self._cache.move_to_end(key)
                return entry.factor, True
            entry = None
            if (
                self.incremental_updates
                and compiled.update_base_fingerprint is not None
            ):
                prev_key = self._cache_key(compiled.update_base_fingerprint)
                prev = self._cache.get(prev_key)
                if prev is not None:
                    # Touch the base entry so a batch of clones evaluated
                    # against one base (the planner's candidate search)
                    # keeps evicting each other, never the shared base.
                    self._cache.move_to_end(prev_key)
                    entry = self._update_entry(compiled, prev)
            if entry is None:
                entry = self._fresh_entry(compiled)
            self._store_entry(key, entry)
            return entry.factor, False

    def _refactor_fresh(self, compiled: CompiledGrid) -> Factorization:
        """Replace a diverged update factorization with fresh factors."""
        key = self._cache_key(compiled.fingerprint)
        with self._cache_lock:
            entry = self._cache.get(key)
            if entry is not None and not entry.factor.is_update:
                # Another thread already downgraded this fingerprint.
                return entry.factor
            self._update_fallbacks += 1
            entry = self._fresh_entry(compiled)
            self._store_entry(key, entry)
            return entry.factor

    def factor_update(
        self,
        prev: PowerGridNetwork | CompiledGrid,
        new: PowerGridNetwork | CompiledGrid,
    ) -> Factorization:
        """Factor ``new`` as a low-rank update of ``prev``'s factorization.

        Both grids must share one topology (same endpoints and pad mask) —
        typically ``new`` is a
        :meth:`~repro.grid.compiled.CompiledGrid.with_conductances` clone
        of ``prev``.  ``prev`` is factored (or served from the cache)
        first; ``new`` is then served by an incremental update of those
        factors, falling back to a fresh factorization past the policy's
        crossover threshold.  The resulting factorization is cached under
        ``new``'s fingerprint like any other, so subsequent solves on
        ``new`` hit it.  Works regardless of the engine's
        ``incremental_updates`` default (this is the explicit form).

        Returns:
            The :class:`~repro.analysis.solvers.Factorization` serving
            ``new``.
        """
        prev_compiled = self._compiled(prev)
        new_compiled = self._compiled(new)
        if (
            prev_compiled.num_unknowns != new_compiled.num_unknowns
            or not np.array_equal(prev_compiled.res_a, new_compiled.res_a)
            or not np.array_equal(prev_compiled.res_b, new_compiled.res_b)
        ):
            raise ValueError("factor_update requires two grids sharing one topology")
        if self._use_cg(prev_compiled):
            raise ValueError(
                "factor_update needs the direct path; the system exceeds "
                f"direct_size_limit={self.direct_size_limit}"
            )
        self._factor(prev_compiled)
        key = self._cache_key(new_compiled.fingerprint)
        with self._cache_lock:
            entry = self._cache.get(key)
            if entry is not None:
                self._hits += 1
                self._cache.move_to_end(key)
                return entry.factor
            prev_key = self._cache_key(prev_compiled.fingerprint)
            prev_entry = self._cache.get(prev_key)
            if prev_entry is not None:
                self._cache.move_to_end(prev_key)
            entry = self._update_entry(new_compiled, prev_entry) if prev_entry else None
            if entry is None:
                entry = self._fresh_entry(new_compiled)
            self._store_entry(key, entry)
            return entry.factor

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    @staticmethod
    def _compiled(network: PowerGridNetwork | CompiledGrid) -> CompiledGrid:
        compiled = network if isinstance(network, CompiledGrid) else network.compile()
        if compiled.pad_node.size == 0:
            raise ValueError("network has no voltage sources; the nodal system is singular")
        return compiled

    def _use_cg(self, compiled: CompiledGrid) -> bool:
        return compiled.num_unknowns > self.direct_size_limit

    def _solver_method(self, compiled: CompiledGrid) -> str:
        """The method every solve on this grid actually uses."""
        return SolverMethod.CG.value if self._use_cg(compiled) else ENGINE_METHOD

    def _resolve_workers(self, workers: int | None) -> int:
        workers = self.default_workers if workers is None else workers
        if workers < 1:
            raise ValueError("workers must be at least 1")
        return workers

    def _sweep_executor(
        self, workers: int | None, executor: SweepExecutor | str | None
    ) -> tuple[SweepExecutor, bool]:
        """Resolve the ``(executor, lenient)`` pair for one sweep.

        Precedence: an explicit ``executor`` argument (by instance or
        name) wins; an explicit ``workers`` keeps its original semantics
        — the threaded pipeline at that thread count; otherwise the
        engine default applies (``lenient`` marks the environment-derived
        default, whose incompatible sweeps downgrade to threads).
        """
        if executor is None:
            if workers is not None:
                return ThreadedExecutor(self._resolve_workers(workers)), False
            if self._default_executor is not None:
                return self._default_executor, self._default_executor_lenient
            return ThreadedExecutor(self.default_workers), False
        if isinstance(executor, str):
            return make_executor(executor, workers), False
        if workers is not None:
            raise ValueError(
                "pass parallelism either inside the executor or as workers=, not both"
            )
        return executor, False

    def _solve_cg(self, compiled: CompiledGrid, rhs: np.ndarray) -> tuple[np.ndarray, int]:
        system = system_from_compiled(compiled, matrix_copy=False)
        system.rhs = rhs
        result = self._cg_solver.solve(system)
        return result.voltages, result.iterations

    def _solve_factored(self, compiled: CompiledGrid, rhs: np.ndarray) -> np.ndarray:
        """Solve via the cached factorization, refactorizing on divergence.

        An incremental-update factorization that cannot reach its
        tolerance raises
        :class:`~repro.analysis.solvers.UpdateDivergenceError`; the
        fingerprint is then downgraded to a fresh factorization (counted
        in ``update_fallbacks``) and the solve repeats exactly.
        """
        factor, _ = self._factor(compiled)
        try:
            return factor.solve(rhs)
        except UpdateDivergenceError:
            return self._refactor_fresh(compiled).solve(rhs)

    def _solve_unknowns(self, compiled: CompiledGrid, rhs: np.ndarray) -> tuple[np.ndarray, int]:
        """Solve one RHS, returning unknown voltages and solver iterations."""
        if rhs.size == 0:
            return np.empty(0), 0
        if self._use_cg(compiled):
            return self._solve_cg(compiled, rhs)
        return self._solve_factored(compiled, rhs), 0

    def solve_voltages(
        self,
        network: PowerGridNetwork | CompiledGrid,
        loads: np.ndarray | None = None,
    ) -> np.ndarray:
        """Solve one scenario and return per-node voltages in compiled order."""
        compiled = self._compiled(network)
        unknown, _ = self._solve_unknowns(compiled, compiled.rhs(loads))
        if not np.all(np.isfinite(unknown)):
            raise LinearSolverError("direct solve produced non-finite voltages")
        return compiled.full_voltages(unknown)

    def analyze(
        self,
        network: PowerGridNetwork | CompiledGrid,
        loads: np.ndarray | None = None,
        name: str | None = None,
    ) -> IRDropResult:
        """Run one IR-drop analysis (drop-in for ``IRDropAnalyzer.analyze``).

        Args:
            network: The grid (or its compiled form) to analyse.
            loads: Optional per-node load override, in compiled node order.
            name: Optional result name override.
        """
        start = time.perf_counter()
        compiled = self._compiled(network)
        unknown, iterations = self._solve_unknowns(compiled, compiled.rhs(loads))
        if not np.all(np.isfinite(unknown)):
            raise LinearSolverError("direct solve produced non-finite voltages")
        voltages = compiled.full_voltages(unknown)
        drops = compiled.vdd - voltages
        worst = int(drops.argmax()) if drops.size else 0
        elapsed = time.perf_counter() - start
        return IRDropResult(
            network_name=name or compiled.name,
            vdd=compiled.vdd,
            node_voltages=compiled.voltages_dict(voltages),
            node_ir_drop=compiled.voltages_dict(drops),
            worst_ir_drop=float(drops[worst]) if drops.size else 0.0,
            worst_node=compiled.node_names[worst] if drops.size else "",
            average_ir_drop=float(drops.mean()) if drops.size else 0.0,
            analysis_time=elapsed,
            solver_method=self._solver_method(compiled),
            solver_iterations=iterations,
        )

    def _solve_rhs_block(
        self, compiled: CompiledGrid, rhs: np.ndarray
    ) -> tuple[np.ndarray, bool, np.ndarray]:
        """Solve one ``(num_unknowns, c)`` RHS block.

        Returns the unknown voltages, whether a cached factorization was
        reused, and the ``(c,)`` per-column solver iteration counts (all
        zero on the direct path, the actual CG iterations on the fallback).
        """
        iterations = np.zeros(rhs.shape[1], dtype=np.int64)
        if rhs.shape[0] == 0:
            return np.empty((0, rhs.shape[1])), False, iterations
        if self._use_cg(compiled):
            columns = []
            for k in range(rhs.shape[1]):
                voltages, iterations[k] = self._solve_cg(compiled, rhs[:, k])
                columns.append(voltages)
            unknown = np.column_stack(columns)
            reused = False
        else:
            factor, reused = self._factor(compiled)
            try:
                unknown = factor.solve(rhs)
            except UpdateDivergenceError:
                unknown = self._refactor_fresh(compiled).solve(rhs)
        if not np.all(np.isfinite(unknown)):
            raise LinearSolverError("batched solve produced non-finite voltages")
        return unknown, reused, iterations

    def _validate_source_chunk(
        self,
        compiled: CompiledGrid,
        load_chunk: np.ndarray | None,
        pad_chunk: np.ndarray | None,
        begin: int,
        end: int,
    ) -> None:
        """Reject malformed source chunks before any sink observes them.

        Errors name the offending half-open scenario range, so a bad
        generator in a 1e5-scenario sweep points at the scenarios that
        produced it instead of a shape mismatch deep inside the RHS
        assembly.
        """
        if load_chunk is None and pad_chunk is None:
            raise ValueError(
                f"scenario source returned neither loads nor pad voltages "
                f"for scenarios [{begin}, {end})"
            )
        for label, chunk, width in (
            ("a load chunk", load_chunk, compiled.num_nodes),
            ("a pad-voltage chunk", pad_chunk, len(compiled.pad_node)),
        ):
            if chunk is None:
                continue
            if chunk.ndim != 2:
                raise ValueError(
                    f"scenario source returned {label} of shape {chunk.shape} for "
                    f"scenarios [{begin}, {end}); expected ({end - begin}, {width})"
                )
            if chunk.shape[0] != end - begin:
                raise ValueError(
                    f"scenario source returned {chunk.shape[0]} rows for "
                    f"scenarios [{begin}, {end})"
                )
            if chunk.shape[1] != width:
                raise ValueError(
                    f"scenario source returned {label} of width {chunk.shape[1]} for "
                    f"scenarios [{begin}, {end}); expected {width}"
                )

    def _stream_scenarios(
        self,
        compiled: CompiledGrid,
        scenario_source: ScenarioSource,
        num_scenarios: int,
        chunk_size: int,
        sinks: Sequence[ScenarioSink],
        executor: SweepExecutor,
        lenient: bool = False,
        entry_point: str = "sweep",
    ) -> tuple[BatchReductions, bool, np.ndarray, SweepExecutor]:
        """Run one chunked sweep on an executor, with lenient fallback.

        ``lenient`` marks an environment-default executor: if it declares
        the sweep incompatible (:class:`ExecutorIncompatibility`, raised
        before any sink binds), the sweep downgrades to the threaded
        pipeline at the engine's default worker count instead of failing —
        with a :class:`RuntimeWarning` naming the entry point and the
        offending sink class / source, so environment-sharded suites show
        which sweeps silently ran threaded.  Returns the reductions,
        reuse flag, iteration counts and the executor that actually ran
        the sweep.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        plan = SweepPlan(
            engine=self,
            compiled=compiled,
            scenario_source=scenario_source,
            num_scenarios=num_scenarios,
            chunk_size=chunk_size,
            sinks=tuple(sinks),
        )
        try:
            reductions, reused, iterations = executor.execute(plan)
        except ExecutorIncompatibility as exc:
            if not lenient:
                raise
            warnings.warn(
                f"{entry_point}: the environment-default {executor.name!r} executor "
                f"cannot run this sweep ({exc}); falling back to the threaded pipeline",
                RuntimeWarning,
                stacklevel=3,
            )
            executor = ThreadedExecutor(self.default_workers)
            reductions, reused, iterations = executor.execute(plan)
        return reductions, reused, iterations, executor

    def _run_chunk_pipeline(
        self,
        compiled: CompiledGrid,
        scenario_source: ScenarioSource,
        num_scenarios: int,
        chunk_size: int,
        sinks: Sequence[ScenarioSink],
        workers: int = 1,
    ) -> tuple[BatchReductions, bool, np.ndarray]:
        """Solve a sweep chunk by chunk, feeding reductions and sinks.

        This is the engine-side pipeline the serial and threaded executors
        drive (process shard workers run it too, one serial pipeline per
        shard).  The dense ``(num_nodes, num_scenarios)`` voltage matrix
        never exists: each ``(num_nodes, ≤chunk_size)`` chunk is folded
        into the per-scenario reduction vectors and every attached sink,
        then dropped.

        With ``workers > 1`` the chunk solves run on a thread pool while
        this thread keeps three sequential roles: it *produces* chunks (the
        scenario source is always called from the calling thread, in
        ascending order, so sources need not be thread-safe), it *bounds*
        the in-flight window at ``workers`` chunks (memory stays
        ``O(num_nodes * chunk_size * workers)``), and it *folds* finished
        chunks strictly in ascending scenario order (futures are awaited
        FIFO).  Each chunk's solve is deterministic and chunk-local, so the
        reductions, every sink state, and all solver metadata are
        bitwise-identical to the sequential path.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        for sink in sinks:
            sink.bind(compiled, num_scenarios)
        worst = np.empty(num_scenarios, dtype=float)
        average = np.empty(num_scenarios, dtype=float)
        worst_index = np.empty(num_scenarios, dtype=np.int64)
        iterations = np.zeros(num_scenarios, dtype=np.int64)
        reused = False

        def produce(begin: int, end: int) -> tuple[np.ndarray | None, np.ndarray | None]:
            load_chunk, pad_chunk = scenario_source(begin, end)
            self._validate_source_chunk(compiled, load_chunk, pad_chunk, begin, end)
            return load_chunk, pad_chunk

        def solve_chunk(
            load_chunk: np.ndarray | None, pad_chunk: np.ndarray | None
        ) -> tuple[np.ndarray, np.ndarray, BatchReductions, np.ndarray, bool]:
            pad_vectors = None if pad_chunk is None else compiled.pad_voltage_vectors(pad_chunk)
            rhs = compiled.rhs_matrix(load_chunk, pad_chunk)
            unknown, chunk_reused, chunk_iterations = self._solve_rhs_block(compiled, rhs)
            voltages = compiled.full_voltages(unknown, pad_voltage_vectors=pad_vectors)
            drop_rows = np.ascontiguousarray((compiled.vdd - voltages).T)
            # The chunk-local reductions are deterministic, so computing
            # them here keeps them on the worker pool instead of adding to
            # the fold thread's serial work.
            return voltages, drop_rows, _row_reductions(drop_rows), chunk_iterations, chunk_reused

        def fold(
            begin: int,
            end: int,
            solved: tuple[np.ndarray, np.ndarray, BatchReductions, np.ndarray, bool],
        ) -> None:
            nonlocal reused
            voltages, drop_rows, chunk_reductions, chunk_iterations, chunk_reused = solved
            reused = reused or chunk_reused
            worst[begin:end] = chunk_reductions.worst_ir_drop
            average[begin:end] = chunk_reductions.average_ir_drop
            worst_index[begin:end] = chunk_reductions.worst_node_index
            iterations[begin:end] = chunk_iterations
            _feed_sinks(sinks, voltages, drop_rows, begin)

        ranges = [
            (begin, min(begin + chunk_size, num_scenarios))
            for begin in range(0, num_scenarios, chunk_size)
        ]
        if workers <= 1 or len(ranges) <= 1:
            for begin, end in ranges:
                fold(begin, end, solve_chunk(*produce(begin, end)))
        else:
            # Warm the lazily-built shared state (reduced matrix, pad RHS /
            # incidence) from this thread so workers only ever read it.
            compiled.reduced_matrix
            compiled.pad_rhs
            compiled.pad_incidence
            in_flight: deque = deque()
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-chunk"
            ) as pool:
                for begin, end in ranges:
                    while len(in_flight) >= workers:
                        oldest_begin, oldest_end, future = in_flight.popleft()
                        fold(oldest_begin, oldest_end, future.result())
                    load_chunk, pad_chunk = produce(begin, end)
                    in_flight.append(
                        (begin, end, pool.submit(solve_chunk, load_chunk, pad_chunk))
                    )
                while in_flight:
                    oldest_begin, oldest_end, future = in_flight.popleft()
                    fold(oldest_begin, oldest_end, future.result())
        reductions = BatchReductions(
            worst_ir_drop=worst, average_ir_drop=average, worst_node_index=worst_index
        )
        return reductions, reused, iterations

    def _batch_scenarios(
        self,
        compiled: CompiledGrid,
        load_matrix: np.ndarray | None,
        pad_voltage_matrix: np.ndarray | None,
        chunk_size: int | None,
        sinks: Sequence[ScenarioSink],
        executor: SweepExecutor,
        lenient: bool,
        entry_point: str,
    ) -> tuple[np.ndarray | None, BatchReductions | None, bool, np.ndarray]:
        """Shared core of the batched solvers.

        Without ``chunk_size`` the full ``(num_nodes, k)`` voltage matrix is
        returned (and offered to the sinks as one chunk); with it, scenarios
        are solved in RHS blocks of at most ``chunk_size`` columns and only
        the per-scenario worst / mean / worst-node reductions plus the sink
        states are accumulated, so the dense voltage matrix (and the dense
        RHS matrix) never exist for huge sweeps.  The executor only applies
        to the chunked path (an unsharded batch is a single RHS block).
        """
        k = (load_matrix if pad_voltage_matrix is None else pad_voltage_matrix).shape[0]
        if chunk_size is None:
            for sink in sinks:
                sink.bind(compiled, k)
            pad_vectors = (
                None
                if pad_voltage_matrix is None
                else compiled.pad_voltage_vectors(pad_voltage_matrix)
            )
            rhs = compiled.rhs_matrix(load_matrix, pad_voltage_matrix)
            unknown, reused, iterations = self._solve_rhs_block(compiled, rhs)
            voltages = compiled.full_voltages(unknown, pad_voltage_vectors=pad_vectors)
            if sinks:
                drop_rows = np.ascontiguousarray((compiled.vdd - voltages).T)
                _feed_sinks(sinks, voltages, drop_rows, 0)
            return voltages, None, reused, iterations

        source = MatrixScenarioSource(load_matrix, pad_voltage_matrix)
        reductions, reused, iterations, _ = self._stream_scenarios(
            compiled, source, k, chunk_size, sinks, executor, lenient, entry_point
        )
        return None, reductions, reused, iterations

    @staticmethod
    def _scenario_names(
        compiled: CompiledGrid, k: int, names: list[str] | tuple[str, ...] | None
    ) -> tuple[str, ...]:
        if names is None:
            return tuple(f"{compiled.name}[{i}]" for i in range(k))
        if len(names) != k:
            raise ValueError(f"expected {k} scenario names, got {len(names)}")
        return tuple(names)

    def analyze_batch(
        self,
        network: PowerGridNetwork | CompiledGrid,
        load_matrix: np.ndarray,
        names: list[str] | tuple[str, ...] | None = None,
        chunk_size: int | None = None,
        sinks: Sequence[ScenarioSink] = (),
        workers: int | None = None,
        executor: SweepExecutor | str | None = None,
    ) -> BatchAnalysisResult:
        """Solve many load scenarios against one factorization.

        Args:
            network: The grid (or its compiled form) all scenarios share.
            load_matrix: ``(num_scenarios, num_nodes)`` per-node currents in
                compiled node order.
            names: Optional per-scenario names.
            chunk_size: Optional RHS shard size.  When given, scenarios are
                solved in blocks of at most this many right-hand sides and
                the worst / mean / worst-node reductions are streamed, so
                the dense ``(num_nodes, num_scenarios)`` voltage matrix is
                never allocated — the memory high-water mark is
                ``O(num_nodes * chunk_size)`` regardless of sweep size.
            sinks: Scenario sinks to stream every solved voltage chunk
                into (see :mod:`repro.analysis.sinks`); composes with
                ``chunk_size``.  Each sink observes every scenario exactly
                once, in order.
            workers: Solver threads for the chunked path (the threaded
                executor); results are bitwise-identical to the sequential
                solve.  ``None`` uses the engine default.
            executor: Sweep-execution strategy for the chunked path — an
                executor instance or a name from
                :data:`~repro.analysis.executors.EXECUTOR_NAMES`
                (``"processes"`` requires every sink to be mergeable).
                Without ``chunk_size`` the batch is a single RHS block, so
                neither ``workers`` nor ``executor`` has any effect.

        Returns:
            A :class:`BatchAnalysisResult` — with the full voltage matrix,
            or (sharded) with streamed reductions only.
        """
        start = time.perf_counter()
        compiled = self._compiled(network)
        executor_used, lenient = self._sweep_executor(workers, executor)
        load_matrix = np.asarray(load_matrix, dtype=float)
        if load_matrix.ndim != 2 or load_matrix.shape[1] != compiled.num_nodes:
            raise ValueError(
                f"load_matrix must be 2-D (num_scenarios, {compiled.num_nodes}), "
                f"got shape {load_matrix.shape}"
            )
        if load_matrix.shape[0] == 0:
            raise ValueError("load_matrix must contain at least one scenario")
        voltages, reductions, reused, iterations = self._batch_scenarios(
            compiled, load_matrix, None, chunk_size, sinks, executor_used, lenient,
            "analyze_batch",
        )
        elapsed = time.perf_counter() - start
        return BatchAnalysisResult(
            compiled=compiled,
            voltages=voltages,
            scenario_names=self._scenario_names(compiled, load_matrix.shape[0], names),
            analysis_time=elapsed,
            factorization_reused=reused,
            reductions=reductions,
            sinks=tuple(sinks),
            solver_method=self._solver_method(compiled),
            solver_iterations=iterations,
        )

    def analyze_pad_batch(
        self,
        network: PowerGridNetwork | CompiledGrid,
        pad_voltage_matrix: np.ndarray,
        load_matrix: np.ndarray | None = None,
        names: list[str] | tuple[str, ...] | None = None,
        chunk_size: int | None = None,
        sinks: Sequence[ScenarioSink] = (),
        workers: int | None = None,
        executor: SweepExecutor | str | None = None,
    ) -> BatchAnalysisResult:
        """Solve many pad-voltage scenarios against one factorization.

        Pad voltages only enter the right-hand side of the reduced system,
        so a NODE_VOLTAGES sweep (paper Fig. 9) shares a single
        factorization exactly like a current-only sweep: scenario ``i``
        fixes each pad to ``pad_voltage_matrix[i]`` instead of the grid's
        nominal pad voltages.

        Args:
            network: The grid (or its compiled form) all scenarios share.
            pad_voltage_matrix: ``(num_scenarios, num_pads)`` per-pad
                voltages aligned with the compiled grid's ``pad_names``.
            load_matrix: Optional ``(num_scenarios, num_nodes)`` per-node
                currents (the grid's own loads are used when omitted),
                letting one batch sweep currents and pad voltages together.
            names: Optional per-scenario names.
            chunk_size: Optional RHS shard size (see :meth:`analyze_batch`).
            sinks: Scenario sinks to stream every solved voltage chunk
                into (see :meth:`analyze_batch`).
            workers: Solver threads for the chunked path (see
                :meth:`analyze_batch`).
            executor: Sweep-execution strategy for the chunked path (see
                :meth:`analyze_batch`).

        Returns:
            A :class:`BatchAnalysisResult`; scenario voltages report each
            pad node at its per-scenario voltage.
        """
        start = time.perf_counter()
        compiled = self._compiled(network)
        executor_used, lenient = self._sweep_executor(workers, executor)
        pad_voltage_matrix = np.asarray(pad_voltage_matrix, dtype=float)
        if pad_voltage_matrix.ndim != 2 or pad_voltage_matrix.shape[1] != len(compiled.pad_node):
            raise ValueError(
                "pad_voltage_matrix must be 2-D (num_scenarios, "
                f"{len(compiled.pad_node)})"
            )
        if pad_voltage_matrix.shape[0] == 0:
            raise ValueError("pad_voltage_matrix must contain at least one scenario")
        if load_matrix is not None:
            load_matrix = np.asarray(load_matrix, dtype=float)
            expected = (pad_voltage_matrix.shape[0], compiled.num_nodes)
            if load_matrix.shape != expected:
                raise ValueError(
                    f"load_matrix must have shape {expected} (num_scenarios, "
                    f"num_nodes) matching pad_voltage_matrix, got shape "
                    f"{load_matrix.shape}"
                )
        voltages, reductions, reused, iterations = self._batch_scenarios(
            compiled, load_matrix, pad_voltage_matrix, chunk_size, sinks, executor_used, lenient,
            "analyze_pad_batch",
        )
        elapsed = time.perf_counter() - start
        return BatchAnalysisResult(
            compiled=compiled,
            voltages=voltages,
            scenario_names=self._scenario_names(compiled, pad_voltage_matrix.shape[0], names),
            analysis_time=elapsed,
            factorization_reused=reused,
            reductions=reductions,
            sinks=tuple(sinks),
            solver_method=self._solver_method(compiled),
            solver_iterations=iterations,
        )

    def analyze_scenario_stream(
        self,
        network: PowerGridNetwork | CompiledGrid,
        scenario_source: ScenarioSource,
        num_scenarios: int,
        *,
        chunk_size: int | None = None,
        sinks: Sequence[ScenarioSink] = (),
        workers: int | None = None,
        executor: SweepExecutor | str | None = None,
    ) -> StreamedSweepResult:
        """Stream arbitrarily many generated scenarios through the sinks.

        Scenarios are *produced* chunk by chunk too: ``scenario_source``
        is asked for at most ``chunk_size`` rows at a time, so sweeps
        whose scenario set is generated (cross products, random sampling)
        never materialise the full ``(num_scenarios, num_nodes)`` load
        matrix either — the whole pipeline, inputs included, runs in
        ``O(num_nodes * chunk_size)`` memory (times the executor's
        parallelism when solving in parallel).

        Args:
            network: The grid (or its compiled form) all scenarios share.
            scenario_source: Chunk generator; see :data:`ScenarioSource`.
                The serial / threaded executors always call it from the
                calling thread in ascending order; the process-sharded
                executor calls pickled copies from its workers, each over
                a contiguous sub-range.
            num_scenarios: Total number of scenarios to stream.
            chunk_size: RHS chunk width (and source request size).
                ``None`` picks an adaptive width via
                :func:`resolve_chunk_size` from the grid size and the
                executor's parallelism.
            sinks: Scenario sinks to stream every solved chunk into.
            workers: Solver threads for the chunk solves; sinks still fold
                in ascending scenario order, so every result is
                bitwise-identical to the sequential sweep.  ``None`` uses
                the engine default.
            executor: Sweep-execution strategy (see :meth:`analyze_batch`).

        Returns:
            A :class:`StreamedSweepResult` with the per-scenario
            reductions and the consumed sinks.
        """
        start = time.perf_counter()
        compiled = self._compiled(network)
        executor_used, lenient = self._sweep_executor(workers, executor)
        if num_scenarios < 1:
            raise ValueError("num_scenarios must be at least 1")
        if chunk_size is None:
            chunk_size = resolve_chunk_size(compiled.num_unknowns, executor_used.parallelism)
        reductions, reused, iterations, executor_used = self._stream_scenarios(
            compiled, scenario_source, num_scenarios, chunk_size, sinks, executor_used, lenient,
            "analyze_scenario_stream",
        )
        return StreamedSweepResult(
            compiled=compiled,
            num_scenarios=num_scenarios,
            chunk_size=chunk_size,
            reductions=reductions,
            sinks=tuple(sinks),
            analysis_time=time.perf_counter() - start,
            factorization_reused=reused,
            workers=executor_used.parallelism,
            executor=executor_used.name,
            solver_method=self._solver_method(compiled),
            solver_iterations=iterations,
        )

    def analyze_mega_sweep(
        self,
        network: PowerGridNetwork | CompiledGrid,
        load_matrix: np.ndarray,
        pad_voltage_matrix: np.ndarray,
        *,
        chunk_size: int | None = None,
        sinks: Sequence[ScenarioSink] = (),
        workers: int | None = None,
        executor: SweepExecutor | str | None = None,
    ) -> MegaSweepResult:
        """Sweep the full load × pad-voltage cross product, streamed.

        Every combination of a load row and a pad-voltage row becomes one
        scenario (``num_load_scenarios * num_pad_scenarios`` in total,
        loads outer, pads inner), solved against a single cached
        factorization.  The combined scenario set is never materialised:
        each chunk gathers its load / pad rows by index, so a
        ``400 × 256 = 102 400``-scenario mega-sweep costs the memory of
        one chunk plus the two input matrices.  This is the vectorless-
        style workload entry point: pair it with quantile / histogram /
        exceedance / top-k sinks to characterise the whole operating
        envelope in one pass.

        Args:
            network: The grid (or its compiled form) all scenarios share.
            load_matrix: ``(num_load_scenarios, num_nodes)`` per-node
                currents in compiled node order (e.g. from
                :func:`~repro.grid.perturbation.floorplan_perturbed_load_matrix`).
            pad_voltage_matrix: ``(num_pad_scenarios, num_pads)`` per-pad
                voltages aligned with the compiled ``pad_names`` (e.g.
                from
                :func:`~repro.grid.perturbation.perturbed_pad_voltage_matrix`).
            chunk_size: RHS chunk width bounding the working memory
                (``None`` = adaptive, see :func:`resolve_chunk_size`).
            sinks: Scenario sinks to stream every solved chunk into.
            workers: Solver threads for the chunk solves (see
                :meth:`analyze_scenario_stream`); bitwise-identical
                results, ~``workers``× throughput on a multi-core host.
            executor: Sweep-execution strategy (see :meth:`analyze_batch`);
                ``"processes"`` shards the cross product across worker
                processes and merges the mergeable sinks.

        Returns:
            A :class:`MegaSweepResult` over all combined scenarios.
        """
        start = time.perf_counter()
        compiled = self._compiled(network)
        executor_used, lenient = self._sweep_executor(workers, executor)
        load_matrix = np.asarray(load_matrix, dtype=float)
        if load_matrix.ndim != 2 or load_matrix.shape[1] != compiled.num_nodes:
            raise ValueError(
                f"load_matrix must be 2-D (num_load_scenarios, {compiled.num_nodes}), "
                f"got shape {load_matrix.shape}"
            )
        pad_voltage_matrix = np.asarray(pad_voltage_matrix, dtype=float)
        num_pads = len(compiled.pad_node)
        if pad_voltage_matrix.ndim != 2 or pad_voltage_matrix.shape[1] != num_pads:
            raise ValueError(
                f"pad_voltage_matrix must be 2-D (num_pad_scenarios, {num_pads}), "
                f"got shape {pad_voltage_matrix.shape}"
            )
        num_loads, num_pad_rows = load_matrix.shape[0], pad_voltage_matrix.shape[0]
        if num_loads == 0 or num_pad_rows == 0:
            raise ValueError("both matrices must contain at least one scenario row")

        if chunk_size is None:
            chunk_size = resolve_chunk_size(compiled.num_unknowns, executor_used.parallelism)
        cross_source = CrossProductScenarioSource(load_matrix, pad_voltage_matrix)
        num_scenarios = num_loads * num_pad_rows
        reductions, reused, iterations, executor_used = self._stream_scenarios(
            compiled, cross_source, num_scenarios, chunk_size, sinks, executor_used, lenient,
            "analyze_mega_sweep",
        )
        return MegaSweepResult(
            compiled=compiled,
            num_scenarios=num_scenarios,
            chunk_size=chunk_size,
            reductions=reductions,
            sinks=tuple(sinks),
            analysis_time=time.perf_counter() - start,
            factorization_reused=reused,
            workers=executor_used.parallelism,
            executor=executor_used.name,
            solver_method=self._solver_method(compiled),
            solver_iterations=iterations,
            num_load_scenarios=num_loads,
            num_pad_scenarios=num_pad_rows,
        )
