"""Cached-factorization, multi-RHS power-grid analysis engine.

The conventional analysis path re-assembles and re-factorizes the nodal
system for every solve.  For the workloads this repository actually runs —
perturbation sweeps, vectorless budget bounds, planner iterations over many
load scenarios — the expensive part (the sparse LU factorization of the
reduced conductance matrix) depends only on the grid *topology* and branch
conductances, not on the loads or pad voltages.

:class:`BatchedAnalysisEngine` exploits that: it compiles the network once
(:class:`~repro.grid.compiled.CompiledGrid`), caches the SuperLU
factorization keyed on the compiled grid's topology fingerprint, and solves
arbitrarily many right-hand sides against one factorization — either one at
a time (:meth:`analyze`, a drop-in replacement for
:class:`~repro.analysis.irdrop.IRDropAnalyzer`) or as a single multi-RHS
triangular solve (:meth:`analyze_batch`).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from functools import cached_property

import numpy as np
import scipy.sparse.linalg as spla

from ..grid.compiled import CompiledGrid
from ..grid.network import PowerGridNetwork
from .irdrop import IRDropResult
from .mna import system_from_compiled
from .solver import LinearSolverError, PowerGridSolver, SolverMethod

ENGINE_METHOD = "cached_lu"
"""Solver-method tag recorded in results produced by the engine."""


@dataclass(frozen=True)
class EngineCacheInfo:
    """Counters describing the engine's factorization cache behaviour.

    Attributes:
        factorizations: Number of sparse LU factorizations performed.
        hits: Number of solves served by an already cached factorization.
        entries: Number of factorizations currently cached.
    """

    factorizations: int
    hits: int
    entries: int


@dataclass
class BatchAnalysisResult:
    """Voltages of many load scenarios solved against one grid topology.

    The batched result intentionally keeps everything in arrays — per-node
    dictionaries are only materialised when a scenario is converted into a
    full :class:`~repro.analysis.irdrop.IRDropResult` via :meth:`result`.

    Attributes:
        compiled: The compiled grid all scenarios were solved on.
        voltages: ``(num_nodes, num_scenarios)`` node-voltage matrix in
            compiled node order.
        scenario_names: One name per scenario (used for materialised
            results).
        analysis_time: Wall-clock time of the whole batched solve in
            seconds.
        factorization_reused: True if the solve was served from the engine's
            factorization cache instead of factorizing anew.
    """

    compiled: CompiledGrid
    voltages: np.ndarray
    scenario_names: tuple[str, ...]
    analysis_time: float
    factorization_reused: bool

    @property
    def num_scenarios(self) -> int:
        """Number of solved load scenarios."""
        return self.voltages.shape[1]

    @cached_property
    def ir_drop(self) -> np.ndarray:
        """``(num_nodes, num_scenarios)`` IR-drop matrix ``vdd - v``."""
        return self.compiled.vdd - self.voltages

    @cached_property
    def worst_ir_drop(self) -> np.ndarray:
        """Worst-case IR drop of each scenario, in volts."""
        return self.ir_drop.max(axis=0)

    @cached_property
    def average_ir_drop(self) -> np.ndarray:
        """Mean IR drop of each scenario over all nodes, in volts."""
        return self.ir_drop.mean(axis=0)

    @cached_property
    def worst_node_index(self) -> np.ndarray:
        """Compiled node index of the worst-drop node per scenario."""
        return self.ir_drop.argmax(axis=0)

    def worst_node(self, scenario: int) -> str:
        """Name of the worst-drop node of one scenario."""
        return self.compiled.node_names[int(self.worst_node_index[scenario])]

    def scenario_voltages(self, scenario: int) -> np.ndarray:
        """Per-node voltage vector of one scenario, in compiled order."""
        return self.voltages[:, scenario]

    def result(self, scenario: int) -> IRDropResult:
        """Materialise one scenario as a full :class:`IRDropResult`."""
        voltages = self.voltages[:, scenario]
        drops = self.ir_drop[:, scenario]
        compiled = self.compiled
        return IRDropResult(
            network_name=self.scenario_names[scenario],
            vdd=compiled.vdd,
            node_voltages=compiled.voltages_dict(voltages),
            node_ir_drop=compiled.voltages_dict(drops),
            worst_ir_drop=float(self.worst_ir_drop[scenario]),
            worst_node=self.worst_node(scenario),
            average_ir_drop=float(self.average_ir_drop[scenario]),
            analysis_time=self.analysis_time / max(1, self.num_scenarios),
            solver_method=ENGINE_METHOD,
            solver_iterations=0,
        )

    def results(self) -> list[IRDropResult]:
        """Materialise every scenario as a full :class:`IRDropResult`."""
        return [self.result(i) for i in range(self.num_scenarios)]


class BatchedAnalysisEngine:
    """IR-drop analysis with a cross-solve sparse-factorization cache.

    The engine quacks like :class:`~repro.analysis.irdrop.IRDropAnalyzer`
    (its :meth:`analyze` signature and result type are identical), so it can
    be handed to every consumer that previously owned an analyzer — the
    planner, the vectorless analyzer, the CLI.  On top of that it offers
    batched multi-RHS solving for sweeps where only the loads change.

    Args:
        cache_size: Maximum number of factorizations kept alive (LRU).
        direct_size_limit: Systems with more unknowns than this fall back to
            the memory-lean preconditioned-CG solver instead of a cached LU
            factorization — the same threshold the legacy ``AUTO`` solver
            policy used, preserved because SuperLU fill-in can exhaust
            memory on the largest grids.
    """

    def __init__(self, cache_size: int = 8, direct_size_limit: int = 60000) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be at least 1")
        if direct_size_limit < 1:
            raise ValueError("direct_size_limit must be at least 1")
        self.cache_size = cache_size
        self.direct_size_limit = direct_size_limit
        self._cg_solver = PowerGridSolver(method=SolverMethod.CG)
        self._cache: OrderedDict[str, spla.SuperLU] = OrderedDict()
        self._factorizations = 0
        self._hits = 0

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def cache_info(self) -> EngineCacheInfo:
        """Return factorization / cache-hit counters."""
        return EngineCacheInfo(
            factorizations=self._factorizations,
            hits=self._hits,
            entries=len(self._cache),
        )

    def clear_cache(self) -> None:
        """Drop all cached factorizations (counters are kept)."""
        self._cache.clear()

    def _factor(self, compiled: CompiledGrid) -> tuple[spla.SuperLU, bool]:
        """Return the (cached) LU factorization of the reduced matrix."""
        key = compiled.fingerprint
        factor = self._cache.get(key)
        if factor is not None:
            self._hits += 1
            self._cache.move_to_end(key)
            return factor, True
        try:
            factor = spla.splu(compiled.reduced_matrix.tocsc())
        except RuntimeError as exc:
            raise LinearSolverError(f"factorization failed: {exc}") from exc
        self._factorizations += 1
        self._cache[key] = factor
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        return factor, False

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    @staticmethod
    def _compiled(network: PowerGridNetwork | CompiledGrid) -> CompiledGrid:
        compiled = network if isinstance(network, CompiledGrid) else network.compile()
        if compiled.pad_node.size == 0:
            raise ValueError("network has no voltage sources; the nodal system is singular")
        return compiled

    def _use_cg(self, compiled: CompiledGrid) -> bool:
        return compiled.num_unknowns > self.direct_size_limit

    def _solve_cg(self, compiled: CompiledGrid, rhs: np.ndarray) -> tuple[np.ndarray, int]:
        system = system_from_compiled(compiled, matrix_copy=False)
        system.rhs = rhs
        result = self._cg_solver.solve(system)
        return result.voltages, result.iterations

    def _solve_unknowns(self, compiled: CompiledGrid, rhs: np.ndarray) -> tuple[np.ndarray, int]:
        """Solve one RHS, returning unknown voltages and solver iterations."""
        if rhs.size == 0:
            return np.empty(0), 0
        if self._use_cg(compiled):
            return self._solve_cg(compiled, rhs)
        factor, _ = self._factor(compiled)
        return factor.solve(rhs), 0

    def solve_voltages(
        self,
        network: PowerGridNetwork | CompiledGrid,
        loads: np.ndarray | None = None,
    ) -> np.ndarray:
        """Solve one scenario and return per-node voltages in compiled order."""
        compiled = self._compiled(network)
        unknown, _ = self._solve_unknowns(compiled, compiled.rhs(loads))
        if not np.all(np.isfinite(unknown)):
            raise LinearSolverError("direct solve produced non-finite voltages")
        return compiled.full_voltages(unknown)

    def analyze(
        self,
        network: PowerGridNetwork | CompiledGrid,
        loads: np.ndarray | None = None,
        name: str | None = None,
    ) -> IRDropResult:
        """Run one IR-drop analysis (drop-in for ``IRDropAnalyzer.analyze``).

        Args:
            network: The grid (or its compiled form) to analyse.
            loads: Optional per-node load override, in compiled node order.
            name: Optional result name override.
        """
        start = time.perf_counter()
        compiled = self._compiled(network)
        unknown, iterations = self._solve_unknowns(compiled, compiled.rhs(loads))
        if not np.all(np.isfinite(unknown)):
            raise LinearSolverError("direct solve produced non-finite voltages")
        voltages = compiled.full_voltages(unknown)
        drops = compiled.vdd - voltages
        worst = int(drops.argmax()) if drops.size else 0
        elapsed = time.perf_counter() - start
        return IRDropResult(
            network_name=name or compiled.name,
            vdd=compiled.vdd,
            node_voltages=compiled.voltages_dict(voltages),
            node_ir_drop=compiled.voltages_dict(drops),
            worst_ir_drop=float(drops[worst]) if drops.size else 0.0,
            worst_node=compiled.node_names[worst] if drops.size else "",
            average_ir_drop=float(drops.mean()) if drops.size else 0.0,
            analysis_time=elapsed,
            solver_method=SolverMethod.CG.value if self._use_cg(compiled) else ENGINE_METHOD,
            solver_iterations=iterations,
        )

    def analyze_batch(
        self,
        network: PowerGridNetwork | CompiledGrid,
        load_matrix: np.ndarray,
        names: list[str] | tuple[str, ...] | None = None,
    ) -> BatchAnalysisResult:
        """Solve many load scenarios against one factorization.

        Args:
            network: The grid (or its compiled form) all scenarios share.
            load_matrix: ``(num_scenarios, num_nodes)`` per-node currents in
                compiled node order.
            names: Optional per-scenario names.

        Returns:
            A :class:`BatchAnalysisResult` with the full voltage matrix.
        """
        start = time.perf_counter()
        compiled = self._compiled(network)
        load_matrix = np.asarray(load_matrix, dtype=float)
        if load_matrix.ndim != 2:
            raise ValueError("load_matrix must be 2-D (num_scenarios, num_nodes)")
        if load_matrix.shape[0] == 0:
            raise ValueError("load_matrix must contain at least one scenario")
        rhs = compiled.rhs_matrix(load_matrix)
        if rhs.size == 0:
            unknown, reused = np.empty((0, load_matrix.shape[0])), False
        elif self._use_cg(compiled):
            unknown = np.column_stack(
                [self._solve_cg(compiled, rhs[:, k])[0] for k in range(rhs.shape[1])]
            )
            reused = False
        else:
            factor, reused = self._factor(compiled)
            unknown = factor.solve(rhs)
        if not np.all(np.isfinite(unknown)):
            raise LinearSolverError("batched solve produced non-finite voltages")
        voltages = compiled.full_voltages(unknown)
        elapsed = time.perf_counter() - start

        k = load_matrix.shape[0]
        if names is None:
            names = tuple(f"{compiled.name}[{i}]" for i in range(k))
        elif len(names) != k:
            raise ValueError(f"expected {k} scenario names, got {len(names)}")
        return BatchAnalysisResult(
            compiled=compiled,
            voltages=voltages,
            scenario_names=tuple(names),
            analysis_time=elapsed,
            factorization_reused=reused,
        )
