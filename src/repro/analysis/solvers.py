"""Pluggable sparse solver backends and low-rank incremental updates.

The reduced MNA system the engine solves is symmetric positive definite,
but until this module existed the engine hard-wired one generic treatment:
``scipy.sparse.linalg.splu`` for every new topology fingerprint.  The
solver-policy layer splits that decision into three parts:

* **Backends** (:class:`SpluBackend`, :class:`CholmodBackend`) own the
  *fresh* factorization of a reduced matrix.  CHOLMOD — an SPD Cholesky
  factorization via ``scikit-sparse`` — is feature-detected: when the
  package is missing the policy resolution degrades to ``splu`` with a
  warning instead of failing, so the same configuration runs everywhere.
  Like the executor layer's ``REPRO_TEST_EXECUTOR``, the default backend
  can be supplied through the :data:`SOLVER_ENV` environment variable.

* **Incremental updates** (:func:`make_update_factorization`) serve the
  planner's analyse–resize loop.  A resize that touches the conductances
  of ``r`` branches changes the reduced matrix by the low-rank symmetric
  term ``ΔG = B·diag(Δg)·Bᵀ`` where ``B`` is the (reduced-space) incidence
  of the touched branches.  Instead of refactorizing, the new system is
  solved against the *previous* factorization:

  - at small rank, literally via the Sherman–Morrison–Woodbury identity
    (:class:`WoodburyFactorization`) — two triangular solves against the
    base factorization plus a dense ``r × r`` capacitance solve;
  - at planner-scale rank, via the capacitance-free formulation
    (:class:`PreconditionedUpdateFactorization`): conjugate gradients on
    the *new* matrix preconditioned by the base factorization.  For an
    upsize-only resize by factor ``α`` the update satisfies
    ``ΔG ⪯ (α−1)·G₀``, so ``κ(G₀⁻¹G₁) ≤ α`` and CG converges in a handful
    of iterations to far below the engine's 1e-9 equivalence bar — the
    ``r × r`` capacitance matrix is never formed.

  Both paths raise :class:`UpdateDivergenceError` when they cannot reach
  the requested tolerance, letting the engine fall back to a fresh
  factorization and count the downgrade.

* **Policy** (:class:`UpdatePolicy`) holds the crossover knobs: the dense
  Woodbury rank limit, the rank fraction past which an update is not
  attempted at all, and the CG tolerance / iteration cap.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
import scipy.sparse.linalg as spla

class LinearSolverError(RuntimeError):
    """Raised when the nodal system could not be solved to tolerance.

    Canonical home of the error shared by the solver backends, the
    engine and the legacy :mod:`repro.analysis.solver` module (which
    re-exports it for backward compatibility).
    """


SOLVER_ENV = "REPRO_TEST_SOLVER"
"""Environment variable supplying the engine's default solver backend.

Lets CI (and local runs) push the whole test suite through one backend
without touching any call site: every
:class:`~repro.analysis.engine.BatchedAnalysisEngine` constructed without
an explicit ``solver=`` resolves this variable.  Accepted values are the
:data:`SOLVER_NAMES`; unset or empty means ``splu``.  Requesting
``cholmod`` where ``scikit-sparse`` is not installed degrades to ``splu``
with a warning (so one CI matrix entry can set it unconditionally).
"""

SOLVER_NAMES = ("splu", "cholmod", "auto")
"""Names accepted by :func:`resolve_solver_backend` (and :data:`SOLVER_ENV`)."""

try:  # pragma: no cover - exercised only where scikit-sparse is installed
    from sksparse.cholmod import cholesky as _cholmod_cholesky
except ImportError:  # pragma: no cover - the common case in CI
    _cholmod_cholesky = None


def cholmod_available() -> bool:
    """True when the optional ``scikit-sparse`` CHOLMOD binding imports."""
    return _cholmod_cholesky is not None


class UpdateDivergenceError(LinearSolverError):
    """An incremental update factorization could not reach its tolerance.

    Raised by the update solve paths (and by update construction when the
    capacitance system is unusable); the engine responds by refactorizing
    fresh and counting the downgrade in ``EngineCacheInfo.update_fallbacks``.
    """


@dataclass(frozen=True)
class UpdatePolicy:
    """Crossover and tolerance knobs of the incremental-update path.

    Attributes:
        dense_rank_limit: Largest update rank served by the explicit dense
            Woodbury path; above it the capacitance-free preconditioned-CG
            path is used (whose cost is independent of the rank).
        crossover_fraction: Updates whose rank exceeds this fraction of the
            unknown count are not attempted at all — a fresh factorization
            is cheaper and unconditionally accurate (e.g. a full-grid
            resize, where the "update" touches every branch).
        rtol: Relative residual tolerance of the preconditioned-CG update
            solve.  Far below the engine's 1e-9 voltage-equivalence bar.
        maxiter: CG iteration cap; hitting it raises
            :class:`UpdateDivergenceError` so the engine can refactorize
            instead of returning an inaccurate solution.
    """

    dense_rank_limit: int = 32
    crossover_fraction: float = 0.5
    rtol: float = 1e-12
    maxiter: int = 64

    def __post_init__(self) -> None:
        if self.dense_rank_limit < 0:
            raise ValueError("dense_rank_limit must be non-negative")
        if not 0.0 < self.crossover_fraction <= 1.0:
            raise ValueError("crossover_fraction must be in (0, 1]")
        if self.rtol <= 0.0:
            raise ValueError("rtol must be positive")
        if self.maxiter < 1:
            raise ValueError("maxiter must be at least 1")


class Factorization:
    """One factorization of a reduced conductance matrix.

    The engine's cache stores these; the only operation the solve paths
    need is :meth:`solve` against one or many right-hand sides.

    Attributes:
        backend: Name of the backend that produced the base factorization.
        update_rank: Rank of the low-rank update this factorization
            applies on top of its base (0 for fresh factorizations).
    """

    backend: str = "?"
    update_rank: int = 0

    @property
    def is_update(self) -> bool:
        """True when this factorization reuses a previous one's factors."""
        return False

    @property
    def direct(self) -> "Factorization":
        """The underlying fresh factorization (itself when not an update)."""
        return self

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve against a ``(n,)`` vector or ``(n, k)`` RHS block."""
        raise NotImplementedError


class SpluFactorization(Factorization):
    """SuperLU factorization (the engine's historical direct path)."""

    backend = "splu"

    def __init__(self, factor: spla.SuperLU) -> None:
        self._factor = factor

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return self._factor.solve(rhs)


class SpluBackend:
    """Generic sparse LU via ``scipy.sparse.linalg.splu`` (always available)."""

    name = "splu"

    @staticmethod
    def available() -> bool:
        return True

    def factor(self, matrix: sp.spmatrix) -> SpluFactorization:
        try:
            return SpluFactorization(spla.splu(matrix.tocsc()))
        except RuntimeError as exc:
            raise LinearSolverError(f"factorization failed: {exc}") from exc

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "SpluBackend()"


class CholmodFactorization(Factorization):
    """Sparse SPD Cholesky factorization from ``sksparse.cholmod``."""

    backend = "cholmod"

    def __init__(self, factor) -> None:
        self._factor = factor

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return self._factor(rhs)


class CholmodBackend:
    """SPD Cholesky via ``scikit-sparse`` (CHOLMOD), feature-detected.

    The reduced MNA matrix is symmetric positive definite, so a Cholesky
    factorization halves the factor memory and skips pivoting.  The
    backend is optional: construct it only after
    :func:`resolve_solver_backend` (or :func:`cholmod_available`) has
    confirmed the binding imports.
    """

    name = "cholmod"

    @staticmethod
    def available() -> bool:
        return cholmod_available()

    def factor(self, matrix: sp.spmatrix) -> CholmodFactorization:
        if _cholmod_cholesky is None:
            raise LinearSolverError(
                "the cholmod backend needs scikit-sparse, which is not installed"
            )
        try:
            return CholmodFactorization(_cholmod_cholesky(matrix.tocsc()))
        except Exception as exc:  # CholmodError hierarchy is import-guarded
            raise LinearSolverError(f"CHOLMOD factorization failed: {exc}") from exc

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "CholmodBackend()"


class WoodburyFactorization(Factorization):
    """Exact small-rank update via the Sherman–Morrison–Woodbury identity.

    With ``A₁ = A₀ + B·diag(δ)·Bᵀ`` and ``F₀`` the factorization of
    ``A₀``::

        A₁⁻¹ rhs = y − W · C⁻¹ · (Bᵀ y),   y = F₀⁻¹ rhs,
        W = F₀⁻¹ B,   C = diag(δ)⁻¹ + Bᵀ W

    ``W`` and the dense LU of the ``r × r`` capacitance matrix ``C`` are
    computed once at construction; each subsequent solve costs one base
    triangular solve plus dense rank-``r`` corrections, which makes this
    the right shape when an updated matrix serves *many* right-hand sides.
    """

    def __init__(
        self,
        base: Factorization,
        update_incidence: sp.spmatrix,
        delta: np.ndarray,
    ) -> None:
        self.backend = base.backend
        self.update_rank = int(delta.size)
        self._base = base
        self._B = update_incidence.tocsc()
        dense_b = self._B.toarray()
        self._W = base.solve(dense_b)
        capacitance = np.diag(1.0 / delta) + dense_b.T @ self._W
        if not np.all(np.isfinite(capacitance)):
            raise UpdateDivergenceError("Woodbury capacitance matrix is not finite")
        try:
            self._capacitance_lu = sla.lu_factor(capacitance)
        except sla.LinAlgError as exc:
            raise UpdateDivergenceError(
                f"Woodbury capacitance matrix is singular: {exc}"
            ) from exc

    @property
    def is_update(self) -> bool:
        return True

    @property
    def direct(self) -> Factorization:
        return self._base

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        y = self._base.solve(rhs)
        correction = sla.lu_solve(self._capacitance_lu, self._B.T @ y)
        return y - self._W @ correction


class PreconditionedUpdateFactorization(Factorization):
    """Capacitance-free update: CG on the new matrix, base as preconditioner.

    Solves ``A₁ x = rhs`` by conjugate gradients preconditioned with the
    base factorization ``F₀ ≈ A₁⁻¹``.  The ``r × r`` capacitance matrix of
    the Woodbury identity is never formed, so the per-solve cost is
    independent of the update rank — it depends only on how far the update
    moved the spectrum (for an upsize-only resize by ``α``,
    ``κ(A₀⁻¹A₁) ≤ α``, giving convergence in ~10 iterations at planner
    settings).  Divergence (iteration cap, non-finite iterates) raises
    :class:`UpdateDivergenceError` instead of returning a bad solution.
    """

    def __init__(
        self,
        matrix: sp.spmatrix,
        base: Factorization,
        update_rank: int,
        policy: UpdatePolicy,
    ) -> None:
        self.backend = base.backend
        self.update_rank = int(update_rank)
        self.iterations = 0
        self._matrix = matrix.tocsr()
        self._base = base
        self._policy = policy
        n = self._matrix.shape[0]
        self._preconditioner = spla.LinearOperator((n, n), matvec=base.solve)

    @property
    def is_update(self) -> bool:
        return True

    @property
    def direct(self) -> Factorization:
        return self._base

    def _solve_column(self, rhs: np.ndarray) -> np.ndarray:
        iterations = 0

        def count(_xk: np.ndarray) -> None:
            nonlocal iterations
            iterations += 1

        solution, info = spla.cg(
            self._matrix,
            rhs,
            rtol=self._policy.rtol,
            atol=0.0,
            maxiter=self._policy.maxiter,
            M=self._preconditioner,
            callback=count,
        )
        self.iterations += iterations
        if info != 0 or not np.all(np.isfinite(solution)):
            raise UpdateDivergenceError(
                f"incremental update solve did not converge within "
                f"{self._policy.maxiter} iterations (rank {self.update_rank}); "
                "refactorize fresh"
            )
        return solution

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=float)
        if rhs.ndim == 1:
            return self._solve_column(rhs)
        return np.column_stack([self._solve_column(rhs[:, k]) for k in range(rhs.shape[1])])


def make_update_factorization(
    matrix: sp.spmatrix,
    base: Factorization,
    update_incidence: sp.spmatrix,
    delta: np.ndarray,
    policy: UpdatePolicy,
) -> Factorization:
    """Build the update factorization the policy prescribes for this rank.

    Args:
        matrix: The *new* reduced matrix ``A₁`` (already assembled — the
            compiled grid's pattern-based refresh makes this cheap).
        base: Fresh factorization of the base matrix ``A₀``.
        update_incidence: ``(num_unknowns, r)`` incidence ``B`` of the
            touched branches (from
            :meth:`~repro.grid.compiled.CompiledGrid.update_columns`).
        delta: ``(r,)`` conductance deltas ``Δg`` (all non-zero).
        policy: Crossover / tolerance knobs.

    Raises:
        UpdateDivergenceError: When the dense capacitance system is
            unusable; rank-vs-crossover decisions are the caller's.
    """
    rank = int(delta.size)
    if rank <= policy.dense_rank_limit:
        return WoodburyFactorization(base, update_incidence, delta)
    return PreconditionedUpdateFactorization(matrix, base, rank, policy)


def resolve_solver_backend(
    solver: "str | SpluBackend | CholmodBackend | None" = None,
) -> "SpluBackend | CholmodBackend":
    """Resolve a solver policy into a concrete backend instance.

    Args:
        solver: A name from :data:`SOLVER_NAMES`, an already-constructed
            backend (returned unchanged), or ``None`` to consult
            :data:`SOLVER_ENV` (falling back to ``splu``).

    Returns:
        A backend object exposing ``name`` / ``factor(matrix)``.

    Raises:
        ValueError: On a name outside :data:`SOLVER_NAMES` (prefixed with
            the environment variable name when it came from there).

    ``auto`` picks CHOLMOD when ``scikit-sparse`` is installed and
    ``splu`` otherwise, silently.  An explicit (or environment) request
    for ``cholmod`` where the binding is missing degrades to ``splu`` and
    emits a :class:`RuntimeWarning` naming both the requested and the
    substituted backend, so the policy resolution is visible in logs but
    never fails a run over an optional dependency.
    """
    if solver is None or isinstance(solver, str):
        from_env = solver is None
        name = (os.environ.get(SOLVER_ENV, "").strip() or "splu") if from_env else solver
        if name not in SOLVER_NAMES:
            message = f"unknown solver {name!r}; choose from {SOLVER_NAMES}"
            if from_env:
                message = f"{SOLVER_ENV}: {message}"
            raise ValueError(message)
        if name == "auto":
            return CholmodBackend() if cholmod_available() else SpluBackend()
        if name == "cholmod":
            if cholmod_available():
                return CholmodBackend()
            requested = f"{SOLVER_ENV}={name}" if from_env else f"solver policy {name!r}"
            warnings.warn(
                f"{requested} requires scikit-sparse (CHOLMOD), which is not "
                "installed; degrading to the 'splu' backend",
                RuntimeWarning,
                stacklevel=2,
            )
            return SpluBackend()
        return SpluBackend()
    if not hasattr(solver, "factor") or not hasattr(solver, "name"):
        raise TypeError(
            "solver must be a backend name, a backend instance exposing "
            f"name/factor, or None; got {solver!r}"
        )
    return solver
