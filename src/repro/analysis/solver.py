"""Sparse linear solvers for the power-grid nodal system.

Two solver families are provided, mirroring what industrial power-grid
analysers do:

* a sparse **direct** solver (LU via SuperLU) — robust, preferred for small
  and medium grids;
* a preconditioned **conjugate-gradient** solver with a Jacobi preconditioner
  — scales better in memory for the largest grids.

An automatic policy picks between them based on the system size.

.. deprecated::
    This module predates :mod:`repro.analysis.solvers`, which is the
    canonical home of the shared solver machinery: the pluggable
    factorization backends (``splu`` / ``cholmod`` / ``auto``), the
    incremental-update factorizations and :class:`LinearSolverError`.
    :class:`PowerGridSolver` remains supported for legacy MNA-level
    callers — its direct path is routed through
    :func:`repro.analysis.solvers.resolve_solver_backend` — but new code
    should use :class:`~repro.analysis.engine.BatchedAnalysisEngine`
    with a solver backend instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum

import numpy as np
import scipy.sparse.linalg as spla

from .mna import MNASystem
from .solvers import LinearSolverError, resolve_solver_backend

__all__ = [
    "LinearSolverError",
    "PowerGridSolver",
    "SolveResult",
    "SolverMethod",
]


class SolverMethod(str, Enum):
    """Available solution methods."""

    DIRECT = "direct"
    CG = "cg"
    AUTO = "auto"


@dataclass(frozen=True)
class SolveResult:
    """Result of one linear solve.

    Attributes:
        voltages: Solution vector over the unknown nodes.
        method: The method actually used (``direct`` or ``cg``).
        iterations: Number of iterations (0 for the direct solver).
        residual_norm: Relative residual ``||b - G v|| / ||b||``.
        solve_time: Wall-clock time of the solve, in seconds.
    """

    voltages: np.ndarray
    method: SolverMethod
    iterations: int
    residual_norm: float
    solve_time: float


class PowerGridSolver:
    """Solve the reduced nodal system ``G v = b`` of a power grid.

    Args:
        method: Which solver to use.  ``AUTO`` picks the direct solver below
            ``direct_size_limit`` unknowns and CG above.
        tolerance: Relative residual tolerance for the iterative solver.
        max_iterations: Iteration cap for the iterative solver.
        direct_size_limit: Size threshold used by the ``AUTO`` policy.
        solver: Factorization backend policy for the direct path — a name
            from :data:`~repro.analysis.solvers.SOLVER_NAMES`, a backend
            instance, or ``None`` for the environment default.  The same
            policy the engine uses, so the legacy ``AUTO`` direct path
            and the engine factor through one backend layer.
    """

    def __init__(
        self,
        method: SolverMethod = SolverMethod.AUTO,
        tolerance: float = 1e-10,
        max_iterations: int = 20000,
        direct_size_limit: int = 60000,
        solver: str | None = None,
    ) -> None:
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        self.method = method
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.direct_size_limit = direct_size_limit
        self.backend = resolve_solver_backend(solver)

    def solve(self, system: MNASystem) -> SolveResult:
        """Solve the system and return the unknown node voltages.

        Raises:
            LinearSolverError: If the matrix is singular or CG fails to
                converge within the iteration cap.
        """
        method = self._pick_method(system)
        start = time.perf_counter()
        if method is SolverMethod.DIRECT:
            voltages, iterations = self._solve_direct(system)
        else:
            voltages, iterations = self._solve_cg(system)
        elapsed = time.perf_counter() - start

        rhs_norm = float(np.linalg.norm(system.rhs))
        if rhs_norm == 0.0:
            residual = 0.0
        else:
            residual = float(
                np.linalg.norm(system.rhs - system.matrix @ voltages) / rhs_norm
            )
        return SolveResult(
            voltages=voltages,
            method=method,
            iterations=iterations,
            residual_norm=residual,
            solve_time=elapsed,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _pick_method(self, system: MNASystem) -> SolverMethod:
        if self.method is not SolverMethod.AUTO:
            return self.method
        if system.size <= self.direct_size_limit:
            return SolverMethod.DIRECT
        return SolverMethod.CG

    def _solve_direct(self, system: MNASystem) -> tuple[np.ndarray, int]:
        try:
            factor = self.backend.factor(system.matrix)
            voltages = factor.solve(system.rhs)
        except LinearSolverError:
            raise
        except RuntimeError as exc:
            raise LinearSolverError(f"direct solve failed: {exc}") from exc
        if not np.all(np.isfinite(voltages)):
            raise LinearSolverError("direct solve produced non-finite voltages")
        return voltages, 0

    def _solve_cg(self, system: MNASystem) -> tuple[np.ndarray, int]:
        diagonal = system.matrix.diagonal()
        if np.any(diagonal <= 0):
            raise LinearSolverError("conductance matrix has a non-positive diagonal entry")
        preconditioner = spla.LinearOperator(
            system.matrix.shape, matvec=lambda x: x / diagonal
        )
        iteration_counter = {"count": 0}

        def callback(_: np.ndarray) -> None:
            iteration_counter["count"] += 1

        voltages, info = spla.cg(
            system.matrix,
            system.rhs,
            rtol=self.tolerance,
            maxiter=self.max_iterations,
            M=preconditioner,
            callback=callback,
        )
        if info > 0:
            raise LinearSolverError(
                f"CG did not converge within {self.max_iterations} iterations (info={info})"
            )
        if info < 0:
            raise LinearSolverError(f"CG failed with illegal input (info={info})")
        return voltages, iteration_counter["count"]
