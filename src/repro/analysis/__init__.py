"""Conventional power-grid analysis engine (the paper's baseline).

Provides modified nodal analysis assembly, sparse direct / iterative solvers,
static IR-drop analysis with map rasterisation, branch-current extraction,
electromigration checking against ``Jmax`` and an early vectorless bound
analysis — i.e. the time-consuming steps of the conventional power-planning
flow that PowerPlanningDL is designed to avoid.
"""

from .currents import (
    BranchCurrent,
    branch_current_array,
    branch_currents,
    current_conservation_error,
    line_currents,
    line_currents_from_voltages,
    pad_currents,
    total_dissipated_power,
)
from .em import EMChecker, EMReport, EMViolation, em_lifetime_ratio, required_width_for_current
from .engine import (
    ENGINE_METHOD,
    BatchAnalysisResult,
    BatchedAnalysisEngine,
    BatchReductions,
    EngineCacheInfo,
    MegaSweepResult,
    ScenarioSource,
    StreamedSweepResult,
)
from .irdrop import IRDropAnalyzer, IRDropResult, ir_drop_map
from .mna import MNAAssembler, MNASystem, assemble, system_from_compiled
from .sinks import (
    ExceedanceCounts,
    ExceedanceCountSink,
    IRDropSink,
    NodeHistogram,
    NodeHistogramSink,
    P2QuantileSink,
    QuantileEstimate,
    ReservoirQuantileSink,
    ScenarioSink,
    TopKScenarios,
    TopKScenarioSink,
)
from .solver import LinearSolverError, PowerGridSolver, SolveResult, SolverMethod
from .vectorless import (
    StatisticalVectorlessResult,
    VectorlessAnalyzer,
    VectorlessBudget,
    VectorlessResult,
    uniform_budget,
)

__all__ = [
    "BatchAnalysisResult",
    "BatchReductions",
    "BatchedAnalysisEngine",
    "BranchCurrent",
    "EMChecker",
    "EMReport",
    "EMViolation",
    "ENGINE_METHOD",
    "EngineCacheInfo",
    "ExceedanceCounts",
    "ExceedanceCountSink",
    "IRDropAnalyzer",
    "IRDropResult",
    "IRDropSink",
    "LinearSolverError",
    "MNAAssembler",
    "MNASystem",
    "MegaSweepResult",
    "NodeHistogram",
    "NodeHistogramSink",
    "P2QuantileSink",
    "PowerGridSolver",
    "QuantileEstimate",
    "ReservoirQuantileSink",
    "ScenarioSink",
    "ScenarioSource",
    "SolveResult",
    "SolverMethod",
    "StatisticalVectorlessResult",
    "StreamedSweepResult",
    "TopKScenarios",
    "TopKScenarioSink",
    "VectorlessAnalyzer",
    "VectorlessBudget",
    "VectorlessResult",
    "assemble",
    "branch_current_array",
    "branch_currents",
    "current_conservation_error",
    "em_lifetime_ratio",
    "ir_drop_map",
    "line_currents",
    "line_currents_from_voltages",
    "pad_currents",
    "required_width_for_current",
    "system_from_compiled",
    "total_dissipated_power",
    "uniform_budget",
]
