"""Early vectorless power-grid analysis.

The conventional power-planning flow (paper Fig. 1) runs an *early vectorless*
analysis before placement and routing: the exact current traces of the blocks
are not yet known, so the grid is checked against conservative current
budgets instead.  This module implements the standard budget-based
over-approximation: every block draws its maximum budgeted current
simultaneously, optionally with a global utilisation bound that caps the
total drawn current (a simplified form of the linear-programming-based
vectorless formulations in the literature).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..grid.elements import CurrentSource
from ..grid.network import PowerGridNetwork
from .engine import BatchedAnalysisEngine
from .irdrop import IRDropAnalyzer, IRDropResult


@dataclass(frozen=True)
class VectorlessBudget:
    """Current budgets for the vectorless analysis.

    Attributes:
        per_load_max: Mapping of load (current-source) name to its maximum
            budgeted current in amperes.  Loads not listed keep their nominal
            current.
        global_utilisation: Upper bound on the sum of all load currents as a
            fraction of the sum of per-load maxima (1.0 disables the global
            constraint).
    """

    per_load_max: dict[str, float]
    global_utilisation: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.global_utilisation <= 1.0:
            raise ValueError("global_utilisation must be in (0, 1]")
        for name, value in self.per_load_max.items():
            if value < 0:
                raise ValueError(f"budget for {name!r} must be non-negative")


@dataclass
class VectorlessResult:
    """Outcome of the vectorless (worst-case bound) analysis.

    Attributes:
        bound_result: IR-drop analysis at the budgeted worst-case currents.
        nominal_result: IR-drop analysis at the nominal currents.
        pessimism: Ratio of the bounded worst-case IR drop to the nominal
            worst-case IR drop (>= 1 by construction when budgets dominate).
    """

    bound_result: IRDropResult
    nominal_result: IRDropResult
    pessimism: float

    @property
    def worst_case_bound(self) -> float:
        """Upper bound on the worst-case IR drop, in volts."""
        return self.bound_result.worst_ir_drop


class VectorlessAnalyzer:
    """Budget-based vectorless IR-drop bound analysis.

    With the default :class:`~repro.analysis.engine.BatchedAnalysisEngine`
    backend, the nominal and budgeted solves share one compiled grid and one
    sparse factorization (the two scenarios only differ in their load
    vectors).  A legacy :class:`IRDropAnalyzer` can still be supplied, in
    which case both solves run independently.

    Args:
        analyzer: The IR-drop analyzer or batched engine to use for both the
            nominal and the bounded solve.
    """

    def __init__(self, analyzer: IRDropAnalyzer | BatchedAnalysisEngine | None = None) -> None:
        self.analyzer = analyzer or BatchedAnalysisEngine()

    def analyze(self, network: PowerGridNetwork, budget: VectorlessBudget) -> VectorlessResult:
        """Run nominal and worst-case-budget analyses and compare them.

        The worst-case scenario replaces each budgeted load by its maximum
        value, then scales all loads uniformly so that the total respects the
        global utilisation bound.
        """
        if isinstance(self.analyzer, BatchedAnalysisEngine):
            nominal, bound = self._analyze_batched(network, budget)
        else:
            nominal = self.analyzer.analyze(network)
            bounded_network = network.replace_loads(
                self._budgeted_loads(network, budget), name=f"{network.name}_vectorless"
            )
            bound = self.analyzer.analyze(bounded_network)
        pessimism = (
            bound.worst_ir_drop / nominal.worst_ir_drop
            if nominal.worst_ir_drop > 0
            else float("inf")
        )
        return VectorlessResult(bound_result=bound, nominal_result=nominal, pessimism=pessimism)

    @staticmethod
    def _budgeted_loads(network: PowerGridNetwork, budget: VectorlessBudget) -> list[CurrentSource]:
        """Worst-case loads: per-load maxima capped by the global utilisation."""
        budgeted_loads = [
            CurrentSource(
                name=load.name,
                node=load.node,
                current=budget.per_load_max.get(load.name, load.current),
                block=load.block,
            )
            for load in network.iter_loads()
        ]
        total_maximum = sum(load.current for load in budgeted_loads)
        allowed_total = total_maximum * budget.global_utilisation
        if total_maximum > 0 and allowed_total < total_maximum:
            scale = allowed_total / total_maximum
            budgeted_loads = [load.scaled(scale) for load in budgeted_loads]
        return budgeted_loads

    def _analyze_batched(
        self, network: PowerGridNetwork, budget: VectorlessBudget
    ) -> tuple[IRDropResult, IRDropResult]:
        """Solve the nominal and budgeted scenarios in one multi-RHS batch."""
        compiled = network.compile()
        budgeted = np.fromiter(
            (
                budget.per_load_max.get(name, float(current))
                for name, current in zip(compiled.load_names, compiled.load_current)
            ),
            dtype=float,
            count=len(compiled.load_names),
        )
        total_maximum = float(budgeted.sum())
        if total_maximum > 0 and budget.global_utilisation < 1.0:
            budgeted = budgeted * budget.global_utilisation
        bounded_loads = (
            np.bincount(compiled.load_node, weights=budgeted, minlength=compiled.num_nodes)
            if budgeted.size
            else np.zeros(compiled.num_nodes)
        )
        batch = self.analyzer.analyze_batch(
            compiled,
            np.vstack((compiled.base_loads, bounded_loads)),
            names=(network.name, f"{network.name}_vectorless"),
        )
        return batch.result(0), batch.result(1)


def uniform_budget(network: PowerGridNetwork, headroom: float = 1.5, utilisation: float = 1.0) -> VectorlessBudget:
    """Build a budget where every load may exceed its nominal value by ``headroom``.

    Args:
        network: The grid whose loads are budgeted.
        headroom: Multiplicative headroom on each nominal load (>= 1).
        utilisation: Global utilisation bound passed through to the budget.
    """
    if headroom < 1.0:
        raise ValueError("headroom must be >= 1")
    per_load = {load.name: load.current * headroom for load in network.iter_loads()}
    return VectorlessBudget(per_load_max=per_load, global_utilisation=utilisation)
