"""Early vectorless power-grid analysis.

The conventional power-planning flow (paper Fig. 1) runs an *early vectorless*
analysis before placement and routing: the exact current traces of the blocks
are not yet known, so the grid is checked against conservative current
budgets instead.  This module implements the standard budget-based
over-approximation: every block draws its maximum budgeted current
simultaneously, optionally with a global utilisation bound that caps the
total drawn current (a simplified form of the linear-programming-based
vectorless formulations in the literature).

Beyond the single worst-case bound, :meth:`VectorlessAnalyzer.analyze_statistical`
samples the budget polytope: every load draws a uniformly random fraction of
its budget per scenario (capped by the global utilisation), and the sampled
scenarios are streamed through the batched engine with scenario sinks — so
quantiles, per-node exceedance probabilities and worst-offender shortlists
of the budget-feasible operating space come out of one chunk-bounded sweep
instead of a single pessimistic corner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from ..grid.elements import CurrentSource
from ..grid.network import PowerGridNetwork
from .engine import BatchedAnalysisEngine, StreamedSweepResult
from .executors import SweepExecutor
from .irdrop import IRDropAnalyzer, IRDropResult
from .sinks import ScenarioSink


@dataclass(frozen=True)
class _BudgetPolytopeSource:
    """Picklable scenario source sampling the vectorless budget polytope.

    Scenario ``i`` draws every load at an independent uniform fraction of
    its budgeted maximum (RNG seeded ``seed + i``), scaled back onto the
    global utilisation cap when exceeded.  A pure function of the scenario
    range, so re-chunking — or process-sharding, which pickles this source
    into worker processes — reproduces the sweep exactly.
    """

    load_incidence: sp.csr_matrix
    maxima: np.ndarray
    allowed_total: float
    global_utilisation: float
    seed: int

    def __call__(self, begin: int, end: int) -> tuple[np.ndarray, None]:
        maxima = self.maxima
        factors = np.empty((end - begin, maxima.size), dtype=float)
        for row, scenario in enumerate(range(begin, end)):
            rng = np.random.default_rng(self.seed + scenario)
            factors[row] = rng.random(maxima.size)
        per_source = factors * maxima
        if maxima.size and self.global_utilisation < 1.0:
            totals = per_source.sum(axis=1)
            over = totals > self.allowed_total
            if np.any(over):
                per_source[over] *= (self.allowed_total / totals[over])[:, None]
        loads = np.asarray(self.load_incidence.T.dot(per_source.T)).T
        return loads, None


@dataclass(frozen=True)
class VectorlessBudget:
    """Current budgets for the vectorless analysis.

    Attributes:
        per_load_max: Mapping of load (current-source) name to its maximum
            budgeted current in amperes.  Loads not listed keep their nominal
            current.
        global_utilisation: Upper bound on the sum of all load currents as a
            fraction of the sum of per-load maxima (1.0 disables the global
            constraint).
    """

    per_load_max: dict[str, float]
    global_utilisation: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.global_utilisation <= 1.0:
            raise ValueError("global_utilisation must be in (0, 1]")
        for name, value in self.per_load_max.items():
            if value < 0:
                raise ValueError(f"budget for {name!r} must be non-negative")


@dataclass
class VectorlessResult:
    """Outcome of the vectorless (worst-case bound) analysis.

    Attributes:
        bound_result: IR-drop analysis at the budgeted worst-case currents.
        nominal_result: IR-drop analysis at the nominal currents.
        pessimism: Ratio of the bounded worst-case IR drop to the nominal
            worst-case IR drop (>= 1 by construction when budgets dominate).
    """

    bound_result: IRDropResult
    nominal_result: IRDropResult
    pessimism: float

    @property
    def worst_case_bound(self) -> float:
        """Upper bound on the worst-case IR drop, in volts."""
        return self.bound_result.worst_ir_drop


@dataclass
class StatisticalVectorlessResult:
    """Outcome of the sampled (statistical) vectorless analysis.

    Attributes:
        vectorless: The deterministic nominal / worst-case-bound analysis.
        sweep: The streamed sweep over budget-feasible random scenarios
            (per-scenario reductions plus any attached sinks).
    """

    vectorless: VectorlessResult
    sweep: StreamedSweepResult

    @property
    def num_scenarios(self) -> int:
        """Number of sampled budget-feasible scenarios."""
        return self.sweep.num_scenarios

    @property
    def worst_case_bound(self) -> float:
        """Deterministic upper bound on the worst-case IR drop, in volts."""
        return self.vectorless.worst_case_bound

    @property
    def worst_observed(self) -> float:
        """Largest worst-case IR drop among the sampled scenarios."""
        return float(self.sweep.worst_ir_drop.max())

    @property
    def bound_tightness(self) -> float:
        """Observed worst / deterministic bound — how pessimistic the
        single-corner bound is for this grid (1.0 = bound achieved)."""
        bound = self.worst_case_bound
        return self.worst_observed / bound if bound > 0 else float("inf")


class VectorlessAnalyzer:
    """Budget-based vectorless IR-drop bound analysis.

    With the default :class:`~repro.analysis.engine.BatchedAnalysisEngine`
    backend, the nominal and budgeted solves share one compiled grid and one
    sparse factorization (the two scenarios only differ in their load
    vectors).  A legacy :class:`IRDropAnalyzer` can still be supplied, in
    which case both solves run independently.

    Args:
        analyzer: The IR-drop analyzer or batched engine to use for both the
            nominal and the bounded solve.
    """

    def __init__(self, analyzer: IRDropAnalyzer | BatchedAnalysisEngine | None = None) -> None:
        self.analyzer = analyzer or BatchedAnalysisEngine()

    def analyze(self, network: PowerGridNetwork, budget: VectorlessBudget) -> VectorlessResult:
        """Run nominal and worst-case-budget analyses and compare them.

        The worst-case scenario replaces each budgeted load by its maximum
        value, then scales all loads uniformly so that the total respects the
        global utilisation bound.
        """
        if isinstance(self.analyzer, BatchedAnalysisEngine):
            nominal, bound = self._analyze_batched(network, budget)
        else:
            nominal = self.analyzer.analyze(network)
            bounded_network = network.replace_loads(
                self._budgeted_loads(network, budget), name=f"{network.name}_vectorless"
            )
            bound = self.analyzer.analyze(bounded_network)
        pessimism = (
            bound.worst_ir_drop / nominal.worst_ir_drop
            if nominal.worst_ir_drop > 0
            else float("inf")
        )
        return VectorlessResult(bound_result=bound, nominal_result=nominal, pessimism=pessimism)

    @staticmethod
    def _budgeted_loads(network: PowerGridNetwork, budget: VectorlessBudget) -> list[CurrentSource]:
        """Worst-case loads: per-load maxima capped by the global utilisation."""
        budgeted_loads = [
            CurrentSource(
                name=load.name,
                node=load.node,
                current=budget.per_load_max.get(load.name, load.current),
                block=load.block,
            )
            for load in network.iter_loads()
        ]
        total_maximum = sum(load.current for load in budgeted_loads)
        allowed_total = total_maximum * budget.global_utilisation
        if total_maximum > 0 and allowed_total < total_maximum:
            scale = allowed_total / total_maximum
            budgeted_loads = [load.scaled(scale) for load in budgeted_loads]
        return budgeted_loads

    @staticmethod
    def _budgeted_maxima(compiled, budget: VectorlessBudget) -> np.ndarray:
        """Per-source maximum currents (before the global utilisation cap)."""
        return np.fromiter(
            (
                budget.per_load_max.get(name, float(current))
                for name, current in zip(compiled.load_names, compiled.load_current)
            ),
            dtype=float,
            count=len(compiled.load_names),
        )

    def _analyze_batched(
        self, network: PowerGridNetwork, budget: VectorlessBudget
    ) -> tuple[IRDropResult, IRDropResult]:
        """Solve the nominal and budgeted scenarios in one multi-RHS batch."""
        compiled = network.compile()
        budgeted = self._budgeted_maxima(compiled, budget)
        total_maximum = float(budgeted.sum())
        if total_maximum > 0 and budget.global_utilisation < 1.0:
            budgeted = budgeted * budget.global_utilisation
        bounded_loads = (
            np.bincount(compiled.load_node, weights=budgeted, minlength=compiled.num_nodes)
            if budgeted.size
            else np.zeros(compiled.num_nodes)
        )
        batch = self.analyzer.analyze_batch(
            compiled,
            np.vstack((compiled.base_loads, bounded_loads)),
            names=(network.name, f"{network.name}_vectorless"),
        )
        return batch.result(0), batch.result(1)

    def analyze_statistical(
        self,
        network: PowerGridNetwork,
        budget: VectorlessBudget,
        num_scenarios: int,
        *,
        chunk_size: int | None = 1024,
        sinks: Sequence[ScenarioSink] = (),
        seed: int = 0,
        workers: int | None = None,
        executor: SweepExecutor | str | None = None,
    ) -> StatisticalVectorlessResult:
        """Sample the budget polytope and stream the scenarios into sinks.

        Scenario ``i`` draws every load at an independent uniform fraction
        of its budgeted maximum (RNG seeded ``seed + i``, so the sweep is
        reproducible and independent of the chunking); scenarios whose
        total current exceeds the global utilisation cap are scaled back
        onto it.  All scenarios share one cached factorization and are
        generated, solved and reduced chunk by chunk — the full
        ``(num_scenarios, num_nodes)`` load matrix never exists.

        Args:
            network: The grid to analyse.
            budget: Current budgets defining the sampled polytope.
            num_scenarios: Number of random budget-feasible scenarios.
            chunk_size: RHS chunk width bounding the working memory.
            sinks: Scenario sinks observing the sweep (quantiles,
                histograms, exceedance counts, top-k, ...).
            seed: Base seed of the per-scenario load sampling.
            workers: Solver threads for the chunk solves (the sampled
                scenarios are still generated and folded in ascending
                order, so the sweep stays bitwise-reproducible).  ``None``
                uses the engine default.
            executor: Sweep-execution strategy (see
                :meth:`BatchedAnalysisEngine.analyze_batch`); the budget
                sampler is picklable, so ``"processes"`` shards the sweep
                across worker processes with mergeable sinks.

        Returns:
            A :class:`StatisticalVectorlessResult` combining the
            deterministic nominal / bound analysis with the streamed sweep.

        Raises:
            TypeError: If the analyzer backend is not a
                :class:`BatchedAnalysisEngine`.
        """
        if not isinstance(self.analyzer, BatchedAnalysisEngine):
            raise TypeError(
                "analyze_statistical requires a BatchedAnalysisEngine backend; "
                f"got {type(self.analyzer).__name__}"
            )
        if num_scenarios < 1:
            raise ValueError("num_scenarios must be at least 1")
        vectorless = self.analyze(network, budget)
        compiled = network.compile()
        maxima = self._budgeted_maxima(compiled, budget)
        budget_source = _BudgetPolytopeSource(
            load_incidence=compiled.load_incidence,
            maxima=maxima,
            allowed_total=float(maxima.sum()) * budget.global_utilisation,
            global_utilisation=budget.global_utilisation,
            seed=seed,
        )
        sweep = self.analyzer.analyze_scenario_stream(
            compiled,
            budget_source,
            num_scenarios,
            chunk_size=chunk_size,
            sinks=sinks,
            workers=workers,
            executor=executor,
        )
        return StatisticalVectorlessResult(vectorless=vectorless, sweep=sweep)


def uniform_budget(
    network: PowerGridNetwork, headroom: float = 1.5, utilisation: float = 1.0
) -> VectorlessBudget:
    """Build a budget where every load may exceed its nominal value by ``headroom``.

    Args:
        network: The grid whose loads are budgeted.
        headroom: Multiplicative headroom on each nominal load (>= 1).
        utilisation: Global utilisation bound passed through to the budget.
    """
    if headroom < 1.0:
        raise ValueError("headroom must be >= 1")
    per_load = {load.name: load.current * headroom for load in network.iter_loads()}
    return VectorlessBudget(per_load_max=per_load, global_utilisation=utilisation)
