"""Static IR-drop analysis of a power-grid network (the conventional method).

This is the "conventional approach" the paper benchmarks PowerPlanningDL
against: a full sparse solve of the grid's nodal equations, followed by
IR-drop extraction per node, worst-case reporting, and rasterisation of the
IR-drop values onto a 2-D map (the paper's Fig. 8 plots these maps on a
100 x 100 raster).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..grid.network import PowerGridNetwork
from .mna import MNAAssembler
# The legacy MNA-level analyzer is the documented consumer of the
# deprecated solver module; new code goes through BatchedAnalysisEngine.
from .solver import PowerGridSolver, SolverMethod  # reprolint: disable=RPR005


@dataclass
class IRDropResult:
    """Result of one static IR-drop analysis.

    Attributes:
        network_name: Name of the analysed grid.
        vdd: Nominal supply voltage used as the IR-drop reference.
        node_voltages: Mapping of node name to solved voltage.
        node_ir_drop: Mapping of node name to IR drop ``vdd - v`` in volts.
        worst_ir_drop: Worst-case (maximum) IR drop in volts.
        worst_node: Name of the node with the worst IR drop.
        average_ir_drop: Mean IR drop over all nodes in volts.
        analysis_time: Wall-clock time of assembly + solve in seconds.
        solver_method: Linear solver that was used.
        solver_iterations: Iterations of the linear solver (0 for direct).
    """

    network_name: str
    vdd: float
    node_voltages: dict[str, float]
    node_ir_drop: dict[str, float]
    worst_ir_drop: float
    worst_node: str
    average_ir_drop: float
    analysis_time: float
    solver_method: str
    solver_iterations: int

    @property
    def worst_ir_drop_mv(self) -> float:
        """Worst-case IR drop in millivolts (Table III units)."""
        return self.worst_ir_drop * 1000.0

    def ir_drop_of(self, node: str) -> float:
        """Return the IR drop of a node in volts.

        Raises:
            KeyError: If the node does not exist in the result.
        """
        return self.node_ir_drop[node]


class IRDropAnalyzer:
    """Full static IR-drop analysis via sparse nodal solve.

    Assembly runs on the network's cached compiled form (vectorised COO→CSR
    stamping), but every call still factorizes the system from scratch —
    this is the reference per-solve path.  Sweeps that only change loads or
    pad voltages should use
    :class:`~repro.analysis.engine.BatchedAnalysisEngine`, which shares one
    factorization across scenarios.

    Args:
        solver: Linear solver to use; a default auto-selecting solver is
            created if omitted.
    """

    def __init__(self, solver: PowerGridSolver | None = None) -> None:
        self.solver = solver or PowerGridSolver(method=SolverMethod.AUTO)
        self._assembler = MNAAssembler()

    def analyze(self, network: PowerGridNetwork) -> IRDropResult:
        """Run the analysis and return per-node voltages and IR drops."""
        start = time.perf_counter()
        system = self._assembler.assemble(network)
        solve_result = self.solver.solve(system)
        voltages = system.full_solution(solve_result.voltages)
        elapsed = time.perf_counter() - start

        ir_drop = {name: network.vdd - voltage for name, voltage in voltages.items()}
        worst_node = max(ir_drop, key=ir_drop.get)
        values = np.fromiter(ir_drop.values(), dtype=float)
        return IRDropResult(
            network_name=network.name,
            vdd=network.vdd,
            node_voltages=voltages,
            node_ir_drop=ir_drop,
            worst_ir_drop=float(values.max()),
            worst_node=worst_node,
            average_ir_drop=float(values.mean()),
            analysis_time=elapsed,
            solver_method=solve_result.method.value,
            solver_iterations=solve_result.iterations,
        )


def ir_drop_map(
    network: PowerGridNetwork,
    result: IRDropResult,
    resolution: int = 100,
    normalise_extent: bool = True,
) -> np.ndarray:
    """Rasterise per-node IR drops onto a square map (paper Fig. 8).

    Each node's IR drop is binned by its (x, y) coordinates; every bin stores
    the maximum IR drop of the nodes falling into it, and empty bins are
    filled with the map's minimum observed value so the map is dense like the
    paper's contour plots.

    Args:
        network: The analysed grid (provides node coordinates).
        result: The IR-drop analysis result for that grid.
        resolution: Number of bins per axis (the paper plots 100 x 100 maps).
        normalise_extent: If True, bin coordinates over the grid's bounding
            box; otherwise assume coordinates already span ``[0, resolution)``.

    Returns:
        A ``(resolution, resolution)`` array of IR drops in volts, indexed as
        ``map[y_bin, x_bin]``.
    """
    if resolution <= 0:
        raise ValueError("resolution must be positive")
    names = list(network.nodes)
    xs = np.asarray([network.nodes[name].x for name in names], dtype=float)
    ys = np.asarray([network.nodes[name].y for name in names], dtype=float)
    drops = np.asarray([result.node_ir_drop[name] for name in names], dtype=float)

    if normalise_extent:
        x_min, x_max = xs.min(), xs.max()
        y_min, y_max = ys.min(), ys.max()
        x_span = max(x_max - x_min, 1e-12)
        y_span = max(y_max - y_min, 1e-12)
        x_bins = np.clip(((xs - x_min) / x_span * resolution).astype(int), 0, resolution - 1)
        y_bins = np.clip(((ys - y_min) / y_span * resolution).astype(int), 0, resolution - 1)
    else:
        x_bins = np.clip(xs.astype(int), 0, resolution - 1)
        y_bins = np.clip(ys.astype(int), 0, resolution - 1)

    grid = np.full((resolution, resolution), np.nan)
    for xb, yb, drop in zip(x_bins, y_bins, drops):
        current = grid[yb, xb]
        if np.isnan(current) or drop > current:
            grid[yb, xb] = drop
    observed_min = np.nanmin(grid) if np.any(~np.isnan(grid)) else 0.0
    grid = np.where(np.isnan(grid), observed_min, grid)
    return grid
