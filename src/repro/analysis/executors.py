"""Pluggable sweep-execution layer for chunked / streamed scenario sweeps.

:class:`~repro.analysis.engine.BatchedAnalysisEngine` describes *what* a
sweep is — a scenario source, a chunk width, reductions and sinks.  This
module decides *how* it runs.  A :class:`SweepExecutor` receives the
engine's :class:`SweepPlan` and drives the chunk pipeline:

* :class:`SerialExecutor` — produce → solve → fold on the calling thread.
* :class:`ThreadedExecutor` — the PR-4 pipeline: chunk solves on a thread
  pool (SuperLU releases the GIL) while the calling thread folds finished
  chunks in ascending scenario order.  Bitwise-identical to serial for
  every result, including every sink.
* :class:`ProcessShardedExecutor` — splits the *scenario range* into
  contiguous shards across a ``ProcessPoolExecutor``.  Each worker process
  holds its own factorization and runs the serial pipeline over its shard
  with fresh copies of the sinks; the parent merges the shard reductions
  (exact by construction — per-scenario reductions are chunk-local) and
  the shard sink snapshots via the
  :class:`~repro.analysis.sinks.MergeableSink` protocol.  This is the
  executor that scales past the GIL-bound fold: the sink/reduction fold
  itself runs in parallel, one fold per shard.
* :class:`HybridExecutor` — multiplies the two axes: process shards as
  above, each running the *threaded* chunk pipeline over its sub-range
  (``shard_workers × threads_per_shard`` effective parallelism), with
  cost-based auto-balancing — the first completed shard prices the
  remaining work, which is re-split finely enough that a straggler shard
  cannot dominate the sweep's wall-clock.

Executors are stateless between calls (pools are created per sweep), so
one instance can be shared across engines and sweeps.  The sharded
executors additionally publish a ``last_stats`` dict (shard / thread
counts, shared-payload bytes, rebalances) describing the *most recent*
``execute`` call — observability only, overwritten per sweep.

Zero-copy payloads
------------------

Sharded executors on one host do not re-pickle the grid into every
worker: :class:`SharedGridPayload` pickles the sweep context once with
out-of-band buffers (pickle protocol 5) and places the buffer bytes —
the compiled grid's CSR/COO arrays and the scenario matrices — into a
single :mod:`multiprocessing.shared_memory` segment.  Workers re-attach
the segment by name and rebuild the context as views over the mapping,
so a 100 MB grid costs one copy for any number of shards.  Lifetime is
explicit: the parent owns the segment and unlinks it when the sweep
leaves the ``with`` block (success *or* error); children only attach.
Where shared memory is unavailable the payload silently degrades to the
classic in-band pickle with a :class:`RuntimeWarning` naming the
executor — results are identical either way.

Process-sharding contract
-------------------------

The scenario source and the compiled grid are pickled once and shipped to
every worker, so both must be picklable — the engine's own sources
(matrix slices, cross products, the vectorless budget sampler) are;
ad-hoc lambdas and closures are not.  Every sink must implement
:class:`~repro.analysis.sinks.MergeableSink`; ``P2QuantileSink`` is
order-dependent and therefore rejected with a pointer to the reservoir
sink.  Incompatible sweeps raise :class:`ExecutorIncompatibility` *before*
any sink observes the sweep — the engine downgrades to the threaded
pipeline instead when the executor was only an environment default
(:data:`EXECUTOR_ENV`), so exporting ``REPRO_TEST_EXECUTOR=processes``
runs an entire test suite process-sharded wherever that is well-defined.

Exactness: shard boundaries are just another chunking, so the streamed
worst / mean / worst-node reductions and every *exact* sink (histogram,
exceedance, joint exceedance, top-k) are bitwise-identical to the
sequential sweep for every shard count.  The reservoir sink merges by
weighted resampling (statistically equivalent); P² does not merge at all.
"""

from __future__ import annotations

import copy
import multiprocessing as mp
import os
import pickle
import time
import warnings
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .sinks import MergeableSink, ScenarioSink

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..grid.compiled import CompiledGrid
    from .engine import BatchedAnalysisEngine, BatchReductions, ScenarioSource

EXECUTOR_ENV = "REPRO_TEST_EXECUTOR"
"""Environment variable supplying the engine's default sweep executor.

Lets CI (and local runs) push the whole test suite through one execution
strategy without touching any call site: every chunked / streamed sweep
that passes neither ``executor=`` nor ``workers=`` uses this strategy.
Accepted values are the :data:`EXECUTOR_NAMES`; unset or empty means the
threaded pipeline at the engine's default worker count.  Sweeps a strategy
cannot run (non-mergeable sinks or an unpicklable source under
``processes``) silently fall back to the threaded pipeline — an explicit
``executor=`` argument raises instead.
"""

EXECUTOR_NAMES = ("serial", "threads", "processes", "hybrid", "remote")
"""Names accepted by :func:`make_executor` (and :data:`EXECUTOR_ENV`)."""

HYBRID_SHARD_WORKERS_ENV = "REPRO_HYBRID_SHARD_WORKERS"
"""Environment variable sizing :class:`HybridExecutor`'s process shards.

Read when ``shard_workers`` is not passed explicitly — e.g. under
``REPRO_TEST_EXECUTOR=hybrid``, where no call site names a size.  Unset
means auto-resolve from ``os.cpu_count()``.
"""

HYBRID_THREADS_ENV = "REPRO_HYBRID_THREADS"
"""Environment variable sizing :class:`HybridExecutor`'s per-shard threads.

Read when ``threads_per_shard`` is not passed explicitly.  Unset means
auto-resolve from ``os.cpu_count()`` and the shard count.
"""


class ExecutorIncompatibility(ValueError):
    """A sweep cannot run on the requested executor as specified.

    Raised *before* any sink observes the sweep, so the engine can fall
    back to the threaded pipeline when the executor was only an
    environment default.
    """


@dataclass(frozen=True)
class SweepPlan:
    """Everything an executor needs to drive one chunked sweep.

    Attributes:
        engine: The engine that owns the factorization cache and the
            chunk pipeline.
        compiled: The compiled grid every scenario is solved on.
        scenario_source: Chunk generator; a pure function of the half-open
            scenario range (see
            :data:`~repro.analysis.engine.ScenarioSource`).
        num_scenarios: Total number of scenarios to sweep.
        chunk_size: RHS chunk width of the solve pipeline.
        sinks: Scenario sinks observing the sweep, in caller order.
    """

    engine: "BatchedAnalysisEngine"
    compiled: "CompiledGrid"
    scenario_source: "ScenarioSource"
    num_scenarios: int
    chunk_size: int
    sinks: tuple[ScenarioSink, ...]


class SweepExecutor(ABC):
    """Strategy driving the chunk pipeline of one scenario sweep.

    Contract: :meth:`execute` must (1) bind every sink in ``plan.sinks``
    to the full sweep exactly once, (2) ensure each scenario is folded
    into the reductions and every sink exactly once in ascending scenario
    order, and (3) return the per-scenario reductions, the
    factorization-reuse flag and the per-scenario solver iteration
    counts.  Any incompatibility with the plan must raise
    :class:`ExecutorIncompatibility` before the first sink is bound.
    """

    name: str = "abstract"

    @property
    @abstractmethod
    def parallelism(self) -> int:
        """Worker count the sweep runs with (1 = sequential)."""

    @abstractmethod
    def execute(self, plan: SweepPlan) -> "tuple[BatchReductions, bool, np.ndarray]":
        """Run the sweep; return ``(reductions, reused, iterations)``."""


class SerialExecutor(SweepExecutor):
    """Produce → solve → fold sequentially on the calling thread."""

    name = "serial"

    @property
    def parallelism(self) -> int:
        return 1

    def execute(self, plan: SweepPlan) -> "tuple[BatchReductions, bool, np.ndarray]":
        return plan.engine._run_chunk_pipeline(
            plan.compiled,
            plan.scenario_source,
            plan.num_scenarios,
            plan.chunk_size,
            plan.sinks,
            workers=1,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "SerialExecutor()"


class ThreadedExecutor(SweepExecutor):
    """Chunk solves on a thread pool, one ordered fold on the caller.

    The exact PR-4 pipeline (``workers=`` on the engine entry points maps
    to this executor): at most ``workers`` chunks are in flight, the
    scenario source is always called from the calling thread in ascending
    order, and finished chunks fold FIFO — so every result, including
    every sink state, is bitwise-identical to :class:`SerialExecutor`.

    Args:
        workers: Solver threads (``None`` uses ``os.cpu_count()``).
    """

    name = "threads"

    def __init__(self, workers: int | None = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers

    @property
    def parallelism(self) -> int:
        return self.workers

    def execute(self, plan: SweepPlan) -> "tuple[BatchReductions, bool, np.ndarray]":
        return plan.engine._run_chunk_pipeline(
            plan.compiled,
            plan.scenario_source,
            plan.num_scenarios,
            plan.chunk_size,
            plan.sinks,
            workers=self.workers,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ThreadedExecutor(workers={self.workers})"


class ProcessShardedExecutor(SweepExecutor):
    """Shard the scenario range across worker processes and merge.

    The sweep's ``[0, num_scenarios)`` range is split into ``shards``
    contiguous, near-equal sub-ranges.  Each worker process unpickles the
    compiled grid and scenario source once (pool initializer), then runs
    the engine's serial chunk pipeline over its shard with its *own*
    factorization and fresh deep-copies of the sinks — no GIL, no shared
    fold thread.  The parent scatters the shard reductions into the full
    per-scenario arrays and merges the shard sink snapshots in ascending
    shard order through :class:`~repro.analysis.sinks.MergeableSink`.

    The parent engine also warms its own factorization cache (direct path
    only), so follow-up single solves — e.g.
    :meth:`~repro.analysis.sinks.TopKScenarioSink.rematerialize` — reuse
    it, and the usual one-factorization-per-sweep accounting holds.

    Memory: each worker holds its own factorization plus
    ``O(num_nodes * chunk_size)`` chunk state, so the high-water mark is
    ``shards × `` the serial pipeline's (factorization included) — minus
    the grid itself, which ships once through a
    :class:`SharedGridPayload` segment all workers map instead of
    unpickling private copies.

    Args:
        shards: Number of worker processes / scenario shards.  ``None``
            uses ``max(2, os.cpu_count())`` so the sharded path is
            exercised even on single-core hosts.
        start_method: ``multiprocessing`` start method; ``None`` prefers
            ``fork`` (cheap, copy-on-write grid) where available and the
            platform default elsewhere.
    """

    name = "processes"

    def __init__(self, shards: int | None = None, start_method: str | None = None) -> None:
        if shards is None:
            shards = max(2, os.cpu_count() or 1)
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if start_method is not None and start_method not in mp.get_all_start_methods():
            raise ValueError(
                f"start_method {start_method!r} not available; "
                f"choose from {mp.get_all_start_methods()}"
            )
        self.shards = shards
        self.start_method = start_method
        self.last_stats: dict = {}

    @property
    def parallelism(self) -> int:
        return self.shards

    def _context(self) -> mp.context.BaseContext:
        method = self.start_method
        if method is None:
            method = "fork" if "fork" in mp.get_all_start_methods() else None
        return mp.get_context(method)

    def execute(self, plan: SweepPlan) -> "tuple[BatchReductions, bool, np.ndarray]":
        from .engine import BatchReductions

        engine, compiled, sinks = plan.engine, plan.compiled, plan.sinks
        require_mergeable_sinks(sinks, "process")
        num_scenarios = plan.num_scenarios
        shards = min(self.shards, num_scenarios)
        if shards <= 1:
            self.last_stats = {"shards": 1, "payload_bytes_shared": 0}
            return engine._run_chunk_pipeline(
                compiled, plan.scenario_source, num_scenarios, plan.chunk_size, sinks, workers=1
            )
        shared = SharedGridPayload.create(plan, "process")
        with shared:
            for sink in sinks:
                sink.bind(compiled, num_scenarios)
            reused = False
            if not engine._use_cg(compiled):
                _, reused = engine._factor(compiled)

            ranges = shard_ranges(num_scenarios, shards)
            with ProcessPoolExecutor(
                max_workers=shards,
                mp_context=self._context(),
                initializer=_init_shard_worker,
                initargs=(shared.descriptor,),
            ) as pool:
                futures = [pool.submit(_solve_shard, begin, end) for begin, end in ranges]
                outcomes = [future.result() for future in futures]
        self.last_stats = {"shards": shards, "payload_bytes_shared": shared.nbytes}
        return fold_shard_outcomes(plan, outcomes, reused)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ProcessShardedExecutor(shards={self.shards})"


class HybridExecutor(SweepExecutor):
    """Process shards, each running the threaded chunk pipeline inside.

    Multiplies the repo's two scaling axes: the scenario range is split
    across ``shard_workers`` worker processes (their own factorizations,
    parallel folds — the process axis), and *within* each shard the
    chunk solves run on ``threads_per_shard`` solver threads (SuperLU
    releases the GIL — the thread axis).  Effective parallelism is the
    product, which is exactly what :attr:`parallelism` reports so
    :func:`~repro.analysis.engine.resolve_chunk_size` budgets
    ``shard_workers × threads_per_shard`` in-flight chunks against the
    fixed memory budget.

    Exactness is inherited twice over: the threaded pipeline is
    bitwise-identical to serial within each shard, and shard snapshots
    merge in ascending range order — so every result, including every
    exact sink, is bitwise-identical to :class:`SerialExecutor` for
    every ``(shards, threads, chunk_size)`` combination.

    Cost-based auto-balancing: with ``rebalance`` on (the default), only
    about half the range is committed up-front (one task per shard
    worker).  The first task to complete prices a scenario, and the
    held-back tail is re-split into pieces sized from that measured cost
    — small enough that a straggler worker holds one piece instead of a
    fixed share of the sweep, bounded by ``max_oversubscribe`` pieces
    per worker.  Fast workers drain more tail pieces from the pool's
    pull-based queue.  Outcomes fold in ascending range order regardless
    of completion order, so balancing never affects results.

    The grid ships to the workers through a :class:`SharedGridPayload` —
    one shared-memory copy of the compiled arrays for any number of
    shards (pickle fallback where shared memory is unavailable).

    Args:
        shard_workers: Worker processes / scenario shards.  ``None``
            reads :data:`HYBRID_SHARD_WORKERS_ENV`, then auto-resolves
            from ``os.cpu_count()`` (at least 2, so the sharded path is
            exercised even on small hosts).
        threads_per_shard: Solver threads inside each shard.  ``None``
            reads :data:`HYBRID_THREADS_ENV`, then auto-resolves so the
            product roughly matches the host CPU count.
        start_method: ``multiprocessing`` start method; ``None`` prefers
            ``fork`` where available.
        rebalance: Hold back ~half the range and re-split it by measured
            shard cost (see above).  Off, the range is split once like
            the process-sharded executor.
        max_oversubscribe: Upper bound on tail pieces per shard worker
            after a re-split, so per-task overhead stays bounded.
    """

    name = "hybrid"

    def __init__(
        self,
        shard_workers: int | None = None,
        threads_per_shard: int | None = None,
        start_method: str | None = None,
        rebalance: bool = True,
        max_oversubscribe: int = 8,
    ) -> None:
        if shard_workers is None:
            raw = os.environ.get(HYBRID_SHARD_WORKERS_ENV, "").strip()
            if raw:
                try:
                    shard_workers = int(raw)
                except ValueError as exc:
                    raise ValueError(
                        f"{HYBRID_SHARD_WORKERS_ENV} must be an integer, got {raw!r}"
                    ) from exc
        if threads_per_shard is None:
            raw = os.environ.get(HYBRID_THREADS_ENV, "").strip()
            if raw:
                try:
                    threads_per_shard = int(raw)
                except ValueError as exc:
                    raise ValueError(
                        f"{HYBRID_THREADS_ENV} must be an integer, got {raw!r}"
                    ) from exc
        cpu = os.cpu_count() or 1
        if shard_workers is None:
            shard_workers = max(2, cpu // (threads_per_shard or 2))
        if shard_workers < 1:
            raise ValueError("shard_workers must be at least 1")
        if threads_per_shard is None:
            threads_per_shard = max(1, min(4, cpu // shard_workers))
        if threads_per_shard < 1:
            raise ValueError("threads_per_shard must be at least 1")
        if max_oversubscribe < 1:
            raise ValueError("max_oversubscribe must be at least 1")
        if start_method is not None and start_method not in mp.get_all_start_methods():
            raise ValueError(
                f"start_method {start_method!r} not available; "
                f"choose from {mp.get_all_start_methods()}"
            )
        self.shard_workers = shard_workers
        self.threads_per_shard = threads_per_shard
        self.start_method = start_method
        self.rebalance = rebalance
        self.max_oversubscribe = max_oversubscribe
        self.last_stats: dict = {}

    @property
    def parallelism(self) -> int:
        """Effective parallel width: ``shard_workers × threads_per_shard``.

        Every shard keeps ``threads_per_shard`` chunks in flight at
        once, so this product is what the engine's adaptive chunk sizing
        must spend the in-flight memory budget across.
        """
        return self.shard_workers * self.threads_per_shard

    def _context(self) -> mp.context.BaseContext:
        method = self.start_method
        if method is None:
            method = "fork" if "fork" in mp.get_all_start_methods() else None
        return mp.get_context(method)

    def execute(self, plan: SweepPlan) -> "tuple[BatchReductions, bool, np.ndarray]":
        engine, compiled, sinks = plan.engine, plan.compiled, plan.sinks
        require_mergeable_sinks(sinks, "hybrid")
        num_scenarios = plan.num_scenarios
        shards = min(self.shard_workers, num_scenarios)
        threads = self.threads_per_shard
        if shards <= 1:
            self.last_stats = {
                "shards": 1,
                "threads_per_shard": threads,
                "payload_bytes_shared": 0,
                "rebalances": 0,
                "tasks": 1,
            }
            return engine._run_chunk_pipeline(
                compiled,
                plan.scenario_source,
                num_scenarios,
                plan.chunk_size,
                sinks,
                workers=threads,
            )
        shared = SharedGridPayload.create(plan, "hybrid", threads=threads)
        with shared:
            for sink in sinks:
                sink.bind(compiled, num_scenarios)
            reused = False
            if not engine._use_cg(compiled):
                _, reused = engine._factor(compiled)
            with ProcessPoolExecutor(
                max_workers=shards,
                mp_context=self._context(),
                initializer=_init_shard_worker,
                initargs=(shared.descriptor,),
            ) as pool:
                outcomes, rebalances = self._drive(pool, num_scenarios, shards)
        self.last_stats = {
            "shards": shards,
            "threads_per_shard": threads,
            "payload_bytes_shared": shared.nbytes,
            "rebalances": rebalances,
            "tasks": len(outcomes),
        }
        return fold_shard_outcomes(plan, outcomes, reused)

    def _drive(
        self, pool: ProcessPoolExecutor, num_scenarios: int, shards: int
    ) -> tuple[list[tuple], int]:
        """Submit shard tasks, re-splitting the held-back tail by cost.

        Returns the shard outcome tuples sorted ascending by range start
        (coverage of ``[0, num_scenarios)`` is exact by construction)
        and the number of rebalance events.
        """
        head = num_scenarios if not self.rebalance else max(shards, num_scenarios // 2)
        if num_scenarios - head < shards:
            head = num_scenarios  # tail too small to be worth re-splitting
        start = time.perf_counter()
        pending = {
            pool.submit(_solve_shard, begin, end) for begin, end in shard_ranges(head, shards)
        }
        outcomes: list[tuple] = []
        rebalances = 0
        tail = num_scenarios - head
        if tail:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            elapsed = time.perf_counter() - start
            probed = [future.result() for future in done]
            outcomes.extend(probed)
            probe = max(end - begin for begin, end, *_ in probed)
            rate = probe / max(elapsed, 1e-9)  # scenarios/second of one shard worker
            # Aim each tail piece at a quarter of the probe's wall-clock
            # (but >= ~50 ms so per-task overhead stays negligible).
            per_piece = max(1, int(rate * max(elapsed / 4.0, 0.05)))
            pieces = min(shards * self.max_oversubscribe, max(shards, -(-tail // per_piece)))
            if pieces > shards:
                rebalances = 1
            for begin, end in shard_ranges(tail, pieces):
                pending.add(pool.submit(_solve_shard, head + begin, head + end))
        outcomes.extend(future.result() for future in pending)
        outcomes.sort(key=lambda outcome: outcome[0])
        return outcomes, rebalances

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"HybridExecutor(shard_workers={self.shard_workers}, "
            f"threads_per_shard={self.threads_per_shard})"
        )


def make_executor(name: str, workers: int | None = None) -> SweepExecutor:
    """Build an executor from its CLI / environment name.

    Args:
        name: One of :data:`EXECUTOR_NAMES`.
        workers: Parallelism — threads for ``threads``, shards for
            ``processes``, shard workers for ``hybrid`` (whose per-shard
            threads come from :data:`HYBRID_THREADS_ENV` / the CPU
            count); ``None`` = derive from ``os.cpu_count()``.
            ``serial`` accepts only ``None`` / 1.
    """
    if name == "serial":
        if workers not in (None, 1):
            raise ValueError("the serial executor runs single-threaded; do not pass workers")
        return SerialExecutor()
    if name == "threads":
        return ThreadedExecutor(workers)
    if name == "processes":
        return ProcessShardedExecutor(shards=workers)
    if name == "hybrid":
        return HybridExecutor(shard_workers=workers)
    if name == "remote":
        from .remote import RemoteExecutor

        return RemoteExecutor(workers=workers)
    raise ValueError(f"unknown executor {name!r}; choose from {EXECUTOR_NAMES}")


# ----------------------------------------------------------------------
# Shared shard machinery (process-sharded and remote executors)
# ----------------------------------------------------------------------
def require_mergeable_sinks(sinks: Sequence[ScenarioSink], shard_kind: str) -> None:
    """Reject sweeps whose sinks cannot merge across shards.

    Raised before any sink binds, so an environment-default executor can
    downgrade the sweep to the threaded pipeline instead of failing.
    """
    non_mergeable = sorted(
        {type(sink).__name__ for sink in sinks if not isinstance(sink, MergeableSink)}
    )
    if non_mergeable:
        raise ExecutorIncompatibility(
            f"sinks {non_mergeable} cannot merge across {shard_kind} shards "
            "(their state is order-dependent); use mergeable sinks — e.g. "
            "QuantileSketchSink instead of P2QuantileSink — or the "
            "threads executor"
        )


def _payload_tuple(plan: SweepPlan, threads: int) -> tuple:
    """The picklable worker context of one sweep (see :func:`load_shard_state`)."""
    engine = plan.engine
    plan.compiled.fingerprint  # hash once here; workers inherit the digest
    engine_config = {
        "cache_size": engine.cache_size,
        "direct_size_limit": engine.direct_size_limit,
        "solver": engine.solver_backend.name,
        "incremental_updates": engine.incremental_updates,
    }
    return (
        engine_config,
        plan.compiled,
        plan.scenario_source,
        plan.chunk_size,
        plan.sinks,
        threads,
    )


def _incompatibility(shard_kind: str, exc: Exception) -> ExecutorIncompatibility:
    return ExecutorIncompatibility(
        f"{shard_kind}-sharded sweeps must pickle the scenario source, the "
        "compiled grid and every sink into the worker processes; use a "
        "picklable source (e.g. MatrixScenarioSource / "
        f"CrossProductScenarioSource) or the threads executor: {exc}"
    )


def pickle_sweep_payload(plan: SweepPlan, shard_kind: str, threads: int = 1) -> bytes:
    """Pickle one sweep's worker context (engine config, grid, source, sinks).

    The payload is what shard workers — local processes or remote worker
    processes — unpickle via :func:`load_shard_state` to rebuild the sweep
    on their side.  ``threads`` is the solver-thread count each worker
    runs its chunk pipeline with (1 = the serial pipeline).  Unpicklable
    plans raise :class:`ExecutorIncompatibility` before any sink binds.
    """
    try:
        return pickle.dumps(_payload_tuple(plan, threads), protocol=pickle.HIGHEST_PROTOCOL)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        raise _incompatibility(shard_kind, exc) from exc


class SharedGridPayload:
    """One sweep's worker context with its array buffers in shared memory.

    The context tuple is pickled once with protocol-5 *out-of-band*
    buffers: every sizable array — the compiled grid's COO stamp arrays,
    its cached CSR factors, the scenario matrices inside the source —
    leaves the pickle stream as a raw buffer, and all buffers land
    back-to-back in a single :mod:`multiprocessing.shared_memory`
    segment.  What remains in-band (:attr:`descriptor`) is small: object
    scaffolding, names, the segment name and per-buffer spans.  Workers
    :func:`attach_shard_state` by name and unpickle the metadata with
    the mapped spans as buffers, so their arrays are *views* of the
    shared mapping — one physical copy of the grid for any number of
    shard processes.

    Lifetime is explicit and parent-owned: ``create`` allocates the
    segment, the ``with`` block (or :meth:`close`) closes **and
    unlinks** it — on success and on error alike; children only ever
    attach and never unlink.  On platforms or sandboxes without shared
    memory, ``create`` degrades to the classic in-band pickle with a
    :class:`RuntimeWarning` naming the executor; ``nbytes`` is then 0
    and the context manager is a no-op.

    Attributes:
        descriptor: Small picklable handle shipped to workers —
            ``("shm", segment_name, metadata, spans)`` or
            ``("pickle", payload_bytes)`` after a fallback.
        nbytes: Bytes placed in shared memory (0 on the pickle fallback);
            surfaced as the ``payload_bytes_shared`` counter.
    """

    def __init__(self, descriptor: tuple, segment, nbytes: int) -> None:
        self.descriptor = descriptor
        self.nbytes = nbytes
        self._segment = segment

    @classmethod
    def create(cls, plan: SweepPlan, shard_kind: str, threads: int = 1) -> "SharedGridPayload":
        """Build the shared payload of one sweep (parent side).

        Raises :class:`ExecutorIncompatibility` for unpicklable plans —
        before any sink binds, like :func:`pickle_sweep_payload`.
        """
        state = _payload_tuple(plan, threads)
        buffers: list[pickle.PickleBuffer] = []
        try:
            meta = pickle.dumps(state, protocol=5, buffer_callback=buffers.append)
            views = [buffer.raw() for buffer in buffers]
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise _incompatibility(shard_kind, exc) from exc
        except BufferError:
            # A non-contiguous out-of-band buffer cannot be mapped raw;
            # ship the whole payload in-band instead (no warning — the
            # result is identical, only the zero-copy win is lost).
            return cls(("pickle", pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)), None, 0)
        total = sum(view.nbytes for view in views)
        try:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(create=True, size=max(1, total))
        except (ImportError, OSError, ValueError) as exc:
            warnings.warn(
                f"the {shard_kind} executor cannot allocate a shared-memory payload "
                f"segment ({exc}); shipping the sweep payload by pickle instead",
                RuntimeWarning,
                stacklevel=3,
            )
            return cls(("pickle", pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)), None, 0)
        spans = []
        cursor = 0
        for view in views:
            segment.buf[cursor : cursor + view.nbytes] = view
            spans.append((cursor, view.nbytes))
            cursor += view.nbytes
        return cls(("shm", segment.name, meta, tuple(spans)), segment, total)

    def close(self) -> None:
        """Release the parent's mapping and unlink the segment (idempotent)."""
        if self._segment is not None:
            segment, self._segment = self._segment, None
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedGridPayload":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _attach_segment(name: str):
    """Attach a named shared-memory segment *without* tracking its lifetime.

    Attaching normally registers the segment with :mod:`multiprocessing`'s
    resource tracker, which would unlink it when the attaching process
    exits — but the segment is parent-owned (the parent unlinks in
    :meth:`SharedGridPayload.close`), and under ``fork`` all children
    share one tracker, so child-side registration is both wrong and
    noisy.  Python 3.13+ exposes ``track=False`` for exactly this;
    earlier versions need the registration call shimmed out for the
    duration of the attach (pool initializers and fleet workers attach
    from a single thread, so the shim cannot race).
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass  # Python < 3.13: no track= keyword; shim the tracker instead
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip_shared_memory(rname: str, rtype: str) -> None:
        if rtype != "shared_memory":
            original(rname, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def attach_shard_state(descriptor: tuple) -> dict:
    """Rebuild a worker-side sweep context from a payload descriptor.

    ``("pickle", bytes)`` descriptors unpickle in-band;
    ``("shm", name, meta, spans)`` descriptors attach the named shared
    segment and unpickle the metadata with the mapped spans as protocol-5
    buffers, so the rebuilt arrays are views of the shared mapping.  The
    returned state keeps the segment object alive for as long as the
    context is cached.
    """
    kind = descriptor[0]
    if kind == "pickle":
        return load_shard_state(descriptor[1])
    _, name, meta, spans = descriptor
    segment = _attach_segment(name)
    buffers = [segment.buf[begin : begin + length] for begin, length in spans]
    state = _state_from_tuple(pickle.loads(meta, buffers=buffers))
    state["segment"] = segment  # keeps the mapping alive with the cached state
    return state


def _state_from_tuple(payload_tuple: tuple) -> dict:
    from .engine import BatchedAnalysisEngine

    engine_config, compiled, source, chunk_size, sink_prototypes, threads = payload_tuple
    return dict(
        engine=BatchedAnalysisEngine(
            default_workers=1, default_executor=SerialExecutor(), **engine_config
        ),
        compiled=compiled,
        source=source,
        chunk_size=chunk_size,
        sink_prototypes=sink_prototypes,
        threads=threads,
    )


def load_shard_state(payload: bytes) -> dict:
    """Rebuild the worker-side sweep context from a pickled payload.

    The worker's engine mirrors the parent's solver configuration (cache
    size, direct-vs-CG threshold) so shards solve exactly the way the
    parent would have.  Payloads that unpickle to a
    :class:`SharedGridPayload` descriptor (localhost fleets ship those
    instead of full pickles) are re-attached via
    :func:`attach_shard_state`.
    """
    obj = pickle.loads(payload)
    if isinstance(obj, tuple) and obj and obj[0] in ("shm", "pickle"):
        return attach_shard_state(obj)
    return _state_from_tuple(obj)


def solve_shard_range(state: dict, begin: int, end: int) -> tuple:
    """Run the chunk pipeline over ``[begin, end)`` of one sweep.

    The shard runs as its own sweep of ``end - begin`` scenarios: the
    source is shifted by ``begin`` and fresh sink copies observe
    shard-local offsets — :meth:`MergeableSink.merge` re-bases any
    indices when the parent folds the snapshots back together.  The
    pipeline runs at the payload's ``threads`` count (1 = serial; the
    hybrid executor and threaded fleet workers ship more) — the threaded
    pipeline is bitwise-identical to serial, so the shard result does
    not depend on it.
    """
    source = state["source"]
    sinks: Sequence[ScenarioSink] = copy.deepcopy(state["sink_prototypes"])

    def shard_source(lo: int, hi: int) -> "tuple[np.ndarray | None, np.ndarray | None]":
        return source(begin + lo, begin + hi)

    reductions, reused, iterations = state["engine"]._run_chunk_pipeline(
        state["compiled"],
        shard_source,
        end - begin,
        state["chunk_size"],
        sinks,
        workers=state.get("threads", 1),
    )
    return (
        begin,
        end,
        reductions.worst_ir_drop,
        reductions.average_ir_drop,
        reductions.worst_node_index,
        iterations,
        reused,
        tuple(sink.snapshot() for sink in sinks),
    )


def shard_ranges(num_scenarios: int, shards: int) -> list[tuple[int, int]]:
    """Split ``[0, num_scenarios)`` into ``shards`` contiguous near-equal ranges."""
    bounds = [num_scenarios * i // shards for i in range(shards + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(shards)]


def fold_shard_outcomes(
    plan: SweepPlan, outcomes: Sequence[tuple], reused: bool
) -> "tuple[BatchReductions, bool, np.ndarray]":
    """Scatter shard reductions and merge shard snapshots, ascending.

    ``outcomes`` holds one :func:`solve_shard_range` tuple per shard, in
    ascending ``begin`` order, covering ``[0, plan.num_scenarios)``
    exactly.  Sinks must already be bound to the full sweep.
    """
    from .engine import BatchReductions

    num_scenarios = plan.num_scenarios
    worst = np.empty(num_scenarios, dtype=float)
    average = np.empty(num_scenarios, dtype=float)
    worst_index = np.empty(num_scenarios, dtype=np.int64)
    iterations = np.zeros(num_scenarios, dtype=np.int64)
    for begin, end, shard_worst, shard_avg, shard_index, shard_iter, shard_reused, snaps in (
        outcomes
    ):
        worst[begin:end] = shard_worst
        average[begin:end] = shard_avg
        worst_index[begin:end] = shard_index
        iterations[begin:end] = shard_iter
        reused = reused or shard_reused
        for sink, snapshot in zip(plan.sinks, snaps):
            sink.merge(snapshot)
    reductions = BatchReductions(
        worst_ir_drop=worst, average_ir_drop=average, worst_node_index=worst_index
    )
    return reductions, reused, iterations


_WORKER_STATE: dict = {}
"""Per-worker sweep context, installed once by the pool initializer."""


def _init_shard_worker(descriptor) -> None:
    """Install the sweep context (attaching shared memory) into this worker."""
    if isinstance(descriptor, (bytes, bytearray)):
        _WORKER_STATE.update(load_shard_state(descriptor))
    else:
        _WORKER_STATE.update(attach_shard_state(descriptor))


def _solve_shard(begin: int, end: int) -> tuple:
    """Pool-worker entry: solve ``[begin, end)`` from the installed context."""
    return solve_shard_range(_WORKER_STATE, begin, end)
