"""Pluggable sweep-execution layer for chunked / streamed scenario sweeps.

:class:`~repro.analysis.engine.BatchedAnalysisEngine` describes *what* a
sweep is — a scenario source, a chunk width, reductions and sinks.  This
module decides *how* it runs.  A :class:`SweepExecutor` receives the
engine's :class:`SweepPlan` and drives the chunk pipeline:

* :class:`SerialExecutor` — produce → solve → fold on the calling thread.
* :class:`ThreadedExecutor` — the PR-4 pipeline: chunk solves on a thread
  pool (SuperLU releases the GIL) while the calling thread folds finished
  chunks in ascending scenario order.  Bitwise-identical to serial for
  every result, including every sink.
* :class:`ProcessShardedExecutor` — splits the *scenario range* into
  contiguous shards across a ``ProcessPoolExecutor``.  Each worker process
  holds its own factorization and runs the serial pipeline over its shard
  with fresh copies of the sinks; the parent merges the shard reductions
  (exact by construction — per-scenario reductions are chunk-local) and
  the shard sink snapshots via the
  :class:`~repro.analysis.sinks.MergeableSink` protocol.  This is the
  executor that scales past the GIL-bound fold: the sink/reduction fold
  itself runs in parallel, one fold per shard.

Executors are stateless between calls (pools are created per sweep), so
one instance can be shared across engines and sweeps.

Process-sharding contract
-------------------------

The scenario source and the compiled grid are pickled once and shipped to
every worker, so both must be picklable — the engine's own sources
(matrix slices, cross products, the vectorless budget sampler) are;
ad-hoc lambdas and closures are not.  Every sink must implement
:class:`~repro.analysis.sinks.MergeableSink`; ``P2QuantileSink`` is
order-dependent and therefore rejected with a pointer to the reservoir
sink.  Incompatible sweeps raise :class:`ExecutorIncompatibility` *before*
any sink observes the sweep — the engine downgrades to the threaded
pipeline instead when the executor was only an environment default
(:data:`EXECUTOR_ENV`), so exporting ``REPRO_TEST_EXECUTOR=processes``
runs an entire test suite process-sharded wherever that is well-defined.

Exactness: shard boundaries are just another chunking, so the streamed
worst / mean / worst-node reductions and every *exact* sink (histogram,
exceedance, joint exceedance, top-k) are bitwise-identical to the
sequential sweep for every shard count.  The reservoir sink merges by
weighted resampling (statistically equivalent); P² does not merge at all.
"""

from __future__ import annotations

import copy
import multiprocessing as mp
import os
import pickle
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .sinks import MergeableSink, ScenarioSink

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..grid.compiled import CompiledGrid
    from .engine import BatchedAnalysisEngine, BatchReductions, ScenarioSource

EXECUTOR_ENV = "REPRO_TEST_EXECUTOR"
"""Environment variable supplying the engine's default sweep executor.

Lets CI (and local runs) push the whole test suite through one execution
strategy without touching any call site: every chunked / streamed sweep
that passes neither ``executor=`` nor ``workers=`` uses this strategy.
Accepted values are the :data:`EXECUTOR_NAMES`; unset or empty means the
threaded pipeline at the engine's default worker count.  Sweeps a strategy
cannot run (non-mergeable sinks or an unpicklable source under
``processes``) silently fall back to the threaded pipeline — an explicit
``executor=`` argument raises instead.
"""

EXECUTOR_NAMES = ("serial", "threads", "processes", "remote")
"""Names accepted by :func:`make_executor` (and :data:`EXECUTOR_ENV`)."""


class ExecutorIncompatibility(ValueError):
    """A sweep cannot run on the requested executor as specified.

    Raised *before* any sink observes the sweep, so the engine can fall
    back to the threaded pipeline when the executor was only an
    environment default.
    """


@dataclass(frozen=True)
class SweepPlan:
    """Everything an executor needs to drive one chunked sweep.

    Attributes:
        engine: The engine that owns the factorization cache and the
            chunk pipeline.
        compiled: The compiled grid every scenario is solved on.
        scenario_source: Chunk generator; a pure function of the half-open
            scenario range (see
            :data:`~repro.analysis.engine.ScenarioSource`).
        num_scenarios: Total number of scenarios to sweep.
        chunk_size: RHS chunk width of the solve pipeline.
        sinks: Scenario sinks observing the sweep, in caller order.
    """

    engine: "BatchedAnalysisEngine"
    compiled: "CompiledGrid"
    scenario_source: "ScenarioSource"
    num_scenarios: int
    chunk_size: int
    sinks: tuple[ScenarioSink, ...]


class SweepExecutor(ABC):
    """Strategy driving the chunk pipeline of one scenario sweep.

    Contract: :meth:`execute` must (1) bind every sink in ``plan.sinks``
    to the full sweep exactly once, (2) ensure each scenario is folded
    into the reductions and every sink exactly once in ascending scenario
    order, and (3) return the per-scenario reductions, the
    factorization-reuse flag and the per-scenario solver iteration
    counts.  Any incompatibility with the plan must raise
    :class:`ExecutorIncompatibility` before the first sink is bound.
    """

    name: str = "abstract"

    @property
    @abstractmethod
    def parallelism(self) -> int:
        """Worker count the sweep runs with (1 = sequential)."""

    @abstractmethod
    def execute(self, plan: SweepPlan) -> "tuple[BatchReductions, bool, np.ndarray]":
        """Run the sweep; return ``(reductions, reused, iterations)``."""


class SerialExecutor(SweepExecutor):
    """Produce → solve → fold sequentially on the calling thread."""

    name = "serial"

    @property
    def parallelism(self) -> int:
        return 1

    def execute(self, plan: SweepPlan) -> "tuple[BatchReductions, bool, np.ndarray]":
        return plan.engine._run_chunk_pipeline(
            plan.compiled,
            plan.scenario_source,
            plan.num_scenarios,
            plan.chunk_size,
            plan.sinks,
            workers=1,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "SerialExecutor()"


class ThreadedExecutor(SweepExecutor):
    """Chunk solves on a thread pool, one ordered fold on the caller.

    The exact PR-4 pipeline (``workers=`` on the engine entry points maps
    to this executor): at most ``workers`` chunks are in flight, the
    scenario source is always called from the calling thread in ascending
    order, and finished chunks fold FIFO — so every result, including
    every sink state, is bitwise-identical to :class:`SerialExecutor`.

    Args:
        workers: Solver threads (``None`` uses ``os.cpu_count()``).
    """

    name = "threads"

    def __init__(self, workers: int | None = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers

    @property
    def parallelism(self) -> int:
        return self.workers

    def execute(self, plan: SweepPlan) -> "tuple[BatchReductions, bool, np.ndarray]":
        return plan.engine._run_chunk_pipeline(
            plan.compiled,
            plan.scenario_source,
            plan.num_scenarios,
            plan.chunk_size,
            plan.sinks,
            workers=self.workers,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ThreadedExecutor(workers={self.workers})"


class ProcessShardedExecutor(SweepExecutor):
    """Shard the scenario range across worker processes and merge.

    The sweep's ``[0, num_scenarios)`` range is split into ``shards``
    contiguous, near-equal sub-ranges.  Each worker process unpickles the
    compiled grid and scenario source once (pool initializer), then runs
    the engine's serial chunk pipeline over its shard with its *own*
    factorization and fresh deep-copies of the sinks — no GIL, no shared
    fold thread.  The parent scatters the shard reductions into the full
    per-scenario arrays and merges the shard sink snapshots in ascending
    shard order through :class:`~repro.analysis.sinks.MergeableSink`.

    The parent engine also warms its own factorization cache (direct path
    only), so follow-up single solves — e.g.
    :meth:`~repro.analysis.sinks.TopKScenarioSink.rematerialize` — reuse
    it, and the usual one-factorization-per-sweep accounting holds.

    Memory: each worker holds its own factorization plus
    ``O(num_nodes * chunk_size)`` chunk state, so the high-water mark is
    ``shards × `` the serial pipeline's (factorization included) — the
    price of scaling past the GIL-bound fold.

    Args:
        shards: Number of worker processes / scenario shards.  ``None``
            uses ``max(2, os.cpu_count())`` so the sharded path is
            exercised even on single-core hosts.
        start_method: ``multiprocessing`` start method; ``None`` prefers
            ``fork`` (cheap, copy-on-write grid) where available and the
            platform default elsewhere.
    """

    name = "processes"

    def __init__(self, shards: int | None = None, start_method: str | None = None) -> None:
        if shards is None:
            shards = max(2, os.cpu_count() or 1)
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if start_method is not None and start_method not in mp.get_all_start_methods():
            raise ValueError(
                f"start_method {start_method!r} not available; "
                f"choose from {mp.get_all_start_methods()}"
            )
        self.shards = shards
        self.start_method = start_method

    @property
    def parallelism(self) -> int:
        return self.shards

    def _context(self) -> mp.context.BaseContext:
        method = self.start_method
        if method is None:
            method = "fork" if "fork" in mp.get_all_start_methods() else None
        return mp.get_context(method)

    def execute(self, plan: SweepPlan) -> "tuple[BatchReductions, bool, np.ndarray]":
        from .engine import BatchReductions

        engine, compiled, sinks = plan.engine, plan.compiled, plan.sinks
        require_mergeable_sinks(sinks, "process")
        num_scenarios = plan.num_scenarios
        shards = min(self.shards, num_scenarios)
        if shards <= 1:
            return engine._run_chunk_pipeline(
                compiled, plan.scenario_source, num_scenarios, plan.chunk_size, sinks, workers=1
            )
        payload = pickle_sweep_payload(plan, "process")
        for sink in sinks:
            sink.bind(compiled, num_scenarios)
        reused = False
        if not engine._use_cg(compiled):
            _, reused = engine._factor(compiled)

        ranges = shard_ranges(num_scenarios, shards)
        with ProcessPoolExecutor(
            max_workers=shards,
            mp_context=self._context(),
            initializer=_init_shard_worker,
            initargs=(payload,),
        ) as pool:
            futures = [pool.submit(_solve_shard, begin, end) for begin, end in ranges]
            outcomes = [future.result() for future in futures]
        return fold_shard_outcomes(plan, outcomes, reused)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ProcessShardedExecutor(shards={self.shards})"


def make_executor(name: str, workers: int | None = None) -> SweepExecutor:
    """Build an executor from its CLI / environment name.

    Args:
        name: One of :data:`EXECUTOR_NAMES`.
        workers: Parallelism — threads for ``threads``, shards for
            ``processes`` (``None`` = derive from ``os.cpu_count()``).
            ``serial`` accepts only ``None`` / 1.
    """
    if name == "serial":
        if workers not in (None, 1):
            raise ValueError("the serial executor runs single-threaded; do not pass workers")
        return SerialExecutor()
    if name == "threads":
        return ThreadedExecutor(workers)
    if name == "processes":
        return ProcessShardedExecutor(shards=workers)
    if name == "remote":
        from .remote import RemoteExecutor

        return RemoteExecutor(workers=workers)
    raise ValueError(f"unknown executor {name!r}; choose from {EXECUTOR_NAMES}")


# ----------------------------------------------------------------------
# Shared shard machinery (process-sharded and remote executors)
# ----------------------------------------------------------------------
def require_mergeable_sinks(sinks: Sequence[ScenarioSink], shard_kind: str) -> None:
    """Reject sweeps whose sinks cannot merge across shards.

    Raised before any sink binds, so an environment-default executor can
    downgrade the sweep to the threaded pipeline instead of failing.
    """
    non_mergeable = sorted(
        {type(sink).__name__ for sink in sinks if not isinstance(sink, MergeableSink)}
    )
    if non_mergeable:
        raise ExecutorIncompatibility(
            f"sinks {non_mergeable} cannot merge across {shard_kind} shards "
            "(their state is order-dependent); use mergeable sinks — e.g. "
            "QuantileSketchSink instead of P2QuantileSink — or the "
            "threads executor"
        )


def pickle_sweep_payload(plan: SweepPlan, shard_kind: str) -> bytes:
    """Pickle one sweep's worker context (engine config, grid, source, sinks).

    The payload is what shard workers — local processes or remote worker
    processes — unpickle via :func:`load_shard_state` to rebuild the sweep
    on their side.  Unpicklable plans raise
    :class:`ExecutorIncompatibility` before any sink binds.
    """
    engine = plan.engine
    plan.compiled.fingerprint  # hash once here; workers inherit the digest
    engine_config = {
        "cache_size": engine.cache_size,
        "direct_size_limit": engine.direct_size_limit,
        "solver": engine.solver_backend.name,
        "incremental_updates": engine.incremental_updates,
    }
    try:
        return pickle.dumps(
            (engine_config, plan.compiled, plan.scenario_source, plan.chunk_size, plan.sinks),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        raise ExecutorIncompatibility(
            f"{shard_kind}-sharded sweeps must pickle the scenario source, the "
            "compiled grid and every sink into the worker processes; use a "
            "picklable source (e.g. MatrixScenarioSource / "
            f"CrossProductScenarioSource) or the threads executor: {exc}"
        ) from exc


def load_shard_state(payload: bytes) -> dict:
    """Rebuild the worker-side sweep context from a pickled payload.

    The worker's engine mirrors the parent's solver configuration (cache
    size, direct-vs-CG threshold) so shards solve exactly the way the
    parent would have.
    """
    from .engine import BatchedAnalysisEngine

    engine_config, compiled, source, chunk_size, sink_prototypes = pickle.loads(payload)
    return dict(
        engine=BatchedAnalysisEngine(
            default_workers=1, default_executor=SerialExecutor(), **engine_config
        ),
        compiled=compiled,
        source=source,
        chunk_size=chunk_size,
        sink_prototypes=sink_prototypes,
    )


def solve_shard_range(state: dict, begin: int, end: int) -> tuple:
    """Run the serial chunk pipeline over ``[begin, end)`` of one sweep.

    The shard runs as its own sweep of ``end - begin`` scenarios: the
    source is shifted by ``begin`` and fresh sink copies observe
    shard-local offsets — :meth:`MergeableSink.merge` re-bases any
    indices when the parent folds the snapshots back together.
    """
    source = state["source"]
    sinks: Sequence[ScenarioSink] = copy.deepcopy(state["sink_prototypes"])

    def shard_source(lo: int, hi: int) -> "tuple[np.ndarray | None, np.ndarray | None]":
        return source(begin + lo, begin + hi)

    reductions, reused, iterations = state["engine"]._run_chunk_pipeline(
        state["compiled"], shard_source, end - begin, state["chunk_size"], sinks, workers=1
    )
    return (
        begin,
        end,
        reductions.worst_ir_drop,
        reductions.average_ir_drop,
        reductions.worst_node_index,
        iterations,
        reused,
        tuple(sink.snapshot() for sink in sinks),
    )


def shard_ranges(num_scenarios: int, shards: int) -> list[tuple[int, int]]:
    """Split ``[0, num_scenarios)`` into ``shards`` contiguous near-equal ranges."""
    bounds = [num_scenarios * i // shards for i in range(shards + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(shards)]


def fold_shard_outcomes(
    plan: SweepPlan, outcomes: Sequence[tuple], reused: bool
) -> "tuple[BatchReductions, bool, np.ndarray]":
    """Scatter shard reductions and merge shard snapshots, ascending.

    ``outcomes`` holds one :func:`solve_shard_range` tuple per shard, in
    ascending ``begin`` order, covering ``[0, plan.num_scenarios)``
    exactly.  Sinks must already be bound to the full sweep.
    """
    from .engine import BatchReductions

    num_scenarios = plan.num_scenarios
    worst = np.empty(num_scenarios, dtype=float)
    average = np.empty(num_scenarios, dtype=float)
    worst_index = np.empty(num_scenarios, dtype=np.int64)
    iterations = np.zeros(num_scenarios, dtype=np.int64)
    for begin, end, shard_worst, shard_avg, shard_index, shard_iter, shard_reused, snaps in (
        outcomes
    ):
        worst[begin:end] = shard_worst
        average[begin:end] = shard_avg
        worst_index[begin:end] = shard_index
        iterations[begin:end] = shard_iter
        reused = reused or shard_reused
        for sink, snapshot in zip(plan.sinks, snaps):
            sink.merge(snapshot)
    reductions = BatchReductions(
        worst_ir_drop=worst, average_ir_drop=average, worst_node_index=worst_index
    )
    return reductions, reused, iterations


_WORKER_STATE: dict = {}
"""Per-worker sweep context, installed once by the pool initializer."""


def _init_shard_worker(payload: bytes) -> None:
    """Unpickle the sweep context into this pool worker process."""
    _WORKER_STATE.update(load_shard_state(payload))


def _solve_shard(begin: int, end: int) -> tuple:
    """Pool-worker entry: solve ``[begin, end)`` from the installed context."""
    return solve_shard_range(_WORKER_STATE, begin, end)
